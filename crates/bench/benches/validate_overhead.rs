//! Plan-validation overhead gate.
//!
//! Validation re-uses the recheck the rewrite loop already performs and
//! adds only a `types_equivalent` comparison per applied rewrite, so it
//! is on by default and must stay near-free. This bench optimizes the
//! full builtin witness-plan set (every synthesized witness of every
//! builtin rule) with `Validation::Off` and `Validation::Count`;
//! `VALIDATE_OVERHEAD_SMOKE=1` switches to a quick gated run (used by
//! CI) that asserts validation stays under 5% overhead on the optimize
//! path, plus a fixed noise allowance.

use criterion::Criterion;
use sos_core::check::Checker;
use sos_optimizer::synth::Scenario;
use sos_optimizer::Validation;

fn bench_validate_overhead(c: &mut Criterion) {
    let sig = sos_system::builtin::builtin_signature();
    let scenario = Scenario::build(&sig);
    let opt = sos_system::rules::builtin_optimizer();
    let checker = Checker::new(&sig, &scenario.catalog);
    let rule = &opt.steps[0].rules[0];
    let plan = sos_optimizer::synth::witnesses(&sig, &scenario, rule, 1)
        .into_iter()
        .next()
        .expect("a witness for the first builtin rule");

    let mut group = c.benchmark_group("validate-overhead");
    group.bench_function("validation-off", |b| {
        b.iter(|| {
            opt.optimize_with(&plan, &checker, &scenario.catalog, Validation::Off)
                .unwrap()
        });
    });
    group.bench_function("validation-count", |b| {
        b.iter(|| {
            opt.optimize_with(&plan, &checker, &scenario.catalog, Validation::Count)
                .unwrap()
        });
    });
    group.finish();
}

fn smoke() {
    let (off, on, plans) = bench::validate_overhead_ns(9);
    let ratio = on as f64 / off as f64;
    println!(
        "validate-overhead smoke: {plans} plans, off {off}ns/pass, on {on}ns/pass, \
         ratio {ratio:.4}"
    );
    // The gate: under 5% on the optimize path, plus 50µs of scheduler
    // noise so a loaded CI host does not flake on µs-scale passes.
    let limit = off + off / 20 + 50_000;
    assert!(
        on <= limit,
        "validation-on pass {on}ns exceeds the 5% gate {limit}ns (off: {off}ns)"
    );
}

fn main() {
    if std::env::var("VALIDATE_OVERHEAD_SMOKE").is_ok() {
        smoke();
        return;
    }
    let mut c = Criterion::default();
    bench_validate_overhead(&mut c);
}
