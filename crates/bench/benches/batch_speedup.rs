//! Vectorized-batch speedup gate.
//!
//! The batch path (`Cursor::next_batch`, engine batch width > 1) must
//! beat the tuple-at-a-time drain it replaces: whole-page decodes with
//! one pool fetch per page instead of one per record, and one closure
//! environment setup per batch instead of per tuple. This bench times
//! the same selection pipeline at batch widths 1 / 64 / 1024;
//! `BATCH_SPEEDUP_SMOKE=1` switches to a quick gated run (used by CI)
//! that asserts the batched drain is no slower than tuple-at-a-time.

use bench::{as_count, heap_db};
use criterion::{black_box, Criterion};
use sos_system::Database;
use std::time::Instant;

const QUERY: &str = "hitems feed filter[k mod 7 = 0] count";

fn bench_batch_speedup(c: &mut Criterion) {
    let mut db = heap_db(100_000);
    db.set_parallelism(1);
    let mut group = c.benchmark_group("batch-speedup");
    for width in [1usize, 64, 1024] {
        db.set_batch_size(width);
        group.bench_function(format!("selection-batch-{width}"), |b| {
            b.iter(|| db.query(QUERY).unwrap());
        });
    }
    group.finish();
}

/// Median per-iteration nanoseconds over `samples` batches.
fn median_nanos(db: &mut Database, samples: usize, iters: usize) -> u64 {
    let mut times: Vec<u64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(db.query(QUERY).unwrap());
            }
            (start.elapsed().as_nanos() as u64) / iters as u64
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn smoke() {
    let mut db = heap_db(20_000);
    db.set_parallelism(1);
    // Warm the pool and the plan path before timing anything.
    assert_eq!(as_count(&db.query(QUERY).unwrap()), 2858);

    db.set_batch_size(1);
    let tuple = median_nanos(&mut db, 7, 3);
    db.set_batch_size(1024);
    let batched = median_nanos(&mut db, 7, 3);

    println!("batch-speedup smoke: tuple {tuple}ns/iter, batched {batched}ns/iter");
    // The gate asserts "no slower" with a noise allowance; the full
    // bench (and BENCH_PR3.json) records the actual multiple.
    let limit = tuple + tuple / 10 + 200_000;
    assert!(
        batched <= limit,
        "batched selection {batched}ns exceeds the tuple-at-a-time gate {limit}ns (tuple: {tuple}ns)"
    );
}

fn main() {
    if std::env::var("BATCH_SPEEDUP_SMOKE").is_ok() {
        smoke();
        return;
    }
    let mut c = Criterion::default();
    bench_batch_speedup(&mut c);
}
