//! Vectorized-batch speedup gate.
//!
//! The batch path (`Cursor::next_batch`, engine batch width > 1) must
//! beat the tuple-at-a-time drain it replaces: whole-page decodes with
//! one pool fetch per page instead of one per record, and one closure
//! environment setup per batch instead of per tuple. This bench times
//! the same selection pipeline at batch widths 1 / 64 / 1024, each with
//! the expression compiler on and off, plus a compiled/interpreted
//! search-join pair. Two CI smokes gate regressions:
//!
//! * `BATCH_SPEEDUP_SMOKE=1` — the batched drain is no slower than the
//!   tuple-at-a-time drain;
//! * `COMPILE_SPEEDUP_SMOKE=1` — the compiled batched selection is
//!   faster than the interpreted batched selection.

use bench::{as_count, heap_db};
use criterion::{black_box, Criterion};
use sos_system::Database;
use std::time::Instant;

const QUERY: &str = "hitems feed filter[k mod 7 = 0] count";
const JOIN_QUERY: &str = "emps_rep feed (fun (e: emp) depts_rep feed \
     filter[fun (d: dpt) e dept = d dno]) search_join count";

/// The PR3 search-join workload: 8000 outer tuples probing a 50-row
/// inner relation per tuple.
fn join_db() -> Database {
    let mut db = Database::builder().build();
    db.run(
        r#"
        type emp = tuple(<(ename, string), (dept, int)>);
        type dpt = tuple(<(dno, int), (dname, string)>);
        create emps_rep : tidrel(emp);
        create depts_rep : tidrel(dpt);
    "#,
    )
    .unwrap();
    let emps: Vec<sos_exec::Value> = (0..8000)
        .map(|i| {
            sos_exec::Value::tuple(vec![
                sos_exec::Value::Str(format!("e{i}")),
                sos_exec::Value::Int((i % 50) as i64),
            ])
        })
        .collect();
    let depts: Vec<sos_exec::Value> = (0..50)
        .map(|d| {
            sos_exec::Value::tuple(vec![
                sos_exec::Value::Int(d as i64),
                sos_exec::Value::Str(format!("d{d}")),
            ])
        })
        .collect();
    db.bulk_insert("emps_rep", emps).unwrap();
    db.bulk_insert("depts_rep", depts).unwrap();
    db
}

fn bench_batch_speedup(c: &mut Criterion) {
    let mut db = heap_db(100_000);
    db.set_parallelism(1);
    let mut group = c.benchmark_group("batch-speedup");
    for width in [1usize, 64, 1024] {
        db.set_batch_size(width);
        for compile in [false, true] {
            db.set_compile_exprs(compile);
            let mode = if compile { "compiled" } else { "interp" };
            group.bench_function(format!("selection-batch-{width}-{mode}"), |b| {
                b.iter(|| db.query(QUERY).unwrap());
            });
        }
    }
    group.finish();

    let mut db = join_db();
    db.set_parallelism(1);
    db.set_batch_size(1024);
    let mut group = c.benchmark_group("compile-speedup");
    for compile in [false, true] {
        db.set_compile_exprs(compile);
        let mode = if compile { "compiled" } else { "interp" };
        group.bench_function(format!("search-join-{mode}"), |b| {
            b.iter(|| db.query(JOIN_QUERY).unwrap());
        });
    }
    group.finish();
}

/// Median per-iteration nanoseconds over `samples` batches.
fn median_nanos(db: &mut Database, query: &str, samples: usize, iters: usize) -> u64 {
    let mut times: Vec<u64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(db.query(query).unwrap());
            }
            (start.elapsed().as_nanos() as u64) / iters as u64
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn smoke() {
    let mut db = heap_db(20_000);
    db.set_parallelism(1);
    // The batch gate predates the compiler; keep measuring what it
    // always measured — the interpreted batch path vs the tuple drain.
    db.set_compile_exprs(false);
    // Warm the pool and the plan path before timing anything.
    assert_eq!(as_count(&db.query(QUERY).unwrap()), 2858);

    db.set_batch_size(1);
    let tuple = median_nanos(&mut db, QUERY, 7, 3);
    db.set_batch_size(1024);
    let batched = median_nanos(&mut db, QUERY, 7, 3);

    println!("batch-speedup smoke: tuple {tuple}ns/iter, batched {batched}ns/iter");
    // The gate asserts "no slower" with a noise allowance; the full
    // bench (and BENCH_PR3.json) records the actual multiple.
    let limit = tuple + tuple / 10 + 200_000;
    assert!(
        batched <= limit,
        "batched selection {batched}ns exceeds the tuple-at-a-time gate {limit}ns (tuple: {tuple}ns)"
    );
}

fn compile_smoke() {
    let mut db = heap_db(20_000);
    db.set_parallelism(1);
    db.set_batch_size(1024);
    assert_eq!(as_count(&db.query(QUERY).unwrap()), 2858);

    db.set_compile_exprs(false);
    let interp = median_nanos(&mut db, QUERY, 7, 3);
    db.set_compile_exprs(true);
    let compiled = median_nanos(&mut db, QUERY, 7, 3);

    println!("compile-speedup smoke: interp {interp}ns/iter, compiled {compiled}ns/iter");
    // BENCH_PR6.json records the full-size multiple (>= 2x); the CI
    // gate only asserts a conservative floor so shared runners with
    // noisy neighbours don't flake.
    let limit = interp - interp / 4 + 200_000;
    assert!(
        compiled <= limit,
        "compiled selection {compiled}ns exceeds the interpreted gate {limit}ns (interp: {interp}ns)"
    );
}

fn main() {
    if std::env::var("BATCH_SPEEDUP_SMOKE").is_ok() {
        smoke();
        return;
    }
    if std::env::var("COMPILE_SPEEDUP_SMOKE").is_ok() {
        compile_smoke();
        return;
    }
    let mut c = Criterion::default();
    bench_batch_speedup(&mut c);
}
