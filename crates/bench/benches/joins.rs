//! B7 — Join strategies on an equi-join: the optimizer's hash join vs
//! the scan-based search join, over growing outer sizes. The hash join
//! is linear; the scan-based nested loop is quadratic-ish.
//!
//! B7p — Parallel hash join: the representation-level
//! `feed ... hashjoin` under 1/2/4/8 intra-operator workers. Both the
//! heap scans feeding the join and the build/probe phases partition
//! across workers; workers = 1 is the serial baseline.

use bench::as_count;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sos_exec::Value;
use sos_system::Database;

fn join_db(n_emps: usize, n_depts: usize) -> Database {
    let mut db = Database::builder().build();
    db.run(
        r#"
        type emp = tuple(<(ename, string), (dept, int)>);
        type dpt = tuple(<(dno, int), (dname, string)>);
        create emps : rel(emp);
        create depts : rel(dpt);
        create emps_rep : tidrel(emp);
        create depts_rep : tidrel(dpt);
        create rep : catalog(<ident, ident>);
        update rep := insert(rep, emps, emps_rep);
        update rep := insert(rep, depts, depts_rep);
    "#,
    )
    .unwrap();
    let emps: Vec<Value> = (0..n_emps)
        .map(|i| {
            Value::tuple(vec![
                Value::Str(format!("e{i}")),
                Value::Int((i % n_depts) as i64),
            ])
        })
        .collect();
    let depts: Vec<Value> = (0..n_depts)
        .map(|d| Value::tuple(vec![Value::Int(d as i64), Value::Str(format!("d{d}"))]))
        .collect();
    db.bulk_insert("emps_rep", emps).unwrap();
    db.bulk_insert("depts_rep", depts).unwrap();
    db
}

fn bench_joins(c: &mut Criterion) {
    let mut group = c.benchmark_group("joins");
    group.sample_size(10);
    for n in [500usize, 2000, 8000] {
        let mut db = join_db(n, 50);
        // The optimized model join (hashjoin rule).
        let hash = as_count(&db.query("emps depts join[dept = dno] count").unwrap());
        let scan = as_count(
            &db.query(
                "emps_rep feed (fun (e: emp) depts_rep feed \
                 filter[fun (d: dpt) e dept = d dno]) search_join count",
            )
            .unwrap(),
        );
        assert_eq!(hash, scan);
        group.bench_with_input(BenchmarkId::new("hashjoin-optimized", n), &(), |b, _| {
            b.iter(|| as_count(&db.query("emps depts join[dept = dno] count").unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("scan-searchjoin", n), &(), |b, _| {
            b.iter(|| {
                as_count(
                    &db.query(
                        "emps_rep feed (fun (e: emp) depts_rep feed \
                         filter[fun (d: dpt) e dept = d dno]) search_join count",
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_parallel_hashjoin(c: &mut Criterion) {
    let mut group = c.benchmark_group("joins-parallel");
    group.sample_size(10);
    let mut db = join_db(20_000, 50);
    let q = "emps_rep feed depts_rep feed hashjoin[dept, dno] count";
    db.set_parallelism(1);
    let expected = as_count(&db.query(q).unwrap());
    for workers in [1usize, 2, 4, 8] {
        db.set_parallelism(workers);
        assert_eq!(as_count(&db.query(q).unwrap()), expected);
        group.bench_with_input(BenchmarkId::new("hashjoin", workers), &(), |b, _| {
            b.iter(|| as_count(&db.query(q).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_joins, bench_parallel_hashjoin);
criterion_main!(benches);
