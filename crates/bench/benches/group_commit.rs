//! Group commit: what coalescing concurrent commits into one fsync buys.
//!
//! Under `SyncPolicy::PerCommit` every committer pays its own fsync;
//! under `SyncPolicy::Group` commits landing within a window (or while
//! a sync is in flight) ride one fsync issued by the WAL's background
//! writer. This bench drives the `Wal` directly — the system layer is
//! single-writer, and the pipeline's concurrency lives below it — with
//! N threads each appending a page image and committing, sweeping
//! N ∈ {1, 4, 16, 64} under both policies on real files.
//!
//! `GROUP_COMMIT_SMOKE=1` switches to a quick gated run (used by CI)
//! asserting that group commit actually coalesces: at 16 committers it
//! must beat per-commit throughput and issue well under one fsync per
//! commit.

use criterion::Criterion;
use sos_storage::{DiskManager, FileDisk, SyncPolicy, Wal, WalOptions, PAGE_SIZE};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Barrier};
use std::time::Instant;

const CONCURRENCY: [usize; 4] = [1, 4, 16, 64];

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sos-group-commit-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench dir");
    dir
}

fn open_wal(dir: &Path, policy: SyncPolicy) -> Arc<Wal> {
    let data: Arc<dyn DiskManager> =
        Arc::new(FileDisk::open(&dir.join("pages.db")).expect("data disk"));
    let wal_disk: Arc<dyn DiskManager> =
        Arc::new(FileDisk::open(&dir.join("wal.log")).expect("wal disk"));
    let (wal, _, _) = Wal::recover_with(
        wal_disk,
        &data,
        WalOptions {
            policy,
            ..WalOptions::default()
        },
    )
    .expect("wal open");
    Arc::new(wal)
}

/// `threads` committers × `per_thread` single-page commits, all racing
/// from a barrier. Returns wall milliseconds.
fn run_commits(wal: &Arc<Wal>, threads: usize, per_thread: usize) -> f64 {
    let barrier = Arc::new(Barrier::new(threads + 1));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let wal = Arc::clone(wal);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..per_thread {
                    let txid = wal.alloc_txid();
                    let image = [(t + i) as u8; PAGE_SIZE];
                    wal.append_page_image(txid, (t * per_thread + i) as u32, &image);
                    wal.commit(txid, None).expect("commit");
                }
            })
        })
        .collect();
    barrier.wait();
    let started = Instant::now();
    for h in handles {
        h.join().expect("committer thread");
    }
    started.elapsed().as_secs_f64() * 1000.0
}

fn policy_label(policy: SyncPolicy) -> &'static str {
    match policy {
        SyncPolicy::PerCommit => "percommit",
        SyncPolicy::Group { .. } => "group",
        SyncPolicy::NoSync => "nosync",
    }
}

fn bench_group_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("group-commit");
    group.sample_size(10);
    for &threads in &CONCURRENCY {
        for policy in [SyncPolicy::PerCommit, SyncPolicy::DEFAULT_GROUP] {
            let name = format!("{}-{threads}", policy_label(policy));
            let dir = bench_dir(&name);
            let wal = open_wal(&dir, policy);
            group.bench_function(name, |b| {
                b.iter(|| run_commits(&wal, threads, 4));
            });
            drop(wal);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    group.finish();
}

fn smoke() {
    let per_thread = 16;
    for &threads in &[1usize, 16] {
        let mut results = Vec::new();
        for policy in [SyncPolicy::PerCommit, SyncPolicy::DEFAULT_GROUP] {
            let dir = bench_dir(&format!("smoke-{}-{threads}", policy_label(policy)));
            let wal = open_wal(&dir, policy);
            let ms = run_commits(&wal, threads, per_thread);
            let stats = wal.stats();
            let commits = stats.commits;
            let syncs = stats.syncs;
            assert_eq!(
                wal.durable_lsn(),
                wal.appended_lsn(),
                "pipeline did not quiesce"
            );
            println!(
                "group-commit smoke: {} × {threads} thread(s): {ms:.2}ms, \
                 {commits} commit(s), {syncs} sync(s) ({:.2} syncs/commit)",
                policy_label(policy),
                syncs as f64 / commits as f64
            );
            results.push((policy, ms, commits, syncs));
            drop(wal);
            let _ = std::fs::remove_dir_all(&dir);
        }
        let (_, per_ms, ..) = results[0];
        let (_, group_ms, commits, syncs) = results[1];
        if threads >= 16 {
            // The gate is a coalescing check, not a perf target: with 16
            // committers racing, the writer must fold commits into far
            // fewer fsyncs than one each, and that must not cost wall
            // time against per-commit (CI boxes are noisy — the report
            // in BENCH_PR7.json holds the real speedup).
            assert!(
                syncs * 2 <= commits,
                "group commit barely coalesced: {syncs} sync(s) for {commits} commit(s)"
            );
            assert!(
                group_ms <= per_ms * 1.5,
                "group commit slower than per-commit at {threads} threads: \
                 {group_ms:.2}ms vs {per_ms:.2}ms"
            );
        }
    }
}

fn main() {
    if std::env::var("GROUP_COMMIT_SMOKE").is_ok() {
        smoke();
        return;
    }
    let mut c = Criterion::default();
    bench_group_commit(&mut c);
}
