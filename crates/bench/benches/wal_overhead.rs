//! Durability tax: what write-ahead logging costs an update statement.
//!
//! Every durable update commit logs a full after-image of each dirtied
//! page plus the catalog snapshot, then flushes and fsyncs the log —
//! that sync is the price of the "committed means survives a crash"
//! guarantee. This bench times the same single-tuple insert statements
//! against an in-memory database and a WAL-backed one on real files;
//! `WAL_OVERHEAD_SMOKE=1` switches to a quick gated run (used by CI)
//! that also reopens the durable database and asserts nothing committed
//! was lost.

use criterion::{black_box, Criterion};
use sos_system::{Database, DurabilityConfig};
use std::path::PathBuf;
use std::time::Instant;

const SCHEMA: &str = r#"
    type item = tuple(<(k, int), (payload, string)>);
    create items : rel(item);
    create items_rep : btree(item, k, int);
    create rep : catalog(<ident, ident>);
    update rep := insert(rep, items, items_rep);
"#;

fn insert_stmt(k: usize) -> String {
    format!(r#"update items := insert(items, mktuple[(k, {k}), (payload, "p{k}")]);"#)
}

fn mem_db() -> Database {
    let mut db = Database::builder().build();
    db.run(SCHEMA).expect("schema");
    db
}

fn durable_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sos-wal-bench-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_db(dir: &PathBuf) -> Database {
    let mut db = Database::builder()
        .durability(DurabilityConfig::dir(dir))
        .try_build()
        .expect("durable open");
    if db.catalog().objects().next().is_none() {
        db.run(SCHEMA).expect("schema");
    }
    db
}

fn bench_wal_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal-overhead");
    let mut k = 0usize;
    let mut db = mem_db();
    group.bench_function("insert-statement-memory", |b| {
        b.iter(|| {
            k += 1;
            black_box(db.run(&insert_stmt(k)).unwrap());
        })
    });
    let dir = durable_dir("criterion");
    let mut db = durable_db(&dir);
    let mut k = 0usize;
    group.bench_function("insert-statement-durable", |b| {
        b.iter(|| {
            k += 1;
            black_box(db.run(&insert_stmt(k)).unwrap());
        })
    });
    group.finish();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Wall milliseconds for `n` single-statement inserts starting at `base`.
fn run_inserts(db: &mut Database, base: usize, n: usize) -> f64 {
    let t = Instant::now();
    for i in 0..n {
        db.run(&insert_stmt(base + i)).expect("insert");
    }
    t.elapsed().as_secs_f64() * 1000.0
}

fn smoke() {
    let n = 100;
    let mut mem = mem_db();
    let mem_ms = run_inserts(&mut mem, 0, n);

    let dir = durable_dir("smoke");
    let mut dur = durable_db(&dir);
    let dur_ms = run_inserts(&mut dur, 0, n);
    let commits = dur.metrics().wal.commits;
    drop(dur); // no checkpoint, no save: the log alone carries the data

    // Reopen: recovery must reproduce every committed insert.
    let mut dur = durable_db(&dir);
    let count = dur
        .query("items_rep feed count")
        .expect("count after recovery");
    let _ = std::fs::remove_dir_all(&dir);

    let overhead = dur_ms / mem_ms.max(f64::MIN_POSITIVE);
    println!(
        "wal-overhead smoke: memory {:.3}ms, durable {:.3}ms for {n} statements \
         ({overhead:.1}x, {commits} commit(s))",
        mem_ms, dur_ms
    );
    assert_eq!(
        format!("{count:?}"),
        format!("{:?}", sos_exec::Value::Int(n as i64)),
        "recovered database lost committed inserts"
    );
    // The gate is a sanity bound, not a performance target: each durable
    // statement pays a bounded number of page-image writes and one sync,
    // so a pathological regression (say, rescanning the log per commit)
    // blows this budget while honest fsync costs stay far inside it.
    let per_stmt = dur_ms / n as f64;
    assert!(
        per_stmt < 50.0,
        "durable insert statement averaged {per_stmt:.2}ms (budget 50ms)"
    );
}

fn main() {
    if std::env::var("WAL_OVERHEAD_SMOKE").is_ok() {
        smoke();
        return;
    }
    let mut c = Criterion::default();
    bench_wal_overhead(&mut c);
}
