//! B6 — Stream pipeline throughput (Section 4's query processing
//! algebra): feed, filter, project, replace, collect, sortby.

use bench::{as_count, keyed_db};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_streams(c: &mut Criterion) {
    let n = 20_000usize;
    let mut db = keyed_db(n);
    // A raw heap for the parallel-scan comparison.
    let pool = sos_storage::mem_pool(4096);
    let heap = sos_storage::heap::HeapFile::create(pool).unwrap();
    for i in 0..n {
        heap.insert(format!("record {i} {:width$}", "", width = i % 200).as_bytes())
            .unwrap();
    }
    let mut group = c.benchmark_group("streams");
    group.sample_size(10);
    group.bench_function("feed-count", |b| {
        b.iter(|| as_count(&db.query("items_rep feed count").unwrap()))
    });
    group.bench_function("feed-filter", |b| {
        b.iter(|| {
            as_count(
                &db.query("items_rep feed filter[k mod 2 = 0] count")
                    .unwrap(),
            )
        })
    });
    group.bench_function("feed-project", |b| {
        b.iter(|| {
            as_count(
                &db.query("items_rep feed project[(k2, fun (t: item) t k * 2)] count")
                    .unwrap(),
            )
        })
    });
    group.bench_function("feed-replace-collect", |b| {
        b.iter(|| {
            as_count(
                &db.query("items_rep feed replace[k, fun (t: item) t k + 1] collect count")
                    .unwrap(),
            )
        })
    });
    group.bench_function("feed-sortby-head", |b| {
        b.iter(|| {
            as_count(
                &db.query("items_rep feed sortby[payload] head[100] count")
                    .unwrap(),
            )
        })
    });
    // Pipelined early termination: head[5] over 20k tuples.
    group.bench_function("feed-head5-pipelined", |b| {
        b.iter(|| as_count(&db.query("items_rep feed head[5] count").unwrap()))
    });
    // Page-partitioned parallel scan (intra-operator parallelism).
    for threads in [1usize, 4] {
        group.bench_function(format!("par-scan-{threads}-threads"), |b| {
            b.iter(|| {
                sos_storage::parallel::par_count(&heap, threads, |rec| rec.len() % 2 == 0).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_streams);
criterion_main!(benches);
