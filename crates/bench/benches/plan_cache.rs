//! Plan-cache benefit under skewed query traffic.
//!
//! Real query traffic is shape-skewed: a handful of statement shapes
//! dominate, with a long tail of rare ones. This bench replays a
//! Zipf-distributed sequence over distinct model-level query shapes
//! (conjunctive selections of different widths — each width is its own
//! normalized shape, and each takes the full translation-rule search)
//! against the same database with the plan cache off and on, and
//! compares the accumulated optimizer time. `PLAN_CACHE_SMOKE=1`
//! switches to a quick gated run (used by CI) that asserts the cache-on
//! optimize time is at least 3x lower and that both configurations
//! return identical results.

use bench::{plan_cache_db, plan_cache_replay, zipf_ranks};
use criterion::Criterion;

/// Distinct query shapes: model selections with 1..=SHAPES conjuncts.
/// Each conjunct count normalizes to its own shape, so the cache holds
/// one entry per width.
const SHAPES: usize = 24;
/// Statements in the replayed sequence.
const STATEMENTS: usize = 400;
/// Zipf skew exponent: rank r is drawn with weight 1/r^s.
const ZIPF_S: f64 = 1.2;
const ROWS: usize = 2_000;
const SEED: u64 = 0xC0FFEE;

fn smoke() {
    let ranks = zipf_ranks(SHAPES, ZIPF_S, STATEMENTS, SEED);

    let mut off = plan_cache_db(false, ROWS);
    let (off_ns, off_results) = plan_cache_replay(&mut off, &ranks);

    let mut on = plan_cache_db(true, ROWS);
    // Warm: the first occurrence of each shape misses by construction.
    plan_cache_replay(&mut on, &ranks);
    let (on_ns, on_results) = plan_cache_replay(&mut on, &ranks);
    let planner = on.metrics().planner;

    assert_eq!(off_results, on_results, "cached plans diverged");
    assert!(
        planner.cache_hits > 0 && planner.cache_entries as usize <= SHAPES,
        "cache did not engage: {planner:?}"
    );
    let speedup = off_ns as f64 / (on_ns as f64).max(1.0);
    println!(
        "plan-cache smoke: {STATEMENTS} statements over {SHAPES} shapes (zipf s={ZIPF_S}), \
         optimize off {off_ns}ns, on {on_ns}ns, speedup {speedup:.1}x, \
         {} hits / {} misses",
        planner.cache_hits, planner.cache_misses
    );
    // The gate: a warmed cache must cut total optimize time by at least
    // 3x on skewed traffic (the hit path skips the rewriter entirely).
    assert!(
        speedup >= 3.0,
        "plan-cache speedup {speedup:.2}x under the 3x gate (off {off_ns}ns, on {on_ns}ns)"
    );
}

fn bench_plan_cache(c: &mut Criterion) {
    let ranks = zipf_ranks(SHAPES, ZIPF_S, STATEMENTS, SEED);
    let mut group = c.benchmark_group("plan-cache");
    group.sample_size(10);
    for (label, cached) in [("cache-off", false), ("cache-on", true)] {
        let mut db = plan_cache_db(cached, ROWS);
        plan_cache_replay(&mut db, &ranks); // warm pool and cache
        group.bench_function(label, |b| {
            b.iter(|| std::hint::black_box(plan_cache_replay(&mut db, &ranks)))
        });
    }
    group.finish();
}

fn main() {
    if std::env::var("PLAN_CACHE_SMOKE").is_ok() {
        smoke();
        return;
    }
    let mut c = Criterion::default();
    bench_plan_cache(&mut c);
}
