//! B2 — Spatial join: the Section 5 LSD-tree plan vs the scan-based
//! search join, over growing city counts. The index plan's advantage
//! grows with the inner relation size.

use bench::{as_count, spatial_db};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const INDEX_PLAN: &str = "cities_rep feed \
    (fun (c: city) states_rep (c center) point_search \
     filter[fun (s: state) c center inside s region]) \
    search_join count";
const SCAN_PLAN: &str = "cities_rep feed \
    (fun (c: city) states_rep feed filter[fun (s: state) c center inside s region]) \
    search_join count";

fn bench_spatial_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("spatial_join");
    group.sample_size(10);
    for n_cities in [100usize, 400, 1000] {
        let mut db = spatial_db(n_cities, 12, 5);
        assert_eq!(
            as_count(&db.query(INDEX_PLAN).unwrap()),
            as_count(&db.query(SCAN_PLAN).unwrap())
        );
        group.bench_with_input(
            BenchmarkId::new("lsdtree-searchjoin", n_cities),
            &(),
            |b, _| b.iter(|| as_count(&db.query(INDEX_PLAN).unwrap())),
        );
        group.bench_with_input(
            BenchmarkId::new("scan-searchjoin", n_cities),
            &(),
            |b, _| b.iter(|| as_count(&db.query(SCAN_PLAN).unwrap())),
        );
        // The optimizer-produced plan for the model query (Section 5 rule).
        group.bench_with_input(
            BenchmarkId::new("optimized-model-join", n_cities),
            &(),
            |b, _| {
                b.iter(|| {
                    as_count(
                        &db.query("cities states join[center inside region] count")
                            .unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_spatial_join);
criterion_main!(benches);
