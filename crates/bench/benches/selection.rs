//! B1 — Selection: B-tree `range` vs full-scan `feed|filter` across
//! selectivities. The paper's premise for clustering indexes: the range
//! plan wins at low selectivity and converges to the scan at 100%.
//!
//! B1p — Parallel selection: the same `feed|filter|count` heap scan
//! under 1/2/4/8 intra-operator workers (workers = 1 is the serial
//! baseline). On a multi-core runner the parallel rows should show the
//! scan scaling with the worker count.

use bench::{as_count, heap_db, keyed_db};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_selection(c: &mut Criterion) {
    let n = 20_000usize;
    let mut db = keyed_db(n);
    let mut group = c.benchmark_group("selection");
    group.sample_size(10);
    for selectivity in [0.001, 0.01, 0.1, 0.5, 1.0] {
        let hi = ((n as f64) * selectivity) as i64 - 1;
        let range_q = format!("items_rep range[0, {hi}] count");
        let scan_q = format!("items_rep feed filter[k <= {hi}] count");
        // Sanity: identical answers.
        assert_eq!(
            as_count(&db.query(&range_q).unwrap()),
            as_count(&db.query(&scan_q).unwrap())
        );
        group.bench_with_input(
            BenchmarkId::new("btree-range", selectivity),
            &range_q,
            |b, q| b.iter(|| as_count(&db.query(q).unwrap())),
        );
        group.bench_with_input(
            BenchmarkId::new("scan-filter", selectivity),
            &scan_q,
            |b, q| b.iter(|| as_count(&db.query(q).unwrap())),
        );
    }
    group.finish();
}

fn bench_parallel_selection(c: &mut Criterion) {
    let n = 100_000usize;
    let mut db = heap_db(n);
    let q = "hitems feed filter[k mod 7 = 0] count";
    db.set_parallelism(1);
    let expected = as_count(&db.query(q).unwrap());
    let mut group = c.benchmark_group("selection-parallel");
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        db.set_parallelism(workers);
        // Sanity: every worker count produces the serial answer.
        assert_eq!(as_count(&db.query(q).unwrap()), expected);
        group.bench_with_input(
            BenchmarkId::new("scan-filter-count", workers),
            &(),
            |b, _| b.iter(|| as_count(&db.query(q).unwrap())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_selection, bench_parallel_selection);
criterion_main!(benches);
