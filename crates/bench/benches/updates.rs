//! B5 — Update functions (Section 6) on the clustering B-tree:
//! single inserts, bulk stream_insert, delete-by-stream, and the
//! key-update `re_insert` path.

use bench::{as_count, item_tuples, keyed_db};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("updates");
    group.sample_size(10);

    group.bench_function("insert-1000", |b| {
        b.iter(|| {
            let mut db = keyed_db(0);
            db.bulk_insert("items_rep", item_tuples(1000)).unwrap();
            as_count(&db.query("items_rep feed count").unwrap())
        })
    });

    group.bench_function("model-delete-10pct-of-5000", |b| {
        b.iter(|| {
            let mut db = keyed_db(5000);
            db.run("update items := delete(items, fun (t: item) t k < 500);")
                .unwrap();
            as_count(&db.query("items_rep feed count").unwrap())
        })
    });

    group.bench_function("key-update-reinsert-10pct-of-5000", |b| {
        b.iter(|| {
            let mut db = keyed_db(5000);
            db.run(
                "update items := modify(items, fun (t: item) t k < 500, k, fun (t: item) t k + 10000);",
            )
            .unwrap();
            as_count(&db.query("items_rep range_from[10000] count").unwrap())
        })
    });

    group.bench_function("nonkey-modify-10pct-of-5000", |b| {
        b.iter(|| {
            let mut db = keyed_db(5000);
            db.run(
                r#"update items := modify(items, fun (t: item) t k < 500, payload, fun (t: item) "updated");"#,
            )
            .unwrap();
            as_count(&db.query(r#"items_rep feed filter[payload = "updated"] count"#).unwrap())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_updates);
criterion_main!(benches);
