//! B4 — Optimizer cost: rule matching and rewriting for the three plan
//! shapes (indexable selection, generic selection, spatial join), and
//! the re-check overhead that makes every rewrite type-safe.

use bench::spatial_db;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_optimize(c: &mut Criterion) {
    let mut db = spatial_db(50, 4, 9);
    let mut group = c.benchmark_group("optimize");
    group.bench_function("select-to-exactmatch", |b| {
        b.iter(|| db.explain("cities select[pop = 500]").unwrap().plan.len())
    });
    group.bench_function("select-to-scan", |b| {
        b.iter(|| {
            db.explain(r#"cities select[cname = "city1"]"#)
                .unwrap()
                .plan
                .len()
        })
    });
    group.bench_function("spatial-join-rule", |b| {
        b.iter(|| {
            db.explain("cities states join[center inside region]")
                .unwrap()
                .plan
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_optimize, bench_ruleset_scaling);
criterion_main!(benches);

/// Ablation: optimizer cost as the rule set grows with never-matching
/// rules (rule_attempts scale linearly; wall time should too).
fn bench_ruleset_scaling(c: &mut Criterion) {
    use sos_optimizer::{parse_rules, RuleStep};
    let mut group = c.benchmark_group("optimize-ablation");
    for extra in [0usize, 32, 128] {
        let mut db = bench::spatial_db(20, 3, 11);
        // Pad the optimizer with inert rules referencing an operator that
        // never appears.
        let mut padding = String::new();
        for i in 0..extra {
            padding.push_str(&format!(
                "rule pad{i}: lhs never_used_operator_{i}(x); rhs x;\n"
            ));
        }
        if !padding.is_empty() {
            let rules = parse_rules(&padding).unwrap();
            db.add_rule_step(RuleStep::exhaustive("padding", rules))
                .unwrap();
        }
        group.bench_function(format!("select-plan-with-{extra}-extra-rules"), |b| {
            b.iter(|| db.explain("cities select[pop = 500]").unwrap().plan.len())
        });
    }
    group.finish();
}
