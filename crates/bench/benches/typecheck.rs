//! B3 — Parse + second-order type checking throughput as query size
//! grows: the checker resolves one polymorphic operator per pipeline
//! stage, so cost should scale roughly linearly in term size.

use bench::{filter_chain, keyed_db};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_typecheck(c: &mut Criterion) {
    let mut db = keyed_db(10); // tiny data: we measure the front-end
    db.set_optimizer_enabled(false);
    let mut group = c.benchmark_group("typecheck");
    for depth in [1usize, 4, 16, 64] {
        let q = filter_chain(depth);
        group.bench_with_input(BenchmarkId::new("parse+check", depth), &q, |b, q| {
            // explain parses, checks and optimizes (optimizer disabled)
            // without executing.
            b.iter(|| db.explain(q).unwrap().plan.len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_typecheck);
criterion_main!(benches);
