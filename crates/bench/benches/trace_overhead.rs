//! Tracing overhead gate.
//!
//! Phase tracing is off by default and must stay near-free: a disabled
//! `Tracer` costs one relaxed atomic load per phase and never reads the
//! clock. This bench times the same query pipeline with tracing off and
//! on; `TRACE_OVERHEAD_SMOKE=1` switches to a quick gated run (used by
//! CI) that asserts tracing on stays within 2x of tracing off plus a
//! fixed noise allowance.

use bench::keyed_db;
use criterion::{black_box, Criterion};
use sos_system::Database;
use std::time::Instant;

const QUERY: &str = "items_rep range[0, 199] count";

fn bench_trace_overhead(c: &mut Criterion) {
    let mut db = keyed_db(2_000);
    let mut group = c.benchmark_group("trace-overhead");
    db.set_tracing(false);
    group.bench_function("tracing-off", |b| {
        b.iter(|| db.query(QUERY).unwrap());
    });
    db.set_tracing(true);
    group.bench_function("tracing-on", |b| {
        b.iter(|| db.query(QUERY).unwrap());
    });
    group.finish();
}

/// Median per-iteration nanoseconds over `samples` batches.
fn median_nanos(db: &mut Database, samples: usize, iters: usize) -> u64 {
    let mut times: Vec<u64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(db.query(QUERY).unwrap());
            }
            (start.elapsed().as_nanos() as u64) / iters as u64
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn smoke() {
    let mut db = keyed_db(2_000);
    // Warm the pool and the plan path before timing anything.
    db.query(QUERY).unwrap();

    db.set_tracing(false);
    let off = median_nanos(&mut db, 9, 20);
    db.set_tracing(true);
    let on = median_nanos(&mut db, 9, 20);
    assert!(
        db.metrics().phases.total_nanos() > 0,
        "tracing recorded spans"
    );

    println!("trace-overhead smoke: off {off}ns/iter, on {on}ns/iter");
    // Generous gate: the span bookkeeping is four clock reads and a few
    // atomics per statement, so 2x + 50µs of scheduler noise catches a
    // real regression without flaking on loaded machines.
    let limit = off * 2 + 50_000;
    assert!(
        on <= limit,
        "tracing-on per-iter time {on}ns exceeds the gate {limit}ns (off: {off}ns)"
    );
}

fn main() {
    if std::env::var("TRACE_OVERHEAD_SMOKE").is_ok() {
        smoke();
        return;
    }
    let mut c = Criterion::default();
    bench_trace_overhead(&mut c);
}
