//! Partition-wise parallel execution gate.
//!
//! Feeding a partitioned relation hands the parallel drain one scan
//! unit per partition, so a selection over a hash(8) layout at 4
//! workers must beat the same pipeline run serially. This bench times
//! the selection across layouts (single vs hash8) and worker counts,
//! and one CI smoke gates regressions:
//!
//! * `PARTITION_SPEEDUP_SMOKE=1` — on a host with >= 4 cores the
//!   partitioned 4-worker selection must run at least 2x faster than
//!   the serial drain; on smaller hosts (where parallel workers just
//!   time-slice one CPU) it only asserts the parallel path is not a
//!   pathological regression over the serial one.

use bench::{as_count, heap_db};
use criterion::{black_box, Criterion};
use sos_system::{Database, PartMethod, PartSpec};
use std::time::Instant;

const QUERY: &str = "hitems feed filter[k mod 7 = 0] count";

fn partitioned_heap_db(n: usize, parts: usize) -> Database {
    let mut db = heap_db(n);
    db.partition_object(
        "hitems",
        PartSpec {
            attr: sos_core::Symbol::new("k"),
            method: PartMethod::Hash { parts },
        },
    )
    .expect("partition hitems");
    db
}

fn bench_partition_speedup(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition-speedup");
    for parts in [0usize, 8] {
        let mut db = if parts == 0 {
            heap_db(100_000)
        } else {
            partitioned_heap_db(100_000, parts)
        };
        db.set_batch_size(1024);
        let layout = if parts == 0 { "single" } else { "hash8" };
        for workers in [1usize, 2, 4] {
            db.set_parallelism(workers);
            group.bench_function(format!("selection-{layout}-workers-{workers}"), |b| {
                b.iter(|| db.query(QUERY).unwrap());
            });
        }
    }
    group.finish();
}

/// Median per-iteration nanoseconds over `samples` batches.
fn median_nanos(db: &mut Database, query: &str, samples: usize, iters: usize) -> u64 {
    let mut times: Vec<u64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(db.query(query).unwrap());
            }
            (start.elapsed().as_nanos() as u64) / iters as u64
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn smoke() {
    let mut db = partitioned_heap_db(60_000, 8);
    db.set_batch_size(1024);
    // Warm the pool and the plan path before timing anything.
    assert_eq!(as_count(&db.query(QUERY).unwrap()), 8572);

    db.set_parallelism(1);
    let serial = median_nanos(&mut db, QUERY, 7, 3);
    db.set_parallelism(4);
    let parallel = median_nanos(&mut db, QUERY, 7, 3);

    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!(
        "partition-speedup smoke: serial {serial}ns/iter, parallel {parallel}ns/iter ({cores} core(s))"
    );
    if cores >= 4 {
        // The acceptance floor: one scan unit per partition must buy at
        // least 2x on a host that can actually run 4 workers at once.
        let limit = serial / 2 + 200_000;
        assert!(
            parallel <= limit,
            "partitioned 4-worker selection {parallel}ns misses the 2x gate {limit}ns (serial: {serial}ns)"
        );
    } else {
        // Workers time-slice one CPU: spawning them costs real
        // scheduling overhead, so only gate against a pathological
        // regression.
        let limit = serial + serial / 4 + 500_000;
        assert!(
            parallel <= limit,
            "partitioned 4-worker selection {parallel}ns regresses past the serial drain {limit}ns (serial: {serial}ns)"
        );
    }
}

fn main() {
    if std::env::var("PARTITION_SPEEDUP_SMOKE").is_ok() {
        smoke();
        return;
    }
    let mut c = Criterion::default();
    bench_partition_speedup(&mut c);
}
