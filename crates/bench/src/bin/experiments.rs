//! Regenerates every experiment row recorded in EXPERIMENTS.md:
//! correctness of each reproduced section, plus the cost-shape tables
//! (page touches and wall time) that the criterion benches measure as
//! wall time only.
//!
//! ```sh
//! cargo run --release -p bench --bin experiments
//! ```

use bench::{as_count, heap_db, item_tuples, keyed_db, spatial_db};
use sos_storage::{DiskManager, FileDisk, SyncPolicy, Wal, WalOptions, PAGE_SIZE};
use sos_system::{Database, DurabilityConfig, PartMethod, PartSpec};
use std::sync::{Arc, Barrier};
use std::time::Instant;

fn main() {
    let large = std::env::args().any(|a| a == "--large");
    if std::env::args().any(|a| a == "--json") {
        println!("{}", pr10_json(large));
        return;
    }
    println!("Second-Order Signature — experiment harness");
    println!("===========================================\n");
    e1_e3();
    f1();
    e4_e5_b1();
    b2();
    e6();
    e7_b5();
    b3_b4();
    b7();
    b9();
    e9_extensions();
    println!("\nall experiments completed");
}

fn check(name: &str, ok: bool) {
    println!("  [{}] {name}", if ok { "ok" } else { "FAIL" });
    assert!(ok, "{name}");
}

/// E1–E3: type systems, operators, programs.
fn e1_e3() {
    println!("E1–E3: type systems, polymorphic operators, programs");
    let mut db = Database::builder().build();
    db.run(
        r#"
        type city = tuple(<(name, string), (pop, int), (country, string)>);
        type city_rel = rel(city);
        create cities : city_rel;
        update cities := insert(cities, mktuple[(name, "Hagen"), (pop, 190000), (country, "Germany")]);
        update cities := insert(cities, mktuple[(name, "Paris"), (pop, 2100000), (country, "France")]);
        create french_cities : ( -> city_rel);
        update french_cities := fun () cities select[country = "France"];
        create cities_in : (string -> city_rel);
        update cities_in := fun (c: string) cities select[country = c];
    "#,
    )
    .unwrap();
    check(
        "relational model types and program (Sec 2.4)",
        as_count(&db.query("cities select[pop > 1000000] count").unwrap()) == 1,
    );
    check(
        "views as function objects",
        as_count(&db.query("french_cities count").unwrap()) == 1,
    );
    check(
        "parameterized views",
        as_count(&db.query(r#"cities_in ("Germany") count"#).unwrap()) == 1,
    );
    let mut db2 = Database::builder().build();
    db2.load_spec("kinds NREL\nmodel cons nrel : (ident x (DATA | NREL))+ -> NREL")
        .unwrap();
    check(
        "nested-relational model loads as a specification (Sec 2.1)",
        db2.run("create books : nrel(<(title, string), (authors, nrel(<(name, string)>))>);")
            .is_ok(),
    );
    println!();
}

/// F1: Figure 1 pattern matching, via the replace operator.
fn f1() {
    println!("F1: Figure 1 term-tree pattern matching");
    let mut db = Database::builder().build();
    db.run(
        r#"
        type person = tuple(<(name, string), (age, int)>);
        create people : srel(person);
    "#,
    )
    .unwrap();
    let ok = db
        .explain("people feed replace[age, fun (p: person) p age + 1] count")
        .is_ok();
    let bad = db
        .explain("people feed replace[height, fun (p: person) 1] count")
        .is_err();
    check(
        "stream(tuple(list)) pattern binds and constrains",
        ok && bad,
    );
    println!();
}

/// E4/E5/B1: representation level; selection cost-shape table.
fn e4_e5_b1() {
    println!("E4/E5/B1: selection — B-tree range vs scan (N = 50k)");
    let n = 50_000usize;
    let mut db = keyed_db(n);
    println!(
        "  {:<12} {:>14} {:>14} {:>12} {:>12}",
        "selectivity", "range pages", "scan pages", "range ms", "scan ms"
    );
    for selectivity in [0.001f64, 0.01, 0.1, 0.5, 1.0] {
        let hi = ((n as f64) * selectivity) as i64 - 1;
        let range_q = format!("items_rep range[0, {hi}] count");
        let scan_q = format!("items_rep feed filter[k <= {hi}] count");

        db.reset_metrics();
        let t = Instant::now();
        let a = as_count(&db.query(&range_q).unwrap());
        let range_ms = t.elapsed().as_secs_f64() * 1000.0;
        let range_pages = db.metrics().pool.logical_reads;

        db.reset_metrics();
        let t = Instant::now();
        let b = as_count(&db.query(&scan_q).unwrap());
        let scan_ms = t.elapsed().as_secs_f64() * 1000.0;
        let scan_pages = db.metrics().pool.logical_reads;

        assert_eq!(a, b, "plans must agree at selectivity {selectivity}");
        println!(
            "  {selectivity:<12} {range_pages:>14} {scan_pages:>14} {range_ms:>12.2} {scan_ms:>12.2}"
        );
    }
    println!();
}

/// B2: spatial join sweep.
fn b2() {
    println!("B2: spatial join — LSD-tree search_join vs scan search_join (grid 12x12)");
    println!(
        "  {:<10} {:>8} {:>14} {:>14} {:>12} {:>12}",
        "cities", "pairs", "index pages", "scan pages", "index ms", "scan ms"
    );
    for n_cities in [100usize, 400, 1000] {
        let mut db = spatial_db(n_cities, 12, 5);
        let index_plan = "cities states join[center inside region] count";
        let scan_plan = "cities_rep feed \
            (fun (c: city) states_rep feed filter[fun (s: state) c center inside s region]) \
            search_join count";

        db.reset_metrics();
        let t = Instant::now();
        let a = as_count(&db.query(index_plan).unwrap());
        let index_ms = t.elapsed().as_secs_f64() * 1000.0;
        let index_pages = db.metrics().pool.logical_reads;

        db.reset_metrics();
        let t = Instant::now();
        let b = as_count(&db.query(scan_plan).unwrap());
        let scan_ms = t.elapsed().as_secs_f64() * 1000.0;
        let scan_pages = db.metrics().pool.logical_reads;

        assert_eq!(a, b);
        println!(
            "  {n_cities:<10} {a:>8} {index_pages:>14} {scan_pages:>14} {index_ms:>12.2} {scan_ms:>12.2}"
        );
    }
    println!();
}

/// E6: the optimizer's plans.
fn e6() {
    println!("E6: optimization rules (Section 5)");
    let mut db = spatial_db(100, 4, 3);
    let plan = db.explain("cities select[pop = 500]").unwrap();
    check(
        "select on key -> exactmatch",
        plan.plan().contains("exactmatch(cities_rep"),
    );
    db.reset_metrics();
    let report = db
        .explain("cities states join[center inside region]")
        .unwrap();
    check(
        "geometric join -> point_search search_join (the Section 5 rule)",
        report.plan().contains("point_search(states_rep") && report.plan().contains("search_join"),
    );
    let stats = db.metrics().optimizer;
    println!(
        "  optimizer: {} rewrites ({} traced), {} rule attempts for the join plan",
        stats.rewrites,
        report.rewrites.len(),
        stats.rule_attempts
    );
    println!();
}

/// E7/B5: update translation and throughput.
fn e7_b5() {
    println!("E7/B5: update functions (Section 6), N = 20k");
    let n = 20_000usize;
    let time = |db: &mut Database, stmt: &str| {
        let t = Instant::now();
        db.run(stmt).unwrap();
        t.elapsed().as_secs_f64() * 1000.0
    };

    let mut db = keyed_db(0);
    let t = Instant::now();
    db.bulk_insert("items_rep", item_tuples(n)).unwrap();
    let insert_ms = t.elapsed().as_secs_f64() * 1000.0;

    let delete_ms = time(
        &mut db,
        &format!(
            "update items := delete(items, fun (t: item) t k < {});",
            n / 10
        ),
    );
    let reinsert_ms = time(
        &mut db,
        &format!(
            "update items := modify(items, fun (t: item) t k >= {}, k, fun (t: item) t k - {});",
            9 * n / 10,
            n
        ),
    );
    let modify_ms = time(
        &mut db,
        r#"update items := modify(items, fun (t: item) t k < 0, payload, fun (t: item) "neg");"#,
    );
    println!(
        "  {:<34} {:>10.1} ms",
        format!("insert {n} tuples"),
        insert_ms
    );
    println!(
        "  {:<34} {:>10.1} ms",
        "model delete 10% (translated)", delete_ms
    );
    println!(
        "  {:<34} {:>10.1} ms",
        "key update 10% (re_insert)", reinsert_ms
    );
    println!(
        "  {:<34} {:>10.1} ms",
        "non-key modify (in situ)", modify_ms
    );
    check(
        "count preserved through the update sequence",
        as_count(&db.query("items_rep feed count").unwrap()) == (n - n / 10) as i64,
    );
    println!();
}

/// B7: join strategies on an equi-join.
fn b7() {
    println!("B7: equi-join — optimizer's hashjoin vs scan search_join (50 depts)");
    println!(
        "  {:<8} {:>8} {:>12} {:>12}",
        "emps", "pairs", "hash ms", "scan ms"
    );
    for n in [500usize, 2000, 8000] {
        let mut db = Database::builder().build();
        db.run(
            r#"
            type emp = tuple(<(ename, string), (dept, int)>);
            type dpt = tuple(<(dno, int), (dname, string)>);
            create emps : rel(emp);
            create depts : rel(dpt);
            create emps_rep : tidrel(emp);
            create depts_rep : tidrel(dpt);
            create rep : catalog(<ident, ident>);
            update rep := insert(rep, emps, emps_rep);
            update rep := insert(rep, depts, depts_rep);
        "#,
        )
        .unwrap();
        let emps: Vec<sos_exec::Value> = (0..n)
            .map(|i| {
                sos_exec::Value::tuple(vec![
                    sos_exec::Value::Str(format!("e{i}")),
                    sos_exec::Value::Int((i % 50) as i64),
                ])
            })
            .collect();
        let depts: Vec<sos_exec::Value> = (0..50)
            .map(|d| {
                sos_exec::Value::tuple(vec![
                    sos_exec::Value::Int(d as i64),
                    sos_exec::Value::Str(format!("d{d}")),
                ])
            })
            .collect();
        db.bulk_insert("emps_rep", emps).unwrap();
        db.bulk_insert("depts_rep", depts).unwrap();

        let t = Instant::now();
        let pairs = as_count(&db.query("emps depts join[dept = dno] count").unwrap());
        let hash_ms = t.elapsed().as_secs_f64() * 1000.0;
        let t = Instant::now();
        let pairs2 = as_count(
            &db.query(
                "emps_rep feed (fun (e: emp) depts_rep feed \
                 filter[fun (d: dpt) e dept = d dno]) search_join count",
            )
            .unwrap(),
        );
        let scan_ms = t.elapsed().as_secs_f64() * 1000.0;
        assert_eq!(pairs, pairs2);
        println!("  {n:<8} {pairs:>8} {hash_ms:>12.2} {scan_ms:>12.2}");
    }
    println!();
}

/// B9: durability — statements over a WAL-backed database survive an
/// unclean shutdown, and the commit fsync has a measured price.
fn b9() {
    println!("B9: durability (write-ahead logging, crash recovery)");
    let n = 100;
    let mut mem = Database::builder().build();
    mem.run(DURABLE_SCHEMA).unwrap();
    let mem_ms = timed_inserts(&mut mem, n);

    let dir = std::env::temp_dir().join(format!("sos-exp-b9-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut dur = Database::builder()
        .durability(DurabilityConfig::dir(&dir))
        .try_build()
        .unwrap();
    dur.run(DURABLE_SCHEMA).unwrap();
    let dur_ms = timed_inserts(&mut dur, n);
    let wal = dur.metrics().wal;
    drop(dur); // unclean: no checkpoint, no save — only the log survives

    let mut reopened = Database::builder()
        .durability(DurabilityConfig::dir(&dir))
        .try_build()
        .unwrap();
    let recovered = as_count(&reopened.query("items_rep feed count").unwrap());
    let info = *reopened.recovery_info().unwrap();
    drop(reopened);
    let _ = std::fs::remove_dir_all(&dir);

    check(
        "all committed statements survive the unclean shutdown",
        recovered == n as i64,
    );
    check(
        "recovery replayed logged page images",
        info.replayed_pages > 0,
    );
    println!(
        "  {n} insert statements: memory {mem_ms:>8.2} ms, durable {dur_ms:>8.2} ms \
         ({:.1}x, {} sync(s), {} KiB logged)",
        dur_ms / mem_ms.max(f64::MIN_POSITIVE),
        wal.syncs,
        wal.bytes / 1024
    );
    println!();
}

/// E9: engineering extensions — multi-attribute B-tree prefix search
/// and vacuum (B-tree rebuild).
fn e9_extensions() {
    println!("E9: extensions (mbtree prefix search, vacuum)");
    // mbtree: composite-key clustering with prefix queries.
    let mut db = Database::builder().build();
    db.run(
        r#"
        type order = tuple(<(country, string), (year, int), (amount, int)>);
        create orders : mbtree(order, <country, year>);
    "#,
    )
    .unwrap();
    let mut tuples = Vec::new();
    for c in ["DE", "FR", "IN", "US", "JP", "BR", "CN", "GB"] {
        for year in 1980..2020 {
            for k in 0..8 {
                tuples.push(sos_exec::Value::tuple(vec![
                    sos_exec::Value::Str(c.to_string()),
                    sos_exec::Value::Int(year),
                    sos_exec::Value::Int(year * 100 + k),
                ]));
            }
        }
    }
    db.bulk_insert("orders", tuples).unwrap();
    db.reset_metrics();
    let n = as_count(&db.query(r#"orders prefixmatch["FR"] count"#).unwrap());
    let prefix_pages = db.metrics().pool.logical_reads;
    db.reset_metrics();
    let n2 = as_count(
        &db.query(r#"orders feed filter[country = "FR"] count"#)
            .unwrap(),
    );
    let scan_pages = db.metrics().pool.logical_reads;
    assert_eq!(n, n2);
    println!("  prefixmatch[FR]: {n} tuples, {prefix_pages} pages (scan: {scan_pages} pages)");

    // vacuum: page reclamation after mass deletion.
    let mut db = keyed_db(20_000);
    db.run("update items := delete(items, fun (t: item) t k mod 50 != 0);")
        .unwrap();
    db.reset_metrics();
    db.query("items_rep feed count").unwrap();
    let before = db.metrics().pool.logical_reads;
    db.run("update items_rep := vacuum(items_rep);").unwrap();
    db.reset_metrics();
    db.query("items_rep feed count").unwrap();
    let after = db.metrics().pool.logical_reads;
    println!("  vacuum after deleting 98%: scan pages {before} -> {after}");
    println!();
}

/// B3/B4: front-end costs.
fn b3_b4() {
    println!("B3/B4: parse+check and optimize costs");
    let mut db = keyed_db(10);
    for depth in [1usize, 4, 16, 64] {
        let q = bench::filter_chain(depth);
        let t = Instant::now();
        let iters = 50;
        for _ in 0..iters {
            db.explain(&q).unwrap();
        }
        let per = t.elapsed().as_secs_f64() * 1000.0 / iters as f64;
        println!("  parse+check+optimize, chain depth {depth:>3}: {per:>8.3} ms");
    }
    let mut db = spatial_db(20, 3, 2);
    let t = Instant::now();
    let iters = 50;
    for _ in 0..iters {
        db.explain("cities states join[center inside region]")
            .unwrap();
    }
    let per = t.elapsed().as_secs_f64() * 1000.0 / iters as f64;
    println!("  spatial-join rule application:        {per:>8.3} ms");
}

// ---- `--json` mode: the PR3 batch-execution comparison ----

/// One engine configuration of the serial / parallel / batched matrix.
/// The two serial configs run back-to-back so the headline
/// batched-vs-tuple comparison sees the same machine state (the
/// parallel configs heat every core and disturb turbo clocks).
const PR3_CONFIGS: &[(&str, usize, usize)] = &[
    ("tuple", 1, 1),
    ("batched", 1024, 1),
    ("parallel", 1, 4),
    ("batched-parallel", 1024, 4),
];

/// Best wall time (ms) for `query` over a few samples.
fn pr3_ms(db: &mut Database, query: &str, samples: usize, iters: usize) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..iters {
            as_count(&db.query(query).unwrap());
        }
        best = best.min(t.elapsed().as_secs_f64() * 1000.0 / iters as f64);
    }
    best
}

fn pr3_workload(db: &mut Database, name: &str, query: &str, rows: usize) -> String {
    db.query(query).unwrap(); // warm the pool and plan path
    let mut configs = Vec::new();
    let mut by_name = std::collections::HashMap::new();
    for &(config, batch, workers) in PR3_CONFIGS {
        db.set_batch_size(batch);
        db.set_parallelism(workers);
        let ms = pr3_ms(db, query, 9, 3);
        by_name.insert(config, ms);
        configs.push(format!(
            r#"{{"config":"{config}","batch_size":{batch},"workers":{workers},"ms":{ms:.3},"rows_per_sec":{:.0}}}"#,
            rows as f64 / (ms / 1000.0)
        ));
    }
    db.set_batch_size(1);
    db.set_parallelism(1);
    let speedup = by_name["tuple"] / by_name["batched"];
    format!(
        r#"{{"workload":"{name}","query":"{}","rows":{rows},"configs":[{}],"batched_vs_tuple_speedup":{speedup:.2}}}"#,
        query.replace('"', "\\\""),
        configs.join(",")
    )
}

/// The JSON document committed as BENCH_PR3.json: selection, join and
/// stream workloads under every execution configuration.
fn pr3_json() -> String {
    let mut workloads = Vec::new();

    // Selection and full-scan count over the 100k-row heap relation.
    let mut db = heap_db(100_000);
    workloads.push(pr3_workload(&mut db, "count", "hitems feed count", 100_000));
    workloads.push(pr3_workload(
        &mut db,
        "selection",
        "hitems feed filter[k mod 7 = 0] count",
        100_000,
    ));
    workloads.push(pr3_workload(
        &mut db,
        "stream-materialize",
        "hitems feed consume",
        100_000,
    ));

    // Search join: 8000 outer tuples probing a 50-row inner per tuple.
    let mut db = Database::builder().build();
    db.run(
        r#"
        type emp = tuple(<(ename, string), (dept, int)>);
        type dpt = tuple(<(dno, int), (dname, string)>);
        create emps_rep : tidrel(emp);
        create depts_rep : tidrel(dpt);
    "#,
    )
    .unwrap();
    let emps: Vec<sos_exec::Value> = (0..8000)
        .map(|i| {
            sos_exec::Value::tuple(vec![
                sos_exec::Value::Str(format!("e{i}")),
                sos_exec::Value::Int((i % 50) as i64),
            ])
        })
        .collect();
    let depts: Vec<sos_exec::Value> = (0..50)
        .map(|d| {
            sos_exec::Value::tuple(vec![
                sos_exec::Value::Int(d as i64),
                sos_exec::Value::Str(format!("d{d}")),
            ])
        })
        .collect();
    db.bulk_insert("emps_rep", emps).unwrap();
    db.bulk_insert("depts_rep", depts).unwrap();
    workloads.push(pr3_workload(
        &mut db,
        "search-join",
        "emps_rep feed (fun (e: emp) depts_rep feed \
         filter[fun (d: dpt) e dept = d dno]) search_join count",
        8000,
    ));

    format!(
        "{{\"bench\":\"PR3 vectorized batch execution\",\"workloads\":[\n{}\n]}}",
        workloads.join(",\n")
    )
}

/// Static-analysis overhead: the full sos-lint pass (L001..L005) over
/// the built-in signature and rule set, per iteration. This is the
/// cost `strict_lint(true)` adds to a `load_spec`/`load_rules` call,
/// and what the `.lint` shell command pays.
fn lint_overhead_json() -> String {
    let sig = sos_system::builtin::builtin_signature();
    let opt = sos_system::rules::builtin_optimizer();
    let specs = sig.specs().len();
    let rules: usize = opt.steps.iter().map(|s| s.rules.len()).sum();
    // Warm up, and pin the invariant the suite relies on: the builtin
    // corpus lints clean.
    assert!(sos_lint::lint_all(&sig, &opt).is_empty());
    let iters = 100;
    let t = Instant::now();
    let mut diags = 0usize;
    for _ in 0..iters {
        diags += sos_lint::lint_spec(&sig).len();
        diags += sos_lint::lint_rules(&opt, &sig).len();
    }
    let ms = t.elapsed().as_secs_f64() * 1000.0 / iters as f64;
    format!(
        r#"{{"specs":{specs},"rules":{rules},"iterations":{iters},"diagnostics":{diags},"ms_per_full_pass":{ms:.4}}}"#
    )
}

/// The JSON document committed as BENCH_PR4.json: the PR3 execution
/// matrix plus the sos-lint overhead entry.
fn pr4_json() -> String {
    let pr3 = pr3_json();
    // Splice the lint entry into the PR3 document rather than nesting
    // it, so every workload stays at the same path as in BENCH_PR3.json.
    let body = pr3
        .strip_prefix("{\"bench\":\"PR3 vectorized batch execution\",")
        .expect("pr3_json prefix")
        .strip_suffix('}')
        .expect("pr3_json suffix");
    format!(
        "{{\"bench\":\"PR4 static analysis + batch execution\",\"lint_overhead\":{},{body}}}",
        lint_overhead_json()
    )
}

// ---- PR5: durability — the WAL overhead entry ----

const DURABLE_SCHEMA: &str = r#"
    type item = tuple(<(k, int), (payload, string)>);
    create items : rel(item);
    create items_rep : btree(item, k, int);
    create rep : catalog(<ident, ident>);
    update rep := insert(rep, items, items_rep);
"#;

/// Wall milliseconds for `n` single-tuple insert statements — each one
/// a separate statement, so over a durable database each one is a
/// separate commit (log append + fsync).
fn timed_inserts(db: &mut Database, n: usize) -> f64 {
    let t = Instant::now();
    for i in 0..n {
        db.run(&format!(
            r#"update items := insert(items, mktuple[(k, {i}), (payload, "p{i}")]);"#
        ))
        .expect("insert statement");
    }
    t.elapsed().as_secs_f64() * 1000.0
}

/// Durable vs in-memory update throughput on real files: the measured
/// price of the commit fsync and page-image logging, plus the WAL
/// traffic the workload generated and the cost of a checkpoint. The
/// number that matters is the *ratio*, so trials are paired — each one
/// times an in-memory run and a durable run back to back under the same
/// host conditions — and the pair with the lowest overhead factor is
/// reported (best of five, like [`pr3_ms`]; fsync latency spikes are
/// pure noise for a cost-shape table).
fn wal_overhead_json() -> String {
    let n = 200;
    let mut mem_ms = f64::MAX;
    let mut dur_ms = f64::MAX;
    let mut overhead = f64::MAX;
    let mut wal = Default::default();
    let mut checkpoint_ms = f64::MAX;
    for trial in 0..5 {
        let mut mem = Database::builder().build();
        mem.run(DURABLE_SCHEMA).expect("schema");
        let trial_mem_ms = timed_inserts(&mut mem, n);
        drop(mem);

        let dir =
            std::env::temp_dir().join(format!("sos-bench-wal-{}-{trial}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut dur = Database::builder()
            .durability(DurabilityConfig::dir(&dir))
            .try_build()
            .expect("durable open");
        dur.run(DURABLE_SCHEMA).expect("schema");
        let trial_dur_ms = timed_inserts(&mut dur, n);

        let trial_overhead = trial_dur_ms / trial_mem_ms.max(f64::MIN_POSITIVE);
        if trial_overhead < overhead {
            overhead = trial_overhead;
            mem_ms = trial_mem_ms;
            dur_ms = trial_dur_ms;
            wal = dur.metrics().wal;
        }
        let t = Instant::now();
        dur.checkpoint().expect("checkpoint");
        checkpoint_ms = checkpoint_ms.min(t.elapsed().as_secs_f64() * 1000.0);
        drop(dur);
        let _ = std::fs::remove_dir_all(&dir);
    }
    format!(
        r#"{{"statements":{n},"memory_ms":{mem_ms:.3},"durable_ms":{dur_ms:.3},"durable_ms_per_statement":{:.4},"overhead_factor":{overhead:.2},"wal_records":{},"wal_page_images":{},"wal_commits":{},"wal_bytes":{},"wal_syncs":{},"checkpoint_ms":{checkpoint_ms:.3}}}"#,
        dur_ms / n as f64,
        wal.records,
        wal.page_images,
        wal.commits,
        wal.bytes,
        wal.syncs
    )
}

/// The JSON document committed as BENCH_PR5.json: the PR4 document plus
/// the durability overhead entry.
fn pr5_json() -> String {
    let pr4 = pr4_json();
    let body = pr4
        .strip_prefix("{\"bench\":\"PR4 static analysis + batch execution\",")
        .expect("pr4_json prefix")
        .strip_suffix('}')
        .expect("pr4_json suffix");
    format!(
        "{{\"bench\":\"PR5 durability + static analysis + batch execution\",\"wal_overhead\":{},{body}}}",
        wal_overhead_json()
    )
}

// ---- PR6: expression compilation — compiled vs interpreted ----

/// One workload timed twice at the production batch width: expression
/// compiler off (every closure through the tree-walking interpreter)
/// then on (predicates and maps as batch bytecode).
fn compile_workload(db: &mut Database, name: &str, query: &str, rows: usize) -> String {
    db.query(query).unwrap(); // warm the pool and plan path
    db.set_batch_size(1024);
    db.set_parallelism(1);
    db.set_compile_exprs(false);
    let interp_ms = pr3_ms(db, query, 9, 3);
    db.set_compile_exprs(true);
    let compiled_ms = pr3_ms(db, query, 9, 3);
    db.set_batch_size(1);
    let speedup = interp_ms / compiled_ms.max(f64::MIN_POSITIVE);
    format!(
        r#"{{"workload":"{name}","query":"{}","rows":{rows},"batch_size":1024,"interpreted_ms":{interp_ms:.3},"compiled_ms":{compiled_ms:.3},"compiled_vs_interpreted_speedup":{speedup:.2}}}"#,
        query.replace('"', "\\\"")
    )
}

/// The two B10 workloads: the PR3 selection pipeline and the PR3
/// search join, compiled vs interpreted.
fn compile_speedup_json() -> String {
    let mut db = heap_db(100_000);
    let selection = compile_workload(
        &mut db,
        "selection",
        "hitems feed filter[k mod 7 = 0] count",
        100_000,
    );

    let mut db = Database::builder().build();
    db.run(
        r#"
        type emp = tuple(<(ename, string), (dept, int)>);
        type dpt = tuple(<(dno, int), (dname, string)>);
        create emps_rep : tidrel(emp);
        create depts_rep : tidrel(dpt);
    "#,
    )
    .unwrap();
    let emps: Vec<sos_exec::Value> = (0..8000)
        .map(|i| {
            sos_exec::Value::tuple(vec![
                sos_exec::Value::Str(format!("e{i}")),
                sos_exec::Value::Int((i % 50) as i64),
            ])
        })
        .collect();
    let depts: Vec<sos_exec::Value> = (0..50)
        .map(|d| {
            sos_exec::Value::tuple(vec![
                sos_exec::Value::Int(d as i64),
                sos_exec::Value::Str(format!("d{d}")),
            ])
        })
        .collect();
    db.bulk_insert("emps_rep", emps).unwrap();
    db.bulk_insert("depts_rep", depts).unwrap();
    let search_join = compile_workload(
        &mut db,
        "search-join",
        "emps_rep feed (fun (e: emp) depts_rep feed \
         filter[fun (d: dpt) e dept = d dno]) search_join count",
        8000,
    );
    format!("[{selection},{search_join}]")
}

/// The JSON document committed as BENCH_PR6.json: the PR5 document plus
/// the compiled-vs-interpreted entry.
fn pr6_json() -> String {
    let pr5 = pr5_json();
    let body = pr5
        .strip_prefix("{\"bench\":\"PR5 durability + static analysis + batch execution\",")
        .expect("pr5_json prefix")
        .strip_suffix('}')
        .expect("pr5_json suffix");
    format!(
        "{{\"bench\":\"PR6 expression compilation + durability + static analysis + batch execution\",\"compile_speedup\":{},{body}}}",
        compile_speedup_json()
    )
}

// ---- PR7: group commit — coalesced fsyncs under concurrency ----

/// Open a WAL over real files in a fresh temp dir (the data disk only
/// anchors recovery; the committers never touch it).
fn group_commit_wal(tag: &str, policy: SyncPolicy) -> (Arc<Wal>, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("sos-bench-gc-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench dir");
    let data: Arc<dyn DiskManager> =
        Arc::new(FileDisk::open(&dir.join("pages.db")).expect("data disk"));
    let wal_disk: Arc<dyn DiskManager> =
        Arc::new(FileDisk::open(&dir.join("wal.log")).expect("wal disk"));
    let (wal, _, _) = Wal::recover_with(
        wal_disk,
        &data,
        WalOptions {
            policy,
            ..WalOptions::default()
        },
    )
    .expect("wal open");
    (Arc::new(wal), dir)
}

/// `threads` committers × `per_thread` single-page commits racing from
/// a barrier; wall milliseconds from the barrier to the last join.
fn group_commit_run(wal: &Arc<Wal>, threads: usize, per_thread: usize) -> f64 {
    let barrier = Arc::new(Barrier::new(threads + 1));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let wal = Arc::clone(wal);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..per_thread {
                    let txid = wal.alloc_txid();
                    let image = [(t + i) as u8; PAGE_SIZE];
                    wal.append_page_image(txid, (t * per_thread + i) as u32, &image);
                    wal.commit(txid, None).expect("commit");
                }
            })
        })
        .collect();
    barrier.wait();
    let started = Instant::now();
    for h in handles {
        h.join().expect("committer thread");
    }
    started.elapsed().as_secs_f64() * 1000.0
}

/// The concurrency sweep: N committing threads, per-commit fsync vs the
/// coalescing group-commit writer, on real files. The commit count is
/// held constant across the sweep so rows compare like for like.
fn group_commit_json() -> String {
    const TOTAL_COMMITS: usize = 320;
    let mut rows = Vec::new();
    for threads in [1usize, 4, 16, 64] {
        let per_thread = TOTAL_COMMITS / threads;
        let mut measured = Vec::new();
        for (label, policy) in [
            ("percommit", SyncPolicy::PerCommit),
            ("group", SyncPolicy::DEFAULT_GROUP),
        ] {
            let (wal, dir) = group_commit_wal(&format!("{label}-{threads}"), policy);
            // Best of three runs against the same log, like pr3_ms.
            let mut best = f64::MAX;
            for _ in 0..3 {
                best = best.min(group_commit_run(&wal, threads, per_thread));
            }
            let stats = wal.stats();
            assert_eq!(
                wal.durable_lsn(),
                wal.appended_lsn(),
                "pipeline did not quiesce"
            );
            measured.push((best, stats.commits, stats.syncs));
            drop(wal);
            let _ = std::fs::remove_dir_all(&dir);
        }
        let (per_ms, _, per_syncs) = measured[0];
        let (group_ms, group_commits, group_syncs) = measured[1];
        let speedup = per_ms / group_ms.max(f64::MIN_POSITIVE);
        rows.push(format!(
            r#"{{"threads":{threads},"commits_per_policy":{TOTAL_COMMITS},"percommit_ms":{per_ms:.3},"percommit_syncs":{per_syncs},"group_ms":{group_ms:.3},"group_syncs":{group_syncs},"group_syncs_per_commit":{:.4},"group_vs_percommit_speedup":{speedup:.2}}}"#,
            group_syncs as f64 / group_commits as f64
        ));
    }
    format!("[{}]", rows.join(","))
}

/// The JSON document committed as BENCH_PR7.json: the PR6 document plus
/// the group-commit concurrency sweep.
fn pr7_json() -> String {
    let pr6 = pr6_json();
    let body = pr6
        .strip_prefix("{\"bench\":\"PR6 expression compilation + durability + static analysis + batch execution\",")
        .expect("pr6_json prefix")
        .strip_suffix('}')
        .expect("pr6_json suffix");
    format!(
        "{{\"bench\":\"PR7 group commit + expression compilation + durability + static analysis + batch execution\",\"group_commit\":{},{body}}}",
        group_commit_json()
    )
}

// ---- PR8: partitioned storage — partition-wise parallel execution,
// partition pruning, co-partitioned joins, and parallel bulk load ----

fn hash_spec(attr: &str, parts: usize) -> PartSpec {
    PartSpec {
        attr: sos_core::Symbol::new(attr),
        method: PartMethod::Hash { parts },
    }
}

/// Scan and selection over the 100k-row heap relation: unpartitioned vs
/// hash(8) on `k`, serial vs 4 workers. The headline number is the
/// partitioned 4-worker configuration against the unpartitioned serial
/// drain — on a multi-core host each partition is one scan unit.
fn partition_scan_json() -> String {
    let n = 100_000usize;
    let mut workloads = Vec::new();
    for (name, query) in [
        ("count", "hitems feed count"),
        ("selection", "hitems feed filter[k mod 7 = 0] count"),
    ] {
        let mut configs = Vec::new();
        let mut serial_ms = f64::MAX;
        let mut part_par_ms = f64::MAX;
        for partitioned in [false, true] {
            let mut db = heap_db(n);
            if partitioned {
                db.partition_object("hitems", hash_spec("k", 8))
                    .expect("partition hitems");
            }
            db.set_batch_size(1024);
            db.query(query).unwrap(); // warm the pool and plan path
            for workers in [1usize, 4] {
                db.set_parallelism(workers);
                let ms = pr3_ms(&mut db, query, 7, 3);
                if !partitioned && workers == 1 {
                    serial_ms = ms;
                }
                if partitioned && workers == 4 {
                    part_par_ms = ms;
                }
                configs.push(format!(
                    r#"{{"layout":"{}","workers":{workers},"ms":{ms:.3},"rows_per_sec":{:.0}}}"#,
                    if partitioned { "hash8" } else { "single" },
                    n as f64 / (ms / 1000.0)
                ));
            }
        }
        workloads.push(format!(
            r#"{{"workload":"{name}","query":"{}","rows":{n},"configs":[{}],"partitioned_parallel_vs_serial_speedup":{:.2}}}"#,
            query.replace('"', "\\\""),
            configs.join(","),
            serial_ms / part_par_ms.max(f64::MIN_POSITIVE)
        ));
    }
    format!("[{}]", workloads.join(","))
}

/// Partition pruning on a hash(8)-partitioned clustering B-tree. The
/// two queries return the same tuples: `exactmatch[k]` routes to the
/// one candidate partition (7 pruned), while `range[k, k]` carries
/// range bounds a hash layout cannot prune, so it descends all 8
/// per-partition trees. The page-touch gap is pruning's contribution.
fn pruning_json() -> String {
    let n = 50_000usize;
    let key = 12_345i64;
    let mut db = keyed_db(n);
    db.partition_object("items_rep", hash_spec("k", 8))
        .expect("partition items_rep");

    let pruned_q = format!("items_rep exactmatch[{key}] count");
    let unpruned_q = format!("items_rep range[{key}, {key}] count");
    db.query(&pruned_q).unwrap(); // warm
    db.query(&unpruned_q).unwrap();

    db.reset_metrics();
    let a = as_count(&db.query(&pruned_q).unwrap());
    let pruned_pages = db.metrics().pool.logical_reads;
    let em = db.op_stats("exactmatch").expect("exactmatch stats");

    db.reset_metrics();
    let b = as_count(&db.query(&unpruned_q).unwrap());
    let unpruned_pages = db.metrics().pool.logical_reads;
    let rg = db.op_stats("range").expect("range stats");

    assert_eq!(a, b, "pruned and unpruned plans must agree");
    format!(
        r#"{{"rows":{n},"parts":8,"matches":{a},"exactmatch_partitions":{},"exactmatch_pruned":{},"exactmatch_pages":{pruned_pages},"range_partitions":{},"range_pruned":{},"range_pages":{unpruned_pages},"pages_saved_factor":{:.2}}}"#,
        em.partitions,
        em.partitions_pruned,
        rg.partitions,
        rg.partitions_pruned,
        unpruned_pages as f64 / (pruned_pages as f64).max(1.0)
    )
}

/// The PR3 equi-join schema: 8000 employees over 50 departments, both
/// heap-backed.
fn equijoin_db() -> Database {
    let mut db = Database::builder().build();
    db.run(
        r#"
        type emp = tuple(<(ename, string), (dept, int)>);
        type dpt = tuple(<(dno, int), (dname, string)>);
        create emps_rep : tidrel(emp);
        create depts_rep : tidrel(dpt);
    "#,
    )
    .unwrap();
    let emps: Vec<sos_exec::Value> = (0..8000)
        .map(|i| {
            sos_exec::Value::tuple(vec![
                sos_exec::Value::Str(format!("e{i}")),
                sos_exec::Value::Int((i % 50) as i64),
            ])
        })
        .collect();
    let depts: Vec<sos_exec::Value> = (0..50)
        .map(|d| {
            sos_exec::Value::tuple(vec![
                sos_exec::Value::Int(d as i64),
                sos_exec::Value::Str(format!("d{d}")),
            ])
        })
        .collect();
    db.bulk_insert("emps_rep", emps).unwrap();
    db.bulk_insert("depts_rep", depts).unwrap();
    db
}

/// Hashjoin over co-partitioned inputs: both sides hash(4) on the join
/// attribute, so the join runs partition-by-partition with no
/// repartitioning — each of the 4 build+probe units is independent.
fn copartition_join_json() -> String {
    let query = "emps_rep feed depts_rep feed hashjoin[dept, dno] count";
    let mut configs = Vec::new();
    let mut single_ms = f64::MAX;
    let mut copart_ms = f64::MAX;
    let mut copart_partitions = 0u64;
    for copartitioned in [false, true] {
        let mut db = equijoin_db();
        if copartitioned {
            db.partition_object("emps_rep", hash_spec("dept", 4))
                .expect("partition emps");
            db.partition_object("depts_rep", hash_spec("dno", 4))
                .expect("partition depts");
        }
        db.query(query).unwrap(); // warm
        for workers in [1usize, 4] {
            db.set_parallelism(workers);
            let ms = pr3_ms(&mut db, query, 7, 3);
            if !copartitioned && workers == 1 {
                single_ms = ms;
            }
            if copartitioned && workers == 4 {
                copart_ms = ms;
                db.reset_metrics();
                db.query(query).unwrap();
                copart_partitions = db.op_stats("hashjoin").map_or(0, |s| s.partitions);
            }
            configs.push(format!(
                r#"{{"layout":"{}","workers":{workers},"ms":{ms:.3}}}"#,
                if copartitioned {
                    "copart-hash4"
                } else {
                    "single"
                }
            ));
        }
    }
    assert!(
        copart_partitions > 0,
        "co-partitioned hashjoin fast path did not engage"
    );
    format!(
        r#"{{"query":"{}","outer_rows":8000,"inner_rows":50,"configs":[{}],"copartitioned_partitions_per_join":{},"copartitioned_vs_single_speedup":{:.2}}}"#,
        query.replace('"', "\\\""),
        configs.join(","),
        copart_partitions,
        single_ms / copart_ms.max(f64::MIN_POSITIVE)
    )
}

/// The PR3 search join with a partitioned outer: feeding a hash(4)
/// relation gives `search_join` one probe unit per partition.
fn search_join_parallel_json() -> String {
    let query = "emps_rep feed (fun (e: emp) depts_rep feed \
         filter[fun (d: dpt) e dept = d dno]) search_join count";
    let mut db = equijoin_db();
    db.partition_object("emps_rep", hash_spec("dept", 4))
        .expect("partition emps");
    db.set_batch_size(1024);
    db.query(query).unwrap(); // warm
    db.set_parallelism(1);
    let serial_ms = pr3_ms(&mut db, query, 7, 3);
    db.set_parallelism(4);
    let par_ms = pr3_ms(&mut db, query, 7, 3);
    format!(
        r#"{{"query":"{}","outer_rows":8000,"serial_ms":{serial_ms:.3},"parallel_ms":{par_ms:.3},"workers":4,"parallel_vs_serial_speedup":{:.2}}}"#,
        query.replace('"', "\\\""),
        serial_ms / par_ms.max(f64::MIN_POSITIVE)
    )
}

/// Bulk load into a hash(8)-partitioned clustering B-tree over a
/// WAL-backed database: the whole load is one statement, partitions
/// load in parallel under `SyncPolicy::NoSync`, and one closing
/// checkpoint makes the result durable. Serial vs 4-worker, plus the
/// unpartitioned load as the baseline.
fn bulk_load_json() -> String {
    let n = 100_000usize;
    let mut rows = Vec::new();
    for (layout, parts, workers) in [("single", 0usize, 1usize), ("hash8", 8, 1), ("hash8", 8, 4)] {
        let dir = std::env::temp_dir().join(format!(
            "sos-bench-bulk-{}-{layout}-{workers}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut db = Database::builder()
            .durability(DurabilityConfig::dir(&dir))
            .try_build()
            .expect("durable open");
        db.run(DURABLE_SCHEMA).expect("schema");
        if parts > 0 {
            db.partition_object("items_rep", hash_spec("k", parts))
                .expect("partition items_rep");
        }
        db.set_parallelism(workers);
        let t = Instant::now();
        let loaded = db
            .bulk_load("items_rep", item_tuples(n))
            .expect("bulk load");
        let ms = t.elapsed().as_secs_f64() * 1000.0;
        assert_eq!(loaded, n);
        assert_eq!(
            as_count(&db.query("items_rep feed count").unwrap()),
            n as i64
        );
        let wal = db.metrics().wal;
        rows.push(format!(
            r#"{{"layout":"{layout}","workers":{workers},"rows":{n},"ms":{ms:.3},"rows_per_sec":{:.0},"wal_syncs":{}}}"#,
            n as f64 / (ms / 1000.0),
            wal.syncs
        ));
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }
    format!("[{}]", rows.join(","))
}

/// The overlap join: `n` points bulk-loaded (in 1M-tuple chunks) into a
/// hash(8)-partitioned heap, probed against a range(4)-partitioned
/// LSD-tree of `grid x grid` states via `point_search` inside
/// `search_join`. `--large` runs the 10M-point configuration.
fn overlap_join_json(n: usize, grid: usize) -> String {
    use rand::Rng;
    let mut db = Database::builder().build();
    db.run(
        r#"
        type pt = tuple(<(cid, int), (center, point)>);
        type state = tuple(<(sname, string), (region, pgon)>);
        create pts : tidrel(pt);
        create states_rep : lsdtree(state, fun (s: state) bbox(s region));
    "#,
    )
    .unwrap();
    db.partition_object("pts", hash_spec("cid", 8))
        .expect("partition pts");
    db.partition_object(
        "states_rep",
        PartSpec {
            attr: sos_core::Symbol::new("region"),
            method: PartMethod::Range {
                bounds: vec![
                    sos_core::Const::Real(250.0),
                    sos_core::Const::Real(500.0),
                    sos_core::Const::Real(750.0),
                ],
            },
        },
    )
    .expect("partition states");
    let states: Vec<sos_exec::Value> = sos_geom::gen::state_grid(grid, 11)
        .into_iter()
        .map(|(name, poly)| {
            sos_exec::Value::tuple(vec![
                sos_exec::Value::Str(name),
                sos_exec::Value::Pgon(poly),
            ])
        })
        .collect();
    db.bulk_load("states_rep", states).expect("load states");

    db.set_parallelism(4);
    let world = sos_geom::gen::WORLD;
    let mut r = sos_geom::gen::rng(17);
    let mut next_cid = 0i64;
    let t = Instant::now();
    let mut remaining = n;
    while remaining > 0 {
        let chunk = remaining.min(1_000_000);
        let tuples: Vec<sos_exec::Value> = (0..chunk)
            .map(|_| {
                let cid = next_cid;
                next_cid += 1;
                sos_exec::Value::tuple(vec![
                    sos_exec::Value::Int(cid),
                    sos_exec::Value::Point(sos_geom::Point::new(
                        r.gen_range(world.min_x..world.max_x),
                        r.gen_range(world.min_y..world.max_y),
                    )),
                ])
            })
            .collect();
        let loaded = db.bulk_load("pts", tuples).expect("load points");
        assert_eq!(loaded, chunk);
        remaining -= chunk;
    }
    let load_ms = t.elapsed().as_secs_f64() * 1000.0;

    let query = "pts feed (fun (c: pt) states_rep (c center) point_search) search_join count";
    db.set_batch_size(1024);
    let t = Instant::now();
    let pairs = as_count(&db.query(query).unwrap());
    let join_ms = t.elapsed().as_secs_f64() * 1000.0;
    // The grid tiles ~92% of the world and no state bboxes overlap, so
    // almost every point pairs with exactly one state.
    assert!(
        pairs as f64 > 0.8 * n as f64 && pairs <= n as i64,
        "unexpected overlap-join cardinality: {pairs} of {n}"
    );
    format!(
        r#"{{"points":{n},"states":{},"query":"{}","load_ms":{load_ms:.1},"load_rows_per_sec":{:.0},"join_ms":{join_ms:.1},"pairs":{pairs},"join_rows_per_sec":{:.0},"workers":4}}"#,
        grid * grid,
        query.replace('"', "\\\""),
        n as f64 / (load_ms / 1000.0),
        n as f64 / (join_ms / 1000.0)
    )
}

/// The JSON document committed as BENCH_PR8.json: the PR7 document plus
/// the partitioned-storage sections. `--large` switches the overlap
/// join to the 10M-point configuration. The `cores` field qualifies
/// every speedup: on a single-core host the parallel configurations
/// time-slice one CPU and speedups sit near 1.0 by construction.
fn pr8_json(large: bool) -> String {
    let (n, grid) = if large {
        (10_000_000, 32)
    } else {
        (200_000, 16)
    };
    let pr7 = pr7_json();
    let body = pr7
        .strip_prefix("{\"bench\":\"PR7 group commit + expression compilation + durability + static analysis + batch execution\",")
        .expect("pr7_json prefix")
        .strip_suffix('}')
        .expect("pr7_json suffix");
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    format!(
        "{{\"bench\":\"PR8 partitioned storage + group commit + expression compilation + durability + static analysis + batch execution\",\"cores\":{cores},\"partition_scan\":{},\"partition_pruning\":{},\"copartition_join\":{},\"search_join_parallel\":{},\"bulk_load\":{},\"overlap_join\":{},{body}}}",
        partition_scan_json(),
        pruning_json(),
        copartition_join_json(),
        search_join_parallel_json(),
        bulk_load_json(),
        overlap_join_json(n, grid)
    )
}

/// The plan-validation overhead on the optimize path: one full pass over
/// the builtin witness-plan set per mode, median of 9 paired samples
/// (the `VALIDATE_OVERHEAD_SMOKE` CI gate asserts ratio < 1.05).
fn validate_overhead_json() -> String {
    let (off, on, plans) = bench::validate_overhead_ns(9);
    format!(
        "{{\"plans\":{plans},\"off_ns_per_pass\":{off},\"on_ns_per_pass\":{on},\"ratio\":{:.4}}}",
        on as f64 / off as f64
    )
}

/// The rule fuzzer's differential sweep over the builtin rule set at its
/// fixed seed: every rule's witnesses executed before and after rewrite
/// and bag-compared.
fn rule_fuzzer_json() -> String {
    let report = sos_system::fuzz::fuzz_builtin_rules(&sos_system::fuzz::FuzzConfig::default())
        .expect("the builtin rule fuzzer runs");
    format!(
        "{{\"rules\":{},\"rules_fired\":{},\"witnesses_run\":{},\"skipped_updates\":{},\"mismatches\":{}}}",
        report.rules,
        report.rules_fired,
        report.witnesses_run,
        report.skipped_updates,
        report.mismatches.len()
    )
}

/// The JSON document committed as BENCH_PR9.json: the PR8 document plus
/// the rule-soundness sections — plan-validation overhead and the rule
/// fuzzer's differential sweep.
fn pr9_json(large: bool) -> String {
    let pr8 = pr8_json(large);
    let body = pr8
        .strip_prefix("{\"bench\":\"PR8 partitioned storage + group commit + expression compilation + durability + static analysis + batch execution\",")
        .expect("pr8_json prefix")
        .strip_suffix('}')
        .expect("pr8_json suffix");
    format!(
        "{{\"bench\":\"PR9 rule-soundness verification + partitioned storage + group commit + expression compilation + durability + static analysis + batch execution\",\"validate_overhead\":{},\"rule_fuzzer\":{},{body}}}",
        validate_overhead_json(),
        rule_fuzzer_json()
    )
}

// ---- PR10: cost-based optimization — catalog statistics, the
// page-touch cost model, and the normalized-shape plan cache ----

/// The differential suite's schema with both plan flips in play: a keyed
/// relation whose clustering B-tree covers nearly every row of the
/// non-selective selection, and a small `picks` outer against a wide
/// indexed `mates` inner for the join flip.
fn cost_flip_db(cost: bool) -> Database {
    let mut db = Database::builder().cost_based(cost).build();
    db.run(
        r#"
        type item = tuple(<(k, int), (grp, int), (pad, string)>);
        type mate = tuple(<(j, int), (tag, string)>);
        create items : rel(item);
        create picks : rel(item);
        create mates : rel(mate);
        create bt_rep : btree(item, k, int);
        create picks_heap : tidrel(item);
        create mate_bt : btree(mate, j, int);
        create rep : catalog(<ident, ident>);
        update rep := insert(rep, items, bt_rep);
        update rep := insert(rep, picks, picks_heap);
        update rep := insert(rep, mates, mate_bt);
    "#,
    )
    .unwrap();
    let items: Vec<sos_exec::Value> = (0..2000)
        .map(|i| {
            sos_exec::Value::tuple(vec![
                sos_exec::Value::Int(i as i64),
                sos_exec::Value::Int((i % 10) as i64),
                sos_exec::Value::Str(format!("pad{i:06}")),
            ])
        })
        .collect();
    db.bulk_load("bt_rep", items).unwrap();
    db.bulk_load(
        "picks_heap",
        (0..8)
            .map(|i| {
                sos_exec::Value::tuple(vec![
                    sos_exec::Value::Int(i * 100),
                    sos_exec::Value::Int(0),
                    sos_exec::Value::Str(format!("pad{i:06}")),
                ])
            })
            .collect(),
    )
    .unwrap();
    // Wide payload so reading the inner whole (hash join) costs clearly
    // more than a handful of index probes.
    db.bulk_load(
        "mate_bt",
        (0..6400)
            .map(|i| {
                sos_exec::Value::tuple(vec![
                    sos_exec::Value::Int(i),
                    sos_exec::Value::Str(format!("m{i:0120}")),
                ])
            })
            .collect(),
    )
    .unwrap();
    db
}

/// Pages touched by one execution of `query` after a warm-up run.
fn pages_for(db: &mut Database, query: &str) -> (i64, u64) {
    db.query(query).unwrap();
    db.reset_metrics();
    let n = as_count(&db.query(query).unwrap());
    (n, db.metrics().pool.logical_reads)
}

/// The two statistics-driven plan flips, as page-touch rows: the
/// non-selective keyed selection moved off the index onto a scan, and
/// the small-outer equi-join moved from the hash join onto index
/// probes — each with the rule the planner picked and the pages both
/// choices actually touch. Plus the price of collecting the statistics
/// and a measured estimate-vs-actual factor from `explain_analyze`.
fn cost_model_json() -> String {
    let mut off = cost_flip_db(false);
    let mut on = cost_flip_db(true);
    let t = Instant::now();
    let analyzed = on.analyze_all().unwrap().len();
    let analyze_ms = t.elapsed().as_secs_f64() * 1000.0;

    let mut flips = Vec::new();
    for (name, query) in [
        ("nonselective-select", "items select[k >= 0] count"),
        ("small-outer-join", "picks mates join[k = j] count"),
    ] {
        let rule_based = off.explain(query).unwrap().applied_rules().join(",");
        let cost_based = on.explain(query).unwrap().applied_rules().join(",");
        let (a, off_pages) = pages_for(&mut off, query);
        let (b, on_pages) = pages_for(&mut on, query);
        assert_eq!(a, b, "plan flip changed the answer for `{query}`");
        flips.push(format!(
            r#"{{"flip":"{name}","query":"{}","rows_out":{a},"rule_based":"{rule_based}","rule_based_pages":{off_pages},"cost_based":"{cost_based}","cost_based_pages":{on_pages},"pages_saved_factor":{:.2}}}"#,
            query.replace('"', "\\\""),
            off_pages as f64 / (on_pages as f64).max(1.0)
        ));
    }

    let report = on.explain_analyze("items select[k < 250] count").unwrap();
    let mis = report
        .analysis
        .as_ref()
        .and_then(|a| a.misestimate_factor)
        .expect("cost-based explain analyze carries a misestimate factor");
    format!(
        r#"{{"objects_analyzed":{analyzed},"analyze_ms":{analyze_ms:.3},"flips":[{}],"sample_misestimate_factor":{mis:.2}}}"#,
        flips.join(",")
    )
}

/// The plan-cache Zipf replay (the `plan_cache` bench's workload): the
/// same skewed statement sequence against a cache-off database and a
/// warmed cache-on one, compared on accumulated optimizer time.
fn plan_cache_json() -> String {
    const SHAPES: usize = 24;
    const STATEMENTS: usize = 400;
    const ZIPF_S: f64 = 1.2;
    let ranks = bench::zipf_ranks(SHAPES, ZIPF_S, STATEMENTS, 0xC0FFEE);

    let mut off = bench::plan_cache_db(false, 2_000);
    let (off_ns, off_results) = bench::plan_cache_replay(&mut off, &ranks);

    let mut on = bench::plan_cache_db(true, 2_000);
    bench::plan_cache_replay(&mut on, &ranks); // warm: first occurrences miss
    let (on_ns, on_results) = bench::plan_cache_replay(&mut on, &ranks);
    assert_eq!(off_results, on_results, "cached plans diverged");
    let planner = on.metrics().planner;
    format!(
        r#"{{"shapes":{SHAPES},"statements":{STATEMENTS},"zipf_s":{ZIPF_S},"cache_hits":{},"cache_misses":{},"cache_entries":{},"optimize_off_ms":{:.3},"optimize_on_ms":{:.3},"optimize_speedup":{:.2}}}"#,
        planner.cache_hits,
        planner.cache_misses,
        planner.cache_entries,
        off_ns as f64 / 1e6,
        on_ns as f64 / 1e6,
        off_ns as f64 / (on_ns as f64).max(1.0)
    )
}

/// The JSON document committed as BENCH_PR10.json: the PR9 document plus
/// the cost-based-optimization sections — the statistics-driven plan
/// flips and the plan-cache Zipf replay.
fn pr10_json(large: bool) -> String {
    let pr9 = pr9_json(large);
    let body = pr9
        .strip_prefix("{\"bench\":\"PR9 rule-soundness verification + partitioned storage + group commit + expression compilation + durability + static analysis + batch execution\",")
        .expect("pr9_json prefix")
        .strip_suffix('}')
        .expect("pr9_json suffix");
    format!(
        "{{\"bench\":\"PR10 cost-based optimization + rule-soundness verification + partitioned storage + group commit + expression compilation + durability + static analysis + batch execution\",\"cost_model\":{},\"plan_cache\":{},{body}}}",
        cost_model_json(),
        plan_cache_json()
    )
}
