//! Shared workload builders for the benchmark harness and the
//! `experiments` binary (see EXPERIMENTS.md for the experiment index).

use sos_core::check::Checker;
use sos_exec::Value;
use sos_geom::gen;
use sos_optimizer::synth::{self, Scenario};
use sos_optimizer::Validation;
use sos_system::Database;

/// The spatial schema of Sections 4–6: model `cities`/`states`, a B-tree
/// and an LSD-tree representation, catalog links — loaded with `n_cities`
/// uniform city points and a `grid x grid` tiling of state polygons.
pub fn spatial_db(n_cities: usize, grid: usize, seed: u64) -> Database {
    let mut db = Database::builder().build();
    db.run(
        r#"
        type city = tuple(<(cname, string), (center, point), (pop, int)>);
        type state = tuple(<(sname, string), (region, pgon)>);
        create cities : rel(city);
        create states : rel(state);
        create cities_rep : btree(city, pop, int);
        create states_rep : lsdtree(state, fun (s: state) bbox(s region));
        create rep : catalog(<ident, ident>);
        update rep := insert(rep, cities, cities_rep);
        update rep := insert(rep, states, states_rep);
    "#,
    )
    .expect("spatial schema");
    db.bulk_insert("cities_rep", city_tuples(n_cities, seed))
        .expect("load cities");
    let states: Vec<Value> = gen::state_grid(grid, seed + 1)
        .into_iter()
        .map(|(name, poly)| Value::tuple(vec![Value::Str(name), Value::Pgon(poly)]))
        .collect();
    db.bulk_insert("states_rep", states).expect("load states");
    db
}

/// City tuples with uniform centers and pops uniform in [0, 1_000_000).
pub fn city_tuples(n: usize, seed: u64) -> Vec<Value> {
    gen::uniform_points(n, seed)
        .into_iter()
        .enumerate()
        .map(|(i, p)| {
            Value::tuple(vec![
                Value::Str(format!("city{i}")),
                Value::Point(p),
                Value::Int(((i as i64).wrapping_mul(2654435761)).rem_euclid(1_000_000)),
            ])
        })
        .collect()
}

/// A keyed relation with a clustering B-tree: keys 0..n shuffled.
pub fn keyed_db(n: usize) -> Database {
    let mut db = Database::builder().build();
    db.run(
        r#"
        type item = tuple(<(k, int), (payload, string)>);
        create items : rel(item);
        create items_rep : btree(item, k, int);
        create rep : catalog(<ident, ident>);
        update rep := insert(rep, items, items_rep);
    "#,
    )
    .expect("keyed schema");
    db.bulk_insert("items_rep", item_tuples(n))
        .expect("load items");
    db
}

/// Item tuples with keys 0..n in a scrambled insertion order.
pub fn item_tuples(n: usize) -> Vec<Value> {
    let mut order: Vec<i64> = (0..n as i64).collect();
    for i in 0..n {
        order.swap(i, (i.wrapping_mul(2654435761)) % n.max(1));
    }
    order
        .into_iter()
        .map(|k| {
            Value::tuple(vec![
                Value::Int(k),
                Value::Str(format!("payload for item {k}")),
            ])
        })
        .collect()
}

/// A heap-backed (tidrel) relation for parallel-scan benchmarks: `feed`
/// over it produces a page-partitionable cursor, and the padded payload
/// keeps it at ~35 tuples per page so worker counts matter.
pub fn heap_db(n: usize) -> Database {
    let mut db = Database::builder().build();
    db.run(
        r#"
        type hitem = tuple(<(k, int), (pad, string)>);
        create hitems : tidrel(hitem);
    "#,
    )
    .expect("heap schema");
    let tuples: Vec<Value> = (0..n)
        .map(|i| {
            Value::tuple(vec![
                Value::Int(i as i64),
                Value::Str(format!("{:0180}", i)),
            ])
        })
        .collect();
    db.bulk_insert("hitems", tuples).expect("load heap");
    db
}

/// Extract an integer count from a query result.
pub fn as_count(v: &Value) -> i64 {
    match v {
        Value::Int(n) => *n,
        Value::Rel(ts) | Value::Stream(ts) => ts.len() as i64,
        other => panic!("expected count, got {other:?}"),
    }
}

/// Build a long filter chain query for the type-checking benchmark:
/// `items_rep feed filter[k >= 0] filter[k >= 1] ... count`.
pub fn filter_chain(depth: usize) -> String {
    let mut q = String::from("items_rep feed");
    for i in 0..depth {
        q.push_str(&format!(" filter[k >= {i}]"));
    }
    q.push_str(" count");
    q
}

/// A Zipf-distributed sequence of shape ranks (0-based) over `n` shapes:
/// rank r is drawn with weight `1/(r+1)^s` — the skewed query traffic
/// the plan-cache experiments replay.
pub fn zipf_ranks(n: usize, s: f64, count: usize, seed: u64) -> Vec<usize> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let weights: Vec<f64> = (1..=n).map(|r| 1.0 / (r as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let mut x = rng.gen_range(0.0..total);
            for (rank, w) in weights.iter().enumerate() {
                if x < *w {
                    return rank;
                }
                x -= w;
            }
            n - 1
        })
        .collect()
}

/// The keyed-items schema with the plan cache set as asked — the
/// database the plan-cache workload replays against.
pub fn plan_cache_db(plan_cache: bool, rows: usize) -> Database {
    let mut db = Database::builder().plan_cache(plan_cache).build();
    db.run(
        r#"
        type item = tuple(<(k, int), (payload, string)>);
        create items : rel(item);
        create items_rep : btree(item, k, int);
        create rep : catalog(<ident, ident>);
        update rep := insert(rep, items, items_rep);
    "#,
    )
    .expect("keyed schema");
    db.bulk_insert("items_rep", item_tuples(rows))
        .expect("load items");
    db
}

/// The query for one (shape rank, occurrence) pair of the plan-cache
/// workload: a model selection with rank+1 conjuncts, so the optimizer
/// runs the translation-rule search over a predicate of that width.
/// The literals depend on the occurrence index, so a cache hit must
/// rebind constants, never replay stale ones.
pub fn plan_cache_shape_query(rank: usize, occurrence: usize) -> String {
    let conjuncts: Vec<String> = (0..=rank)
        .map(|i| format!("t k >= {}", (occurrence + i) % 100))
        .collect();
    format!(
        "items select[fun (t: item) {}] count",
        conjuncts.join(" and ")
    )
}

/// Replay a Zipf rank sequence; returns accumulated optimizer
/// nanoseconds and the per-statement results.
pub fn plan_cache_replay(db: &mut Database, ranks: &[usize]) -> (u64, Vec<i64>) {
    db.reset_metrics();
    let results = ranks
        .iter()
        .enumerate()
        .map(|(i, &rank)| as_count(&db.query(&plan_cache_shape_query(rank, i)).unwrap()))
        .collect();
    (db.metrics().optimizer.optimize_ns, results)
}

/// Measure the plan-validation overhead on the optimize path: every
/// synthesized witness of every builtin rule (deduplicated) is optimized
/// by the full builtin optimizer under `Validation::Off` and
/// `Validation::Count`, alternating per sample so clock drift cancels.
/// Returns `(off_ns, on_ns, plans)` — median nanoseconds for one full
/// pass over the witness set in each mode, and the witness count.
pub fn validate_overhead_ns(samples: usize) -> (u64, u64, usize) {
    use std::time::Instant;
    let sig = sos_system::builtin::builtin_signature();
    let scenario = Scenario::build(&sig);
    let opt = sos_system::rules::builtin_optimizer();
    let checker = Checker::new(&sig, &scenario.catalog);

    let mut seen = std::collections::HashSet::new();
    let mut plans = Vec::new();
    for step in &opt.steps {
        for rule in &step.rules {
            for w in synth::witnesses(&sig, &scenario, rule, synth::DEFAULT_WITNESSES) {
                if seen.insert(w.to_string()) {
                    plans.push(w);
                }
            }
        }
    }
    assert!(!plans.is_empty(), "the scenario yields witness plans");

    let run = |mode: Validation| -> u64 {
        let start = Instant::now();
        for p in &plans {
            let _ = std::hint::black_box(opt.optimize_with(p, &checker, &scenario.catalog, mode));
        }
        start.elapsed().as_nanos() as u64
    };
    // Warm both paths before timing anything.
    run(Validation::Off);
    run(Validation::Count);
    let (mut offs, mut ons) = (Vec::new(), Vec::new());
    for _ in 0..samples {
        offs.push(run(Validation::Off));
        ons.push(run(Validation::Count));
    }
    offs.sort_unstable();
    ons.sort_unstable();
    (offs[offs.len() / 2], ons[ons.len() / 2], plans.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_usable_databases() {
        let mut db = spatial_db(50, 3, 1);
        assert_eq!(as_count(&db.query("cities_rep feed count").unwrap()), 50);
        assert_eq!(as_count(&db.query("states_rep feed count").unwrap()), 9);
        let mut kdb = keyed_db(100);
        assert_eq!(as_count(&kdb.query("items_rep feed count").unwrap()), 100);
        assert_eq!(
            as_count(&kdb.query("items select[k < 10] count").unwrap()),
            10
        );
    }

    #[test]
    fn filter_chain_is_well_formed() {
        let mut kdb = keyed_db(20);
        let q = filter_chain(5);
        assert_eq!(as_count(&kdb.query(&q).unwrap()), 16); // k >= 4 keeps 4..20
    }
}
