//! Database-level persistence: save a populated database to a directory,
//! reopen it in a fresh process-equivalent, and verify catalogs, data,
//! indexes, optimization and updates all survive.

use sos_exec::Value;
use sos_geom::gen;
use sos_system::Database;
use std::path::PathBuf;

fn as_count(v: &Value) -> i64 {
    match v {
        Value::Int(n) => *n,
        Value::Rel(ts) | Value::Stream(ts) => ts.len() as i64,
        other => panic!("expected count, got {other:?}"),
    }
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sos_db_{}_{}", std::process::id(), name));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn full_database_roundtrip() {
    let dir = temp_dir("roundtrip");
    {
        let mut db = Database::open_dir(&dir).unwrap();
        db.run(
            r#"
            type city = tuple(<(cname, string), (center, point), (pop, int)>);
            type state = tuple(<(sname, string), (region, pgon)>);
            create cities : rel(city);
            create states : rel(state);
            create cities_rep : btree(city, pop, int);
            create states_rep : lsdtree(state, fun (s: state) bbox(s region));
            create scratch : tidrel(city);
            create rep : catalog(<ident, ident>);
            update rep := insert(rep, cities, cities_rep);
            update rep := insert(rep, states, states_rep);
        "#,
        )
        .unwrap();
        let cities: Vec<Value> = gen::uniform_points(300, 5)
            .into_iter()
            .enumerate()
            .map(|(i, p)| {
                Value::tuple(vec![
                    Value::Str(format!("city{i}")),
                    Value::Point(p),
                    Value::Int((i as i64 * 31) % 10_000),
                ])
            })
            .collect();
        db.bulk_insert("cities_rep", cities).unwrap();
        let states: Vec<Value> = gen::state_grid(6, 6)
            .into_iter()
            .map(|(n, poly)| Value::tuple(vec![Value::Str(n), Value::Pgon(poly)]))
            .collect();
        db.bulk_insert("states_rep", states).unwrap();
        let skipped = db.save(&dir).unwrap();
        assert!(skipped.is_empty());
    }
    // Reopen: everything is back.
    {
        let mut db = Database::open_dir(&dir).unwrap();
        assert_eq!(as_count(&db.query("cities_rep feed count").unwrap()), 300);
        assert_eq!(as_count(&db.query("states_rep feed count").unwrap()), 36);
        // Named types survive (used in a lambda annotation).
        assert_eq!(
            as_count(
                &db.query("cities_rep feed filter[fun (c: city) c pop < 5000] count")
                    .unwrap()
            ),
            as_count(&db.query("cities_rep range_to[4999] count").unwrap())
        );
        // Catalog links survive: the optimizer still fires.
        let plan = db.explain("cities select[pop = 31]").unwrap().plan;
        assert!(plan.contains("exactmatch(cities_rep"), "plan: {plan}");
        // The LSD-tree directory survives: spatial plans still work.
        let joined = as_count(
            &db.query("cities states join[center inside region] count")
                .unwrap(),
        );
        assert!(joined > 200, "most cities are in some state: {joined}");
        // And the database remains writable after reopen.
        db.run(r#"update cities := insert(cities, mktuple[(cname, "New"), (center, makepoint(1.0, 1.0)), (pop, 1)]);"#)
            .unwrap();
        assert_eq!(as_count(&db.query("cities_rep feed count").unwrap()), 301);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn model_values_and_catalog_rows_roundtrip() {
    let dir = temp_dir("model");
    {
        let mut db = Database::open_dir(&dir).unwrap();
        db.run(
            r#"
            type t = tuple(<(a, int), (b, string)>);
            create r : rel(t);
            update r := insert(r, mktuple[(a, 1), (b, "one")]);
            update r := insert(r, mktuple[(a, 2), (b, "two")]);
            create c : t;
            update c := mktuple[(a, 9), (b, "nine")];
        "#,
        )
        .unwrap();
        db.save(&dir).unwrap();
    }
    {
        let mut db = Database::open_dir(&dir).unwrap();
        assert_eq!(as_count(&db.query("r count").unwrap()), 2);
        let v = db.query("r select[a = 2]").unwrap();
        let Value::Rel(ts) = v else { panic!() };
        assert_eq!(
            ts[0],
            Value::tuple(vec![Value::Int(2), Value::Str("two".into())])
        );
        // The standalone tuple object too.
        db.run("update r := insert(r, c);").unwrap();
        assert_eq!(as_count(&db.query("r count").unwrap()), 3);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn views_are_reported_as_skipped() {
    let dir = temp_dir("views");
    {
        let mut db = Database::open_dir(&dir).unwrap();
        db.run(
            r#"
            type t = tuple(<(a, int)>);
            create r : rel(t);
            create v : ( -> rel(t));
            update v := fun () r select[a > 0];
        "#,
        )
        .unwrap();
        let skipped = db.save(&dir).unwrap();
        assert_eq!(skipped, vec![sos_core::Symbol::new("v")]);
    }
    {
        let mut db = Database::open_dir(&dir).unwrap();
        // The view's type survives; re-running its defining update
        // restores it.
        db.run("update v := fun () r select[a > 0];").unwrap();
        assert_eq!(as_count(&db.query("v count").unwrap()), 0);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn save_into_fresh_directory_and_double_save() {
    let dir = temp_dir("double");
    let mut db = Database::open_dir(&dir).unwrap();
    db.run("type t = tuple(<(a, int)>); create r : rel(t);")
        .unwrap();
    db.save(&dir).unwrap();
    db.run("update r := insert(r, mktuple[(a, 5)]);").unwrap();
    db.save(&dir).unwrap(); // overwrite with newer state
    let mut db2 = Database::open_dir(&dir).unwrap();
    assert_eq!(as_count(&db2.query("r count").unwrap()), 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_snapshots_error_cleanly() {
    let dir = temp_dir("corrupt");
    {
        let mut db = Database::open_dir(&dir).unwrap();
        db.run("type t = tuple(<(a, int)>); create r : rel(t);")
            .unwrap();
        db.save(&dir).unwrap();
    }
    std::fs::write(dir.join("snapshot.json"), b"{ not json !").unwrap();
    let Err(err) = Database::open_dir(&dir) else {
        panic!("opening a corrupt snapshot must fail");
    };
    assert!(err.to_string().contains("persistence error"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}
