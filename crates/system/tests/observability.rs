//! The observability façade end to end: `DatabaseBuilder`, the unified
//! `metrics()` snapshot, phase tracing, and structured explain — the
//! surface that replaced the removed pre-builder shims.

use sos_system::{Database, Phase};

fn keyed_db() -> Database {
    let mut db = Database::builder().build();
    db.run(
        r#"
        type item = tuple(<(k, int), (name, string)>);
        create items : rel(item);
        create items_rep : btree(item, k, int);
        create rep : catalog(<ident, ident>);
        update rep := insert(rep, items, items_rep);
        update items := insert(items, mktuple[(k, 1), (name, "a")]);
        update items := insert(items, mktuple[(k, 2), (name, "b")]);
        update items := insert(items, mktuple[(k, 3), (name, "c")]);
    "#,
    )
    .unwrap();
    db
}

#[test]
fn builder_configures_every_knob() {
    let mut db = Database::builder()
        .memory_pool(256)
        .workers(3)
        .optimize(false)
        .trace(true)
        .build();
    assert_eq!(db.workers(), 3);
    assert!(!db.optimizer_enabled());
    assert!(db.tracing());
    // The knobs remain adjustable at runtime.
    db.set_parallelism(1);
    db.set_optimizer_enabled(true);
    db.set_tracing(false);
    assert_eq!(db.workers(), 1);
    assert!(db.optimizer_enabled());
    assert!(!db.tracing());
}

#[test]
fn tracing_is_off_by_default_and_records_when_enabled() {
    let mut db = keyed_db();
    db.query("items select[k >= 2] count").unwrap();
    assert!(!db.tracing());
    assert!(
        db.metrics().phases.is_empty(),
        "no spans while tracing is off"
    );

    db.set_tracing(true);
    db.query("items select[k >= 2] count").unwrap();
    let phases = db.metrics().phases;
    for p in Phase::ALL {
        let (count, _) = phases.phase(p);
        assert_eq!(count, 1, "phase {p} recorded once");
    }
    assert!(phases.total_nanos() > 0);
}

#[test]
fn metrics_unifies_pool_optimizer_ops_and_accumulates() {
    let mut db = keyed_db();
    db.reset_metrics();
    db.query("items select[k >= 2] count").unwrap();
    db.query("items select[k >= 1] count").unwrap();
    db.query("items_rep feed count").unwrap();
    let m = db.metrics();
    assert!(
        m.pool.logical_reads > 0,
        "pool traffic visible: {:?}",
        m.pool
    );
    // Two optimized statements: the counters are cumulative, not
    // last-run.
    assert!(m.optimizer.rewrites >= 2, "optimizer: {:?}", m.optimizer);
    assert!(m.op("count").is_some(), "ops: {:?}", m.ops);
    assert_eq!(m.op("count"), db.op_stats("count").as_ref());
    let json = m.to_json();
    assert!(json.contains(r#""pool""#) && json.contains(r#""optimizer""#));

    db.reset_metrics();
    let cleared = db.metrics();
    assert_eq!(cleared.pool.logical_reads, 0);
    assert_eq!(cleared.optimizer.rewrites, 0);
    assert!(cleared.ops.is_empty());
    assert!(cleared.phases.is_empty());
}

#[test]
fn op_stats_distinguishes_never_ran_from_zero() {
    let mut db = keyed_db();
    db.reset_metrics();
    assert_eq!(db.op_stats("count"), None);
    db.query("items_rep feed count").unwrap();
    let count = db.op_stats("count").expect("count ran");
    assert!(count.invocations >= 1);
    assert_eq!(count.tuples_in, 3);
    assert_eq!(db.op_stats("no_such_operator"), None);
}

#[test]
fn explain_analyze_reports_actual_counts() {
    let mut db = keyed_db();
    let report = db.explain_analyze("items_rep feed count").unwrap();
    let analysis = report.analysis.as_ref().expect("analyze ran the plan");
    assert_eq!(analysis.result, "int = 3");
    // The per-run rows agree with what the global registry accumulated
    // for the same operators.
    let count = analysis
        .ops
        .iter()
        .find(|(n, _)| n == "count")
        .expect("count row");
    assert_eq!(count.1.tuples_in, 3);
    assert!(db.op_stats("count").unwrap().invocations >= count.1.invocations);
    // All four phases were timed, execute included.
    assert_eq!(report.phases.len(), 4);
    assert_eq!(report.phases[3].0, Phase::Execute);
    // A second analyze reports only its own run, not the accumulated
    // totals.
    let again = db.explain_analyze("items_rep feed count").unwrap();
    let count_again = again
        .analysis
        .as_ref()
        .unwrap()
        .ops
        .iter()
        .find(|(n, _)| n == "count")
        .expect("count row");
    assert_eq!(count_again.1.tuples_in, 3);
    // Plain explain does not execute.
    let plain = db.explain("items select[k >= 2] count").unwrap();
    assert!(plain.analysis.is_none());
    assert_eq!(plain.phases.len(), 3);
}

#[test]
fn explain_is_structured_and_serializes() {
    let mut db = keyed_db();
    let report = db.explain("items select[k >= 2]").unwrap();
    assert_eq!(report.applied_rules(), vec!["select-btree->="]);
    let rewrite = &report.rewrites[0];
    assert_eq!(rewrite.step, "index-access");
    assert!(rewrite.before.contains("select("), "{rewrite:?}");
    assert!(rewrite.after.contains("range_from("), "{rewrite:?}");
    assert!(!rewrite.conditions.is_empty());
    assert!(report.plan_tree.contains("consume"));
    let json = report.to_json();
    assert!(json.contains(r#""rule":"select-btree->=""#), "{json}");
    // Display renders the timing line; render(false) drops it.
    assert!(report.to_string().contains("phases:"));
    assert!(!report.render(false).contains("phases:"));
}

/// The deprecated pre-builder shims (`new`, `with_pool`, `set_workers`,
/// `set_optimize`, the stats getters) are gone: the builder façade and
/// the metrics registry cover every former shim use.
#[test]
fn builder_facade_covers_former_shims() {
    let mut db = Database::builder().build();
    db.run(
        r#"
        type t = tuple(<(a, int)>);
        create r : rel(t);
        update r := insert(r, mktuple[(a, 41)]);
    "#,
    )
    .unwrap();
    db.set_parallelism(2);
    assert_eq!(db.workers(), 2);
    db.set_optimizer_enabled(false);
    assert!(!db.optimizer_enabled());
    db.set_optimizer_enabled(true);
    db.reset_metrics();
    db.query("r select[a > 0] count").unwrap();
    let m = db.metrics();
    assert!(m.op("select").is_some(), "ops: {:?}", m.ops);

    let db2 = Database::builder().pool(sos_storage::mem_pool(128)).build();
    assert!(db2.metrics().ops.is_empty());
}
