//! End-to-end test of the `sos` shell binary through its stdin/stdout
//! contract.

use std::io::Write;
use std::process::{Command, Stdio};

fn run_shell(input: &str) -> String {
    let exe = env!("CARGO_BIN_EXE_sos");
    let mut child = Command::new(exe)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("shell starts");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(input.as_bytes())
        .unwrap();
    let out = child.wait_with_output().expect("shell exits");
    assert!(out.status.success(), "shell exit status");
    String::from_utf8(out.stdout).expect("utf8 output")
}

#[test]
fn shell_runs_a_program_and_meta_commands() {
    let out = run_shell(
        "type t = tuple(<(a, int)>);\n\
         create r : rel(t);\n\
         update r := insert(r, mktuple[(a, 41)]);\n\
         query r select[a > 0] count;\n\
         .objects\n\
         .ops select\n\
         .stats\n\
         .stats select\n\
         .stats frobnicate\n\
         .metrics\n\
         .quit\n",
    );
    assert!(out.contains("type t defined"), "{out}");
    assert!(out.contains("created r"), "{out}");
    assert!(out.contains("updated r"), "{out}");
    assert!(out.contains('1'), "{out}");
    assert!(out.contains("r : rel(tuple(<(a, int)>))"), "{out}");
    assert!(
        out.contains("op select : forall rel: rel(tuple) in REL"),
        "{out}"
    );
    // `.stats select` reports the one operator; unknown names are called
    // out instead of showing silent zeros.
    assert!(out.contains("op select:"), "{out}");
    assert!(
        out.contains("no such operator: `frobnicate` never ran"),
        "{out}"
    );
    // `.metrics` is the unified snapshot: pool + optimizer + phases.
    assert!(out.contains("logical reads"), "{out}");
    assert!(out.contains("optimizer:"), "{out}");
    assert!(out.contains("phases:"), "{out}");
}

#[test]
fn shell_traces_phases_and_explains_analyze() {
    let out = run_shell(
        "type t = tuple(<(a, int)>);\n\
         create r : rel(t);\n\
         update r := insert(r, mktuple[(a, 41)]);\n\
         .trace on\n\
         query r count;\n\
         .metrics\n\
         .trace off\n\
         .explain analyze r select[a > 0] count\n\
         .quit\n",
    );
    assert!(out.contains("tracing on"), "{out}");
    // With tracing on, the metrics snapshot shows per-phase spans.
    assert!(out.contains("parse 1x"), "{out}");
    assert!(out.contains("execute 1x"), "{out}");
    assert!(out.contains("tracing off"), "{out}");
    // `.explain analyze` ran the plan: actual counts appear.
    assert!(out.contains("analyze:"), "{out}");
    assert!(out.contains("result: int = 1"), "{out}");
}

#[test]
fn shell_reports_errors_and_continues() {
    let out = run_shell(
        "query nonsense_object count;\n\
         type t = tuple(<(a, int)>);\n\
         .quit\n",
    );
    assert!(out.contains("error:"), "{out}");
    assert!(out.contains("type t defined"), "{out}");
}

#[test]
fn shell_explain_shows_plans() {
    let out = run_shell(
        "type t = tuple(<(k, int), (p, string)>);\n\
         create r : rel(t);\n\
         create r_rep : btree(t, k, int);\n\
         create rep : catalog(<ident, ident>);\n\
         update rep := insert(rep, r, r_rep);\n\
         .explain r select[k = 5]\n\
         .quit\n",
    );
    assert!(out.contains("exactmatch(r_rep"), "{out}");
}

#[test]
fn shell_runs_program_files() {
    let out = run_shell(".run examples/programs/cities.sos\n.quit\n");
    // The shell's cwd is the crate dir in tests; fall back if not found.
    if out.contains("error reading") {
        // Resolve relative to the workspace root instead.
        let ws = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../examples/programs/cities.sos"
        );
        let out2 = run_shell(&format!(".run {ws}\n.quit\n"));
        assert!(out2.contains("3 tuples"), "{out2}");
    } else {
        assert!(out.contains("3 tuples"), "{out}");
    }
}

#[test]
fn shell_describes_operators() {
    let out = run_shell(".ops join\n.quit\n");
    assert!(out.contains("op join :"), "{out}");
    assert!(out.contains("rel1 x rel2"), "{out}");
}
