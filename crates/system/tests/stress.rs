//! Stress: large generated programs through the full pipeline, many
//! objects, deep pipelines, interleaved updates and queries — the
//! sustained-use soak the statement processor must survive.

use sos_exec::Value;
use sos_system::Database;

fn as_count(v: &Value) -> i64 {
    match v {
        Value::Int(n) => *n,
        Value::Rel(ts) | Value::Stream(ts) => ts.len() as i64,
        other => panic!("expected count, got {other:?}"),
    }
}

#[test]
fn hundreds_of_statements_in_one_program() {
    let mut program = String::from(
        "type item = tuple(<(k, int), (tag, string)>);\n\
         create items : rel(item);\n\
         create items_rep : btree(item, k, int);\n\
         create rep : catalog(<ident, ident>);\n\
         update rep := insert(rep, items, items_rep);\n",
    );
    for i in 0..200 {
        program.push_str(&format!(
            "update items := insert(items, mktuple[(k, {i}), (tag, \"t{}\")]);\n",
            i % 5
        ));
    }
    for i in (0..200).step_by(40) {
        program.push_str(&format!("query items select[k = {i}] count;\n"));
    }
    let mut db = Database::builder().build();
    let outputs = db.run(&program).unwrap();
    assert_eq!(outputs.len(), 5 + 200 + 5);
    assert_eq!(as_count(&db.query("items_rep feed count").unwrap()), 200);
    // Every point query found its tuple.
    for out in &outputs[205..] {
        assert_eq!(as_count(out.value().unwrap()), 1);
    }
}

#[test]
fn many_objects_and_types() {
    let mut db = Database::builder().build();
    for i in 0..60 {
        db.run(&format!(
            "type t{i} = tuple(<(a{i}, int), (b{i}, string)>);\n\
             create r{i} : rel(t{i});\n\
             update r{i} := insert(r{i}, mktuple[(a{i}, {i}), (b{i}, \"x\")]);"
        ))
        .unwrap();
    }
    for i in 0..60 {
        assert_eq!(
            as_count(&db.query(&format!("r{i} select[a{i} = {i}] count")).unwrap()),
            1
        );
    }
    assert_eq!(db.catalog().objects().count(), 60);
}

#[test]
fn deep_pipelines_check_and_run() {
    let mut db = Database::builder().build();
    db.run(
        "type item = tuple(<(k, int), (tag, string)>);\n\
         create s : srel(item);",
    )
    .unwrap();
    let tuples: Vec<Value> = (0..500)
        .map(|i| Value::tuple(vec![Value::Int(i), Value::Str(format!("t{}", i % 3))]))
        .collect();
    db.bulk_insert("s", tuples).unwrap();
    // 24-stage pipeline.
    let mut q = String::from("s feed");
    for i in 0..24 {
        q.push_str(&format!(" filter[k >= {i}]"));
    }
    q.push_str(" count");
    assert_eq!(as_count(&db.query(&q).unwrap()), 500 - 23);
}

#[test]
fn repeated_create_delete_cycles() {
    let mut db = Database::builder().build();
    db.run("type t = tuple(<(a, int)>);").unwrap();
    for round in 0..50 {
        db.run(&format!(
            "create r : rel(t);\n\
             update r := insert(r, mktuple[(a, {round})]);\n\
             query r count;\n\
             delete r;"
        ))
        .unwrap();
    }
    // Name is free again after each cycle; nothing leaked into the
    // catalog.
    assert_eq!(db.catalog().objects().count(), 0);
}

#[test]
fn interleaved_model_and_rep_updates_stay_consistent() {
    let mut db = Database::builder().build();
    db.run(
        "type item = tuple(<(k, int), (tag, string)>);\n\
         create items : rel(item);\n\
         create items_rep : btree(item, k, int);\n\
         create rep : catalog(<ident, ident>);\n\
         update rep := insert(rep, items, items_rep);",
    )
    .unwrap();
    let mut expected = 0i64;
    for i in 0..40 {
        // Model-level insert (translated).
        db.run(&format!(
            "update items := insert(items, mktuple[(k, {i}), (tag, \"m\")]);"
        ))
        .unwrap();
        expected += 1;
        // Direct representation-level insert (mixed program, Section 6).
        db.run(&format!(
            "update items_rep := insert(items_rep, mktuple[(k, {}), (tag, \"r\")]);",
            1000 + i
        ))
        .unwrap();
        expected += 1;
        if i % 10 == 9 {
            db.run(&format!(
                "update items := delete(items, fun (t: item) t k = {i});"
            ))
            .unwrap();
            expected -= 1;
        }
    }
    assert_eq!(
        as_count(&db.query("items select[k >= 0] count").unwrap()),
        expected
    );
}
