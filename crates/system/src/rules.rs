//! The built-in optimizer: translation of model-level queries and
//! updates into representation-level plans (Sections 5 and 6).
//!
//! The rule set is organized as in the Gral optimizer \[BeG92\]: an early
//! step applies *index access* rules (specific, profitable), a later step
//! applies the generic translation rules that are always applicable when
//! a representation exists. Every rule's applicability is guarded by
//! `rep(...)` catalog conditions exactly as written in the paper's
//! Section 5 example.

use sos_core::pattern::TypePattern;
use sos_core::{sym, DataType, Expr, Symbol};
use sos_optimizer::{Condition, Optimizer, Rule, RuleAlt, RuleStep, TermPattern};

/// Shorthand: `Name(v)` template reference.
fn name(v: &str) -> Expr {
    Expr::Name(Symbol::new(v))
}

/// Shorthand: template application.
fn app(op: &str, args: Vec<Expr>) -> Expr {
    Expr::Apply {
        op: Symbol::new(op),
        args,
    }
}

/// Shorthand: a template lambda with `$`-placeholder parameter types.
fn lam(params: &[(&str, &str)], body: Expr) -> Expr {
    Expr::Lambda {
        params: params
            .iter()
            .map(|(n, tv)| (Symbol::new(n), DataType::atom(&format!("${tv}"))))
            .collect(),
        body: Box::new(body),
    }
}

/// A template lambda whose parameter is `stream($tuplevar)` — used by the
/// modification rules whose stream function parameter type depends on a
/// bound tuple type.
fn stream_lam(param: &str, tuplevar: &str, body: Expr) -> Expr {
    Expr::Lambda {
        params: vec![(
            Symbol::new(param),
            DataType::stream(DataType::atom(&format!("${tuplevar}"))),
        )],
        body: Box::new(body),
    }
}

/// `rel(tuplevar)` type pattern.
fn rel_pattern(tuplevar: &str) -> TypePattern {
    TypePattern::cons("rel", vec![TypePattern::var(tuplevar)])
}

/// The built-in optimizer.
pub fn builtin_optimizer() -> Optimizer {
    Optimizer::new(vec![
        RuleStep::exhaustive("index-access", index_rules()),
        RuleStep::exhaustive("generic-translation", generic_rules()),
    ])
}

/// Step 1: rules that exploit index representations.
fn index_rules() -> Vec<Rule> {
    let mut rules = Vec::new();

    // --- selection on a B-tree key: exact match and ranges -------------
    // select(rel1, fun (t) a(t) OP c)  with rep(rel1, b1), b1 a btree on a
    //   =   ->  consume(exactmatch(b1, c))
    //   >=  ->  consume(range_from(b1, c))
    //   <=  ->  consume(range_to(b1, c))
    //   >,< ->  halfrange plus the original predicate as a filter.
    for (op, target, needs_filter) in [
        ("=", "exactmatch", false),
        (">=", "range_from", false),
        ("<=", "range_to", false),
        (">", "range_from", true),
        ("<", "range_to", true),
    ] {
        let lhs = TermPattern::apply(
            "select",
            vec![
                TermPattern::ObjectVar(sym("rel1")),
                TermPattern::bind_as(
                    "pred",
                    TermPattern::lambda(
                        &["t"],
                        TermPattern::Apply {
                            op: sos_optimizer::OpPat::Exact(sym(op)),
                            args: vec![
                                TermPattern::apply_var("a", vec![TermPattern::param("t")]),
                                TermPattern::ConstVar(sym("c")),
                            ],
                        },
                    ),
                ),
            ],
        );
        let search = app(target, vec![name("b1"), name("c")]);
        let rhs = if needs_filter {
            app("consume", vec![app("filter", vec![search, name("pred")])])
        } else {
            app("consume", vec![search])
        };
        rules.push(Rule {
            name: format!("select-btree-{op}"),
            lhs,
            conditions: vec![
                Condition::catalog_link("rep", "rel1", "b1"),
                Condition::btree_key_is("b1", "a"),
            ],
            rhs,
            // Cost-based alternative: a plain scan-and-filter over any
            // representation. Wins when the predicate qualifies most of
            // the relation (reading every leaf through the index is
            // slower than one sequential pass).
            alternatives: vec![RuleAlt {
                name: format!("select-btree-{op}-scan"),
                conditions: vec![Condition::catalog_link("rep", "rel1", "rep1")],
                rhs: app(
                    "consume",
                    vec![app(
                        "filter",
                        vec![app("feed", vec![name("rep1")]), name("pred")],
                    )],
                ),
            }],
        });
    }

    // --- deletion via an index search (the Section 6 trace:
    //     `delete (cities, cities ... range)`) ---------------------------
    // delete(rel1, fun (t) a(t) OP c) with a B-tree on a: find the doomed
    // tuples by an index search instead of a scan.
    for (op, target, needs_filter) in [
        ("=", "exactmatch", false),
        (">=", "range_from", false),
        ("<=", "range_to", false),
        (">", "range_from", true),
        ("<", "range_to", true),
    ] {
        let lhs = TermPattern::apply(
            "delete",
            vec![
                TermPattern::ObjectVar(sym("rel1")),
                TermPattern::bind_as(
                    "pred",
                    TermPattern::lambda(
                        &["t"],
                        TermPattern::Apply {
                            op: sos_optimizer::OpPat::Exact(sym(op)),
                            args: vec![
                                TermPattern::apply_var("a", vec![TermPattern::param("t")]),
                                TermPattern::ConstVar(sym("c")),
                            ],
                        },
                    ),
                ),
            ],
        );
        let search = app(target, vec![name("b1"), name("c")]);
        let doomed = if needs_filter {
            app("filter", vec![search, name("pred")])
        } else {
            search
        };
        rules.push(Rule {
            name: format!("delete-btree-{op}"),
            lhs,
            conditions: vec![
                Condition::type_is("rel1", rel_pattern("tuple1")),
                Condition::catalog_link("rep", "rel1", "b1"),
                Condition::btree_key_is("b1", "a"),
            ],
            rhs: app("delete", vec![name("b1"), doomed]),
            alternatives: Vec::new(),
        });
    }

    // --- conjunctive selection with an indexable conjunct ---------------
    // select(rel1, fun (t) a(t) OP c and REST(t))
    //   -> consume(filter(<index search>, fun (t) REST(t)))
    // (the index prunes by the indexable conjunct; the residue filters.)
    for (op, target, strict) in [
        ("=", "exactmatch", false),
        (">=", "range_from", false),
        ("<=", "range_to", false),
        (">", "range_from", true),
        ("<", "range_to", true),
    ] {
        let lhs = TermPattern::apply(
            "select",
            vec![
                TermPattern::ObjectVar(sym("rel1")),
                TermPattern::lambda(
                    &["t"],
                    TermPattern::apply(
                        "and",
                        vec![
                            TermPattern::as_fun(
                                "cmpf",
                                &["t"],
                                TermPattern::Apply {
                                    op: sos_optimizer::OpPat::Exact(sym(op)),
                                    args: vec![
                                        TermPattern::apply_var("a", vec![TermPattern::param("t")]),
                                        TermPattern::ConstVar(sym("c")),
                                    ],
                                },
                            ),
                            TermPattern::fun_app("restf", &["t"]),
                        ],
                    ),
                ),
            ],
        );
        let search = app(target, vec![name("b1"), name("c")]);
        // For strict comparisons the halfrange over-approximates at the
        // boundary: keep the comparison in the residual filter too.
        let residual = if strict {
            lam(
                &[("t", "t")],
                app(
                    "and",
                    vec![app("cmpf", vec![name("t")]), app("restf", vec![name("t")])],
                ),
            )
        } else {
            lam(&[("t", "t")], app("restf", vec![name("t")]))
        };
        let conditions = vec![
            Condition::catalog_link("rep", "rel1", "b1"),
            Condition::btree_key_is("b1", "a"),
        ];
        rules.push(Rule {
            name: format!("select-btree-and-{op}"),
            lhs,
            conditions,
            rhs: app("consume", vec![app("filter", vec![search, residual])]),
            alternatives: Vec::new(),
        });
    }

    // --- equi-join via hash join ----------------------------------------
    // join(rel1, rel2, fun (t1, t2) a1(t1) = a2(t2))
    //   -> consume(hashjoin(feed(rep1), feed(rep2), a1, a2))
    rules.push(Rule {
        name: "join-equi-hashjoin".into(),
        lhs: TermPattern::apply(
            "join",
            vec![
                TermPattern::ObjectVar(sym("rel1")),
                TermPattern::ObjectVar(sym("rel2")),
                TermPattern::lambda(
                    &["t1", "t2"],
                    TermPattern::apply(
                        "=",
                        vec![
                            TermPattern::apply_var("a1", vec![TermPattern::param("t1")]),
                            TermPattern::apply_var("a2", vec![TermPattern::param("t2")]),
                        ],
                    ),
                ),
            ],
        ),
        conditions: vec![
            Condition::catalog_link("rep", "rel1", "rep1"),
            Condition::catalog_link("rep", "rel2", "rep2"),
        ],
        rhs: app(
            "consume",
            vec![app(
                "hashjoin",
                vec![
                    app("feed", vec![name("rep1")]),
                    app("feed", vec![name("rep2")]),
                    name("a1"),
                    name("a2"),
                ],
            )],
        ),
        // Cost-based alternative: probe a B-tree on the right join
        // attribute once per left tuple. Wins at high cardinality skew
        // (small outer, large indexed inner); the attribute order of the
        // result (tuple1 ++ tuple2) matches the hash join's.
        alternatives: vec![RuleAlt {
            name: "join-equi-index-probe".into(),
            conditions: vec![
                Condition::catalog_link("rep", "rel2", "b2"),
                Condition::btree_key_is("b2", "a2"),
            ],
            rhs: app(
                "consume",
                vec![app(
                    "search_join",
                    vec![
                        app("feed", vec![name("rep1")]),
                        lam(
                            &[("t1", "t1")],
                            app("exactmatch", vec![name("b2"), app("a1", vec![name("t1")])]),
                        ),
                    ],
                )],
            ),
        }],
    });

    // --- the Section 5 rule: geometric join via LSD-tree ---------------
    // rel1 rel2 join[fun (t1, t2) (t1 point) inside (t2 region)]
    //   -> rep1 feed (fun (t1) lsd2 (t1 point) point_search
    //                 filter[fun (t2) (t1 point) inside (t2 region)])
    //      search_join consume
    let lhs = TermPattern::apply(
        "join",
        vec![
            TermPattern::ObjectVar(sym("rel1")),
            TermPattern::ObjectVar(sym("rel2")),
            TermPattern::lambda(
                &["t1", "t2"],
                TermPattern::apply(
                    "inside",
                    vec![
                        TermPattern::fun_app("pointf", &["t1"]),
                        TermPattern::fun_app("regionf", &["t2"]),
                    ],
                ),
            ),
        ],
    );
    let rhs = app(
        "consume",
        vec![app(
            "search_join",
            vec![
                app("feed", vec![name("rep1")]),
                lam(
                    &[("t1", "t1")],
                    app(
                        "filter",
                        vec![
                            app(
                                "point_search",
                                vec![name("lsd2"), app("pointf", vec![name("t1")])],
                            ),
                            lam(
                                &[("t2", "t2")],
                                app(
                                    "inside",
                                    vec![
                                        app("pointf", vec![name("t1")]),
                                        app("regionf", vec![name("t2")]),
                                    ],
                                ),
                            ),
                        ],
                    ),
                ),
            ],
        )],
    );
    rules.push(Rule {
        name: "join-inside-lsdtree".into(),
        lhs,
        conditions: vec![
            Condition::catalog_link("rep", "rel1", "rep1"),
            Condition::catalog_link("rep", "rel2", "lsd2"),
            Condition::type_is(
                "lsd2",
                TypePattern::cons(
                    "lsdtree",
                    vec![TypePattern::var("tuple2"), TypePattern::var("f")],
                ),
            ),
            Condition::lsd_indexes_bbox_of("lsd2", "regionf"),
        ],
        rhs,
        alternatives: Vec::new(),
    });

    // --- modify on the B-tree key attribute: re_insert (Section 6) -----
    rules.push(Rule {
        name: "modify-key-reinsert".into(),
        lhs: modify_lhs(),
        conditions: vec![
            Condition::type_is("rel1", rel_pattern("tuple1")),
            Condition::catalog_link("rep", "rel1", "b1"),
            Condition::btree_key_is("b1", "a"),
        ],
        rhs: app(
            "re_insert",
            vec![
                name("b1"),
                app("filter", vec![app("feed", vec![name("b1")]), name("pred")]),
                stream_lam(
                    "s",
                    "tuple1",
                    app("replace", vec![name("s"), name("a"), name("f")]),
                ),
            ],
        ),
        alternatives: Vec::new(),
    });

    rules
}

/// Step 2: generic model-to-representation translation.
#[allow(clippy::vec_init_then_push)]
fn generic_rules() -> Vec<Rule> {
    let mut rules = Vec::new();

    // select(rel1, pred) -> consume(filter(feed(rep1), pred))
    rules.push(Rule {
        name: "select-scan".into(),
        lhs: TermPattern::apply(
            "select",
            vec![
                TermPattern::ObjectVar(sym("rel1")),
                TermPattern::var("pred"),
            ],
        ),
        conditions: vec![
            Condition::type_is("rel1", rel_pattern("tuple1")),
            Condition::catalog_link("rep", "rel1", "rep1"),
        ],
        rhs: app(
            "consume",
            vec![app(
                "filter",
                vec![app("feed", vec![name("rep1")]), name("pred")],
            )],
        ),
        alternatives: Vec::new(),
    });

    // join(rel1, rel2, pred) -> scan-based search join (Section 4's first
    // plan): consume(search_join(feed(rep1),
    //   fun (t1) filter(feed(rep2), fun (t2) pred(t1, t2))))
    rules.push(Rule {
        name: "join-scan-searchjoin".into(),
        lhs: TermPattern::apply(
            "join",
            vec![
                TermPattern::ObjectVar(sym("rel1")),
                TermPattern::ObjectVar(sym("rel2")),
                TermPattern::bind_as(
                    "pred",
                    TermPattern::lambda(&["t1", "t2"], TermPattern::var("body")),
                ),
            ],
        ),
        conditions: vec![
            Condition::catalog_link("rep", "rel1", "rep1"),
            Condition::catalog_link("rep", "rel2", "rep2"),
        ],
        rhs: app(
            "consume",
            vec![app(
                "search_join",
                vec![
                    app("feed", vec![name("rep1")]),
                    lam(
                        &[("t1", "t1")],
                        app(
                            "filter",
                            vec![
                                app("feed", vec![name("rep2")]),
                                lam(&[("t2", "t2")], app("pred", vec![name("t1"), name("t2")])),
                            ],
                        ),
                    ),
                ],
            )],
        ),
        alternatives: Vec::new(),
    });

    // insert(rel1, t) -> insert(rep1, t)
    rules.push(Rule {
        name: "insert-model-to-rep".into(),
        lhs: TermPattern::apply(
            "insert",
            vec![TermPattern::ObjectVar(sym("rel1")), TermPattern::var("tup")],
        ),
        conditions: vec![
            Condition::type_is("rel1", rel_pattern("tuple1")),
            Condition::catalog_link("rep", "rel1", "rep1"),
        ],
        rhs: app("insert", vec![name("rep1"), name("tup")]),
        alternatives: Vec::new(),
    });

    // rel_insert(rel1, rel2) -> stream_insert(rep1, feed(rep2)):
    // bulk-appending one represented relation into another.
    rules.push(Rule {
        name: "rel-insert-model-to-rep".into(),
        lhs: TermPattern::apply(
            "rel_insert",
            vec![
                TermPattern::ObjectVar(sym("rel1")),
                TermPattern::ObjectVar(sym("rel2")),
            ],
        ),
        conditions: vec![
            Condition::type_is("rel1", rel_pattern("tuple1")),
            Condition::catalog_link("rep", "rel1", "rep1"),
            Condition::catalog_link("rep", "rel2", "rep2"),
        ],
        rhs: app(
            "stream_insert",
            vec![name("rep1"), app("feed", vec![name("rep2")])],
        ),
        alternatives: Vec::new(),
    });

    // delete(rel1, pred) -> delete(rep1, filter(feed(rep1), pred))
    // (tuples to delete are found by a search on the representation,
    // Section 6).
    rules.push(Rule {
        name: "delete-model-to-rep".into(),
        lhs: TermPattern::apply(
            "delete",
            vec![
                TermPattern::ObjectVar(sym("rel1")),
                TermPattern::var("pred"),
            ],
        ),
        conditions: vec![
            Condition::type_is("rel1", rel_pattern("tuple1")),
            Condition::catalog_link("rep", "rel1", "rep1"),
        ],
        rhs: app(
            "delete",
            vec![
                name("rep1"),
                app(
                    "filter",
                    vec![app("feed", vec![name("rep1")]), name("pred")],
                ),
            ],
        ),
        alternatives: Vec::new(),
    });

    // modify(rel1, pred, a, f) on a non-key attribute -> in-situ modify.
    // The `b1 : btree(...)` guard is load-bearing: the in-situ `modify`
    // operator only exists for B-trees, and without the guard the
    // negated key condition holds vacuously for any non-btree
    // representation, rewriting to an ill-typed plan (caught by L006).
    rules.push(Rule {
        name: "modify-model-to-rep".into(),
        lhs: modify_lhs(),
        conditions: vec![
            Condition::type_is("rel1", rel_pattern("tuple1")),
            Condition::catalog_link("rep", "rel1", "b1"),
            Condition::type_is(
                "b1",
                TypePattern::cons(
                    "btree",
                    vec![
                        TypePattern::var("btuple"),
                        TypePattern::var("bkey"),
                        TypePattern::var("bdtype"),
                    ],
                ),
            ),
            Condition::negated(Condition::btree_key_is("b1", "a")),
        ],
        rhs: app(
            "modify",
            vec![
                name("b1"),
                app("filter", vec![app("feed", vec![name("b1")]), name("pred")]),
                stream_lam(
                    "s",
                    "tuple1",
                    app("replace", vec![name("s"), name("a"), name("f")]),
                ),
            ],
        ),
        alternatives: Vec::new(),
    });

    rules
}

/// LHS shared by the two modify rules:
/// `modify(rel1, pred, a, f)`.
fn modify_lhs() -> TermPattern {
    TermPattern::apply(
        "modify",
        vec![
            TermPattern::ObjectVar(sym("rel1")),
            TermPattern::var("pred"),
            TermPattern::ConstVar(sym("a")),
            TermPattern::var("f"),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::builtin_optimizer;
    use crate::builtin::builtin_signature;
    use sos_optimizer::synth::{verify_optimizer, Verdict};

    /// Every builtin rule must fire on at least one synthesized witness
    /// and preserve the plan's (representation-equivalent) type — the
    /// soundness property L006 enforces for user rules.
    #[test]
    fn builtin_rules_fire_and_preserve_types() {
        let sig = builtin_signature();
        let opt = builtin_optimizer();
        let mut failures = Vec::new();
        for r in verify_optimizer(&sig, &opt) {
            match r.verdict {
                Verdict::Preserves { fired } if fired > 0 => {}
                other => failures.push(format!("{}/{}: {:?}", r.step, r.rule, other)),
            }
        }
        assert!(
            failures.is_empty(),
            "builtin rules failed verification:\n{}",
            failures.join("\n")
        );
    }
}
