//! The built-in specification: the paper's relational data model
//! (Section 2) and representation model (Section 4), written in the
//! specification language and parsed at startup, plus the type operators
//! (Δ functions) the specs reference.

use sos_core::{sym, DataType, Signature, Symbol, TypeArg};
use sos_parser::parse_spec;

/// The built-in specification text. Every kind, constructor, subtype and
/// operator of the paper's examples appears here; see the module docs of
/// `sos_parser::spec` for the notation.
pub const BUILTIN_SPEC: &str = r##"
kinds IDENT, DATA, ORD, NUM, TUPLE, REL, STREAM, SREL, TIDREL, BTREE, KBTREE, MBTREE, LSDTREE, RELREP, CATALOG

constructors
  hybrid cons ident : -> IDENT
  hybrid cons int, real, string, bool : -> DATA
  hybrid cons point, rect, pgon : -> DATA
  hybrid cons tuple : (ident x DATA)+ -> TUPLE
  model  cons rel : TUPLE -> REL
  rep    cons stream : TUPLE -> STREAM
  rep    cons srel : TUPLE -> SREL
  rep    cons tidrel : TUPLE -> TIDREL
  rep    cons btree : forall tuple: tuple(list) in TUPLE .
                      forall dtype in ORD .
                      forall (attrname, dtype) in list .
                      tuple x attrname x dtype -> BTREE
  rep    cons mbtree : forall tuple: tuple(list) in TUPLE .
                       tuple x ident+ -> MBTREE
  rep    cons kbtree : forall tuple in TUPLE . forall ord in ORD .
                       tuple x (tuple -> ord) -> KBTREE
  rep    cons lsdtree : forall tuple in TUPLE .
                        tuple x (tuple -> rect) -> LSDTREE
  rep    cons relrep : TUPLE -> RELREP
  hybrid cons catalog : (IDENT | DATA)+ -> CATALOG

kind ORD contains int, real, string, bool
kind NUM contains int, real

subtypes
  subtype srel(tuple) < relrep(tuple)
  subtype tidrel(tuple) < relrep(tuple)
  subtype btree(tuple, attrname, dtype) < relrep(tuple)
  subtype kbtree(tuple, f) < relrep(tuple)
  subtype mbtree(tuple, attrs) < relrep(tuple)
  subtype lsdtree(tuple, f) < relrep(tuple)

operators

-- comparisons: equality over any DATA, order over ORD (Section 2.2)
  op =, != : forall data in DATA . data x data -> bool syntax infix 3
  op <, <=, >, >= : forall ord in ORD . ord x ord -> bool syntax infix 3

-- arithmetic with numeric promotion
  op + : int x int -> int syntax infix 5
  op + : real x real -> real syntax infix 5
  op + : int x real -> real syntax infix 5
  op + : real x int -> real syntax infix 5
  op - : int x int -> int syntax infix 5
  op - : real x real -> real syntax infix 5
  op - : int x real -> real syntax infix 5
  op - : real x int -> real syntax infix 5
  op * : int x int -> int syntax infix 6
  op * : real x real -> real syntax infix 6
  op * : int x real -> real syntax infix 6
  op * : real x int -> real syntax infix 6
  op / : forall a in NUM . forall b in NUM . a x b -> real syntax infix 6
  op div, mod : int x int -> int syntax infix 6

-- logic
  op and : bool x bool -> bool syntax infix 2
  op or : bool x bool -> bool syntax infix 1
  op not : bool -> bool

-- geometry (Section 4)
  op bbox : pgon -> rect
  op inside : point x pgon -> bool syntax infix 3
  op inside : point x rect -> bool syntax infix 3
  op inside : rect x rect -> bool syntax infix 3
  op intersects : rect x rect -> bool syntax infix 3
  op makepoint : int x int -> point
  op makepoint : real x real -> point
  op makerect : real x real x real x real -> rect
  op makerect : int x int x int x int -> rect
  op makepgon : forall a_i in NUM . forall b_i in NUM . (a_i x b_i)+ -> pgon syntax "#[ ... ]"
  op area : pgon -> real
  op area : rect -> real
  op distance : point x point -> real

-- tuple attribute access (Section 2.2): one operator per attribute
  op $attrname : forall tuple: tuple(list) in TUPLE .
                 forall (attrname, dtype) in list .
                 tuple -> dtype syntax "_ #"

-- tuple construction (used by example programs to enter values)
  hybrid op mktuple : forall data_i in DATA . (ident x data_i)+ -> t : TUPLE syntax "#[ ... ]"

-- the relational model algebra (Section 2.2)
  model op select : forall rel: rel(tuple) in REL .
                    rel x (tuple -> bool) -> rel syntax "_ #[ _ ]"
  model op join : forall rel1: rel(tuple1) in REL . forall rel2: rel(tuple2) in REL .
                  rel1 x rel2 x (tuple1 x tuple2 -> bool) -> rel : REL syntax "_ _ #[ _ ]"
  model op union : forall rel in REL . rel+ -> rel syntax "_ #"
  hybrid op count : forall rel in REL . rel -> int syntax "_ #"
  hybrid op count : forall stream in STREAM . stream -> int syntax "_ #"
  hybrid op count : forall r: relrep(tuple) in RELREP . r -> int syntax "_ #"

-- relational update functions (Section 6)
  model op insert : forall rel: rel(tuple) in REL . rel x tuple -> rel update
  model op rel_insert : forall rel in REL . rel x rel -> rel update
  model op delete : forall rel: rel(tuple) in REL . rel x (tuple -> bool) -> rel update
  model op modify : forall rel: rel(tuple: tuple(list)) in REL .
                    forall (attrname, dtype) in list .
                    rel x (tuple -> bool) x attrname x (tuple -> dtype) -> rel update

-- streams and query processing (Section 4)
  rep op feed : forall relrep: relrep(tuple) in RELREP . relrep -> stream(tuple) syntax "_ #"
  rep op filter : forall stream: stream(tuple) in STREAM .
                  stream x (tuple -> bool) -> stream syntax "_ #[ _ ]"
  rep op project : forall stream: stream(tuple) in STREAM . forall data_i in DATA .
                   stream x (ident x (tuple -> data_i))+ -> s : STREAM syntax "_ #[ ... ]"
  rep op replace : forall stream: stream(tuple: tuple(list)) in STREAM .
                   forall (attrname, dtype) in list .
                   stream x attrname x (tuple -> dtype) -> stream syntax "_ #[ _ , _ ]"
  rep op collect : forall stream: stream(tuple) in STREAM . stream -> srel(tuple) syntax "_ #"
  hybrid op consume : forall stream: stream(tuple) in STREAM . stream -> rel(tuple) syntax "_ #"
  rep op search_join : forall stream1: stream(tuple1) in STREAM . forall stream2 in STREAM .
                       stream1 x (tuple1 -> stream2) -> s : STREAM syntax "_ _ #"
  rep op hashjoin : forall stream1: stream(tuple1: tuple(list1)) in STREAM .
                    forall stream2: stream(tuple2: tuple(list2)) in STREAM .
                    forall (a1, d1) in list1 . forall (a2, d2) in list2 .
                    stream1 x stream2 x a1 x a2 -> s : STREAM syntax "_ _ #[ _ , _ ]"
  rep op head : forall stream in STREAM . stream x int -> stream syntax "_ #[ _ ]"
  rep op sortby : forall stream: stream(tuple: tuple(list)) in STREAM .
                  forall (attrname, dtype) in list .
                  stream x attrname -> stream syntax "_ #[ _ ]"
  rep op rdup : forall stream in STREAM . stream -> stream syntax "_ #"
  rep op sum : forall stream: stream(tuple: tuple(list)) in STREAM .
               forall dtype in NUM .
               forall (attrname, dtype) in list .
               stream x attrname -> dtype syntax "_ #[ _ ]"
  rep op min, max : forall stream: stream(tuple: tuple(list)) in STREAM .
                    forall dtype in ORD .
                    forall (attrname, dtype) in list .
                    stream x attrname -> dtype syntax "_ #[ _ ]"
  rep op avg : forall stream: stream(tuple: tuple(list)) in STREAM .
               forall dtype in NUM .
               forall (attrname, dtype) in list .
               stream x attrname -> real syntax "_ #[ _ ]"

-- index search (Section 4; halfrange operators realize bottom/top)
  rep op range : forall btree: btree(tuple, attrname, dtype) in BTREE .
                 btree x dtype x dtype -> stream(tuple) syntax "_ #[ _ , _ ]"
  rep op range_from : forall btree: btree(tuple, attrname, dtype) in BTREE .
                      btree x dtype -> stream(tuple) syntax "_ #[ _ ]"
  rep op range_to : forall btree: btree(tuple, attrname, dtype) in BTREE .
                    btree x dtype -> stream(tuple) syntax "_ #[ _ ]"
  rep op exactmatch : forall btree: btree(tuple, attrname, dtype) in BTREE .
                      btree x dtype -> stream(tuple) syntax "_ #[ _ ]"
  rep op range : forall kbtree: kbtree(tuple, f) in KBTREE . forall ord in ORD .
                 kbtree x ord x ord -> stream(tuple) syntax "_ #[ _ , _ ]"
  rep op prefixmatch : forall mbtree: mbtree(tuple, attrs) in MBTREE . forall ord in ORD .
                       mbtree x ord -> stream(tuple) syntax "_ #[ _ ]"
  rep op prefixrange : forall mbtree: mbtree(tuple, attrs) in MBTREE .
                       forall o1 in ORD . forall o2 in ORD .
                       mbtree x o1 x o2 x o2 -> stream(tuple) syntax "_ #[ _ , _ , _ ]"
  rep op point_search : forall lsdtree: lsdtree(tuple, f) in LSDTREE .
                        lsdtree x point -> stream(tuple) syntax "_ _ #"
  rep op overlap_search : forall lsdtree: lsdtree(tuple, f) in LSDTREE .
                          lsdtree x rect -> stream(tuple) syntax "_ _ #"

-- representation update functions (Section 6)
  rep op insert : forall btree: btree(tuple, attrname, dtype) in BTREE . btree x tuple -> btree update
  rep op insert : forall kbtree: kbtree(tuple, f) in KBTREE . kbtree x tuple -> kbtree update
  rep op insert : forall mbtree: mbtree(tuple, attrs) in MBTREE . mbtree x tuple -> mbtree update
  rep op stream_insert : forall mbtree: mbtree(tuple, attrs) in MBTREE .
                         mbtree x stream(tuple) -> mbtree update
  rep op delete : forall mbtree: mbtree(tuple, attrs) in MBTREE .
                  mbtree x stream(tuple) -> mbtree update
  rep op insert : forall lsdtree: lsdtree(tuple, f) in LSDTREE . lsdtree x tuple -> lsdtree update
  rep op insert : forall srel: srel(tuple) in SREL . srel x tuple -> srel update
  rep op insert : forall tidrel: tidrel(tuple) in TIDREL . tidrel x tuple -> tidrel update
  rep op stream_insert : forall btree: btree(tuple, attrname, dtype) in BTREE .
                         btree x stream(tuple) -> btree update
  rep op stream_insert : forall kbtree: kbtree(tuple, f) in KBTREE .
                         kbtree x stream(tuple) -> kbtree update
  rep op stream_insert : forall lsdtree: lsdtree(tuple, f) in LSDTREE .
                         lsdtree x stream(tuple) -> lsdtree update
  rep op stream_insert : forall tidrel: tidrel(tuple) in TIDREL .
                         tidrel x stream(tuple) -> tidrel update
  rep op stream_insert : forall srel: srel(tuple) in SREL .
                         srel x stream(tuple) -> srel update
  rep op delete : forall btree: btree(tuple, attrname, dtype) in BTREE .
                  btree x stream(tuple) -> btree update
  rep op delete : forall kbtree: kbtree(tuple, f) in KBTREE .
                  kbtree x stream(tuple) -> kbtree update
  rep op delete : forall lsdtree: lsdtree(tuple, f) in LSDTREE .
                  lsdtree x stream(tuple) -> lsdtree update
  rep op delete : forall tidrel: tidrel(tuple) in TIDREL .
                  tidrel x stream(tuple) -> tidrel update
  rep op delete : forall srel: srel(tuple) in SREL .
                  srel x stream(tuple) -> srel update
  rep op modify : forall btree: btree(tuple, attrname, dtype) in BTREE .
                  btree x stream(tuple) x (stream(tuple) -> stream(tuple)) -> btree update
  rep op re_insert : forall btree: btree(tuple, attrname, dtype) in BTREE .
                     btree x stream(tuple) x (stream(tuple) -> stream(tuple)) -> btree update

-- maintenance: rebuild a clustering B-tree (reclaims lazily deleted
-- pages; an engineering extension, see DESIGN.md)
  rep op vacuum : forall btree: btree(tuple, attrname, dtype) in BTREE . btree -> btree update
  rep op vacuum : forall kbtree: kbtree(tuple, f) in KBTREE . kbtree -> kbtree update
  rep op vacuum : forall mbtree: mbtree(tuple, attrs) in MBTREE . mbtree -> mbtree update

-- the catalog (Section 6): membership usable as a predicate in rules
  hybrid op insert : forall cat in CATALOG . cat x ident x ident -> cat update
"##;

/// Build the built-in signature: parse the specification and register
/// the type operators its `-> v : KIND` results reference.
pub fn builtin_signature() -> Signature {
    let mut sig = Signature::new();
    parse_spec(BUILTIN_SPEC, &mut sig).expect("built-in specification must parse");
    register_type_ops(&mut sig);
    sig
}

fn bound_tuple(bindings: &sos_core::pattern::Bindings, var: &str) -> Result<DataType, String> {
    match bindings.get(&sym(var)) {
        Some(TypeArg::Type(t)) => Ok(t.clone()),
        other => Err(format!(
            "type variable `{var}` not bound to a type: {other:?}"
        )),
    }
}

/// Register the Δ functions: `join`, `search_join`, `project`, `mktuple`.
pub fn register_type_ops(sig: &mut Signature) {
    // join: concatenation of the two operand tuple types (Section 2.2:
    // "it is part of the semantics of the join operator").
    sig.add_type_op("join", |ctx| {
        let t1 = bound_tuple(ctx.bindings, "tuple1")?;
        let t2 = bound_tuple(ctx.bindings, "tuple2")?;
        let mut attrs = t1.tuple_attrs().ok_or("tuple1 is not a tuple type")?;
        let attrs2 = t2.tuple_attrs().ok_or("tuple2 is not a tuple type")?;
        for (a, _) in &attrs2 {
            if attrs.iter().any(|(b, _)| b == a) {
                return Err(format!("join would duplicate attribute `{a}`"));
            }
        }
        attrs.extend(attrs2);
        Ok(DataType::rel(DataType::tuple(attrs)))
    });

    // search_join: outer tuple type concatenated with the inner stream's
    // tuple type.
    sig.add_type_op("search_join", |ctx| {
        let t1 = bound_tuple(ctx.bindings, "tuple1")?;
        let s2 = bound_tuple(ctx.bindings, "stream2")?;
        let t2 = s2
            .single_type_arg()
            .ok_or("inner stream type has no tuple")?;
        let mut attrs = t1.tuple_attrs().ok_or("tuple1 is not a tuple type")?;
        let attrs2 = t2.tuple_attrs().ok_or("inner tuple is not a tuple type")?;
        for (a, _) in &attrs2 {
            if attrs.iter().any(|(b, _)| b == a) {
                return Err(format!("search_join would duplicate attribute `{a}`"));
            }
        }
        attrs.extend(attrs2);
        Ok(DataType::stream(DataType::tuple(attrs)))
    });

    // hashjoin: concatenation of both stream tuple types.
    sig.add_type_op("hashjoin", |ctx| {
        let t1 = bound_tuple(ctx.bindings, "tuple1")?;
        let t2 = bound_tuple(ctx.bindings, "tuple2")?;
        let mut attrs = t1.tuple_attrs().ok_or("tuple1 is not a tuple type")?;
        let attrs2 = t2.tuple_attrs().ok_or("tuple2 is not a tuple type")?;
        for (a, _) in &attrs2 {
            if attrs.iter().any(|(b, _)| b == a) {
                return Err(format!("hashjoin would duplicate attribute `{a}`"));
            }
        }
        attrs.extend(attrs2);
        Ok(DataType::stream(DataType::tuple(attrs)))
    });

    // project: the result tuple is built from the (name, function) pairs
    // of the second argument.
    sig.add_type_op("project", |ctx| {
        let attrs = pairs_to_attrs(ctx.args.get(1), "project")?;
        Ok(DataType::stream(DataType::tuple(attrs)))
    });

    // mktuple: the tuple type of the given (name, value) pairs.
    sig.add_type_op("mktuple", |ctx| {
        let attrs = pairs_to_attrs(ctx.args.first(), "mktuple")?;
        Ok(DataType::tuple(attrs))
    });
}

/// Extract `(attribute, type)` pairs from a typed list-of-pairs argument
/// (each pair is an ident constant and a value or function term).
fn pairs_to_attrs(
    arg: Option<&sos_core::typed::TypedExpr>,
    op: &str,
) -> Result<Vec<(Symbol, DataType)>, String> {
    use sos_core::typed::TypedNode;
    let arg = arg.ok_or_else(|| format!("`{op}` needs a list argument"))?;
    let TypedNode::List(items) = &arg.node else {
        return Err(format!("`{op}` needs a list of pairs"));
    };
    let mut attrs = Vec::with_capacity(items.len());
    for item in items {
        let TypedNode::Tuple(comps) = &item.node else {
            return Err(format!("`{op}` list elements must be pairs"));
        };
        let [name_node, value_node] = comps.as_slice() else {
            return Err(format!("`{op}` pairs must be binary"));
        };
        let TypedNode::Const(sos_core::Const::Ident(name)) = &name_node.node else {
            return Err(format!("`{op}` pair must start with an attribute name"));
        };
        // A function component contributes its result type; a plain value
        // its own type.
        let ty = match &value_node.ty {
            DataType::Fun(_, res) => (**res).clone(),
            other => other.clone(),
        };
        if attrs.iter().any(|(a, _)| a == name) {
            return Err(format!("duplicate attribute `{name}` in `{op}`"));
        }
        attrs.push((name.clone(), ty));
    }
    Ok(attrs)
}
