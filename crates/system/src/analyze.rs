//! `analyze`: collect per-object statistics into the catalog.
//!
//! Statistics drive the cost model (see `sos_optimizer::cost`): row
//! counts, page counts, an equi-width histogram over a B-tree's key
//! attribute, the bounding box and a center-x histogram for LSD-trees,
//! and per-partition row counts for partitioned objects. They live in
//! the [`sos_catalog::Catalog`] and therefore persist through
//! [`crate::Database::save`] / [`crate::Database::open_dir`] and through
//! WAL crash recovery (the catalog rides in every commit's meta
//! snapshot). Statistics are an *estimate* refreshed only by `analyze`;
//! a stale histogram can mis-rank plans but never makes one incorrect —
//! candidate plans are always type-checked.

use crate::{Database, SystemError};
use sos_catalog::{BBox, Histogram, ObjectStats, HISTOGRAM_BUCKETS};
use sos_core::{DataType, Symbol};
use sos_exec::ops::streams::feed_value;
use sos_exec::Value;
use sos_optimizer::btree_key_attr;

/// Heuristic tuples-per-page for representations that do not expose a
/// physical page count (in-memory relations, streams); matches the cost
/// model's `TUPLES_PER_PAGE`.
const TUPLES_PER_PAGE: u64 = 64;

impl Database {
    /// Collect statistics for one object and store them in the catalog,
    /// replacing any previous statistics for it. Errors if the object
    /// does not exist or its value is not relation-like (does not
    /// `feed`).
    pub fn analyze(&mut self, name: &str) -> Result<ObjectStats, SystemError> {
        let key = Symbol::new(name);
        let ty = self
            .catalog
            .object(&key)
            .ok_or_else(|| SystemError::UnknownObject(key.clone()))?
            .ty
            .clone();
        let value = self.store.get(&key).cloned().unwrap_or(Value::Undefined);
        let stats = object_stats(&ty, &value)?;
        let tx = self.begin_stmt()?;
        self.catalog.set_stats(key.clone(), stats.clone());
        self.commit_stmt(tx)?;
        self.invalidate_plans_for(&key);
        Ok(stats)
    }

    /// Analyze every relation-like object in the catalog (objects whose
    /// values do not `feed` — atoms, functions, catalogs — are skipped).
    /// Returns the analyzed names and their statistics, sorted by name.
    pub fn analyze_all(&mut self) -> Result<Vec<(Symbol, ObjectStats)>, SystemError> {
        let mut names: Vec<Symbol> = self
            .catalog
            .objects()
            .filter(|entry| {
                matches!(
                    self.store.get(&entry.name),
                    Some(
                        Value::Rel(_)
                            | Value::Stream(_)
                            | Value::SRel(_)
                            | Value::TidRel(_)
                            | Value::BTree(_)
                            | Value::LsdTree(_)
                            | Value::Part(_)
                    )
                )
            })
            .map(|entry| entry.name.clone())
            .collect();
        names.sort();
        let mut out = Vec::with_capacity(names.len());
        for name in names {
            let stats = self.analyze(name.as_str())?;
            out.push((name, stats));
        }
        Ok(out)
    }
}

/// Compute statistics for one object value of declared type `ty`.
fn object_stats(ty: &DataType, value: &Value) -> Result<ObjectStats, SystemError> {
    let tuples = feed_value(value)?;
    let mut stats = ObjectStats {
        rows: tuples.len() as u64,
        pages: physical_pages(value)?.max(1),
        ..ObjectStats::default()
    };
    if let Value::Part(h) = value {
        for p in &h.parts {
            stats.partition_rows.push(feed_value(p)?.len() as u64);
        }
    }
    if let Some(attr) = btree_key_attr(ty) {
        if let Some(idx) = attr_index_of(ty, &attr) {
            let values: Vec<f64> = tuples
                .iter()
                .filter_map(|t| match t {
                    Value::Tuple(fields) => numeric(fields.get(idx)?),
                    _ => None,
                })
                .collect();
            stats.key_histogram = Histogram::build(&values, HISTOGRAM_BUCKETS);
            stats.key_attr = Some(attr);
        }
    }
    let rects = collect_rects(value)?;
    if !rects.is_empty() {
        let mut bbox = BBox {
            x0: f64::INFINITY,
            y0: f64::INFINITY,
            x1: f64::NEG_INFINITY,
            y1: f64::NEG_INFINITY,
        };
        let mut centers = Vec::with_capacity(rects.len());
        for r in &rects {
            bbox.x0 = bbox.x0.min(r.min_x);
            bbox.y0 = bbox.y0.min(r.min_y);
            bbox.x1 = bbox.x1.max(r.max_x);
            bbox.y1 = bbox.y1.max(r.max_y);
            centers.push((r.min_x + r.max_x) / 2.0);
        }
        stats.bbox = Some(bbox);
        // A one-dimensional equi-width histogram over rect centers
        // (x-axis): enough to rank spatial probes against full scans
        // without a full spatial grid.
        stats.rect_histogram = Histogram::build(&centers, HISTOGRAM_BUCKETS);
    }
    Ok(stats)
}

/// The physical page count of a representation value, or a
/// tuples-per-page estimate for values without one.
fn physical_pages(value: &Value) -> Result<u64, SystemError> {
    Ok(match value {
        Value::SRel(h) | Value::TidRel(h) => h.pages().len() as u64,
        Value::BTree(h) => h.tree.page_count().map_err(SystemError::from)? as u64,
        Value::Part(h) => {
            let mut total = 0;
            for p in &h.parts {
                total += physical_pages(p)?;
            }
            total
        }
        other => {
            let rows = feed_value(other)?.len() as u64;
            rows.div_ceil(TUPLES_PER_PAGE)
        }
    })
}

/// The indexed rectangles of an LSD-tree value (empty for anything else).
fn collect_rects(value: &Value) -> Result<Vec<sos_geom::Rect>, SystemError> {
    Ok(match value {
        Value::LsdTree(h) => h
            .tree
            .scan()
            .map_err(SystemError::from)?
            .into_iter()
            .map(|e| e.rect)
            .collect(),
        Value::Part(h) => {
            let mut out = Vec::new();
            for p in &h.parts {
                out.extend(collect_rects(p)?);
            }
            out
        }
        _ => Vec::new(),
    })
}

/// The position of `attr` in the tuple type a representation type wraps.
fn attr_index_of(ty: &DataType, attr: &Symbol) -> Option<usize> {
    let DataType::Cons(_, args) = ty else {
        return None;
    };
    let sos_core::TypeArg::Type(tuple) = args.first()? else {
        return None;
    };
    tuple.tuple_attrs()?.iter().position(|(a, _)| a == attr)
}

/// A numeric field as `f64` (histograms cover int and real keys).
fn numeric(v: &Value) -> Option<f64> {
    match v {
        Value::Int(x) => Some(*x as f64),
        Value::Real(x) => Some(*x),
        _ => None,
    }
}
