//! Saving and opening databases (an engineering extension; see
//! DESIGN.md).
//!
//! A database directory holds two artifacts: `pages.db` — the page file
//! all representation structures live in — and `snapshot.json` — the
//! catalog (named types, objects, catalog relations) plus the persistent
//! image of every object value ([`sos_exec::stored::StoredValue`]).
//! Function values (views) have no persistent image; `save` reports
//! their names so callers can re-create them from their defining
//! statements.

use crate::{Database, SystemError};
use sos_catalog::Catalog;
use sos_core::Symbol;
use sos_exec::stored::{from_stored, to_stored, StoredValue};
use sos_storage::{BufferPool, FileDisk};
use std::path::Path;
use std::sync::Arc;

/// The serialized sidecar next to the page file.
#[derive(serde::Serialize, serde::Deserialize)]
struct Snapshot {
    catalog: Catalog,
    store: Vec<(Symbol, StoredValue)>,
}

const PAGES: &str = "pages.db";
const SNAPSHOT: &str = "snapshot.json";

impl Database {
    /// Create a database whose pages live in `dir` (created if absent).
    /// If the directory holds a previous [`Database::save`], its catalog
    /// and objects are restored.
    pub fn open_dir(dir: &Path) -> Result<Database, SystemError> {
        std::fs::create_dir_all(dir).map_err(persist_err)?;
        let disk = FileDisk::open(&dir.join(PAGES)).map_err(SystemError::from)?;
        let pool = Arc::new(BufferPool::new(Arc::new(disk), 4096));
        let mut db = Database::builder().pool(pool).build();
        let snap_path = dir.join(SNAPSHOT);
        if snap_path.exists() {
            let json = std::fs::read_to_string(&snap_path).map_err(persist_err)?;
            let snap: Snapshot = serde_json::from_str(&json).map_err(persist_err)?;
            db.catalog = snap.catalog;
            for (name, stored) in snap.store {
                let ty = db
                    .catalog
                    .object(&name)
                    .ok_or_else(|| SystemError::UnknownObject(name.clone()))?
                    .ty
                    .clone();
                let value = from_stored(&db.engine, &db.sig, &db.catalog, &ty, stored)?;
                db.store.insert(name, value);
            }
        }
        Ok(db)
    }

    /// Persist the database into `dir`: flush all pages and write the
    /// catalog + value snapshot. Returns the names of objects whose
    /// values could not be persisted (function-valued views) — their
    /// types survive, their defining `update` must be re-run after
    /// [`Database::open_dir`].
    pub fn save(&self, dir: &Path) -> Result<Vec<Symbol>, SystemError> {
        std::fs::create_dir_all(dir).map_err(persist_err)?;
        self.engine.pool.flush_all().map_err(SystemError::from)?;
        let mut store = Vec::new();
        let mut skipped = Vec::new();
        for (name, value) in &self.store {
            match to_stored(value)? {
                Some(sv) => store.push((name.clone(), sv)),
                None => skipped.push(name.clone()),
            }
        }
        store.sort_by(|a, b| a.0.cmp(&b.0));
        skipped.sort();
        let snap = Snapshot {
            catalog: self.catalog.clone(),
            store,
        };
        let json = serde_json::to_string(&snap).map_err(persist_err)?;
        std::fs::write(dir.join(SNAPSHOT), json).map_err(persist_err)?;
        Ok(skipped)
    }
}

fn persist_err(e: impl std::fmt::Display) -> SystemError {
    SystemError::Persist(e.to_string())
}
