//! Saving and opening databases (an engineering extension; see
//! DESIGN.md).
//!
//! A database directory holds two artifacts: `pages.db` — the page file
//! all representation structures live in — and `snapshot.json` — the
//! catalog (named types, objects, catalog relations) plus the persistent
//! image of every object value ([`sos_exec::stored::StoredValue`]).
//! Function values (views) have no persistent image; `save` reports
//! their names so callers can re-create them from their defining
//! statements.

use crate::{Database, SystemError};
use sos_catalog::Catalog;
use sos_core::Symbol;
use sos_exec::stored::{from_stored, to_stored, StoredValue};
use sos_storage::{BufferPool, FileDisk};
use std::path::Path;
use std::sync::Arc;

/// The serialized sidecar next to the page file.
#[derive(serde::Serialize, serde::Deserialize)]
struct Snapshot {
    catalog: Catalog,
    store: Vec<(Symbol, StoredValue)>,
}

const PAGES: &str = "pages.db";
const SNAPSHOT: &str = "snapshot.json";

impl Database {
    /// Create a database whose pages live in `dir` (created if absent).
    /// If the directory holds a previous [`Database::save`], its catalog
    /// and objects are restored.
    pub fn open_dir(dir: &Path) -> Result<Database, SystemError> {
        std::fs::create_dir_all(dir).map_err(persist_err)?;
        let disk = FileDisk::open(&dir.join(PAGES)).map_err(SystemError::from)?;
        let pool = Arc::new(BufferPool::new(Arc::new(disk), 4096));
        let mut db = Database::builder().pool(pool).build();
        let snap_path = dir.join(SNAPSHOT);
        if snap_path.exists() {
            let json = std::fs::read_to_string(&snap_path).map_err(persist_err)?;
            db.install_snapshot(json.as_bytes())?;
        }
        Ok(db)
    }

    /// Serialize the current catalog + object values — the payload a
    /// durable commit logs as its meta record, and what `save` writes
    /// next to the page file. Function-valued objects (views) have no
    /// persistent image and are silently skipped here; [`Database::save`]
    /// reports them.
    pub(crate) fn snapshot_bytes(&self) -> Result<Vec<u8>, SystemError> {
        let (snap, _) = self.make_snapshot()?;
        let json = serde_json::to_string(&snap).map_err(persist_err)?;
        Ok(json.into_bytes())
    }

    /// Install a serialized snapshot: replace the catalog and rebuild
    /// every object value from its stored image (representation handles
    /// re-attach to pages already on — or recovered to — the data disk).
    pub(crate) fn install_snapshot(&mut self, bytes: &[u8]) -> Result<(), SystemError> {
        let json = std::str::from_utf8(bytes).map_err(persist_err)?;
        let snap: Snapshot = serde_json::from_str(json).map_err(persist_err)?;
        self.catalog = snap.catalog;
        self.store.clear();
        for (name, stored) in snap.store {
            let ty = self
                .catalog
                .object(&name)
                .ok_or_else(|| SystemError::UnknownObject(name.clone()))?
                .ty
                .clone();
            let value = from_stored(&self.engine, &self.sig, &self.catalog, &ty, stored)?;
            self.store.insert(name, value);
        }
        Ok(())
    }

    fn make_snapshot(&self) -> Result<(Snapshot, Vec<Symbol>), SystemError> {
        let mut store = Vec::new();
        let mut skipped = Vec::new();
        for (name, value) in &self.store {
            match to_stored(value)? {
                Some(sv) => store.push((name.clone(), sv)),
                None => skipped.push(name.clone()),
            }
        }
        store.sort_by(|a, b| a.0.cmp(&b.0));
        skipped.sort();
        Ok((
            Snapshot {
                catalog: self.catalog.clone(),
                store,
            },
            skipped,
        ))
    }

    /// Persist the database into `dir`: flush all pages and write the
    /// catalog + value snapshot. Returns the names of objects whose
    /// values could not be persisted (function-valued views) — their
    /// types survive, their defining `update` must be re-run after
    /// [`Database::open_dir`].
    pub fn save(&self, dir: &Path) -> Result<Vec<Symbol>, SystemError> {
        std::fs::create_dir_all(dir).map_err(persist_err)?;
        self.engine.pool.flush_all().map_err(SystemError::from)?;
        let (snap, skipped) = self.make_snapshot()?;
        let json = serde_json::to_string(&snap).map_err(persist_err)?;
        std::fs::write(dir.join(SNAPSHOT), json).map_err(persist_err)?;
        Ok(skipped)
    }
}

fn persist_err(e: impl std::fmt::Display) -> SystemError {
    SystemError::Persist(e.to_string())
}
