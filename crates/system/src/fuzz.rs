//! The rule fuzzer: differential testing of rewrite rules on live data.
//!
//! The static verifier (`sos_optimizer::synth`, surfaced as lint L006)
//! proves that a rule preserves plan *types*; this module closes the
//! loop on plan *semantics*. For every rule it synthesizes well-typed
//! plan fragments matching the rule's LHS against the canonical fuzz
//! scenario, installs the scenario's objects into a real database,
//! seeds them with deterministic pseudo-random rows (every model
//! relation and its representation objects hold the same bag), and then
//! executes each witness twice — once as written and once after firing
//! the rule — asserting the two results are equal as bags.
//!
//! Update-shaped witnesses (`modify`, `insert`, …) are skipped rather
//! than executed: evaluating both sides would apply the update twice to
//! the shared storage. They are counted in
//! [`FuzzReport::skipped_updates`] so a report says what was not
//! covered.
//!
//! Everything is deterministic — the row generator is a seeded
//! xorshift, witness enumeration is ordered — so a CI run with a fixed
//! seed is reproducible.

use crate::{Database, SystemError};
use sos_core::typed::{TypedExpr, TypedNode};
use sos_core::{Const, DataType, Symbol};
use sos_exec::{EvalCtx, Value};
use sos_geom::{Point, Polygon};
use sos_optimizer::synth::{self, Scenario};
use sos_optimizer::{Optimizer, RuleStep, Strategy, Validation};

/// Fuzzer parameters. The defaults are what CI runs.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Seed for the row generator.
    pub seed: u64,
    /// Rows per model relation (mirrored into every representation).
    pub rows: usize,
    /// Witnesses enumerated per rule.
    pub witnesses_per_rule: usize,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            seed: 0x05ee_d505,
            rows: 24,
            witnesses_per_rule: synth::DEFAULT_WITNESSES,
        }
    }
}

/// One semantics violation: a witness whose result changed when the
/// rule fired.
#[derive(Debug, Clone)]
pub struct FuzzMismatch {
    pub step: String,
    pub rule: String,
    /// The witness plan, as written.
    pub witness: String,
    /// The rewritten plan.
    pub rewritten: String,
    /// Sorted bag rendering of the witness's result.
    pub expected: Vec<String>,
    /// Sorted bag rendering of the rewritten plan's result.
    pub actual: Vec<String>,
}

impl std::fmt::Display for FuzzMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rule `{}/{}` changed the result of `{}` (rewritten to `{}`): \
             expected {} row(s), got {}",
            self.step,
            self.rule,
            self.witness,
            self.rewritten,
            self.expected.len(),
            self.actual.len()
        )
    }
}

/// The outcome of one fuzzer run.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Rules examined.
    pub rules: usize,
    /// Rules that fired on at least one executed witness.
    pub rules_fired: usize,
    /// Witnesses executed before/after (both sides evaluated).
    pub witnesses_run: usize,
    /// Update-shaped witnesses skipped (see module docs).
    pub skipped_updates: usize,
    /// Semantics violations found.
    pub mismatches: Vec<FuzzMismatch>,
}

impl FuzzReport {
    /// No rule changed any witness's result.
    pub fn ok(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// xorshift64* — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in `0..n`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A pseudo-random value of an attribute type. Integers stay in a small
/// range so the synthesized predicates (`k = 7`, `k < 7`, …) select
/// non-trivial subsets; the string pool includes `"x"`, the literal the
/// witness generator uses.
fn attr_value(ty: &DataType, rng: &mut Rng) -> Option<Value> {
    match ty.cons_name()?.as_str() {
        "int" => Some(Value::Int(rng.below(16) as i64)),
        "string" => {
            let pool = ["x", "alpha", "beta", "gamma"];
            Some(Value::Str(pool[rng.below(4) as usize].into()))
        }
        "bool" => Some(Value::Bool(rng.below(2) == 0)),
        "point" => Some(Value::Point(Point::new(
            rng.below(10) as f64,
            rng.below(10) as f64,
        ))),
        "pgon" => {
            // A small axis-aligned triangle at a random offset.
            let (x, y) = (rng.below(8) as f64, rng.below(8) as f64);
            Some(Value::Pgon(Polygon::new(vec![
                Point::new(x, y),
                Point::new(x + 2.0, y),
                Point::new(x, y + 2.0),
            ])))
        }
        _ => None,
    }
}

/// Deterministic rows for one model tuple type.
fn seed_rows(tuple_ty: &DataType, rows: usize, rng: &mut Rng) -> Option<Vec<Value>> {
    let attrs = tuple_ty.tuple_attrs()?;
    let mut out = Vec::with_capacity(rows);
    for _ in 0..rows {
        let fields: Option<Vec<Value>> = attrs.iter().map(|(_, t)| attr_value(t, rng)).collect();
        out.push(Value::tuple(fields?));
    }
    Some(out)
}

/// Build a database holding the fuzz scenario: the canonical object set
/// of `sos_optimizer::synth` installed for real, every model relation
/// and its linked representations seeded with the same deterministic
/// rows. The optimizer is off — the fuzzer fires rules one at a time
/// itself.
fn scenario_database(cfg: &FuzzConfig) -> Result<Database, SystemError> {
    let mut db = Database::builder().optimize(false).build();
    let (objects, links) = synth::object_defs();
    for (name, ty) in &objects {
        db.catalog
            .create_object(&db.sig, name.clone(), ty.clone())?;
        // Mirror `Statement::Create`: catalog objects are addressed by
        // name, everything else starts from its representation's init
        // value.
        let value = if matches!(ty, DataType::Cons(c, _) if c.as_str() == "catalog") {
            Value::Ident(name.clone())
        } else {
            db.engine.init_value(&db.sig, &db.catalog, ty)?
        };
        db.store.insert(name.clone(), value);
    }
    for (model, rep) in &links {
        db.catalog.catalog_insert(
            &Symbol::new("rep"),
            vec![Const::Ident(model.clone()), Const::Ident(rep.clone())],
        )?;
    }
    let mut rng = Rng::new(cfg.seed);
    for (name, ty) in &objects {
        if !matches!(ty, DataType::Cons(c, _) if c.as_str() == "rel") {
            continue;
        }
        let Some(tuple_ty) = ty.single_type_arg() else {
            continue;
        };
        let Some(rows) = seed_rows(tuple_ty, cfg.rows, &mut rng) else {
            continue;
        };
        // The model and each linked representation hold the same bag, as
        // a translated plan assumes.
        db.bulk_insert(name.as_str(), rows.clone())?;
        for rep in db.catalog.linked(&Symbol::new("rep"), name) {
            db.bulk_insert(rep.as_str(), rows.clone())?;
        }
    }
    Ok(db)
}

/// Evaluate a checked plan against the database, materializing any
/// pipelined cursor (queries are pure; the store is unchanged).
fn eval(db: &mut Database, t: &TypedExpr) -> Result<Value, SystemError> {
    let mut ctx = EvalCtx::new(&db.engine, &mut db.store, &mut db.catalog);
    let v = ctx.eval(t)?;
    match v {
        Value::Cursor(_) => Ok(Value::Stream(sos_exec::stream::materialize(&mut ctx, v)?)),
        other => Ok(other),
    }
}

/// A result value as a sorted bag of rendered rows (scalar results are
/// one-element bags). Sorting makes the comparison order-insensitive —
/// the paper's relations are bags, and a hash join is free to reorder.
fn bag(v: &Value) -> Vec<String> {
    match v {
        Value::Rel(ts) | Value::Stream(ts) | Value::List(ts) => {
            let mut out: Vec<String> = ts.iter().map(|t| format!("{t:?}")).collect();
            out.sort();
            out
        }
        other => vec![format!("{other:?}")],
    }
}

/// Whether a witness is an update (its root operator has an `update`
/// spec): executing those would mutate storage, so the fuzzer skips
/// them.
fn is_update(db: &Database, t: &TypedExpr) -> bool {
    match &t.node {
        TypedNode::Apply { spec, .. } => db.sig.spec(*spec).is_update,
        _ => false,
    }
}

/// Fuzz every rule of `opt` against the canonical scenario.
pub fn fuzz_optimizer(opt: &Optimizer, cfg: &FuzzConfig) -> Result<FuzzReport, SystemError> {
    let mut db = scenario_database(cfg)?;
    let scenario = Scenario::build(&db.sig);
    let mut report = FuzzReport::default();
    for step in &opt.steps {
        for rule in &step.rules {
            report.rules += 1;
            let ws = synth::witnesses(&db.sig, &scenario, rule, cfg.witnesses_per_rule);
            let one = Optimizer::new(vec![RuleStep {
                name: step.name.clone(),
                rules: vec![rule.clone()],
                strategy: Strategy::OnceTopDown,
                budget: 8,
            }]);
            let mut fired = false;
            for w in &ws {
                if is_update(&db, w) {
                    report.skipped_updates += 1;
                    continue;
                }
                let checker = sos_core::check::Checker::new(&db.sig, &db.catalog);
                let rewritten =
                    match one.optimize_traced_with(w, &checker, &db.catalog, Validation::Count) {
                        // An ill-typed rewrite is the type verifier's
                        // finding (L006), not a semantics mismatch.
                        Err(_) => continue,
                        Ok((_, _, trace)) if trace.is_empty() => continue,
                        Ok((r, _, _)) => r,
                    };
                fired = true;
                let expected = bag(&eval(&mut db, w)?);
                let actual = bag(&eval(&mut db, &rewritten)?);
                report.witnesses_run += 1;
                if expected != actual {
                    report.mismatches.push(FuzzMismatch {
                        step: step.name.clone(),
                        rule: rule.name.clone(),
                        witness: w.to_string(),
                        rewritten: rewritten.to_string(),
                        expected,
                        actual,
                    });
                }
            }
            if fired {
                report.rules_fired += 1;
            }
        }
    }
    Ok(report)
}

/// Fuzz the built-in rule set — the CI `verify-rules` entry point.
pub fn fuzz_builtin_rules(cfg: &FuzzConfig) -> Result<FuzzReport, SystemError> {
    fuzz_optimizer(&crate::rules::builtin_optimizer(), cfg)
}
