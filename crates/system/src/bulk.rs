//! Partitioned storage administration and bulk loading.
//!
//! [`Database::partition_object`] splits one storage object across
//! multiple structures of the same declared type (the partitioning spec
//! is recorded in the catalog, so it survives `save`/`open_dir` and WAL
//! recovery). [`Database::bulk_load`] loads a batch of tuples through
//! the fast paths: sorted builds for empty B-tree partitions, bulk
//! packs for empty LSD-tree partitions, and — on a durable database —
//! one statement transaction under [`SyncPolicy::NoSync`] closed by a
//! single checkpoint, so the load pays one fsync instead of one per
//! statement.
//!
//! Durability contract of a bulk load: the whole load is ONE statement.
//! A crash mid-load recovers to the state before it (the commit record
//! never became durable) or after it (it did) — never to a partially
//! loaded object. Under `NoSync` the commit acknowledgment itself is
//! not durable until the closing checkpoint syncs the log.

use crate::{Database, SystemError};
use sos_catalog::PartSpec;
use sos_core::Symbol;
use sos_exec::ops::streams::feed_value;
use sos_exec::ops::updates::insert_into;
use sos_exec::{EvalCtx, ExecError, PartHandle, Value};
use sos_geom::Rect;
use sos_storage::SyncPolicy;
use std::sync::Arc;

/// One tuple prepared for loading: routed, encoded, and keyed, so the
/// per-partition load needs no evaluation context (key functions run in
/// the serial prepare phase; the parallel phase only touches storage).
enum Prepared {
    /// Heap partition: the encoded record.
    Heap(Vec<u8>),
    /// B-tree partition: encoded key, encoded record.
    Keyed(Vec<u8>, Vec<u8>),
    /// LSD-tree partition: indexed rectangle, encoded record.
    Spatial(Rect, Vec<u8>),
}

impl Database {
    /// Partition the storage object `name` per `spec`: fresh partition
    /// structures of the object's declared type are created, every
    /// tuple the object currently holds is routed into its partition,
    /// and the spec is recorded in the catalog (so it survives
    /// `save`/`open_dir` and, on a durable database, crash recovery).
    ///
    /// The object keeps its declared type — the checker, signature, and
    /// optimizer are untouched; only the runtime value becomes
    /// partitioned. Errors if the object is already partitioned or is
    /// not a storage representation (`srel`/`trel`/`btree`/`lsdtree`).
    pub fn partition_object(&mut self, name: &str, spec: PartSpec) -> Result<(), SystemError> {
        let key = Symbol::new(name);
        let ty = self
            .catalog
            .object(&key)
            .ok_or_else(|| SystemError::UnknownObject(key.clone()))?
            .ty
            .clone();
        let current = self
            .store
            .get(&key)
            .cloned()
            .ok_or_else(|| SystemError::UnknownObject(key.clone()))?;
        match &current {
            Value::SRel(_) | Value::TidRel(_) | Value::BTree(_) | Value::LsdTree(_) => {}
            Value::Part(_) => {
                return Err(SystemError::Persist(format!(
                    "`{name}` is already partitioned"
                )))
            }
            other => {
                return Err(SystemError::Persist(format!(
                    "`{name}` is a {} — only storage representations \
                     (srel/trel/btree/lsdtree) can be partitioned",
                    other.kind_name()
                )))
            }
        }
        let existing = feed_value(&current)?;
        let n = spec.method.parts();
        // Everything that dirties pages — partition structure creation
        // and tuple routing — happens inside the one statement bracket,
        // so a crash mid-partitioning aborts to the unpartitioned state.
        let tx = self.begin_stmt()?;
        let mut parts = Vec::with_capacity(n);
        for _ in 0..n {
            parts.push(self.engine.init_value(&self.sig, &self.catalog, &ty)?);
        }
        let tuple_ty = ty.single_type_arg().cloned();
        let part = Value::Part(Arc::new(PartHandle::new(
            spec.clone(),
            parts,
            tuple_ty.as_ref(),
        )?));
        {
            let mut ctx = EvalCtx::new(&self.engine, &mut self.store, &mut self.catalog);
            for t in &existing {
                insert_into(&mut ctx, &part, t)?;
            }
        }
        self.catalog.set_partition_spec(key.clone(), spec);
        let prev = self.store.insert(key.clone(), part);
        if let Err(e) = self.commit_stmt(tx) {
            self.catalog.remove_partition_spec(&key);
            match prev {
                Some(v) => self.store.insert(key, v),
                None => self.store.remove(&key),
            };
            return Err(e);
        }
        // Cached plans over the old representation (e.g. a serial scan)
        // no longer match the partitioned object.
        self.invalidate_plans_for(&key);
        Ok(())
    }

    /// Bulk-load `tuples` into the storage object `name` as ONE
    /// statement, taking the fast paths the per-statement insert cannot:
    ///
    /// * empty B-tree partitions are built from sorted runs
    ///   ([`sos_storage::btree::BTree::bulk_load`]), empty LSD-tree
    ///   partitions are bulk-packed; non-empty structures fall back to
    ///   ordinary inserts,
    /// * a partitioned object routes every tuple in one serial prepare
    ///   pass, then loads its partitions in parallel across the
    ///   engine's workers,
    /// * on a durable database the load runs under
    ///   [`SyncPolicy::NoSync`] (unless [`crate::DatabaseBuilder::bulk_nosync`]
    ///   disabled it) and is closed by a single checkpoint, so it pays
    ///   one fsync total.
    ///
    /// Returns the number of tuples loaded.
    pub fn bulk_load(&mut self, name: &str, tuples: Vec<Value>) -> Result<usize, SystemError> {
        let key = Symbol::new(name);
        if self.catalog.object(&key).is_none() {
            return Err(SystemError::UnknownObject(key));
        }
        let target = self
            .store
            .get(&key)
            .cloned()
            .ok_or_else(|| SystemError::UnknownObject(key.clone()))?;
        match &target {
            Value::SRel(_)
            | Value::TidRel(_)
            | Value::BTree(_)
            | Value::LsdTree(_)
            | Value::Part(_) => {}
            _ => {
                let n = tuples.len();
                self.bulk_insert(name, tuples)?;
                return Ok(n);
            }
        }
        let loaded = tuples.len();
        // Relax the sync policy for the duration; every exit path below
        // restores it (and the closing checkpoint syncs what NoSync
        // deferred).
        let saved_policy = if self.bulk_nosync {
            let prev = self.sync_policy();
            if prev.is_some() {
                self.set_sync_policy(SyncPolicy::NoSync)?;
            }
            prev
        } else {
            None
        };
        let result = self.bulk_load_inner(&target, tuples);
        if let Some(p) = saved_policy {
            // Checkpoint first: it flushes and syncs the log, making the
            // NoSync-acknowledged commit durable before the policy flips
            // back.
            if result.is_ok() {
                self.checkpoint()?;
            }
            self.set_sync_policy(p)?;
        }
        result?;
        self.engine
            .stats
            .record("bulk_load", self.engine.workers(), loaded, loaded, 0);
        if let Value::Part(h) = &target {
            self.engine
                .stats
                .record_partitions("bulk_load", h.part_count() as u64, 0);
        }
        // A bulk load shifts the object's cardinality enough that any
        // cost-chosen cached plan over it is suspect.
        self.invalidate_plans_for(&key);
        Ok(loaded)
    }

    fn bulk_load_inner(&mut self, target: &Value, tuples: Vec<Value>) -> Result<(), SystemError> {
        let tx = self.begin_stmt()?;
        // Prepare phase (serial): route and encode every tuple. Key and
        // rect functions may evaluate arbitrary expressions, so this
        // phase holds the evaluation context.
        let (parts, mut buckets) = {
            let mut ctx = EvalCtx::new(&self.engine, &mut self.store, &mut self.catalog);
            prepare(&mut ctx, target, tuples)?
        };
        // Load phase (parallel): per-partition storage builds only.
        let workers = self.engine.workers().min(parts.len());
        if workers > 1 && parts.len() > 1 {
            let jobs: Vec<(&Value, Vec<Prepared>)> = parts.iter().zip(buckets.drain(..)).collect();
            let chunks = split_round_robin(jobs, workers);
            let r: Result<(), ExecError> = std::thread::scope(|s| {
                let handles: Vec<_> = chunks
                    .into_iter()
                    .map(|chunk| {
                        s.spawn(move || {
                            for (part, bucket) in chunk {
                                load_partition(part, bucket)?;
                            }
                            Ok::<(), ExecError>(())
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().expect("bulk load worker panicked")?;
                }
                Ok(())
            });
            r?;
        } else {
            for (part, bucket) in parts.iter().zip(buckets) {
                load_partition(part, bucket)?;
            }
        }
        self.commit_stmt(tx)?;
        Ok(())
    }
}

/// Route and encode `tuples` against `target`, returning the partition
/// values (one for an unpartitioned object) and one bucket of prepared
/// entries per partition.
fn prepare(
    ctx: &mut EvalCtx,
    target: &Value,
    tuples: Vec<Value>,
) -> Result<(Vec<Value>, Vec<Vec<Prepared>>), SystemError> {
    let (parts, route): (Vec<Value>, Option<&PartHandle>) = match target {
        Value::Part(h) => (h.parts.clone(), Some(h)),
        other => (vec![other.clone()], None),
    };
    let mut buckets: Vec<Vec<Prepared>> = (0..parts.len()).map(|_| Vec::new()).collect();
    for t in tuples {
        let bytes = t.encode_tuple("bulk_load")?;
        let prepared; // per the shape of the (first) partition
        let idx;
        match parts.first() {
            Some(Value::SRel(_) | Value::TidRel(_)) => {
                idx = match route {
                    Some(h) => h.route_tuple(&t)?,
                    None => 0,
                };
                prepared = Prepared::Heap(bytes);
            }
            Some(Value::BTree(bh)) => {
                idx = match route {
                    Some(h) => h.route_tuple(&t)?,
                    None => 0,
                };
                let kv = ctx.key_value(bh, &t)?;
                prepared = Prepared::Keyed(sos_exec::encode_key("bulk_load", &kv)?, bytes);
            }
            Some(Value::LsdTree(lh)) => {
                let rect = ctx.rect_value(lh, &t)?;
                idx = match route {
                    Some(h) => h.route_rect(&rect)?,
                    None => 0,
                };
                prepared = Prepared::Spatial(rect, bytes);
            }
            other => {
                return Err(SystemError::Persist(format!(
                    "cannot bulk load a {} partition",
                    other.map(|v| v.kind_name()).unwrap_or("missing")
                )))
            }
        }
        buckets[idx].push(prepared);
    }
    Ok((parts, buckets))
}

/// Load one partition's bucket: sorted build / bulk pack when the
/// structure is empty, ordinary inserts when it is not.
fn load_partition(part: &Value, bucket: Vec<Prepared>) -> Result<(), ExecError> {
    match part {
        Value::SRel(h) | Value::TidRel(h) => {
            for p in bucket {
                let Prepared::Heap(bytes) = p else {
                    unreachable!("heap partition prepared with a key")
                };
                h.insert(&bytes)?;
            }
        }
        Value::BTree(h) => {
            let mut entries: Vec<(Vec<u8>, Vec<u8>)> = bucket
                .into_iter()
                .map(|p| match p {
                    Prepared::Keyed(k, v) => (k, v),
                    _ => unreachable!("btree partition prepared without a key"),
                })
                .collect();
            // Stable: equal keys keep their arrival order.
            entries.sort_by(|a, b| a.0.cmp(&b.0));
            if h.tree.is_empty() {
                h.tree.bulk_load(entries)?;
            } else {
                for (k, v) in entries {
                    h.tree.insert(&k, &v)?;
                }
            }
        }
        Value::LsdTree(h) => {
            let entries: Vec<sos_storage::lsdtree::Entry> = bucket
                .into_iter()
                .map(|p| match p {
                    Prepared::Spatial(rect, payload) => {
                        sos_storage::lsdtree::Entry { rect, payload }
                    }
                    _ => unreachable!("lsd partition prepared without a rect"),
                })
                .collect();
            if h.tree.is_empty() {
                h.tree.bulk_load(entries)?;
            } else {
                for e in entries {
                    h.tree.insert(e.rect, &e.payload)?;
                }
            }
        }
        other => {
            return Err(ExecError::Other(format!(
                "cannot bulk load a {} partition",
                other.kind_name()
            )))
        }
    }
    Ok(())
}

/// Distribute jobs round-robin across `n` chunks (partition loads vary
/// in size; round-robin spreads the heavy ones).
fn split_round_robin<T>(jobs: Vec<T>, n: usize) -> Vec<Vec<T>> {
    let mut chunks: Vec<Vec<T>> = (0..n).map(|_| Vec::new()).collect();
    for (i, job) in jobs.into_iter().enumerate() {
        chunks[i % n].push(job);
    }
    chunks
}
