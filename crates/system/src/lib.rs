//! The SOS database system: the "parser/optimizer component driven by a
//! specification" the paper proposes, assembled over the other crates.
//!
//! A [`Database`] owns
//!
//! * the built-in [`Signature`] (the paper's relational model plus the
//!   representation model of Section 4, parsed from the specification
//!   language at startup — see [`builtin::BUILTIN_SPEC`]),
//! * a [`Catalog`] of named types and objects with the `rep` catalog
//!   linking model objects to their representations (Section 6),
//! * an [`ExecEngine`] over a buffer pool, and
//! * the built-in rule-based [`Optimizer`] (Sections 5 and 6).
//!
//! It processes programs in the five-statement language of Section 2.4:
//! model-level queries and updates are type-checked, translated by the
//! optimizer into representation-level plans when representations exist,
//! and executed.
//!
//! ```
//! use sos_system::Database;
//!
//! let mut db = Database::new();
//! db.run(r#"
//!     type city = tuple(<(name, string), (pop, int), (country, string)>);
//!     type city_rel = rel(city);
//!     create cities : city_rel;
//!     update cities := insert(cities, mktuple[(name, "Hagen"), (pop, 190000), (country, "Germany")]);
//!     query cities select[pop > 100000];
//! "#).unwrap();
//! ```

pub mod builtin;
pub mod persist;
pub mod rules;

use sos_catalog::{Catalog, CatalogError};
use sos_core::check::Checker;
use sos_core::spec::Level;
use sos_core::typed::{TypedExpr, TypedNode};
use sos_core::{CheckError, DataType, Expr, Signature, Symbol, TypeArg};
use sos_exec::{EvalCtx, ExecEngine, ExecError, Value};
use sos_optimizer::{OptError, Optimizer, OptimizerStats};
use sos_parser::{parse_program, ParseError, Statement};
use sos_storage::{BufferPool, PoolStats};
use std::collections::HashMap;
use std::sync::Arc;

/// Everything that can go wrong processing a program.
#[derive(Debug)]
pub enum SystemError {
    Parse(ParseError),
    Check(CheckError),
    Catalog(CatalogError),
    Exec(ExecError),
    Opt(OptError),
    /// An update whose value type does not match its target object.
    UpdateTypeMismatch {
        object: Symbol,
        object_type: String,
        value_type: String,
    },
    UnknownObject(Symbol),
    /// Saving or opening a database directory failed.
    Persist(String),
}

impl std::fmt::Display for SystemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SystemError::Parse(e) => write!(f, "{e}"),
            SystemError::Check(e) => write!(f, "{e}"),
            SystemError::Catalog(e) => write!(f, "{e}"),
            SystemError::Exec(e) => write!(f, "{e}"),
            SystemError::Opt(e) => write!(f, "{e}"),
            SystemError::UpdateTypeMismatch {
                object,
                object_type,
                value_type,
            } => write!(
                f,
                "update of `{object}`: value of type {value_type} does not match object type {object_type}"
            ),
            SystemError::UnknownObject(n) => write!(f, "no object named `{n}`"),
            SystemError::Persist(m) => write!(f, "persistence error: {m}"),
        }
    }
}

impl std::error::Error for SystemError {}

impl From<sos_storage::StorageError> for SystemError {
    fn from(e: sos_storage::StorageError) -> Self {
        SystemError::Exec(ExecError::Storage(e))
    }
}

impl From<ParseError> for SystemError {
    fn from(e: ParseError) -> Self {
        SystemError::Parse(e)
    }
}
impl From<CheckError> for SystemError {
    fn from(e: CheckError) -> Self {
        SystemError::Check(e)
    }
}
impl From<CatalogError> for SystemError {
    fn from(e: CatalogError) -> Self {
        SystemError::Catalog(e)
    }
}
impl From<ExecError> for SystemError {
    fn from(e: ExecError) -> Self {
        SystemError::Exec(e)
    }
}
impl From<OptError> for SystemError {
    fn from(e: OptError) -> Self {
        SystemError::Opt(e)
    }
}

/// The result of one statement.
#[derive(Debug)]
pub enum Output {
    TypeDefined(Symbol),
    Created(Symbol),
    /// The object actually updated — for a translated model update this
    /// is the representation object (Section 6).
    Updated(Symbol),
    Deleted(Symbol),
    Query(Value),
}

impl Output {
    /// The query result value, if this output carries one.
    pub fn value(&self) -> Option<&Value> {
        match self {
            Output::Query(v) => Some(v),
            _ => None,
        }
    }
}

/// The SOS database system.
pub struct Database {
    sig: Signature,
    catalog: Catalog,
    engine: ExecEngine,
    store: HashMap<Symbol, Value>,
    optimizer: Optimizer,
    optimize_enabled: bool,
    last_opt_stats: OptimizerStats,
}

impl Database {
    /// A database over a fresh in-memory buffer pool.
    pub fn new() -> Database {
        Database::with_pool(sos_storage::mem_pool(4096))
    }

    /// A database over the given buffer pool.
    pub fn with_pool(pool: Arc<BufferPool>) -> Database {
        Database {
            sig: builtin::builtin_signature(),
            catalog: Catalog::new(),
            engine: ExecEngine::new(pool),
            store: HashMap::new(),
            optimizer: rules::builtin_optimizer(),
            optimize_enabled: true,
            last_opt_stats: OptimizerStats::default(),
        }
    }

    // ---- accessors ----

    pub fn signature(&self) -> &Signature {
        &self.sig
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn pool_stats(&self) -> PoolStats {
        self.engine.pool.stats()
    }

    pub fn reset_pool_stats(&self) {
        self.engine.pool.reset_stats()
    }

    pub fn last_optimizer_stats(&self) -> OptimizerStats {
        self.last_opt_stats
    }

    /// Set the worker count for intra-operator parallelism. `1` (the
    /// default on single-core machines) is exactly the legacy serial
    /// engine; `n > 1` lets heap scans, filters, counts and joins run
    /// page- or chunk-partitioned across `n` threads.
    pub fn set_workers(&mut self, n: usize) {
        self.engine.set_workers(n);
    }

    /// The current intra-operator worker count.
    pub fn workers(&self) -> usize {
        self.engine.workers()
    }

    /// Per-operator execution counters (tuples in/out, pages scanned,
    /// workers used), sorted by operator name.
    pub fn exec_stats(&self) -> Vec<(String, sos_exec::OpStats)> {
        self.engine.stats.snapshot()
    }

    /// Counters for a single operator (zeros if it never ran).
    pub fn op_stats(&self, op: &str) -> sos_exec::OpStats {
        self.engine.stats.op(op)
    }

    pub fn reset_exec_stats(&self) {
        self.engine.stats.reset()
    }

    /// Turn the optimizer off/on (used by benchmarks to compare plans).
    pub fn set_optimize(&mut self, enabled: bool) {
        self.optimize_enabled = enabled;
    }

    // ---- extensibility ----

    /// Load an additional specification (new kinds, constructors,
    /// operators, subtypes) — the paper's extensibility story.
    ///
    /// ```
    /// # use sos_system::Database;
    /// # use sos_exec::Value;
    /// let mut db = Database::new();
    /// db.load_spec(r##"op triple : int -> int syntax "_ #""##).unwrap();
    /// db.add_op_impl("triple", |_, _, args| {
    ///     Ok(Value::Int(args[0].as_int("triple")? * 3))
    /// });
    /// assert_eq!(db.query("14 triple").unwrap(), Value::Int(42));
    /// ```
    pub fn load_spec(&mut self, src: &str) -> Result<(), SystemError> {
        sos_parser::parse_spec(src, &mut self.sig)?;
        Ok(())
    }

    /// Register an operator implementation for a loaded specification.
    pub fn add_op_impl<F>(&mut self, name: &str, f: F)
    where
        F: Fn(&mut EvalCtx, &TypedExpr, Vec<Value>) -> sos_exec::ExecResult<Value>
            + Send
            + Sync
            + 'static,
    {
        self.engine.add_op(name, f);
    }

    /// Append an optimizer rule step.
    pub fn add_rule_step(&mut self, step: sos_optimizer::RuleStep) {
        self.optimizer.steps.push(step);
    }

    /// Load optimization rules from the textual rule language (Section 5)
    /// as a new exhaustive step with the given name.
    pub fn load_rules(&mut self, step_name: &str, src: &str) -> Result<(), SystemError> {
        let rules = sos_optimizer::parse_rules(src)?;
        self.optimizer
            .steps
            .push(sos_optimizer::RuleStep::exhaustive(step_name, rules));
        Ok(())
    }

    /// Read an object's current value (tests and benchmarks).
    pub fn object_value(&self, name: &str) -> Option<&Value> {
        self.store.get(&Symbol::new(name))
    }

    /// Bulk-load tuple values into a named object, bypassing the
    /// statement layer (workload generators use this; each tuple still
    /// goes through the normal representation insert path).
    pub fn bulk_insert(&mut self, name: &str, tuples: Vec<Value>) -> Result<(), SystemError> {
        let key = Symbol::new(name);
        if self.catalog.object(&key).is_none() {
            return Err(SystemError::UnknownObject(key));
        }
        let mut target = self.store.get(&key).cloned().unwrap_or(Value::Undefined);
        {
            let mut ctx = EvalCtx::new(&self.engine, &mut self.store, &mut self.catalog);
            for t in tuples {
                target = sos_exec::ops::updates::insert_into(&mut ctx, &target, &t)?;
            }
        }
        self.store.insert(key, target);
        Ok(())
    }

    // ---- program processing ----

    /// Run a complete program, returning one output per statement.
    pub fn run(&mut self, src: &str) -> Result<Vec<Output>, SystemError> {
        let stmts = parse_program(src, &self.sig)?;
        let mut out = Vec::with_capacity(stmts.len());
        for stmt in &stmts {
            out.push(self.execute(stmt)?);
        }
        Ok(out)
    }

    /// Run a single query expression (concrete syntax) and return its
    /// value.
    ///
    /// ```
    /// # use sos_system::Database;
    /// # use sos_exec::Value;
    /// let mut db = Database::new();
    /// assert_eq!(db.query("2 + 3 * 4").unwrap(), Value::Int(14));
    /// ```
    pub fn query(&mut self, expr_src: &str) -> Result<Value, SystemError> {
        let outputs = self.run(&format!("query {expr_src};"))?;
        match outputs.into_iter().next() {
            Some(Output::Query(v)) => Ok(v),
            _ => unreachable!("query statement produces a query output"),
        }
    }

    /// Type-check and optimize a query without executing it, returning
    /// the plan in abstract syntax (used by tests and EXPERIMENTS.md).
    ///
    /// ```
    /// # use sos_system::Database;
    /// let mut db = Database::new();
    /// db.run("type t = tuple(<(k, int)>); create r : rel(t);").unwrap();
    /// let plan = db.explain("r select[k > 0]").unwrap();
    /// assert!(plan.starts_with("select(r, fun ("));
    /// ```
    pub fn explain(&mut self, expr_src: &str) -> Result<String, SystemError> {
        let stmts = parse_program(&format!("query {expr_src};"), &self.sig)?;
        let Statement::Query(e) = &stmts[0] else {
            unreachable!()
        };
        let checked = self.check(&self.resolve_expr(e))?;
        let optimized = self.optimize(&checked)?;
        Ok(optimized.to_string())
    }

    /// Type-check and optimize an update statement without executing it,
    /// returning the translated statement text — the paper's Section 6
    /// trace: `update cities := insert(cities, c)` explains to
    /// `update cities_rep := insert(cities_rep, c)`.
    pub fn explain_update(&mut self, stmt_src: &str) -> Result<String, SystemError> {
        let stmts = parse_program(stmt_src, &self.sig)?;
        let Some(Statement::Update(name, expr)) = stmts.first() else {
            return Err(SystemError::Persist(
                "explain_update expects a single update statement".into(),
            ));
        };
        let resolved = self.resolve_expr(expr);
        let checked = self.check(&resolved)?;
        let optimized = self.optimize(&checked)?;
        let target = self
            .update_target(&optimized)
            .unwrap_or_else(|| name.clone());
        Ok(format!("update {target} := {optimized}"))
    }

    /// Execute one parsed statement.
    pub fn execute(&mut self, stmt: &Statement) -> Result<Output, SystemError> {
        match stmt {
            Statement::TypeDef(name, ty) => {
                let resolved = self.resolve_type(ty)?;
                self.checker().check_type(&resolved)?;
                self.catalog.define_type(name.clone(), resolved)?;
                Ok(Output::TypeDefined(name.clone()))
            }
            Statement::Create(name, ty) => {
                let resolved = self.resolve_type(ty)?;
                self.checker().check_type(&resolved)?;
                self.catalog
                    .create_object(&self.sig, name.clone(), resolved.clone())?;
                // Catalog objects are addressed by name (their state
                // lives in the catalog itself); their store value is a
                // name token so update expressions over them evaluate.
                let value = if matches!(&resolved, DataType::Cons(c, _) if c.as_str() == "catalog")
                {
                    Value::Ident(name.clone())
                } else {
                    self.engine
                        .init_value(&self.sig, &self.catalog, &resolved)?
                };
                self.store.insert(name.clone(), value);
                Ok(Output::Created(name.clone()))
            }
            Statement::Update(name, expr) => {
                if self.catalog.object(name).is_none() {
                    return Err(SystemError::UnknownObject(name.clone()));
                }
                let resolved = self.resolve_expr(expr);
                let checked = self.check(&resolved)?;
                let optimized = self.optimize(&checked)?;
                // A translated model update targets the representation
                // object named by the rewritten update operator.
                let target = self
                    .update_target(&optimized)
                    .unwrap_or_else(|| name.clone());
                let expected = self
                    .catalog
                    .object(&target)
                    .ok_or_else(|| SystemError::UnknownObject(target.clone()))?
                    .ty
                    .clone();
                if optimized.ty != expected {
                    return Err(SystemError::UpdateTypeMismatch {
                        object: target.clone(),
                        object_type: expected.to_string(),
                        value_type: optimized.ty.to_string(),
                    });
                }
                let value = self.eval(&optimized)?;
                self.store.insert(target.clone(), value);
                Ok(Output::Updated(target))
            }
            Statement::Delete(name) => {
                self.catalog.delete_object(name)?;
                self.store.remove(name);
                Ok(Output::Deleted(name.clone()))
            }
            Statement::Query(expr) => {
                let resolved = self.resolve_expr(expr);
                let checked = self.check(&resolved)?;
                let optimized = self.optimize(&checked)?;
                let value = self.eval(&optimized)?;
                Ok(Output::Query(value))
            }
        }
    }

    /// The level of a checked term: `Model` if it contains any
    /// model-level operator, otherwise the most specific of its parts
    /// (the classification of Section 6).
    pub fn term_level(&self, t: &TypedExpr) -> Level {
        let mut has_model = false;
        let mut has_rep = false;
        t.visit(&mut |n| {
            if let TypedNode::Apply { spec, .. } = &n.node {
                match self.sig.spec(*spec).level {
                    Level::Model => has_model = true,
                    Level::Representation => has_rep = true,
                    Level::Hybrid => {}
                }
            }
        });
        match (has_model, has_rep) {
            (true, _) => Level::Model,
            (false, true) => Level::Representation,
            (false, false) => Level::Hybrid,
        }
    }

    // ---- internals ----

    fn checker(&self) -> Checker<'_> {
        Checker::new(&self.sig, &self.catalog)
    }

    fn check(&self, e: &Expr) -> Result<TypedExpr, SystemError> {
        Ok(self.checker().check_expr(e)?)
    }

    fn optimize(&mut self, t: &TypedExpr) -> Result<TypedExpr, SystemError> {
        if !self.optimize_enabled {
            return Ok(t.clone());
        }
        let checker = Checker::new(&self.sig, &self.catalog);
        let (optimized, stats) = self.optimizer.optimize(t, &checker, &self.catalog)?;
        self.last_opt_stats = stats;
        Ok(optimized)
    }

    fn eval(&mut self, t: &TypedExpr) -> Result<Value, SystemError> {
        let mut ctx = EvalCtx::new(&self.engine, &mut self.store, &mut self.catalog);
        let v = ctx.eval(t)?;
        // Pipelined cursors are drained at the statement boundary; within
        // a plan they stay lazy.
        match v {
            Value::Cursor(_) => Ok(Value::Stream(sos_exec::stream::materialize(&mut ctx, v)?)),
            other => Ok(other),
        }
    }

    /// The representation object a rewritten update targets, if any.
    fn update_target(&self, t: &TypedExpr) -> Option<Symbol> {
        let TypedNode::Apply { spec, args, .. } = &t.node else {
            return None;
        };
        if !self.sig.spec(*spec).is_update {
            return None;
        }
        match &args.first()?.node {
            TypedNode::Object(n) => Some(n.clone()),
            _ => None,
        }
    }

    /// Expand named types and resolve bare names that denote identifier
    /// values (`btree(city, pop, int)`: `city` is a named type, `pop` an
    /// attribute name).
    fn resolve_type(&self, ty: &DataType) -> Result<DataType, SystemError> {
        let expanded = self.catalog.expand_type(ty);
        Ok(self.resolve_idents(&expanded))
    }

    fn resolve_idents(&self, ty: &DataType) -> DataType {
        match ty {
            DataType::Cons(name, args) => DataType::Cons(
                name.clone(),
                args.iter().map(|a| self.resolve_ident_arg(a)).collect(),
            ),
            DataType::Fun(params, res) => DataType::Fun(
                params.iter().map(|p| self.resolve_idents(p)).collect(),
                Box::new(self.resolve_idents(res)),
            ),
        }
    }

    fn resolve_ident_arg(&self, arg: &TypeArg) -> TypeArg {
        match arg {
            TypeArg::Type(DataType::Cons(name, args))
                if args.is_empty()
                    && self.sig.constructor(name).is_none()
                    && self.catalog.named_type(name).is_none() =>
            {
                TypeArg::Expr(Expr::Const(sos_core::Const::Ident(name.clone())))
            }
            TypeArg::Type(t) => TypeArg::Type(self.resolve_idents(t)),
            TypeArg::List(items) => {
                TypeArg::List(items.iter().map(|a| self.resolve_ident_arg(a)).collect())
            }
            TypeArg::Pair(items) => {
                TypeArg::Pair(items.iter().map(|a| self.resolve_ident_arg(a)).collect())
            }
            TypeArg::Expr(e) => TypeArg::Expr(self.resolve_expr(e)),
        }
    }

    /// Expand named types in lambda parameter annotations throughout an
    /// expression.
    fn resolve_expr(&self, e: &Expr) -> Expr {
        match e {
            Expr::Lambda { params, body } => Expr::Lambda {
                params: params
                    .iter()
                    .map(|(n, t)| {
                        (
                            n.clone(),
                            self.resolve_type(t).unwrap_or_else(|_| t.clone()),
                        )
                    })
                    .collect(),
                body: Box::new(self.resolve_expr(body)),
            },
            Expr::Apply { op, args } => Expr::Apply {
                op: op.clone(),
                args: args.iter().map(|a| self.resolve_expr(a)).collect(),
            },
            Expr::List(items) => Expr::List(items.iter().map(|a| self.resolve_expr(a)).collect()),
            Expr::Tuple(items) => Expr::Tuple(items.iter().map(|a| self.resolve_expr(a)).collect()),
            Expr::Seq(atoms) => Expr::Seq(
                atoms
                    .iter()
                    .map(|a| match a {
                        sos_core::SeqAtom::Operand(e) => {
                            sos_core::SeqAtom::Operand(self.resolve_expr(e))
                        }
                        sos_core::SeqAtom::Word {
                            name,
                            brackets,
                            parens,
                        } => sos_core::SeqAtom::Word {
                            name: name.clone(),
                            brackets: brackets
                                .as_ref()
                                .map(|bs| bs.iter().map(|b| self.resolve_expr(b)).collect()),
                            parens: parens
                                .as_ref()
                                .map(|ps| ps.iter().map(|p| self.resolve_expr(p)).collect()),
                        },
                    })
                    .collect(),
            ),
            Expr::Const(_) | Expr::Name(_) => e.clone(),
        }
    }
}

impl Default for Database {
    fn default() -> Self {
        Database::new()
    }
}
