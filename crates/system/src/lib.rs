//! The SOS database system: the "parser/optimizer component driven by a
//! specification" the paper proposes, assembled over the other crates.
//!
//! A [`Database`] owns
//!
//! * the built-in [`Signature`] (the paper's relational model plus the
//!   representation model of Section 4, parsed from the specification
//!   language at startup — see [`builtin::BUILTIN_SPEC`]),
//! * a [`Catalog`] of named types and objects with the `rep` catalog
//!   linking model objects to their representations (Section 6),
//! * an [`ExecEngine`] over a buffer pool, and
//! * the built-in rule-based [`Optimizer`] (Sections 5 and 6).
//!
//! It processes programs in the five-statement language of Section 2.4:
//! model-level queries and updates are type-checked, translated by the
//! optimizer into representation-level plans when representations exist,
//! and executed.
//!
//! Databases are constructed through [`DatabaseBuilder`]:
//!
//! ```
//! use sos_system::Database;
//!
//! let mut db = Database::builder().build();
//! db.run(r#"
//!     type city = tuple(<(name, string), (pop, int), (country, string)>);
//!     type city_rel = rel(city);
//!     create cities : city_rel;
//!     update cities := insert(cities, mktuple[(name, "Hagen"), (pop, 190000), (country, "Germany")]);
//!     query cities select[pop > 100000];
//! "#).unwrap();
//! ```
//!
//! Every phase of statement processing — parse, check, optimize,
//! execute — is observable: [`Database::metrics`] returns the unified
//! [`MetricsSnapshot`] (buffer pool + optimizer + per-operator rows +
//! phase timings), [`Database::set_tracing`] turns per-phase span
//! recording on, and [`Database::explain`] / [`Database::explain_analyze`]
//! return a structured [`Explain`] with the ordered rewrite trace.

pub mod analyze;
pub mod builtin;
pub mod bulk;
pub mod fuzz;
pub mod persist;
pub mod plancache;
pub mod rules;

use sos_catalog::{Catalog, CatalogError};
use sos_core::check::Checker;
use sos_core::spec::Level;
use sos_core::typed::{TypedExpr, TypedNode};
use sos_core::{CheckError, Const, DataType, Expr, Signature, Symbol, TypeArg};
use sos_exec::{EvalCtx, ExecEngine, ExecError, StatementTx, Value};
use sos_obs::explain::plan_tree;
use sos_obs::metrics::{ops_delta, pool_delta};
use sos_obs::trace::Tracer;
use sos_optimizer::{
    OptError, OptimizeOpts, Optimizer, OptimizerStats, RuleApplication, Validation,
};
use sos_parser::{parse_program, ParseError, Statement};
use sos_storage::{BufferPool, DiskManager, FileDisk, RecoveryInfo, Wal, WalOptions};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

pub use sos_catalog::{PartMethod, PartSpec};
pub use sos_obs::metrics::op_line;
pub use sos_obs::{
    Explain, ExplainAnalysis, ExplainKind, MetricsSnapshot, Phase, PhaseTimings, PlannerStats,
};
pub use sos_storage::{CheckpointStats, Lsn, SyncPolicy};

/// The WAL pipeline's LSN watermarks, for inspection (the shell's
/// `.wal` command): `appended ≥ written ≥ durable ≥ checkpoint`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalLsns {
    /// In-memory append point.
    pub appended: Lsn,
    /// Log bytes that reached the disk (not necessarily synced).
    pub written: Lsn,
    /// Log bytes guaranteed to survive a crash.
    pub durable: Lsn,
    /// Where the next recovery scan starts.
    pub checkpoint: Lsn,
}

/// Everything that can go wrong processing a program.
#[derive(Debug)]
pub enum SystemError {
    Parse(ParseError),
    Check(CheckError),
    Catalog(CatalogError),
    Exec(ExecError),
    Opt(OptError),
    /// An update whose value type does not match its target object.
    UpdateTypeMismatch {
        object: Symbol,
        object_type: String,
        value_type: String,
    },
    UnknownObject(Symbol),
    /// Saving or opening a database directory failed.
    Persist(String),
    /// `strict_lint` rejected a spec or rule registration: the new
    /// declarations produced error-severity diagnostics.
    Lint(Vec<sos_lint::Diagnostic>),
}

impl std::fmt::Display for SystemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SystemError::Parse(e) => write!(f, "{e}"),
            SystemError::Check(e) => write!(f, "{e}"),
            SystemError::Catalog(e) => write!(f, "{e}"),
            SystemError::Exec(e) => write!(f, "{e}"),
            SystemError::Opt(e) => write!(f, "{e}"),
            SystemError::UpdateTypeMismatch {
                object,
                object_type,
                value_type,
            } => write!(
                f,
                "update of `{object}`: value of type {value_type} does not match object type {object_type}"
            ),
            SystemError::UnknownObject(n) => write!(f, "no object named `{n}`"),
            SystemError::Persist(m) => write!(f, "persistence error: {m}"),
            SystemError::Lint(diags) => {
                write!(f, "rejected by strict lint:")?;
                for d in diags {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SystemError {}

impl From<sos_storage::StorageError> for SystemError {
    fn from(e: sos_storage::StorageError) -> Self {
        SystemError::Exec(ExecError::Storage(e))
    }
}

impl From<ParseError> for SystemError {
    fn from(e: ParseError) -> Self {
        SystemError::Parse(e)
    }
}
impl From<CheckError> for SystemError {
    fn from(e: CheckError) -> Self {
        SystemError::Check(e)
    }
}
impl From<CatalogError> for SystemError {
    fn from(e: CatalogError) -> Self {
        SystemError::Catalog(e)
    }
}
impl From<ExecError> for SystemError {
    fn from(e: ExecError) -> Self {
        SystemError::Exec(e)
    }
}
impl From<OptError> for SystemError {
    fn from(e: OptError) -> Self {
        SystemError::Opt(e)
    }
}

/// The result of one statement.
#[derive(Debug)]
pub enum Output {
    TypeDefined(Symbol),
    Created(Symbol),
    /// The object actually updated — for a translated model update this
    /// is the representation object (Section 6).
    Updated(Symbol),
    Deleted(Symbol),
    Query(Value),
}

impl Output {
    /// The query result value, if this output carries one.
    pub fn value(&self) -> Option<&Value> {
        match self {
            Output::Query(v) => Some(v),
            _ => None,
        }
    }
}

/// Configures and constructs a [`Database`] — the one construction
/// path. Every knob that used to be a post-construction setter
/// (`with_pool`, `set_workers`, `set_optimize`) is a builder method;
/// tracing starts disabled unless [`DatabaseBuilder::trace`] enables it.
///
/// ```
/// use sos_system::Database;
///
/// let mut db = Database::builder()
///     .workers(2)
///     .trace(true)
///     .build();
/// assert_eq!(db.workers(), 2);
/// assert!(db.tracing());
/// ```
#[derive(Default)]
pub struct DatabaseBuilder {
    pool: Option<Arc<BufferPool>>,
    durability: Option<DurabilityConfig>,
    frame_capacity: Option<usize>,
    workers: Option<usize>,
    batch_size: Option<usize>,
    compile_exprs: Option<bool>,
    optimize: Option<bool>,
    trace: bool,
    strict_lint: bool,
    bulk_nosync: Option<bool>,
    validate_plans: Option<bool>,
    plan_cache: Option<bool>,
    cost_based: Option<bool>,
}

/// Where a durable database keeps its two files (or disks): the data
/// page file and the write-ahead log.
enum DurableSource {
    Dir(PathBuf),
    Disks(Arc<dyn DiskManager>, Arc<dyn DiskManager>),
}

/// Everything durability: where the data pages and the write-ahead log
/// live, how commits reach stable storage ([`SyncPolicy`]), and how much
/// log the WAL may buffer in memory. This is the one durability knob on
/// [`DatabaseBuilder`] — construct with [`DurabilityConfig::dir`] (two
/// files under one directory) or [`DurabilityConfig::disks`] (explicit
/// disks, e.g. [`sos_storage::FaultDisk`] pairs in fault-injection
/// tests), then chain the policy/buffer setters.
///
/// ```no_run
/// use sos_system::{Database, DurabilityConfig, SyncPolicy};
///
/// let db = Database::builder()
///     .durability(
///         DurabilityConfig::dir("/tmp/mydb")
///             .sync_policy(SyncPolicy::Group { window_us: 200, max_batch: 64 }),
///     )
///     .try_build()
///     .unwrap();
/// assert!(db.is_durable());
/// ```
pub struct DurabilityConfig {
    source: DurableSource,
    policy: SyncPolicy,
    wal_buffer_pages: usize,
}

impl DurabilityConfig {
    /// Keep durable state under `dir` (created if absent): data pages
    /// in `dir/pages.db`, the write-ahead log in `dir/wal.log`.
    pub fn dir(dir: impl Into<PathBuf>) -> DurabilityConfig {
        DurabilityConfig::over(DurableSource::Dir(dir.into()))
    }

    /// Keep durable state on explicit data and WAL disks.
    pub fn disks(data: Arc<dyn DiskManager>, wal: Arc<dyn DiskManager>) -> DurabilityConfig {
        DurabilityConfig::over(DurableSource::Disks(data, wal))
    }

    fn over(source: DurableSource) -> DurabilityConfig {
        let defaults = WalOptions::default();
        DurabilityConfig {
            source,
            policy: defaults.policy,
            wal_buffer_pages: defaults.buffer_pages,
        }
    }

    /// How commits reach stable storage (default:
    /// [`SyncPolicy::PerCommit`]). [`SyncPolicy::Group`] coalesces
    /// commits landing within a window (or while a sync is in flight)
    /// into one fsync on the WAL's writer thread.
    pub fn sync_policy(mut self, policy: SyncPolicy) -> DurabilityConfig {
        self.policy = policy;
        self
    }

    /// Filled in-memory WAL pages buffered before an append nudges the
    /// background writer to drain them (default: 64; irrelevant under
    /// `PerCommit`, which never buffers across commits).
    pub fn wal_buffer_pages(mut self, pages: usize) -> DurabilityConfig {
        self.wal_buffer_pages = pages;
        self
    }
}

impl DatabaseBuilder {
    pub fn new() -> DatabaseBuilder {
        DatabaseBuilder::default()
    }

    /// Run over the given buffer pool (default: a fresh in-memory pool
    /// of 4096 frames).
    pub fn pool(mut self, pool: Arc<BufferPool>) -> DatabaseBuilder {
        self.pool = Some(pool);
        self
    }

    /// Run over a fresh in-memory pool with `frames` frames.
    pub fn memory_pool(self, frames: usize) -> DatabaseBuilder {
        self.pool(sos_storage::mem_pool(frames))
    }

    /// Run durably per `config`. Opening runs crash recovery —
    /// committed statements from a previous process survive; a torn
    /// tail is truncated. Mutually exclusive with
    /// [`DatabaseBuilder::pool`].
    pub fn durability(mut self, config: DurabilityConfig) -> DatabaseBuilder {
        self.durability = Some(config);
        self
    }

    /// Buffer-pool frame count for the pools this builder constructs
    /// itself (default: 4096). Ignored when an explicit pool is given.
    pub fn frame_capacity(mut self, frames: usize) -> DatabaseBuilder {
        self.frame_capacity = Some(frames);
        self
    }

    /// Intra-operator worker count (default: one per available core;
    /// `1` is exactly the serial engine).
    pub fn workers(mut self, n: usize) -> DatabaseBuilder {
        self.workers = Some(n);
        self
    }

    /// Vectorized batch width for cursor drains (default: 1024; `1` is
    /// exactly the tuple-at-a-time engine).
    pub fn batch_size(mut self, n: usize) -> DatabaseBuilder {
        self.batch_size = Some(n);
        self
    }

    /// Enable or disable the expression compiler (default: enabled).
    /// When on, checked predicate and map closures lower to flat batch
    /// bytecode; when off, every closure runs through the tree-walking
    /// interpreter. The two modes compute identical results and errors.
    pub fn compile_exprs(mut self, on: bool) -> DatabaseBuilder {
        self.compile_exprs = Some(on);
        self
    }

    /// Enable or disable the rule optimizer (default: enabled).
    pub fn optimize(mut self, enabled: bool) -> DatabaseBuilder {
        self.optimize = Some(enabled);
        self
    }

    /// Enable phase tracing from the start (default: off; near-zero
    /// overhead while off).
    pub fn trace(mut self, enabled: bool) -> DatabaseBuilder {
        self.trace = enabled;
        self
    }

    /// Reject [`Database::load_spec`] / [`Database::load_rules`] /
    /// [`Database::add_rule_step`] registrations that produce
    /// error-severity lint diagnostics (default: off). Warnings never
    /// reject; [`Database::lint`] reports everything either way.
    pub fn strict_lint(mut self, enabled: bool) -> DatabaseBuilder {
        self.strict_lint = enabled;
        self
    }

    /// Whether [`Database::bulk_load`] on a durable database relaxes
    /// the commit policy to [`SyncPolicy::NoSync`] for the duration of
    /// the load, closing with one checkpoint (default: on). Disable to
    /// bulk load under the configured per-commit policy.
    pub fn bulk_nosync(mut self, enabled: bool) -> DatabaseBuilder {
        self.bulk_nosync = Some(enabled);
        self
    }

    /// Cache optimized query plans keyed by normalized query shape
    /// (default: off). A hit skips the rewriter entirely and re-binds
    /// the cached plan's literals; see [`crate::plancache`] for the
    /// normalization and the soundness argument. Entries are
    /// invalidated by DDL, re-partitioning, bulk loads, and
    /// [`Database::analyze`].
    pub fn plan_cache(mut self, enabled: bool) -> DatabaseBuilder {
        self.plan_cache = Some(enabled);
        self
    }

    /// Choose among rule alternatives by estimated page cost (default:
    /// off). When off, the optimizer always takes a rule's primary
    /// template — the historical behavior. When on, rules with
    /// alternatives (index probe vs. scan, hash join vs. index-probe
    /// join) are costed with the catalog statistics collected by
    /// [`Database::analyze`].
    pub fn cost_based(mut self, enabled: bool) -> DatabaseBuilder {
        self.cost_based = Some(enabled);
        self
    }

    /// Validate rewritten plans (default: on): after every rewrite the
    /// optimizer compares the plan's result type with the type before
    /// the rewrite (modulo representation). With `strict_lint` on, a
    /// violating rewrite rejects the plan; otherwise violations are
    /// counted in `plan_validation_failures` (see `.metrics`) and the
    /// offending step is marked in the EXPLAIN rewrite trace.
    pub fn validate_plans(mut self, enabled: bool) -> DatabaseBuilder {
        self.validate_plans = Some(enabled);
        self
    }

    /// Build, panicking on construction failure. In-memory databases
    /// cannot fail to construct; durable ones go through
    /// [`DatabaseBuilder::try_build`] when the caller wants the error.
    pub fn build(self) -> Database {
        self.try_build().expect("database construction failed")
    }

    /// Build, surfacing I/O and recovery errors. For a durable source
    /// this opens (or creates) the log, runs redo-only crash recovery
    /// against the data disk, and restores the catalog and object values
    /// from the last committed snapshot in the log.
    pub fn try_build(self) -> Result<Database, SystemError> {
        let frames = self.frame_capacity.unwrap_or(4096);
        let mut recovery = None;
        let mut recovered_meta = None;
        let pool = match (self.pool, self.durability) {
            (Some(_), Some(_)) => {
                return Err(SystemError::Persist(
                    "durability() and pool() are mutually exclusive".into(),
                ))
            }
            (Some(pool), None) => pool,
            (None, None) => sos_storage::mem_pool(frames),
            (None, Some(cfg)) => {
                let (data, wal_disk): (Arc<dyn DiskManager>, Arc<dyn DiskManager>) =
                    match cfg.source {
                        DurableSource::Dir(dir) => {
                            std::fs::create_dir_all(&dir)
                                .map_err(|e| SystemError::Persist(e.to_string()))?;
                            (
                                Arc::new(FileDisk::open(&dir.join("pages.db"))?),
                                Arc::new(FileDisk::open(&dir.join("wal.log"))?),
                            )
                        }
                        DurableSource::Disks(d, w) => (d, w),
                    };
                let options = WalOptions {
                    policy: cfg.policy,
                    buffer_pages: cfg.wal_buffer_pages,
                };
                let (wal, meta, info) = Wal::recover_with(wal_disk, &data, options)?;
                recovery = Some(info);
                recovered_meta = meta;
                Arc::new(BufferPool::with_wal(data, frames, Arc::new(wal)))
            }
        };
        let mut engine = ExecEngine::new(pool);
        if let Some(n) = self.workers {
            engine.set_workers(n);
        }
        if let Some(n) = self.batch_size {
            engine.set_batch_size(n);
        }
        if let Some(on) = self.compile_exprs {
            engine.set_compile_exprs(on);
        }
        let mut db = Database {
            sig: builtin::builtin_signature(),
            catalog: Catalog::new(),
            engine,
            store: HashMap::new(),
            optimizer: rules::builtin_optimizer(),
            optimize_enabled: self.optimize.unwrap_or(true),
            last_opt_stats: OptimizerStats::default(),
            total_opt_stats: OptimizerStats::default(),
            tracer: Tracer::new(self.trace),
            strict_lint: self.strict_lint,
            bulk_nosync: self.bulk_nosync.unwrap_or(true),
            validate_plans: self.validate_plans.unwrap_or(true),
            plan_cache: plancache::PlanCache::default(),
            plan_cache_enabled: self.plan_cache.unwrap_or(false),
            cost_based: self.cost_based.unwrap_or(false),
            recovery,
        };
        if let Some(bytes) = recovered_meta {
            db.install_snapshot(&bytes)?;
        }
        Ok(db)
    }
}

/// The SOS database system.
pub struct Database {
    sig: Signature,
    catalog: Catalog,
    engine: ExecEngine,
    store: HashMap<Symbol, Value>,
    optimizer: Optimizer,
    optimize_enabled: bool,
    /// Counters of the most recent optimizer run.
    last_opt_stats: OptimizerStats,
    /// Cumulative optimizer counters since the last `reset_metrics`.
    total_opt_stats: OptimizerStats,
    /// Per-phase span recorder (off by default).
    tracer: Tracer,
    /// Reject spec/rule registrations with error-severity diagnostics.
    strict_lint: bool,
    /// `bulk_load` relaxes a durable commit policy to `NoSync` + one
    /// closing checkpoint (see [`DatabaseBuilder::bulk_nosync`]).
    bulk_nosync: bool,
    /// Re-typecheck rewritten plans against the pre-rewrite result type
    /// (see [`DatabaseBuilder::validate_plans`]).
    validate_plans: bool,
    /// Optimized plans keyed by normalized query shape (see
    /// [`plancache`]); consulted only when `plan_cache_enabled`.
    plan_cache: plancache::PlanCache,
    plan_cache_enabled: bool,
    /// Choose among rule alternatives by estimated page cost (see
    /// [`DatabaseBuilder::cost_based`]).
    cost_based: bool,
    /// What crash recovery did at open (durable databases only).
    recovery: Option<RecoveryInfo>,
}

impl Database {
    /// Start configuring a database — the construction path.
    pub fn builder() -> DatabaseBuilder {
        DatabaseBuilder::new()
    }

    // ---- accessors ----

    pub fn signature(&self) -> &Signature {
        &self.sig
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    // ---- durability ----

    /// True when this database logs statements to a write-ahead log
    /// (built via [`DatabaseBuilder::durability`]).
    pub fn is_durable(&self) -> bool {
        self.engine.pool.has_wal()
    }

    /// The commit [`SyncPolicy`] in effect, or `None` for an in-memory
    /// database.
    pub fn sync_policy(&self) -> Option<SyncPolicy> {
        self.engine.pool.wal().map(|w| w.policy())
    }

    /// The WAL pipeline's current LSN watermarks, or `None` for an
    /// in-memory database.
    pub fn wal_lsns(&self) -> Option<WalLsns> {
        self.engine.pool.wal().map(|w| WalLsns {
            appended: w.appended_lsn(),
            written: w.written_lsn(),
            durable: w.durable_lsn(),
            checkpoint: w.checkpoint_lsn(),
        })
    }

    /// Switch the commit [`SyncPolicy`] at runtime. The switch is a
    /// clean boundary: everything already appended is flushed and
    /// synced under the old policy before the new one takes effect.
    /// Errors on an in-memory database.
    pub fn set_sync_policy(&mut self, policy: SyncPolicy) -> Result<(), SystemError> {
        match self.engine.pool.wal() {
            Some(wal) => Ok(wal.set_policy(policy)?),
            None => Err(SystemError::Persist(
                "set_sync_policy on an in-memory database".into(),
            )),
        }
    }

    /// What crash recovery did when this database was opened — `None`
    /// for in-memory databases.
    pub fn recovery_info(&self) -> Option<&RecoveryInfo> {
        self.recovery.as_ref()
    }

    /// Take a fuzzy checkpoint: flush the log, write every committed
    /// dirty page to the data disk (WAL first), sync it, and advance the
    /// log's recovery scan start past work it no longer needs to redo.
    /// The current catalog snapshot is re-published at the new scan
    /// start. On an in-memory database this degrades to a plain flush.
    /// Returns what the checkpoint did: pages written back, the LSN
    /// range it advanced the recovery scan start across, and wall time.
    pub fn checkpoint(&mut self) -> Result<CheckpointStats, SystemError> {
        let meta = self.snapshot_bytes()?;
        Ok(self.engine.pool.checkpoint(Some(&meta))?)
    }

    // ---- observability ----

    /// One consistent snapshot of every counter the system keeps:
    /// buffer-pool traffic, cumulative optimizer counters, per-operator
    /// runtime rows, and per-phase wall time (populated when tracing is
    /// on). This subsumes the deprecated `pool_stats` /
    /// `last_optimizer_stats` / `exec_stats` getters.
    pub fn metrics(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            pool: self.engine.pool.stats(),
            optimizer: self.total_opt_stats,
            ops: self.engine.stats.snapshot(),
            phases: self.tracer.timings(),
            wal: self.engine.pool.wal_stats(),
            compile: self.engine.stats.compile_snapshot(),
            planner: PlannerStats {
                cache_hits: self.plan_cache.hits,
                cache_misses: self.plan_cache.misses,
                cache_invalidations: self.plan_cache.invalidations,
                cache_entries: self.plan_cache.len() as u64,
            },
        }
    }

    /// Reset every counter [`Database::metrics`] reports (the tracing
    /// on/off flag is unchanged).
    pub fn reset_metrics(&mut self) {
        self.engine.pool.reset_stats();
        self.engine.stats.reset();
        self.total_opt_stats = OptimizerStats::default();
        self.last_opt_stats = OptimizerStats::default();
        self.plan_cache.reset_counters();
        self.tracer.reset();
    }

    /// Turn per-phase span recording on or off. Off by default; while
    /// off, the only cost per phase is one relaxed atomic load.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracer.set_enabled(on);
    }

    /// Whether phase tracing is currently on.
    pub fn tracing(&self) -> bool {
        self.tracer.enabled()
    }

    /// Runtime counters for a single operator, or `None` if no operator
    /// of that name ever ran (unknown names are no longer silently
    /// reported as zeros).
    pub fn op_stats(&self, op: &str) -> Option<sos_exec::OpStats> {
        self.engine.stats.get(op)
    }

    /// Set the worker count for intra-operator parallelism at runtime.
    /// `1` is exactly the serial engine; `n > 1` lets heap scans,
    /// filters, counts and joins run page- or chunk-partitioned across
    /// `n` threads. (Initial value: [`DatabaseBuilder::workers`].)
    pub fn set_parallelism(&mut self, n: usize) {
        self.engine.set_workers(n);
    }

    /// The current intra-operator worker count.
    pub fn workers(&self) -> usize {
        self.engine.workers()
    }

    /// Set the vectorized batch width at runtime. `1` restores the
    /// exact tuple-at-a-time drains; larger widths pull whole batches
    /// through the cursor pipeline. (Initial value:
    /// [`DatabaseBuilder::batch_size`], default 1024.)
    pub fn set_batch_size(&mut self, n: usize) {
        self.engine.set_batch_size(n);
    }

    /// The current vectorized batch width.
    pub fn batch_size(&self) -> usize {
        self.engine.batch_size()
    }

    /// Turn the expression compiler on or off at runtime. `false`
    /// forces every closure through the tree-walking interpreter; the
    /// differential suite runs both modes over the same statements.
    /// (Initial value: [`DatabaseBuilder::compile_exprs`], default on.)
    pub fn set_compile_exprs(&mut self, on: bool) {
        self.engine.set_compile_exprs(on);
    }

    /// Whether closures are compiled to batch bytecode when possible.
    pub fn compile_exprs_enabled(&self) -> bool {
        self.engine.compile_exprs_enabled()
    }

    /// Turn the rule optimizer off/on at runtime (benchmarks compare
    /// plans this way; initial value: [`DatabaseBuilder::optimize`]).
    pub fn set_optimizer_enabled(&mut self, enabled: bool) {
        self.optimize_enabled = enabled;
    }

    /// Whether the rule optimizer is applied to statements.
    pub fn optimizer_enabled(&self) -> bool {
        self.optimize_enabled
    }

    /// Turn plan validation off/on at runtime (initial value:
    /// [`DatabaseBuilder::validate_plans`], default on).
    pub fn set_validate_plans(&mut self, enabled: bool) {
        self.validate_plans = enabled;
    }

    /// Whether rewritten plans are re-typechecked per rewrite.
    pub fn validate_plans_enabled(&self) -> bool {
        self.validate_plans
    }

    /// Turn cost-based rewrite selection off/on at runtime (initial
    /// value: [`DatabaseBuilder::cost_based`], default off).
    pub fn set_cost_based(&mut self, enabled: bool) {
        if self.cost_based != enabled {
            // Cached templates were chosen under the old costing mode;
            // keep the cache consistent with what the rewriter would
            // produce now.
            self.plan_cache.invalidate_all();
        }
        self.cost_based = enabled;
    }

    /// Whether rewrite alternatives are chosen by the page-touch cost
    /// model.
    pub fn cost_based_enabled(&self) -> bool {
        self.cost_based
    }

    /// Turn the normalized-shape plan cache off/on at runtime (initial
    /// value: [`DatabaseBuilder::plan_cache`], default off). Disabling
    /// keeps entries and counters; re-enabling resumes with them.
    pub fn set_plan_cache_enabled(&mut self, enabled: bool) {
        self.plan_cache_enabled = enabled;
    }

    /// Whether query plans are served from the normalized-shape cache.
    pub fn plan_cache_enabled(&self) -> bool {
        self.plan_cache_enabled
    }

    /// Drop every cached plan (counters survive; evictions count as
    /// invalidations). Returns how many entries were dropped.
    pub fn clear_plan_cache(&mut self) -> usize {
        self.plan_cache.invalidate_all()
    }

    /// Evict cached plans whose footprint includes `name` — called by
    /// every code path that changes what the optimizer would produce
    /// for that object (DDL, re-partitioning, bulk loads, `analyze`).
    pub(crate) fn invalidate_plans_for(&mut self, name: &Symbol) {
        self.plan_cache.invalidate_object(name);
    }

    // ---- extensibility ----

    /// Load an additional specification (new kinds, constructors,
    /// operators, subtypes) — the paper's extensibility story.
    ///
    /// ```
    /// # use sos_system::Database;
    /// # use sos_exec::Value;
    /// let mut db = Database::builder().build();
    /// db.load_spec(r##"op triple : int -> int syntax "_ #""##).unwrap();
    /// db.add_op_impl("triple", |_, _, args| {
    ///     Ok(Value::Int(args[0].as_int("triple")? * 3))
    /// });
    /// assert_eq!(db.query("14 triple").unwrap(), Value::Int(42));
    /// ```
    pub fn load_spec(&mut self, src: &str) -> Result<(), SystemError> {
        if self.strict_lint {
            // Parse into a trial copy; commit only if the extended
            // signature is free of error-severity diagnostics (the
            // built-in signature lints clean, so any error is new).
            let mut trial = self.sig.clone();
            sos_parser::parse_spec(src, &mut trial)?;
            let diags = sos_lint::lint_spec(&trial);
            if sos_lint::has_errors(&diags) {
                return Err(SystemError::Lint(
                    diags
                        .into_iter()
                        .filter(|d| d.severity == sos_lint::Severity::Error)
                        .collect(),
                ));
            }
            self.sig = trial;
        } else {
            sos_parser::parse_spec(src, &mut self.sig)?;
        }
        Ok(())
    }

    /// Run the static analyzer over the current signature and rule set
    /// (see the `sos-lint` crate and DESIGN.md §7). The shell's `.lint`
    /// command prints this report.
    pub fn lint(&self) -> Vec<sos_lint::Diagnostic> {
        sos_lint::lint_all(&self.sig, &self.optimizer)
    }

    /// Lint a standalone source file the way `sos lint <file>` does.
    ///
    /// A name ending in `.rules` is parsed as one exhaustive optimizer
    /// step (named after the file stem) and checked against the
    /// built-in signature; anything else is parsed as a specification
    /// *extending* the built-in signature, and diagnostics are mapped
    /// back to 1-based source lines through the parser's span table.
    /// The built-in signature lints clean, so every returned finding is
    /// about `src`. Errors are parse failures, not lint findings.
    pub fn lint_source(name: &str, src: &str) -> Result<Vec<sos_lint::Diagnostic>, String> {
        if name.ends_with(".rules") {
            let rules = sos_optimizer::parse_rules(src).map_err(|e| e.to_string())?;
            let step = std::path::Path::new(name)
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("rules");
            let opt = sos_optimizer::Optimizer::new(vec![sos_optimizer::RuleStep::exhaustive(
                step, rules,
            )]);
            Ok(sos_lint::lint_rules(&opt, &builtin::builtin_signature()))
        } else {
            let mut sig = builtin::builtin_signature();
            let spans =
                sos_parser::parse_spec_with_spans(src, &mut sig).map_err(|e| e.to_string())?;
            let mut diags = sos_lint::lint_spec(&sig);
            for d in &mut diags {
                let offset = match &d.anchor {
                    sos_lint::Anchor::Spec(i) => spans.spec_offset(*i),
                    sos_lint::Anchor::Constructor(n) => spans.constructor_offset(n),
                    sos_lint::Anchor::Subtype(i) => spans.subtype_offset(*i),
                    _ => None,
                };
                if let Some(offset) = offset {
                    d.line = Some(sos_parser::line_of(src, offset));
                }
            }
            Ok(diags)
        }
    }

    /// Register an operator implementation for a loaded specification.
    pub fn add_op_impl<F>(&mut self, name: &str, f: F)
    where
        F: Fn(&mut EvalCtx, &TypedExpr, Vec<Value>) -> sos_exec::ExecResult<Value>
            + Send
            + Sync
            + 'static,
    {
        self.engine.add_op(name, f);
    }

    /// Append an optimizer rule step. With `strict_lint` on, the step
    /// is linted against the current signature first and rejected on
    /// error-severity diagnostics.
    pub fn add_rule_step(&mut self, step: sos_optimizer::RuleStep) -> Result<(), SystemError> {
        if self.strict_lint {
            let trial = Optimizer::new(vec![step.clone()]);
            let diags = sos_lint::lint_rules(&trial, &self.sig);
            if sos_lint::has_errors(&diags) {
                return Err(SystemError::Lint(
                    diags
                        .into_iter()
                        .filter(|d| d.severity == sos_lint::Severity::Error)
                        .collect(),
                ));
            }
        }
        self.optimizer.steps.push(step);
        // New rules change what every shape optimizes to.
        self.plan_cache.invalidate_all();
        Ok(())
    }

    /// Load optimization rules from the textual rule language (Section 5)
    /// as a new exhaustive step with the given name.
    pub fn load_rules(&mut self, step_name: &str, src: &str) -> Result<(), SystemError> {
        let rules = sos_optimizer::parse_rules(src)?;
        self.add_rule_step(sos_optimizer::RuleStep::exhaustive(step_name, rules))
    }

    /// Read an object's current value (tests and benchmarks).
    pub fn object_value(&self, name: &str) -> Option<&Value> {
        self.store.get(&Symbol::new(name))
    }

    /// Bulk-load tuple values into a named object, bypassing the
    /// statement layer (workload generators use this; each tuple still
    /// goes through the normal representation insert path).
    pub fn bulk_insert(&mut self, name: &str, tuples: Vec<Value>) -> Result<(), SystemError> {
        let key = Symbol::new(name);
        if self.catalog.object(&key).is_none() {
            return Err(SystemError::UnknownObject(key));
        }
        let mut target = self.store.get(&key).cloned().unwrap_or(Value::Undefined);
        let tx = self.begin_stmt()?;
        {
            let mut ctx = EvalCtx::new(&self.engine, &mut self.store, &mut self.catalog);
            for t in tuples {
                target = sos_exec::ops::updates::insert_into(&mut ctx, &target, &t)?;
            }
        }
        let prev = self.store.insert(key.clone(), target);
        if let Err(e) = self.commit_stmt(tx) {
            match prev {
                Some(v) => self.store.insert(key, v),
                None => self.store.remove(&key),
            };
            return Err(e);
        }
        Ok(())
    }

    // ---- program processing ----

    /// Run a complete program, returning one output per statement.
    pub fn run(&mut self, src: &str) -> Result<Vec<Output>, SystemError> {
        let span = self.tracer.start();
        let stmts = parse_program(src, &self.sig);
        self.tracer.finish(Phase::Parse, span);
        let stmts = stmts?;
        let mut out = Vec::with_capacity(stmts.len());
        for stmt in &stmts {
            out.push(self.execute(stmt)?);
        }
        Ok(out)
    }

    /// Run a single query expression (concrete syntax) and return its
    /// value.
    ///
    /// ```
    /// # use sos_system::Database;
    /// # use sos_exec::Value;
    /// let mut db = Database::builder().build();
    /// assert_eq!(db.query("2 + 3 * 4").unwrap(), Value::Int(14));
    /// ```
    pub fn query(&mut self, expr_src: &str) -> Result<Value, SystemError> {
        let outputs = self.run(&format!("query {expr_src};"))?;
        match outputs.into_iter().next() {
            Some(Output::Query(v)) => Ok(v),
            _ => unreachable!("query statement produces a query output"),
        }
    }

    /// Type-check and optimize a query without executing it, returning
    /// a structured [`Explain`]: per-phase wall time, the ordered
    /// rewrite trace, and the final plan as a term and as an indented
    /// operator tree. Use [`Explain::plan`] for the bare plan term.
    ///
    /// ```
    /// # use sos_system::Database;
    /// let mut db = Database::builder().build();
    /// db.run("type t = tuple(<(k, int)>); create r : rel(t);").unwrap();
    /// let report = db.explain("r select[k > 0]").unwrap();
    /// assert!(report.plan().starts_with("select(r, fun ("));
    /// assert!(!report.phases.is_empty());
    /// ```
    pub fn explain(&mut self, expr_src: &str) -> Result<Explain, SystemError> {
        self.explain_query(expr_src, false)
    }

    /// Like [`Database::explain`], but also *runs* the plan and attaches
    /// an [`ExplainAnalysis`]: actual per-operator tuple/page counts,
    /// buffer-pool traffic attributable to the run, and a summary of the
    /// produced value.
    pub fn explain_analyze(&mut self, expr_src: &str) -> Result<Explain, SystemError> {
        self.explain_query(expr_src, true)
    }

    fn explain_query(&mut self, expr_src: &str, analyze: bool) -> Result<Explain, SystemError> {
        let mut phases = Vec::new();
        let started = Instant::now();
        let stmts = parse_program(&format!("query {expr_src};"), &self.sig)?;
        phases.push((Phase::Parse, started.elapsed().as_nanos() as u64));
        let Statement::Query(e) = &stmts[0] else {
            unreachable!()
        };
        let started = Instant::now();
        let checked = self.check(&self.resolve_expr(e))?;
        phases.push((Phase::Check, started.elapsed().as_nanos() as u64));
        let started = Instant::now();
        let (optimized, rewrites, cache_outcome) = self.plan_query(&checked, true)?;
        phases.push((Phase::Optimize, started.elapsed().as_nanos() as u64));
        let estimates = if self.cost_based {
            let model = sos_optimizer::CostModel::new(&self.catalog);
            aggregate_estimates(model.op_estimates(&optimized))
        } else {
            Vec::new()
        };
        let analysis = if analyze {
            let pool_before = self.engine.pool.stats();
            let ops_before = self.engine.stats.snapshot();
            let wal_before = self.engine.pool.wal_stats();
            let compile_before = self.engine.stats.compile_snapshot();
            let started = Instant::now();
            let value = self.eval(&optimized)?;
            phases.push((Phase::Execute, started.elapsed().as_nanos() as u64));
            let ops = ops_delta(&ops_before, &self.engine.stats.snapshot());
            Some(ExplainAnalysis {
                misestimate_factor: misestimate_factor(&estimates, &ops),
                ops,
                pool: pool_delta(&pool_before, &self.engine.pool.stats()),
                result: value_summary(&value),
                wal: self.engine.pool.wal_stats().delta(&wal_before),
                compile: self.engine.stats.compile_snapshot().delta(&compile_before),
            })
        } else {
            None
        };
        Ok(Explain {
            source: expr_src.trim().to_string(),
            kind: ExplainKind::Query,
            phases,
            rewrites,
            plan: optimized.to_string(),
            plan_tree: plan_tree(&optimized),
            plan_cache: cache_outcome,
            estimates,
            analysis,
        })
    }

    /// Type-check and optimize an update statement without executing it.
    /// [`Explain::statement`] renders the translated statement text —
    /// the paper's Section 6 trace: `update cities := insert(cities, c)`
    /// explains to `update cities_rep := insert(cities_rep, c)`.
    pub fn explain_update(&mut self, stmt_src: &str) -> Result<Explain, SystemError> {
        let mut phases = Vec::new();
        let started = Instant::now();
        let stmts = parse_program(stmt_src, &self.sig)?;
        phases.push((Phase::Parse, started.elapsed().as_nanos() as u64));
        let Some(Statement::Update(name, expr)) = stmts.first() else {
            return Err(SystemError::Persist(
                "explain_update expects a single update statement".into(),
            ));
        };
        let started = Instant::now();
        let resolved = self.resolve_expr(expr);
        let checked = self.check(&resolved)?;
        phases.push((Phase::Check, started.elapsed().as_nanos() as u64));
        let started = Instant::now();
        let (optimized, rewrites) = self.optimize_traced(&checked)?;
        phases.push((Phase::Optimize, started.elapsed().as_nanos() as u64));
        let target = self
            .update_target(&optimized)
            .unwrap_or_else(|| name.clone());
        Ok(Explain {
            source: stmt_src.trim().to_string(),
            kind: ExplainKind::Update {
                target: target.to_string(),
            },
            phases,
            rewrites,
            plan: optimized.to_string(),
            plan_tree: plan_tree(&optimized),
            plan_cache: None,
            estimates: Vec::new(),
            analysis: None,
        })
    }

    /// Execute one parsed statement.
    pub fn execute(&mut self, stmt: &Statement) -> Result<Output, SystemError> {
        match stmt {
            Statement::TypeDef(name, ty) => {
                let resolved = self.resolve_type(ty)?;
                self.checker().check_type(&resolved)?;
                let tx = self.begin_stmt()?;
                self.catalog.define_type(name.clone(), resolved)?;
                self.commit_stmt(tx)?;
                Ok(Output::TypeDefined(name.clone()))
            }
            Statement::Create(name, ty) => {
                let resolved = self.resolve_type(ty)?;
                self.checker().check_type(&resolved)?;
                let tx = self.begin_stmt()?;
                self.catalog
                    .create_object(&self.sig, name.clone(), resolved.clone())?;
                // Catalog objects are addressed by name (their state
                // lives in the catalog itself); their store value is a
                // name token so update expressions over them evaluate.
                let value = if matches!(&resolved, DataType::Cons(c, _) if c.as_str() == "catalog")
                {
                    Value::Ident(name.clone())
                } else {
                    self.engine
                        .init_value(&self.sig, &self.catalog, &resolved)?
                };
                self.store.insert(name.clone(), value);
                if let Err(e) = self.commit_stmt(tx) {
                    self.store.remove(name);
                    let _ = self.catalog.delete_object(name);
                    return Err(e);
                }
                // A new object (and any rep links a later catalog insert
                // adds) can change what the rewriter produces for shapes
                // that don't even mention it yet — drop everything.
                self.plan_cache.invalidate_all();
                Ok(Output::Created(name.clone()))
            }
            Statement::Update(name, expr) => {
                if self.catalog.object(name).is_none() {
                    return Err(SystemError::UnknownObject(name.clone()));
                }
                let span = self.tracer.start();
                let resolved = self.resolve_expr(expr);
                let checked = self.check(&resolved);
                self.tracer.finish(Phase::Check, span);
                let checked = checked?;
                let optimized = self.optimize(&checked)?;
                // A translated model update targets the representation
                // object named by the rewritten update operator.
                let target = self
                    .update_target(&optimized)
                    .unwrap_or_else(|| name.clone());
                let expected = self
                    .catalog
                    .object(&target)
                    .ok_or_else(|| SystemError::UnknownObject(target.clone()))?
                    .ty
                    .clone();
                if optimized.ty != expected {
                    return Err(SystemError::UpdateTypeMismatch {
                        object: target.clone(),
                        object_type: expected.to_string(),
                        value_type: optimized.ty.to_string(),
                    });
                }
                // The update operators dirty pages inside this bracket;
                // an Err out of eval drops `tx`, aborting: every touched
                // page is restored, so a failed statement is a no-op.
                let tx = self.begin_stmt()?;
                let value = self.eval(&optimized)?;
                let prev = self.store.insert(target.clone(), value);
                if let Err(e) = self.commit_stmt(tx) {
                    match prev {
                        Some(v) => self.store.insert(target.clone(), v),
                        None => self.store.remove(&target),
                    };
                    return Err(e);
                }
                // Updating a catalog relation (e.g. inserting a rep
                // link) changes which rules fire for any shape; plain
                // data updates leave cached plans valid.
                if matches!(&expected, DataType::Cons(c, _) if c.as_str() == "catalog") {
                    self.plan_cache.invalidate_all();
                }
                Ok(Output::Updated(target))
            }
            Statement::Delete(name) => {
                let tx = self.begin_stmt()?;
                self.catalog.delete_object(name)?;
                let prev = self.store.remove(name);
                if let Err(e) = self.commit_stmt(tx) {
                    if let Some(v) = prev {
                        self.store.insert(name.clone(), v);
                    }
                    return Err(e);
                }
                self.invalidate_plans_for(name);
                Ok(Output::Deleted(name.clone()))
            }
            Statement::Query(expr) => {
                let span = self.tracer.start();
                let resolved = self.resolve_expr(expr);
                let checked = self.check(&resolved);
                self.tracer.finish(Phase::Check, span);
                let checked = checked?;
                let (optimized, _, _) = self.plan_query(&checked, false)?;
                let value = self.eval(&optimized)?;
                Ok(Output::Query(value))
            }
        }
    }

    /// The level of a checked term: `Model` if it contains any
    /// model-level operator, otherwise the most specific of its parts
    /// (the classification of Section 6).
    pub fn term_level(&self, t: &TypedExpr) -> Level {
        let mut has_model = false;
        let mut has_rep = false;
        t.visit(&mut |n| {
            if let TypedNode::Apply { spec, .. } = &n.node {
                match self.sig.spec(*spec).level {
                    Level::Model => has_model = true,
                    Level::Representation => has_rep = true,
                    Level::Hybrid => {}
                }
            }
        });
        match (has_model, has_rep) {
            (true, _) => Level::Model,
            (false, true) => Level::Representation,
            (false, false) => Level::Hybrid,
        }
    }

    // ---- internals ----

    fn checker(&self) -> Checker<'_> {
        Checker::new(&self.sig, &self.catalog)
    }

    /// Open a statement transaction when the pool is WAL-backed.
    /// `None` means the database is in-memory and there is nothing to
    /// commit; the mutating arms of [`Database::execute`] bracket
    /// themselves with this so a failed statement aborts (restoring
    /// every touched page) instead of leaving a half-applied update.
    fn begin_stmt(&self) -> Result<Option<StatementTx>, SystemError> {
        if self.engine.pool.has_wal() {
            Ok(Some(StatementTx::begin(Arc::clone(&self.engine.pool))?))
        } else {
            Ok(None)
        }
    }

    /// Commit a statement transaction, logging the current catalog +
    /// store snapshot as the commit's meta payload — what recovery
    /// restores the in-memory side of the database from.
    fn commit_stmt(&self, tx: Option<StatementTx>) -> Result<(), SystemError> {
        if let Some(tx) = tx {
            let meta = self.snapshot_bytes()?;
            tx.commit(Some(&meta))?;
        }
        Ok(())
    }

    fn check(&self, e: &Expr) -> Result<TypedExpr, SystemError> {
        Ok(self.checker().check_expr(e)?)
    }

    /// Plan-validation level for the optimizer: off when disabled via
    /// the builder, `Strict` (reject violating plans) under strict
    /// lint, counting + trace-marking otherwise.
    fn validation(&self) -> Validation {
        if !self.validate_plans {
            Validation::Off
        } else if self.strict_lint {
            Validation::Strict
        } else {
            Validation::Count
        }
    }

    fn optimize(&mut self, t: &TypedExpr) -> Result<TypedExpr, SystemError> {
        if !self.optimize_enabled {
            return Ok(t.clone());
        }
        let (optimized, _) = self.optimize_inner(t, &[], false)?;
        Ok(optimized)
    }

    /// Optimize while recording every applied rewrite (the explain path;
    /// timings there go through `Instant` directly, not the tracer).
    fn optimize_traced(
        &mut self,
        t: &TypedExpr,
    ) -> Result<(TypedExpr, Vec<RuleApplication>), SystemError> {
        if !self.optimize_enabled {
            return Ok((t.clone(), Vec::new()));
        }
        self.optimize_inner(t, &[], true)
    }

    /// One call into the rewriter with the database's current options.
    /// `unknown_consts` marks constants the cost model must treat as
    /// unknown (the plan cache passes its sentinel literals so cached
    /// templates get generic-plan costing).
    fn optimize_inner(
        &mut self,
        t: &TypedExpr,
        unknown_consts: &[Const],
        traced: bool,
    ) -> Result<(TypedExpr, Vec<RuleApplication>), SystemError> {
        let span = self.tracer.start();
        let checker = Checker::new(&self.sig, &self.catalog);
        let opts = OptimizeOpts {
            validation: self.validation(),
            cost_based: self.cost_based,
            unknown_consts: unknown_consts.to_vec(),
        };
        let result = self
            .optimizer
            .optimize_opts(t, &checker, &self.catalog, &opts, traced);
        self.tracer.finish(Phase::Optimize, span);
        let (optimized, stats, trace) = result?;
        self.last_opt_stats = stats;
        self.total_opt_stats.absorb(stats);
        Ok((optimized, trace.unwrap_or_default()))
    }

    /// Plan a query term. With the plan cache on, the term's normalized
    /// shape (alpha-renamed variables, literals stripped to sentinels)
    /// is looked up first: a hit rebinds this statement's literals into
    /// the cached template and skips the rewriter entirely; a miss
    /// optimizes the sentinel form (generic plan), caches it, and
    /// rebinds. Returns the executable plan, the rewrite trace (empty on
    /// a hit), and the cache outcome (`None` when the cache was not
    /// consulted).
    #[allow(clippy::type_complexity)]
    fn plan_query(
        &mut self,
        checked: &TypedExpr,
        traced: bool,
    ) -> Result<(TypedExpr, Vec<RuleApplication>, Option<bool>), SystemError> {
        if !self.optimize_enabled {
            return Ok((checked.clone(), Vec::new(), None));
        }
        if !self.plan_cache_enabled {
            let (optimized, trace) = self.optimize_inner(checked, &[], traced)?;
            return Ok((optimized, trace, None));
        }
        // The lookup span covers the whole hit path — normalization, the
        // map probe, and constant rebinding — so the reported optimizer
        // time is what the cache actually costs, not just the probe.
        let lookup_started = Instant::now();
        let norm = plancache::normalize(checked);
        if let Some(entry) = self.plan_cache.lookup(&norm.key) {
            let plan = plancache::rebind(&entry.template, &entry.sentinels, &norm.literals);
            let lookup_ns = lookup_started.elapsed().as_nanos() as u64;
            let stats = OptimizerStats {
                optimize_ns: lookup_ns,
                cache_lookup_ns: lookup_ns,
                ..OptimizerStats::default()
            };
            self.last_opt_stats = stats;
            self.total_opt_stats.absorb(stats);
            return Ok((plan, Vec::new(), Some(true)));
        }
        let lookup_ns = lookup_started.elapsed().as_nanos() as u64;
        let (sentinels, sentinel_term) = plancache::generalize(checked, &norm.literals);
        let (template, trace) = self.optimize_inner(&sentinel_term, &sentinels, traced)?;
        self.last_opt_stats.cache_lookup_ns += lookup_ns;
        self.last_opt_stats.optimize_ns += lookup_ns;
        self.total_opt_stats.cache_lookup_ns += lookup_ns;
        self.total_opt_stats.optimize_ns += lookup_ns;
        // The cache footprint is every object either term mentions: a
        // rewrite can swap the source's objects for representation
        // objects, and invalidation must catch changes to both.
        let mut objects = Vec::new();
        plancache::referenced_objects(checked, &mut objects);
        plancache::referenced_objects(&template, &mut objects);
        objects.sort();
        objects.dedup();
        let plan = plancache::rebind(&template, &sentinels, &norm.literals);
        self.plan_cache.insert(
            norm.key,
            plancache::CachedPlan {
                template,
                sentinels,
                objects,
            },
        );
        Ok((plan, trace, Some(false)))
    }

    fn eval(&mut self, t: &TypedExpr) -> Result<Value, SystemError> {
        let span = self.tracer.start();
        let result = self.eval_inner(t);
        self.tracer.finish(Phase::Execute, span);
        result
    }

    fn eval_inner(&mut self, t: &TypedExpr) -> Result<Value, SystemError> {
        let mut ctx = EvalCtx::new(&self.engine, &mut self.store, &mut self.catalog);
        let v = ctx.eval(t)?;
        // Pipelined cursors are drained at the statement boundary; within
        // a plan they stay lazy.
        match v {
            Value::Cursor(_) => Ok(Value::Stream(sos_exec::stream::materialize(&mut ctx, v)?)),
            other => Ok(other),
        }
    }

    /// The representation object a rewritten update targets, if any.
    fn update_target(&self, t: &TypedExpr) -> Option<Symbol> {
        let TypedNode::Apply { spec, args, .. } = &t.node else {
            return None;
        };
        if !self.sig.spec(*spec).is_update {
            return None;
        }
        match &args.first()?.node {
            TypedNode::Object(n) => Some(n.clone()),
            _ => None,
        }
    }

    /// Expand named types and resolve bare names that denote identifier
    /// values (`btree(city, pop, int)`: `city` is a named type, `pop` an
    /// attribute name).
    fn resolve_type(&self, ty: &DataType) -> Result<DataType, SystemError> {
        let expanded = self.catalog.expand_type(ty);
        Ok(self.resolve_idents(&expanded))
    }

    fn resolve_idents(&self, ty: &DataType) -> DataType {
        match ty {
            DataType::Cons(name, args) => DataType::Cons(
                name.clone(),
                args.iter().map(|a| self.resolve_ident_arg(a)).collect(),
            ),
            DataType::Fun(params, res) => DataType::Fun(
                params.iter().map(|p| self.resolve_idents(p)).collect(),
                Box::new(self.resolve_idents(res)),
            ),
        }
    }

    fn resolve_ident_arg(&self, arg: &TypeArg) -> TypeArg {
        match arg {
            TypeArg::Type(DataType::Cons(name, args))
                if args.is_empty()
                    && self.sig.constructor(name).is_none()
                    && self.catalog.named_type(name).is_none() =>
            {
                TypeArg::Expr(Expr::Const(sos_core::Const::Ident(name.clone())))
            }
            TypeArg::Type(t) => TypeArg::Type(self.resolve_idents(t)),
            TypeArg::List(items) => {
                TypeArg::List(items.iter().map(|a| self.resolve_ident_arg(a)).collect())
            }
            TypeArg::Pair(items) => {
                TypeArg::Pair(items.iter().map(|a| self.resolve_ident_arg(a)).collect())
            }
            TypeArg::Expr(e) => TypeArg::Expr(self.resolve_expr(e)),
        }
    }

    /// Expand named types in lambda parameter annotations throughout an
    /// expression.
    fn resolve_expr(&self, e: &Expr) -> Expr {
        match e {
            Expr::Lambda { params, body } => Expr::Lambda {
                params: params
                    .iter()
                    .map(|(n, t)| {
                        (
                            n.clone(),
                            self.resolve_type(t).unwrap_or_else(|_| t.clone()),
                        )
                    })
                    .collect(),
                body: Box::new(self.resolve_expr(body)),
            },
            Expr::Apply { op, args } => Expr::Apply {
                op: op.clone(),
                args: args.iter().map(|a| self.resolve_expr(a)).collect(),
            },
            Expr::List(items) => Expr::List(items.iter().map(|a| self.resolve_expr(a)).collect()),
            Expr::Tuple(items) => Expr::Tuple(items.iter().map(|a| self.resolve_expr(a)).collect()),
            Expr::Seq(atoms) => Expr::Seq(
                atoms
                    .iter()
                    .map(|a| match a {
                        sos_core::SeqAtom::Operand(e) => {
                            sos_core::SeqAtom::Operand(self.resolve_expr(e))
                        }
                        sos_core::SeqAtom::Word {
                            name,
                            brackets,
                            parens,
                        } => sos_core::SeqAtom::Word {
                            name: name.clone(),
                            brackets: brackets
                                .as_ref()
                                .map(|bs| bs.iter().map(|b| self.resolve_expr(b)).collect()),
                            parens: parens
                                .as_ref()
                                .map(|ps| ps.iter().map(|p| self.resolve_expr(p)).collect()),
                        },
                    })
                    .collect(),
            ),
            Expr::Const(_) | Expr::Name(_) => e.clone(),
        }
    }
}

impl Default for Database {
    fn default() -> Self {
        Database::builder().build()
    }
}

/// Sum the cost model's per-occurrence row estimates by operator name,
/// preserving the order of first appearance (matches the aggregated
/// per-operator actuals `ExplainAnalysis` reports).
fn aggregate_estimates(per_node: Vec<(Symbol, f64)>) -> Vec<(String, f64)> {
    let mut out: Vec<(String, f64)> = Vec::new();
    for (op, est) in per_node {
        match out.iter_mut().find(|(n, _)| *n == op.as_str()) {
            Some((_, total)) => *total += est,
            None => out.push((op.to_string(), est)),
        }
    }
    out
}

/// The worst estimated-vs-actual row ratio across operators that have
/// both numbers, with +1 smoothing so empty results don't divide by
/// zero. `None` when no operator has both.
fn misestimate_factor(
    estimates: &[(String, f64)],
    ops: &[(String, sos_exec::OpStats)],
) -> Option<f64> {
    let mut worst: Option<f64> = None;
    for (name, est) in estimates {
        let Some(act) = sos_obs::actual_rows(ops, name) else {
            continue;
        };
        let act = act as f64;
        let ratio = ((est + 1.0) / (act + 1.0)).max((act + 1.0) / (est + 1.0));
        worst = Some(worst.map_or(ratio, |w: f64| w.max(ratio)));
    }
    worst
}

/// A short, deterministic summary of a produced value: kind and
/// cardinality for collections, kind and rendering for atoms.
fn value_summary(v: &Value) -> String {
    match v {
        Value::Rel(ts) => format!("rel of {} tuple(s)", ts.len()),
        Value::Stream(ts) => format!("stream of {} tuple(s)", ts.len()),
        Value::List(vs) => format!("list of {} value(s)", vs.len()),
        Value::Int(_) | Value::Real(_) | Value::Str(_) | Value::Bool(_) => {
            format!("{} = {}", v.kind_name(), sos_exec::render(v))
        }
        other => other.kind_name().to_string(),
    }
}
