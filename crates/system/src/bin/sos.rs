//! `sos` — an interactive shell for the SOS database system.
//!
//! Reads statements of the five-statement language (Section 2.4) from
//! stdin, one per line (or multi-line until `;`), executes them, and
//! prints results. Meta commands:
//!
//! * `.spec <file>`  — load an additional specification
//! * `.rules <file>` — load a textual rule file as an optimizer step
//! * `.lint [json]`  — run the static analyzer (sos-lint) over the
//!   loaded signature and rule set
//! * `.explain [analyze] <q>` — rewrite trace + plan tree for a query
//!   (`analyze` also runs it and reports actual tuple/page counts)
//! * `.trace on|off` — toggle per-phase span recording
//! * `.metrics`      — the unified metrics snapshot (pool, optimizer,
//!   operators, phase timings)
//! * `.run <file>`   — run a program file
//! * `.save <dir>`   — persist the database (see `Database::save`)
//! * `.checkpoint`   — durable fuzzy checkpoint (WAL databases; see
//!   `Database::checkpoint`); prints what it did
//! * `.wal [policy <p>]` — inspect the WAL pipeline (sync policy, LSN
//!   watermarks, counters) or switch the commit sync policy
//! * `.stats [op]`   — per-operator counters (one operator, or all)
//! * `.partition <obj> [<attr> hash <n> | <attr> range <b>...]` — show
//!   or set an object's partitioning (see `Database::partition_object`)
//! * `.workers [n]`  — show or set the intra-operator worker count
//! * `.compile [on|off]` — show or toggle the expression compiler
//! * `.objects`      — list catalog objects
//! * `.quit`
//!
//! The worker count defaults to the number of available cores and can
//! be pinned with the `SOS_WORKERS` environment variable (`1` = serial).
//!
//! Besides the shell there is one batch mode:
//!
//! ```sh
//! sos lint <spec-or-rules-file> [--json]
//! ```
//!
//! which parses the file against the built-in signature, runs the
//! static analyzer, prints the report (human or JSON) with source line
//! numbers, and exits non-zero when any error-severity diagnostic is
//! found — the shape CI wants.
//!
//! ```sh
//! echo 'create r : rel(tuple(<(a, int)>)); query r count;' | cargo run --bin sos
//! ```
//!
//! `sos --durable <dir> [--sync-policy <p>]` opens a WAL-backed
//! database in `<dir>` (running crash recovery first); every statement
//! commits durably. `<p>` is `percommit` (default),
//! `group[:window_us[:max_batch]]` (group commit: coalesce commits into
//! one fsync on the WAL's writer thread), or `nosync`.

use sos_exec::render;
use sos_system::{Database, DurabilityConfig, Output, SyncPolicy};
use std::io::{BufRead, Write};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("lint") {
        std::process::exit(lint_main(&argv[1..]));
    }
    let mut builder = Database::builder();
    if let Some(n) = std::env::var("SOS_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        builder = builder.workers(n);
    }
    // `sos --durable <dir>` opens a WAL-backed database in <dir>,
    // running crash recovery first; every statement then commits
    // durably and `.checkpoint` bounds the redo work of the next open.
    // `--sync-policy <p>` picks how those commits reach stable storage.
    if let Some(i) = argv.iter().position(|a| a == "--durable") {
        let Some(dir) = argv.get(i + 1) else {
            eprintln!("usage: sos --durable <dir> [--sync-policy <p>]");
            std::process::exit(2);
        };
        let mut config = DurabilityConfig::dir(dir);
        if let Some(j) = argv.iter().position(|a| a == "--sync-policy") {
            let policy = argv.get(j + 1).ok_or_else(|| {
                "usage: sos --durable <dir> --sync-policy \
                 percommit|group[:window_us[:max_batch]]|nosync"
                    .to_string()
            });
            match policy.and_then(|p| SyncPolicy::parse(p)) {
                Ok(p) => config = config.sync_policy(p),
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
            }
        }
        builder = builder.durability(config);
    } else if argv.iter().any(|a| a == "--sync-policy") {
        eprintln!("--sync-policy requires --durable <dir>");
        std::process::exit(2);
    }
    let mut db = match builder.try_build() {
        Ok(db) => db,
        Err(e) => {
            eprintln!("error opening database: {e}");
            std::process::exit(2);
        }
    };
    if let Some(info) = db.recovery_info() {
        if info.scanned_records > 0 {
            println!(
                "recovered: {} record(s) scanned, {} committed transaction(s), {} page(s) replayed{}",
                info.scanned_records,
                info.committed_txs,
                info.replayed_pages,
                if info.truncated {
                    " (torn log tail truncated)"
                } else {
                    ""
                }
            );
        }
    }
    let stdin = std::io::stdin();
    let interactive = atty_like();
    let mut buffer = String::new();

    if interactive {
        println!(
            "sos — Second-Order Signature shell (statements end with `;`, `.help` for commands)"
        );
    }
    prompt(interactive, &buffer);
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('.') {
            if !meta_command(&mut db, trimmed) {
                break;
            }
            prompt(interactive, &buffer);
            continue;
        }
        buffer.push_str(&line);
        buffer.push('\n');
        // Execute once the buffer holds at least one full statement.
        if trimmed.ends_with(';') {
            match db.run(&buffer) {
                Ok(outputs) => {
                    for out in outputs {
                        print_output(&out);
                    }
                }
                Err(e) => println!("error: {e}"),
            }
            buffer.clear();
        }
        prompt(interactive, &buffer);
    }
}

/// `sos lint <file> [--json]`: lint one spec or rule file in batch
/// mode. `.rules` files are parsed as an optimizer step and checked
/// against the built-in signature; anything else is parsed as a
/// specification extending the built-in signature, and diagnostics are
/// mapped back to source lines through the parser's span table.
/// Exit code: 0 clean (warnings allowed), 1 error diagnostics, 2 usage
/// or parse failure.
fn lint_main(args: &[String]) -> i32 {
    let mut json = false;
    let mut file = None;
    for a in args {
        match a.as_str() {
            "--json" => json = true,
            _ => file = Some(a.clone()),
        }
    }
    let Some(path) = file else {
        eprintln!("usage: sos lint <spec-or-rules-file> [--json]");
        return 2;
    };
    let src = match std::fs::read_to_string(&path) {
        Ok(src) => src,
        Err(e) => {
            eprintln!("error reading {path}: {e}");
            return 2;
        }
    };
    let diags = match Database::lint_source(&path, &src) {
        Ok(diags) => diags,
        Err(e) => {
            eprintln!("{path}: {e}");
            return 2;
        }
    };
    if json {
        println!("{}", sos_lint::render_json(&diags));
    } else {
        print!("{}", sos_lint::render_human(&diags));
    }
    if sos_lint::has_errors(&diags) {
        1
    } else {
        0
    }
}

fn prompt(interactive: bool, buffer: &str) {
    if interactive {
        print!("{}", if buffer.is_empty() { "sos> " } else { "...> " });
        std::io::stdout().flush().ok();
    }
}

/// Heuristic: only show prompts when stdin looks like a terminal (no
/// libc dependency; if piped, the first read usually has data queued —
/// keep it simple and check the TERM variable plus absence of a pipe
/// hint).
fn atty_like() -> bool {
    std::env::var("SOS_INTERACTIVE")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn print_output(out: &Output) {
    match out {
        Output::TypeDefined(n) => println!("type {n} defined"),
        Output::Created(n) => println!("created {n}"),
        Output::Updated(n) => println!("updated {n}"),
        Output::Deleted(n) => println!("deleted {n}"),
        Output::Query(v) => println!("{}", render(v)),
    }
}

/// Render one object's collected statistics the way `.analyze` reports
/// them.
fn stats_line(s: &sos_catalog::ObjectStats) -> String {
    let mut line = format!("{} row(s), {} page(s)", s.rows, s.pages);
    if let (Some(attr), Some(_)) = (&s.key_attr, &s.key_histogram) {
        line.push_str(&format!(", histogram on {attr}"));
    }
    if s.rect_histogram.is_some() || s.bbox.is_some() {
        line.push_str(", rect distribution");
    }
    if !s.partition_rows.is_empty() {
        line.push_str(&format!(", {} partition(s)", s.partition_rows.len()));
    }
    line
}

/// Render one partitioning spec the way `.partition <obj>` reports it.
fn partition_line(spec: &sos_system::PartSpec) -> String {
    match &spec.method {
        sos_system::PartMethod::Hash { parts } => {
            format!("hash({parts}) on {}", spec.attr)
        }
        sos_system::PartMethod::Range { bounds } => format!(
            "range({}) on {} with bounds [{}]",
            bounds.len() + 1,
            spec.attr,
            bounds
                .iter()
                .map(|b| b.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ),
    }
}

/// Parse one range bound: integer, then real, then a bare string.
fn parse_bound(word: &str) -> sos_core::Const {
    if let Ok(i) = word.parse::<i64>() {
        sos_core::Const::Int(i)
    } else if let Ok(r) = word.parse::<f64>() {
        sos_core::Const::Real(r)
    } else {
        sos_core::Const::Str(word.to_string())
    }
}

fn meta_command(db: &mut Database, cmd: &str) -> bool {
    let (head, rest) = cmd.split_once(' ').unwrap_or((cmd, ""));
    match head {
        ".quit" | ".exit" => return false,
        ".help" => {
            println!(".run <file> | .spec <file> | .rules <file> | .lint [json] | .explain [analyze] <query> | .trace on|off | .metrics | .ops [name] | .save <dir> | .checkpoint | .wal [policy <p>] | .stats [op] | .partition <obj> [<attr> hash <n> | <attr> range <b>...] | .analyze [obj] | .cost [on|off] | .cache [on|off|clear] | .workers [n] | .batch [n] | .compile [on|off] | .objects | .quit");
        }
        ".checkpoint" => {
            if !db.is_durable() {
                println!("not a durable database (open with `sos --durable <dir>`)");
            } else {
                match db.checkpoint() {
                    Ok(stats) => {
                        println!("checkpoint: {}", sos_obs::metrics::checkpoint_line(&stats));
                        println!("{}", sos_obs::metrics::checkpoint_json(&stats));
                    }
                    Err(e) => println!("error: {e}"),
                }
            }
        }
        ".wal" => {
            if !db.is_durable() {
                println!("not a durable database (open with `sos --durable <dir>`)");
            } else if let Some(arg) = rest.trim().strip_prefix("policy") {
                let arg = arg.trim();
                if arg.is_empty() {
                    println!("sync policy {}", db.sync_policy().unwrap());
                } else {
                    match SyncPolicy::parse(arg).and_then(|p| {
                        db.set_sync_policy(p).map_err(|e| e.to_string())?;
                        Ok(p)
                    }) {
                        Ok(p) => println!("sync policy {p}"),
                        Err(e) => println!("error: {e}"),
                    }
                }
            } else if rest.trim().is_empty() {
                let lsns = db.wal_lsns().unwrap();
                println!("sync policy {}", db.sync_policy().unwrap());
                println!(
                    "lsn: appended {} written {} durable {} checkpoint {}",
                    lsns.appended, lsns.written, lsns.durable, lsns.checkpoint
                );
                println!("wal: {}", sos_obs::metrics::wal_line(&db.metrics().wal));
            } else {
                println!("error: `.wal` takes nothing or `policy <p>`");
            }
        }
        ".stats" => {
            let arg = rest.trim();
            if arg.is_empty() {
                let metrics = db.metrics();
                if metrics.ops.is_empty() {
                    println!("operators: (none run yet)");
                }
                for (name, o) in &metrics.ops {
                    println!("op {name}: {}", sos_system::op_line(o));
                }
            } else {
                match db.op_stats(arg) {
                    Some(o) => println!("op {arg}: {}", sos_system::op_line(&o)),
                    None => println!("no such operator: `{arg}` never ran"),
                }
            }
        }
        ".metrics" => {
            println!("{}", db.metrics());
        }
        // `.partition <obj>` shows the object's partitioning spec;
        // `.partition <obj> <attr> hash <n>` / `.partition <obj> <attr>
        // range <b1> <b2>...` repartitions it (existing tuples are
        // redistributed; the spec is recorded in the catalog).
        ".partition" => {
            let words: Vec<&str> = rest.split_whitespace().collect();
            match words.as_slice() {
                [] => {
                    println!("usage: .partition <obj> [<attr> hash <n> | <attr> range <bound>...]")
                }
                [obj] => match db.catalog().partition_spec(&sos_core::Symbol::new(obj)) {
                    Some(spec) => println!("{obj}: {}", partition_line(spec)),
                    None => println!("{obj} is not partitioned"),
                },
                [obj, attr, "hash", n] => match n.parse::<usize>() {
                    Ok(parts) if parts >= 1 => {
                        let spec = sos_system::PartSpec {
                            attr: sos_core::Symbol::new(attr),
                            method: sos_system::PartMethod::Hash { parts },
                        };
                        match db.partition_object(obj, spec) {
                            Ok(()) => println!("{obj} partitioned: hash({parts}) on {attr}"),
                            Err(e) => println!("error: {e}"),
                        }
                    }
                    _ => println!("error: hash partition count must be a positive integer"),
                },
                [obj, attr, "range", bounds @ ..] if !bounds.is_empty() => {
                    let spec = sos_system::PartSpec {
                        attr: sos_core::Symbol::new(attr),
                        method: sos_system::PartMethod::Range {
                            bounds: bounds.iter().map(|b| parse_bound(b)).collect(),
                        },
                    };
                    let parts = bounds.len() + 1;
                    match db.partition_object(obj, spec) {
                        Ok(()) => println!("{obj} partitioned: range({parts}) on {attr}"),
                        Err(e) => println!("error: {e}"),
                    }
                }
                _ => {
                    println!("usage: .partition <obj> [<attr> hash <n> | <attr> range <bound>...]")
                }
            }
        }
        // `.analyze` collects statistics (row counts, histograms, MBR
        // distributions) for one object or every stored object; the
        // cost model reads them from the catalog.
        ".analyze" => {
            let arg = rest.trim();
            if arg.is_empty() {
                match db.analyze_all() {
                    Ok(all) if all.is_empty() => println!("analyze: no stored objects"),
                    Ok(all) => {
                        for (name, s) in &all {
                            println!("{name}: {}", stats_line(s));
                        }
                    }
                    Err(e) => println!("error: {e}"),
                }
            } else {
                match db.analyze(arg) {
                    Ok(s) => println!("{arg}: {}", stats_line(&s)),
                    Err(e) => println!("error: {e}"),
                }
            }
        }
        ".cost" => match rest.trim() {
            "on" => {
                db.set_cost_based(true);
                println!("cost-based optimization on");
            }
            "off" => {
                db.set_cost_based(false);
                println!("cost-based optimization off");
            }
            "" => println!(
                "cost-based optimization {}",
                if db.cost_based_enabled() { "on" } else { "off" }
            ),
            _ => println!("error: `.cost` takes `on` or `off`"),
        },
        ".cache" => match rest.trim() {
            "on" => {
                db.set_plan_cache_enabled(true);
                println!("plan cache on");
            }
            "off" => {
                db.set_plan_cache_enabled(false);
                println!("plan cache off");
            }
            "clear" => {
                let n = db.clear_plan_cache();
                println!("plan cache cleared ({n} entrie(s) dropped)");
            }
            "" => {
                let m = db.metrics().planner;
                println!(
                    "plan cache {}: {} entrie(s), {} hit(s), {} miss(es), {} invalidation(s)",
                    if db.plan_cache_enabled() { "on" } else { "off" },
                    m.cache_entries,
                    m.cache_hits,
                    m.cache_misses,
                    m.cache_invalidations
                );
            }
            _ => println!("error: `.cache` takes `on`, `off`, or `clear`"),
        },
        ".trace" => match rest.trim() {
            "on" => {
                db.set_tracing(true);
                println!("tracing on");
            }
            "off" => {
                db.set_tracing(false);
                println!("tracing off");
            }
            "" => println!("tracing {}", if db.tracing() { "on" } else { "off" }),
            _ => println!("error: `.trace` takes `on` or `off`"),
        },
        ".workers" => {
            let arg = rest.trim();
            if arg.is_empty() {
                println!("{} worker(s)", db.workers());
            } else {
                match arg.parse::<usize>() {
                    Ok(n) => {
                        db.set_parallelism(n);
                        println!("{} worker(s)", db.workers());
                    }
                    Err(_) => println!("error: `.workers` takes a positive integer"),
                }
            }
        }
        ".batch" => {
            let arg = rest.trim();
            if arg.is_empty() {
                println!("batch size {}", db.batch_size());
            } else {
                match arg.parse::<usize>() {
                    Ok(n) if n >= 1 => {
                        db.set_batch_size(n);
                        println!("batch size {}", db.batch_size());
                    }
                    _ => println!("error: `.batch` takes a positive integer"),
                }
            }
        }
        ".compile" => match rest.trim() {
            "on" => {
                db.set_compile_exprs(true);
                println!("expression compiler on");
            }
            "off" => {
                db.set_compile_exprs(false);
                println!("expression compiler off");
            }
            "" => println!(
                "expression compiler {}",
                if db.compile_exprs_enabled() {
                    "on"
                } else {
                    "off"
                }
            ),
            _ => println!("error: `.compile` takes `on` or `off`"),
        },
        ".objects" => {
            let mut entries: Vec<String> = db
                .catalog()
                .objects()
                .map(|o| format!("{} : {}   [{:?}]", o.name, o.ty, o.level))
                .collect();
            entries.sort();
            for e in entries {
                println!("{e}");
            }
        }
        ".run" => match std::fs::read_to_string(rest.trim()) {
            Ok(src) => match db.run(&src) {
                Ok(outputs) => {
                    for out in &outputs {
                        print_output(out);
                    }
                }
                Err(e) => println!("error: {e}"),
            },
            Err(e) => println!("error reading {rest}: {e}"),
        },
        ".save" => match db.save(std::path::Path::new(rest.trim())) {
            Ok(skipped) if skipped.is_empty() => println!("saved"),
            Ok(skipped) => println!(
                "saved; views not persisted (re-create them after open): {}",
                skipped
                    .iter()
                    .map(|s| s.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            Err(e) => println!("error: {e}"),
        },
        ".ops" => {
            let arg = rest.trim();
            if arg.is_empty() {
                let names: Vec<String> = db
                    .signature()
                    .op_names()
                    .into_iter()
                    .map(|n| n.to_string())
                    .collect();
                println!("{}", names.join(" "));
            } else {
                for line in db.signature().describe_op(&sos_core::Symbol::new(arg)) {
                    println!("{line}");
                }
            }
        }
        ".explain" => {
            let arg = rest.trim();
            let (analyze, query) = match arg.strip_prefix("analyze ") {
                Some(q) => (true, q),
                None => (false, arg),
            };
            let query = query.trim().trim_end_matches(';');
            let report = if analyze {
                db.explain_analyze(query)
            } else {
                db.explain(query)
            };
            match report {
                Ok(e) => print!("{e}"),
                Err(e) => println!("error: {e}"),
            }
        }
        ".spec" => match std::fs::read_to_string(rest.trim()) {
            Ok(src) => match db.load_spec(&src) {
                Ok(()) => println!("specification loaded"),
                Err(e) => println!("error: {e}"),
            },
            Err(e) => println!("error reading {rest}: {e}"),
        },
        ".lint" => {
            let diags = db.lint();
            if rest.trim() == "json" {
                println!("{}", sos_lint::render_json(&diags));
            } else {
                print!("{}", sos_lint::render_human(&diags));
            }
        }
        ".rules" => match std::fs::read_to_string(rest.trim()) {
            Ok(src) => match db.load_rules(rest.trim(), &src) {
                Ok(()) => println!("rules loaded"),
                Err(e) => println!("error: {e}"),
            },
            Err(e) => println!("error reading {rest}: {e}"),
        },
        other => println!("unknown command `{other}` (try .help)"),
    }
    true
}
