//! `sos` — an interactive shell for the SOS database system.
//!
//! Reads statements of the five-statement language (Section 2.4) from
//! stdin, one per line (or multi-line until `;`), executes them, and
//! prints results. Meta commands:
//!
//! * `.spec <file>`  — load an additional specification
//! * `.rules <file>` — load a textual rule file as an optimizer step
//! * `.explain <q>`  — show the optimized plan for a query expression
//! * `.run <file>`   — run a program file
//! * `.save <dir>`   — persist the database (see `Database::save`)
//! * `.stats`        — buffer-pool and per-operator counters
//! * `.workers [n]`  — show or set the intra-operator worker count
//! * `.objects`      — list catalog objects
//! * `.quit`
//!
//! The worker count defaults to the number of available cores and can
//! be pinned with the `SOS_WORKERS` environment variable (`1` = serial).
//!
//! ```sh
//! echo 'create r : rel(tuple(<(a, int)>)); query r count;' | cargo run --bin sos
//! ```

use sos_exec::render;
use sos_system::{Database, Output};
use std::io::{BufRead, Write};

fn main() {
    let mut db = Database::new();
    if let Some(n) = std::env::var("SOS_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        db.set_workers(n);
    }
    let stdin = std::io::stdin();
    let interactive = atty_like();
    let mut buffer = String::new();

    if interactive {
        println!(
            "sos — Second-Order Signature shell (statements end with `;`, `.help` for commands)"
        );
    }
    prompt(interactive, &buffer);
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('.') {
            if !meta_command(&mut db, trimmed) {
                break;
            }
            prompt(interactive, &buffer);
            continue;
        }
        buffer.push_str(&line);
        buffer.push('\n');
        // Execute once the buffer holds at least one full statement.
        if trimmed.ends_with(';') {
            match db.run(&buffer) {
                Ok(outputs) => {
                    for out in outputs {
                        print_output(&out);
                    }
                }
                Err(e) => println!("error: {e}"),
            }
            buffer.clear();
        }
        prompt(interactive, &buffer);
    }
}

fn prompt(interactive: bool, buffer: &str) {
    if interactive {
        print!("{}", if buffer.is_empty() { "sos> " } else { "...> " });
        std::io::stdout().flush().ok();
    }
}

/// Heuristic: only show prompts when stdin looks like a terminal (no
/// libc dependency; if piped, the first read usually has data queued —
/// keep it simple and check the TERM variable plus absence of a pipe
/// hint).
fn atty_like() -> bool {
    std::env::var("SOS_INTERACTIVE")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn print_output(out: &Output) {
    match out {
        Output::TypeDefined(n) => println!("type {n} defined"),
        Output::Created(n) => println!("created {n}"),
        Output::Updated(n) => println!("updated {n}"),
        Output::Deleted(n) => println!("deleted {n}"),
        Output::Query(v) => println!("{}", render(v)),
    }
}

fn meta_command(db: &mut Database, cmd: &str) -> bool {
    let (head, rest) = cmd.split_once(' ').unwrap_or((cmd, ""));
    match head {
        ".quit" | ".exit" => return false,
        ".help" => {
            println!(".run <file> | .spec <file> | .rules <file> | .explain <query> | .ops [name] | .save <dir> | .stats | .workers [n] | .objects | .quit");
        }
        ".stats" => {
            let s = db.pool_stats();
            println!(
                "pool: logical reads {}, cache hits {}, physical reads {}, physical writes {}, evictions {}",
                s.logical_reads, s.cache_hits, s.physical_reads, s.physical_writes, s.evictions
            );
            let ops = db.exec_stats();
            if ops.is_empty() {
                println!("operators: (none run yet)");
            }
            for (name, o) in ops {
                println!(
                    "op {name}: {} run(s) ({} parallel), {} in / {} out, {} page(s), max {} worker(s)",
                    o.invocations,
                    o.parallel_invocations,
                    o.tuples_in,
                    o.tuples_out,
                    o.pages_scanned,
                    o.max_workers
                );
            }
        }
        ".workers" => {
            let arg = rest.trim();
            if arg.is_empty() {
                println!("{} worker(s)", db.workers());
            } else {
                match arg.parse::<usize>() {
                    Ok(n) => {
                        db.set_workers(n);
                        println!("{} worker(s)", db.workers());
                    }
                    Err(_) => println!("error: `.workers` takes a positive integer"),
                }
            }
        }
        ".objects" => {
            let mut entries: Vec<String> = db
                .catalog()
                .objects()
                .map(|o| format!("{} : {}   [{:?}]", o.name, o.ty, o.level))
                .collect();
            entries.sort();
            for e in entries {
                println!("{e}");
            }
        }
        ".run" => match std::fs::read_to_string(rest.trim()) {
            Ok(src) => match db.run(&src) {
                Ok(outputs) => {
                    for out in &outputs {
                        print_output(out);
                    }
                }
                Err(e) => println!("error: {e}"),
            },
            Err(e) => println!("error reading {rest}: {e}"),
        },
        ".save" => match db.save(std::path::Path::new(rest.trim())) {
            Ok(skipped) if skipped.is_empty() => println!("saved"),
            Ok(skipped) => println!(
                "saved; views not persisted (re-create them after open): {}",
                skipped
                    .iter()
                    .map(|s| s.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            Err(e) => println!("error: {e}"),
        },
        ".ops" => {
            let arg = rest.trim();
            if arg.is_empty() {
                let names: Vec<String> = db
                    .signature()
                    .op_names()
                    .into_iter()
                    .map(|n| n.to_string())
                    .collect();
                println!("{}", names.join(" "));
            } else {
                for line in db.signature().describe_op(&sos_core::Symbol::new(arg)) {
                    println!("{line}");
                }
            }
        }
        ".explain" => match db.explain(rest.trim().trim_end_matches(';')) {
            Ok(plan) => println!("{plan}"),
            Err(e) => println!("error: {e}"),
        },
        ".spec" => match std::fs::read_to_string(rest.trim()) {
            Ok(src) => match db.load_spec(&src) {
                Ok(()) => println!("specification loaded"),
                Err(e) => println!("error: {e}"),
            },
            Err(e) => println!("error reading {rest}: {e}"),
        },
        ".rules" => match std::fs::read_to_string(rest.trim()) {
            Ok(src) => match db.load_rules(rest.trim(), &src) {
                Ok(()) => println!("rules loaded"),
                Err(e) => println!("error: {e}"),
            },
            Err(e) => println!("error reading {rest}: {e}"),
        },
        other => println!("unknown command `{other}` (try .help)"),
    }
    true
}
