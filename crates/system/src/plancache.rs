//! A plan cache in front of the rewriter, keyed by normalized query
//! shape.
//!
//! Two queries share a cache entry when their *checked* terms are
//! identical after (a) canonicalizing lambda-bound variable names
//! (alpha-renaming to `%p0`, `%p1`, …) and (b) stripping data literals
//! (`int`, `real`, `string` constants — identifier and boolean constants
//! are part of the shape). A miss optimizes the term with every stripped
//! literal replaced by a distinctive *sentinel* constant of the same
//! type and caches the optimized plan as a template; both a miss and a
//! later hit then re-bind the template's sentinels to the query's actual
//! literals and execute that.
//!
//! Soundness: rule *firing* never depends on literal values — every
//! rule condition is value-independent (enforced by the rule
//! verification suite), so the sentinel term takes exactly the rewrites
//! any same-shaped term takes. The cost model is told the sentinels are
//! unknown (`OptimizeOpts::unknown_consts`), so a cached plan is a
//! *generic* plan: selectivity defaults instead of histogram lookups.
//! Re-binding can therefore be suboptimal for an outlier literal, never
//! incorrect — all candidates a rule offers are semantically equivalent.

use sos_core::typed::{TypedExpr, TypedNode};
use sos_core::{Const, Symbol};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Cached plans kept before the oldest entry is evicted.
pub const PLAN_CACHE_CAPACITY: usize = 1024;

/// One cached plan: the optimized sentinel template, the sentinel
/// constants to re-bind (position i ↔ the i-th stripped literal), and
/// every object the source term or the plan references (the eviction
/// footprint).
#[derive(Clone)]
pub struct CachedPlan {
    pub template: TypedExpr,
    pub sentinels: Vec<Const>,
    pub objects: Vec<Symbol>,
}

/// The cache proper, with its observability counters.
#[derive(Default)]
pub struct PlanCache {
    entries: HashMap<String, CachedPlan>,
    /// Insertion order, oldest first (capacity eviction).
    order: Vec<String>,
    pub hits: u64,
    pub misses: u64,
    /// Entries evicted by DDL, re-partitioning, bulk loads, or
    /// `analyze` (capacity evictions are not counted here).
    pub invalidations: u64,
}

impl PlanCache {
    /// Look a key up, counting the hit or miss.
    pub fn lookup(&mut self, key: &str) -> Option<&CachedPlan> {
        if self.entries.contains_key(key) {
            self.hits += 1;
            self.entries.get(key)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Insert a plan, evicting the oldest entry at capacity.
    pub fn insert(&mut self, key: String, plan: CachedPlan) {
        while self.entries.len() >= PLAN_CACHE_CAPACITY && !self.order.is_empty() {
            let oldest = self.order.remove(0);
            self.entries.remove(&oldest);
        }
        if self.entries.insert(key.clone(), plan).is_none() {
            self.order.push(key);
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop every entry whose footprint contains `name` (DDL on one
    /// object, a re-partition, a bulk load, or fresh statistics).
    pub fn invalidate_object(&mut self, name: &Symbol) -> usize {
        let stale: Vec<String> = self
            .entries
            .iter()
            .filter(|(_, p)| p.objects.contains(name))
            .map(|(k, _)| k.clone())
            .collect();
        for k in &stale {
            self.entries.remove(k);
            self.order.retain(|o| o != k);
        }
        self.invalidations += stale.len() as u64;
        stale.len()
    }

    /// Drop everything (object creation, catalog-relation updates, rule
    /// set changes — anything that can enable new rewrites anywhere).
    pub fn invalidate_all(&mut self) -> usize {
        let n = self.entries.len();
        self.entries.clear();
        self.order.clear();
        self.invalidations += n as u64;
        n
    }

    /// Reset the counters (the entries stay).
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
        self.invalidations = 0;
    }
}

/// A term's normal form: the cache key and the stripped literals in
/// traversal order. The sentinel side ([`generalize`]) is built only on
/// a cache miss — hits never need it.
pub struct Normalized {
    pub key: String,
    pub literals: Vec<Const>,
}

/// Normalize a checked term. Total: every typed term has a normal form.
pub fn normalize(term: &TypedExpr) -> Normalized {
    let mut literals = Vec::new();
    let mut key = String::new();
    write_key(term, &mut key, &mut Vec::new(), &mut 0, &mut literals);
    let _ = write!(key, " :: {}", term.ty);
    Normalized { key, literals }
}

/// The generic side of a normal form: the sentinel constants (position i
/// ↔ the i-th stripped literal) and the term with sentinels in place of
/// the literals — what a cache miss optimizes and caches.
pub fn generalize(term: &TypedExpr, literals: &[Const]) -> (Vec<Const>, TypedExpr) {
    let sentinels: Vec<Const> = literals
        .iter()
        .enumerate()
        .map(|(i, c)| sentinel_for(i, c))
        .collect();
    let mut next = 0usize;
    let sentinel_term = substitute(term, &sentinels, &mut next);
    (sentinels, sentinel_term)
}

/// Whether a constant is a strippable data literal.
fn is_literal(c: &Const) -> bool {
    matches!(c, Const::Int(_) | Const::Real(_) | Const::Str(_))
}

/// The sentinel constant for the i-th stripped literal: same type,
/// a value no plausible query or rewrite template contains.
fn sentinel_for(i: usize, c: &Const) -> Const {
    match c {
        Const::Int(_) => Const::Int(i64::MIN + 0x5EED + i as i64),
        Const::Real(_) => Const::Real(-8.75e307 - i as f64),
        Const::Str(_) => Const::Str(format!("\u{1}?p{i}")),
        other => other.clone(),
    }
}

/// Replace the i-th stripped literal (same traversal order as
/// [`write_key`]) with its sentinel.
fn substitute(term: &TypedExpr, sentinels: &[Const], next: &mut usize) -> TypedExpr {
    let node = match &term.node {
        TypedNode::Const(c) if is_literal(c) => {
            let s = sentinels[*next].clone();
            *next += 1;
            TypedNode::Const(s)
        }
        TypedNode::Const(c) => TypedNode::Const(c.clone()),
        TypedNode::Object(n) => TypedNode::Object(n.clone()),
        TypedNode::Var(v) => TypedNode::Var(v.clone()),
        TypedNode::Apply { op, spec, args } => TypedNode::Apply {
            op: op.clone(),
            spec: *spec,
            args: args
                .iter()
                .map(|a| substitute(a, sentinels, next))
                .collect(),
        },
        TypedNode::ApplyFun { fun, args } => TypedNode::ApplyFun {
            fun: Box::new(substitute(fun, sentinels, next)),
            args: args
                .iter()
                .map(|a| substitute(a, sentinels, next))
                .collect(),
        },
        TypedNode::Lambda { params, body } => TypedNode::Lambda {
            params: params.clone(),
            body: Box::new(substitute(body, sentinels, next)),
        },
        TypedNode::List(items) => TypedNode::List(
            items
                .iter()
                .map(|a| substitute(a, sentinels, next))
                .collect(),
        ),
        TypedNode::Tuple(items) => TypedNode::Tuple(
            items
                .iter()
                .map(|a| substitute(a, sentinels, next))
                .collect(),
        ),
    };
    TypedExpr::new(node, term.ty.clone())
}

/// Re-bind a cached template's sentinels to actual literals. Any
/// constant equal to the i-th sentinel — however often the rewrite
/// duplicated it — becomes the i-th literal.
pub fn rebind(template: &TypedExpr, sentinels: &[Const], literals: &[Const]) -> TypedExpr {
    let node = match &template.node {
        TypedNode::Const(c) => match sentinels.iter().position(|s| s == c) {
            Some(i) => TypedNode::Const(literals[i].clone()),
            None => TypedNode::Const(c.clone()),
        },
        TypedNode::Object(n) => TypedNode::Object(n.clone()),
        TypedNode::Var(v) => TypedNode::Var(v.clone()),
        TypedNode::Apply { op, spec, args } => TypedNode::Apply {
            op: op.clone(),
            spec: *spec,
            args: args
                .iter()
                .map(|a| rebind(a, sentinels, literals))
                .collect(),
        },
        TypedNode::ApplyFun { fun, args } => TypedNode::ApplyFun {
            fun: Box::new(rebind(fun, sentinels, literals)),
            args: args
                .iter()
                .map(|a| rebind(a, sentinels, literals))
                .collect(),
        },
        TypedNode::Lambda { params, body } => TypedNode::Lambda {
            params: params.clone(),
            body: Box::new(rebind(body, sentinels, literals)),
        },
        TypedNode::List(items) => TypedNode::List(
            items
                .iter()
                .map(|a| rebind(a, sentinels, literals))
                .collect(),
        ),
        TypedNode::Tuple(items) => TypedNode::Tuple(
            items
                .iter()
                .map(|a| rebind(a, sentinels, literals))
                .collect(),
        ),
    };
    TypedExpr::new(node, template.ty.clone())
}

/// Every database object a term mentions (the eviction footprint).
pub fn referenced_objects(term: &TypedExpr, into: &mut Vec<Symbol>) {
    term.visit(&mut |n| {
        if let TypedNode::Object(name) = &n.node {
            if !into.contains(name) {
                into.push(name.clone());
            }
        }
    });
}

/// Write the shape key: operator applications verbatim (op + spec
/// index), objects by name, lambda binders alpha-renamed to `%pN` in
/// binding order, data literals as `?int` / `?real` / `?str`
/// placeholders (collected into `literals`), identifier and boolean
/// constants verbatim.
fn write_key(
    term: &TypedExpr,
    out: &mut String,
    scopes: &mut Vec<(Symbol, String)>,
    binders: &mut usize,
    literals: &mut Vec<Const>,
) {
    match &term.node {
        TypedNode::Const(c) if is_literal(c) => {
            out.push_str(match c {
                Const::Int(_) => "?int",
                Const::Real(_) => "?real",
                _ => "?str",
            });
            literals.push(c.clone());
        }
        TypedNode::Const(c) => {
            let _ = write!(out, "{c}");
        }
        TypedNode::Object(n) => {
            let _ = write!(out, "obj:{n}");
        }
        TypedNode::Var(v) => {
            match scopes.iter().rev().find(|(orig, _)| orig == v) {
                Some((_, canon)) => out.push_str(canon),
                // Unbound variables cannot occur in a checked term; keep
                // the name so the key stays total anyway.
                None => {
                    let _ = write!(out, "{v}");
                }
            }
        }
        TypedNode::Apply { op, spec, args } => {
            let _ = write!(out, "{op}#{spec}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_key(a, out, scopes, binders, literals);
            }
            out.push(')');
        }
        TypedNode::ApplyFun { fun, args } => {
            out.push_str("%call(");
            write_key(fun, out, scopes, binders, literals);
            for a in args {
                out.push(',');
                write_key(a, out, scopes, binders, literals);
            }
            out.push(')');
        }
        TypedNode::Lambda { params, body } => {
            out.push_str("fun(");
            let depth = scopes.len();
            for (i, (name, ty)) in params.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let canon = format!("%p{}", *binders);
                *binders += 1;
                let _ = write!(out, "{canon}:{ty}");
                scopes.push((name.clone(), canon));
            }
            out.push(')');
            write_key(body, out, scopes, binders, literals);
            scopes.truncate(depth);
        }
        TypedNode::List(items) => {
            out.push('<');
            for (i, a) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_key(a, out, scopes, binders, literals);
            }
            out.push('>');
        }
        TypedNode::Tuple(items) => {
            out.push('(');
            for (i, a) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_key(a, out, scopes, binders, literals);
            }
            out.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sos_core::DataType;

    fn int_const(v: i64) -> TypedExpr {
        TypedExpr::new(TypedNode::Const(Const::Int(v)), DataType::atom("int"))
    }

    fn apply(op: &str, args: Vec<TypedExpr>, ty: DataType) -> TypedExpr {
        TypedExpr::new(
            TypedNode::Apply {
                op: Symbol::new(op),
                spec: 0,
                args,
            },
            ty,
        )
    }

    #[test]
    fn same_shape_same_key_different_literals() {
        let a = apply(
            ">",
            vec![int_const(7), int_const(3)],
            DataType::atom("bool"),
        );
        let b = apply(
            ">",
            vec![int_const(100), int_const(-2)],
            DataType::atom("bool"),
        );
        let na = normalize(&a);
        let nb = normalize(&b);
        assert_eq!(na.key, nb.key);
        assert_eq!(na.literals, vec![Const::Int(7), Const::Int(3)]);
        assert_eq!(nb.literals, vec![Const::Int(100), Const::Int(-2)]);
        // Different shape (extra node) keys differently.
        let c = apply(">", vec![int_const(7)], DataType::atom("bool"));
        assert_ne!(normalize(&c).key, na.key);
    }

    #[test]
    fn alpha_renamed_lambdas_share_a_key() {
        let lam = |p: &str| {
            TypedExpr::new(
                TypedNode::Lambda {
                    params: vec![(Symbol::new(p), DataType::atom("int"))],
                    body: Box::new(TypedExpr::new(
                        TypedNode::Var(Symbol::new(p)),
                        DataType::atom("int"),
                    )),
                },
                DataType::Fun(vec![DataType::atom("int")], Box::new(DataType::atom("int"))),
            )
        };
        assert_eq!(normalize(&lam("x")).key, normalize(&lam("y")).key);
    }

    #[test]
    fn rebind_round_trips_sentinels() {
        let term = apply("+", vec![int_const(7), int_const(7)], DataType::atom("int"));
        let n = normalize(&term);
        let (sentinels, sentinel_term) = generalize(&term, &n.literals);
        // Both 7s strip independently and re-bind independently.
        assert_eq!(sentinels.len(), 2);
        assert_ne!(sentinels[0], sentinels[1]);
        let rebound = rebind(&sentinel_term, &sentinels, &n.literals);
        assert!(rebound == term);
    }

    #[test]
    fn cache_counts_and_evicts_by_object() {
        let mut cache = PlanCache::default();
        assert!(cache.lookup("k1").is_none());
        cache.insert(
            "k1".into(),
            CachedPlan {
                template: int_const(1),
                sentinels: vec![],
                objects: vec![Symbol::new("cities")],
            },
        );
        assert!(cache.lookup("k1").is_some());
        assert_eq!((cache.hits, cache.misses), (1, 1));
        assert_eq!(cache.invalidate_object(&Symbol::new("rivers")), 0);
        assert_eq!(cache.invalidate_object(&Symbol::new("cities")), 1);
        assert!(cache.is_empty());
        assert_eq!(cache.invalidations, 1);
    }
}
