//! Unit tests for the pipelined cursor machinery: shared-cursor
//! linearity, boundary conditions, and page-touch accounting.

use sos_catalog::Catalog;
use sos_core::{sym, DataType};
use sos_exec::stream::{into_cursor, materialize, Cursor};
use sos_exec::{EvalCtx, ExecEngine, Value};
use std::collections::HashMap;
use std::sync::Arc;

fn engine_with_heap(n: usize) -> (ExecEngine, Arc<sos_storage::heap::HeapFile>) {
    let engine = ExecEngine::new(sos_storage::mem_pool(256));
    let heap = Arc::new(sos_storage::heap::HeapFile::create(engine.pool.clone()).unwrap());
    for i in 0..n {
        let t = Value::tuple(vec![Value::Int(i as i64)]);
        heap.insert(&t.encode_tuple("test").unwrap()).unwrap();
    }
    (engine, heap)
}

#[test]
fn heap_cursor_yields_every_tuple_once() {
    let (engine, heap) = engine_with_heap(500);
    let mut store = HashMap::new();
    let mut cat = Catalog::new();
    let mut ctx = EvalCtx::new(&engine, &mut store, &mut cat);
    let mut c = Cursor::heap_scan(heap);
    let mut seen = Vec::new();
    while let Some(t) = c.next(&mut ctx).unwrap() {
        seen.push(t);
    }
    assert_eq!(seen.len(), 500);
    // Exhausted cursors stay exhausted.
    assert!(c.next(&mut ctx).unwrap().is_none());
}

#[test]
fn shared_cursors_are_linear() {
    // Two clones of one stream value drain from the same cursor: tuples
    // are delivered exactly once across both.
    let (engine, heap) = engine_with_heap(100);
    let mut store = HashMap::new();
    let mut cat = Catalog::new();
    let mut ctx = EvalCtx::new(&engine, &mut store, &mut cat);
    let v = Value::Cursor(Arc::new(parking_lot::Mutex::new(Cursor::heap_scan(heap))));
    let v2 = v.clone();
    let first_half = {
        let mut c = into_cursor(v).unwrap();
        let mut out = Vec::new();
        for _ in 0..60 {
            out.push(c.next(&mut ctx).unwrap().unwrap());
        }
        out
    };
    let rest = materialize(&mut ctx, v2).unwrap();
    assert_eq!(first_half.len() + rest.len(), 100);
}

#[test]
fn head_zero_and_oversized() {
    let (engine, heap) = engine_with_heap(10);
    let mut store = HashMap::new();
    let mut cat = Catalog::new();
    let mut ctx = EvalCtx::new(&engine, &mut store, &mut cat);
    let mut zero = Cursor::Head {
        input: Box::new(Cursor::heap_scan(heap.clone())),
        remaining: 0,
    };
    assert!(zero.next(&mut ctx).unwrap().is_none());
    let mut big = Cursor::Head {
        input: Box::new(Cursor::heap_scan(heap)),
        remaining: 1_000_000,
    };
    assert_eq!(big.drain(&mut ctx).unwrap().len(), 10);
}

#[test]
fn materialize_accepts_all_stream_shapes() {
    let engine = ExecEngine::new(sos_storage::mem_pool(8));
    let mut store = HashMap::new();
    let mut cat = Catalog::new();
    let mut ctx = EvalCtx::new(&engine, &mut store, &mut cat);
    let ts = vec![Value::Int(1), Value::Int(2)];
    assert_eq!(
        materialize(&mut ctx, Value::Stream(ts.clone())).unwrap(),
        ts
    );
    assert_eq!(materialize(&mut ctx, Value::Rel(ts.clone())).unwrap(), ts);
    assert_eq!(materialize(&mut ctx, Value::Undefined).unwrap(), vec![]);
    assert!(materialize(&mut ctx, Value::Int(1)).is_err());
    let _ = sym("x");
    let _ = DataType::atom("int");
}

#[test]
fn head_batch_arm_is_exact_when_limit_falls_mid_batch() {
    // Regression guard for the vectorized `Head` arm: when the limit
    // falls inside a batch, the cursor must clamp the pull to the
    // remaining budget (never over-pull from the input) and report
    // exhaustion exactly at the limit — across widths that land before,
    // on, and past the boundary.
    let (engine, heap) = engine_with_heap(100);
    for width in [1usize, 3, 5, 7, 64] {
        let mut store = HashMap::new();
        let mut cat = Catalog::new();
        let mut ctx = EvalCtx::new(&engine, &mut store, &mut cat);
        let mut head = Cursor::Head {
            input: Box::new(Cursor::heap_scan(heap.clone())),
            remaining: 5,
        };
        let mut out = Vec::new();
        let mut pulls = Vec::new();
        loop {
            let got = head.next_batch_into(&mut ctx, width, &mut out).unwrap();
            if got == 0 {
                break;
            }
            pulls.push(got);
        }
        assert_eq!(out.len(), 5, "width {width} over- or under-delivered");
        assert!(
            pulls.iter().all(|&g| g <= width.max(1)),
            "width {width} pulls {pulls:?}"
        );
        // The Head cursor left the un-consumed remainder in the input:
        // a fresh scan of the same heap still sees all 100 tuples, and
        // the head itself stays exhausted.
        assert_eq!(head.next_batch_into(&mut ctx, width, &mut out).unwrap(), 0);
        assert!(head.next(&mut ctx).unwrap().is_none());
    }
}
