//! Engine-level tests: evaluation of closures, captured environments,
//! attribute access fallback, key extraction, and operator registration —
//! exercised without the system façade.

use sos_catalog::Catalog;
use sos_core::typed::{TypedExpr, TypedNode};
use sos_core::{sym, Const, DataType, Symbol};
use sos_exec::{EvalCtx, ExecEngine, Value};
use std::collections::HashMap;

fn engine() -> ExecEngine {
    ExecEngine::new(sos_storage::mem_pool(64))
}

fn city_ty() -> DataType {
    DataType::tuple(vec![
        (sym("name"), DataType::atom("string")),
        (sym("pop"), DataType::atom("int")),
    ])
}

fn int_const(v: i64) -> TypedExpr {
    TypedExpr::new(TypedNode::Const(Const::Int(v)), DataType::atom("int"))
}

fn apply(op: &str, args: Vec<TypedExpr>, ty: DataType) -> TypedExpr {
    TypedExpr::new(
        TypedNode::Apply {
            op: Symbol::new(op),
            spec: 0,
            args,
        },
        ty,
    )
}

#[test]
fn arithmetic_and_comparison_dispatch() {
    let e = engine();
    let mut store = HashMap::new();
    let mut cat = Catalog::new();
    let mut ctx = EvalCtx::new(&e, &mut store, &mut cat);
    let sum = apply("+", vec![int_const(2), int_const(3)], DataType::atom("int"));
    assert_eq!(ctx.eval(&sum).unwrap(), Value::Int(5));
    let cmp = apply(
        "<",
        vec![int_const(2), int_const(3)],
        DataType::atom("bool"),
    );
    assert_eq!(ctx.eval(&cmp).unwrap(), Value::Bool(true));
}

#[test]
fn closures_capture_outer_parameters() {
    // fun (x: int) fun (y: int) x + y — the inner closure must capture x.
    let e = engine();
    let mut store = HashMap::new();
    let mut cat = Catalog::new();
    let mut ctx = EvalCtx::new(&e, &mut store, &mut cat);
    let int = DataType::atom("int");
    let var = |n: &str| TypedExpr::new(TypedNode::Var(Symbol::new(n)), int.clone());
    let inner = TypedExpr::new(
        TypedNode::Lambda {
            params: vec![(sym("y"), int.clone())],
            body: Box::new(apply("+", vec![var("x"), var("y")], int.clone())),
        },
        DataType::Fun(vec![int.clone()], Box::new(int.clone())),
    );
    let outer = TypedExpr::new(
        TypedNode::Lambda {
            params: vec![(sym("x"), int.clone())],
            body: Box::new(inner),
        },
        DataType::Fun(
            vec![int.clone()],
            Box::new(DataType::Fun(vec![int.clone()], Box::new(int.clone()))),
        ),
    );
    let f = ctx.eval(&outer).unwrap();
    let Value::Closure(fc) = f else { panic!() };
    let g = ctx.call(&fc, vec![Value::Int(10)]).unwrap();
    let Value::Closure(gc) = g else { panic!() };
    assert_eq!(ctx.call(&gc, vec![Value::Int(32)]).unwrap(), Value::Int(42));
}

#[test]
fn attribute_access_falls_back_to_positional_fields() {
    let e = engine();
    let mut store = HashMap::new();
    store.insert(
        sym("c"),
        Value::tuple(vec![Value::Str("Hagen".into()), Value::Int(190_000)]),
    );
    let mut cat = Catalog::new();
    let mut ctx = EvalCtx::new(&e, &mut store, &mut cat);
    let obj = TypedExpr::new(TypedNode::Object(sym("c")), city_ty());
    let access = apply("pop", vec![obj], DataType::atom("int"));
    assert_eq!(ctx.eval(&access).unwrap(), Value::Int(190_000));
}

#[test]
fn unknown_operator_reports_no_impl() {
    let e = engine();
    let mut store = HashMap::new();
    let mut cat = Catalog::new();
    let mut ctx = EvalCtx::new(&e, &mut store, &mut cat);
    let bad = apply("mystery", vec![int_const(1)], DataType::atom("int"));
    let err = ctx.eval(&bad).unwrap_err();
    assert!(err.to_string().contains("mystery"));
}

#[test]
fn registered_overrides_take_effect() {
    let mut e = engine();
    e.add_op("+", |_, _, _| Ok(Value::Int(-1))); // override!
    let mut store = HashMap::new();
    let mut cat = Catalog::new();
    let mut ctx = EvalCtx::new(&e, &mut store, &mut cat);
    let sum = apply("+", vec![int_const(2), int_const(3)], DataType::atom("int"));
    assert_eq!(ctx.eval(&sum).unwrap(), Value::Int(-1));
}

#[test]
fn init_value_builds_representation_structures() {
    let e = engine();
    let sig = sos_system::builtin::builtin_signature();
    let env: HashMap<Symbol, DataType> = HashMap::new();
    let city = city_ty();
    // rel -> empty model relation
    let v = e
        .init_value(&sig, &env, &DataType::rel(city.clone()))
        .unwrap();
    assert_eq!(v, Value::Rel(vec![]));
    // tidrel -> heap handle
    let tid_ty = DataType::Cons(sym("tidrel"), vec![sos_core::TypeArg::Type(city.clone())]);
    assert!(matches!(
        e.init_value(&sig, &env, &tid_ty).unwrap(),
        Value::TidRel(_)
    ));
    // btree -> handle with the right key attribute
    let btree_ty = DataType::Cons(
        sym("btree"),
        vec![
            sos_core::TypeArg::Type(city.clone()),
            sos_core::TypeArg::Expr(sos_core::Expr::ident("pop")),
            sos_core::TypeArg::Type(DataType::atom("int")),
        ],
    );
    let v = e.init_value(&sig, &env, &btree_ty).unwrap();
    let Value::BTree(h) = v else { panic!() };
    assert!(matches!(h.key, sos_exec::KeyExtractor::Attr(1)));
    // btree over a bogus attribute errors
    let bad = DataType::Cons(
        sym("btree"),
        vec![
            sos_core::TypeArg::Type(city),
            sos_core::TypeArg::Expr(sos_core::Expr::ident("nope")),
            sos_core::TypeArg::Type(DataType::atom("int")),
        ],
    );
    assert!(e.init_value(&sig, &env, &bad).is_err());
}

#[test]
fn division_by_zero_is_an_error_not_a_panic() {
    let e = engine();
    let mut store = HashMap::new();
    let mut cat = Catalog::new();
    let mut ctx = EvalCtx::new(&e, &mut store, &mut cat);
    for op in ["div", "mod", "/"] {
        let d = apply(op, vec![int_const(1), int_const(0)], DataType::atom("int"));
        assert!(ctx.eval(&d).is_err(), "`{op}` by zero must error");
    }
    // Overflow too.
    let o = apply(
        "+",
        vec![int_const(i64::MAX), int_const(1)],
        DataType::atom("int"),
    );
    assert!(ctx.eval(&o).is_err());
}
