//! Loom model test for the `par_chunks` worker hand-off: every chunk
//! result must be published to the parent (visible after the scoped
//! join) and come back in chunk order, so concatenation reproduces the
//! serial order on every schedule.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`; see
//! `crates/storage/tests/loom_pool.rs` for the convention and
//! `vendor/loom` for what the stand-in does.
#![cfg(loom)]

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::Arc;
use sos_exec::parallel::par_chunks;

/// Workers fold disjoint chunks; after `par_chunks` returns (the join
/// is the publication point), the parent must observe every worker's
/// writes, in chunk order, with each item processed exactly once.
#[test]
fn chunk_results_are_published_in_order() {
    loom::model(|| {
        let items: Vec<usize> = (0..16).collect();
        let touched = Arc::new(AtomicUsize::new(0));
        let t = Arc::clone(&touched);
        let chunks = par_chunks(&items, 4, move |base, part| {
            t.fetch_add(part.len(), Ordering::Relaxed);
            (base, part.iter().sum::<usize>())
        });
        // In chunk order: bases strictly increase.
        let bases: Vec<usize> = chunks.iter().map(|&(b, _)| b).collect();
        let mut sorted = bases.clone();
        sorted.sort_unstable();
        assert_eq!(bases, sorted, "chunk results out of order");
        // Fully published: the sums add up to the serial fold and every
        // item was visited exactly once.
        let total: usize = chunks.iter().map(|&(_, s)| s).sum();
        assert_eq!(total, items.iter().sum::<usize>());
        assert_eq!(touched.load(Ordering::Relaxed), items.len());
    });
}

/// A serial fallback (one worker) and the parallel run agree on every
/// schedule — the same differential the par_vs_serial harness checks at
/// system level, here at the primitive.
#[test]
fn serial_and_parallel_chunking_agree() {
    loom::model(|| {
        let items: Vec<usize> = (0..13).collect();
        let serial: Vec<usize> = par_chunks(&items, 1, |_, part| part.iter().sum())
            .into_iter()
            .collect();
        let parallel: Vec<usize> = par_chunks(&items, 3, |_, part| part.iter().sum());
        assert_eq!(serial.iter().sum::<usize>(), parallel.iter().sum::<usize>());
    });
}
