//! Persistent images of runtime values: what `Database::save` writes
//! next to the page file. Representation handles persist as their
//! storage metadata (page lists, roots, directory snapshots); model
//! values persist as encoded records. Function values (views) cannot be
//! persisted — they are reported to the caller so the user can re-create
//! them from their defining statements.

use crate::engine::ExecEngine;
use crate::error::{ExecError, ExecResult};
use crate::handles::{BTreeHandle, KeyExtractor, LsdHandle};
use crate::value::Value;
use sos_core::check::ObjectEnv;
use sos_core::{DataType, Signature};
use sos_storage::btree::BTree;
use sos_storage::heap::HeapFile;
use sos_storage::lsdtree::{LsdSnapshot, LsdTree};
use sos_storage::PageId;
use std::sync::Arc;

/// A serializable value image.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub enum StoredValue {
    /// An atomic or tuple value, as an encoded record (a bare atomic
    /// value is stored as a one-field record with `tuple=false`).
    Record {
        bytes: Vec<u8>,
        tuple: bool,
    },
    /// A model relation: encoded tuple records.
    Rel(Vec<Vec<u8>>),
    SRel(Vec<PageId>),
    TidRel(Vec<PageId>),
    BTree {
        root: PageId,
        len: usize,
    },
    LsdTree(LsdSnapshot),
    /// A partitioned object: the spec plus one image per partition.
    Part {
        spec: sos_catalog::PartSpec,
        parts: Vec<StoredValue>,
    },
    /// A catalog object's name token.
    CatalogToken(String),
    Undefined,
}

/// Convert a runtime value into its persistent image. Returns `None` for
/// values that cannot be persisted (function values / views).
pub fn to_stored(v: &Value) -> ExecResult<Option<StoredValue>> {
    Ok(Some(match v {
        Value::Closure(_) => return Ok(None),
        Value::Cursor(_) => {
            return Err(ExecError::Other(
                "a pipelined stream cannot be persisted (drain it first)".into(),
            ))
        }
        Value::Undefined => StoredValue::Undefined,
        Value::Ident(n) => StoredValue::CatalogToken(n.to_string()),
        Value::Tuple(_) => StoredValue::Record {
            bytes: v.encode_tuple("save")?,
            tuple: true,
        },
        Value::Rel(ts) | Value::Stream(ts) => StoredValue::Rel(
            ts.iter()
                .map(|t| t.encode_tuple("save"))
                .collect::<ExecResult<_>>()?,
        ),
        Value::SRel(h) => StoredValue::SRel(h.pages()),
        Value::TidRel(h) => StoredValue::TidRel(h.pages()),
        Value::BTree(h) => StoredValue::BTree {
            root: h.tree.root(),
            len: h.tree.len(),
        },
        Value::LsdTree(h) => StoredValue::LsdTree(h.tree.snapshot()),
        Value::Part(h) => StoredValue::Part {
            spec: h.spec.clone(),
            parts: h
                .parts
                .iter()
                .map(|p| {
                    to_stored(p)?.ok_or_else(|| {
                        ExecError::Other("a partition cannot hold a function value".into())
                    })
                })
                .collect::<ExecResult<_>>()?,
        },
        // Atomic data values: one-field record.
        atomic => StoredValue::Record {
            bytes: Value::tuple(vec![atomic.clone()]).encode_tuple("save")?,
            tuple: false,
        },
    }))
}

/// Re-attach a persistent image over the engine's pool, using the
/// object's declared type to rebuild key extractors (the same logic as
/// `ExecEngine::init_value`).
pub fn from_stored(
    engine: &ExecEngine,
    sig: &Signature,
    env: &dyn ObjectEnv,
    ty: &DataType,
    stored: StoredValue,
) -> ExecResult<Value> {
    match stored {
        StoredValue::Undefined => Ok(Value::Undefined),
        StoredValue::CatalogToken(n) => Ok(Value::Ident(sos_core::Symbol::new(&n))),
        StoredValue::Record { bytes, tuple } => {
            let decoded = Value::decode_tuple(&bytes)?;
            if tuple {
                Ok(decoded)
            } else {
                let mut fields = decoded.into_tuple("load")?;
                if fields.len() == 1 {
                    Ok(fields.pop().expect("one field"))
                } else {
                    Err(ExecError::Other("malformed atomic record".into()))
                }
            }
        }
        StoredValue::Rel(rows) => Ok(Value::Rel(
            rows.iter()
                .map(|r| Value::decode_tuple(r))
                .collect::<ExecResult<_>>()?,
        )),
        StoredValue::SRel(pages) => Ok(Value::SRel(Arc::new(HeapFile::from_pages(
            engine.pool.clone(),
            pages,
        )))),
        StoredValue::TidRel(pages) => Ok(Value::TidRel(Arc::new(HeapFile::from_pages(
            engine.pool.clone(),
            pages,
        )))),
        StoredValue::BTree { root, len } => {
            // Rebuild the key extractor from the declared type by
            // initializing a throwaway handle, then swap in the real tree.
            let template = engine.init_value(sig, env, ty)?;
            let Value::BTree(th) = template else {
                return Err(ExecError::Other(format!(
                    "stored B-tree but type {ty} is not a B-tree constructor"
                )));
            };
            let key = match &th.key {
                KeyExtractor::Attr(i) => KeyExtractor::Attr(*i),
                KeyExtractor::Attrs(is) => KeyExtractor::Attrs(is.clone()),
                KeyExtractor::Fun(f) => KeyExtractor::Fun(f.clone()),
            };
            Ok(Value::BTree(Arc::new(BTreeHandle {
                tree: BTree::from_root(engine.pool.clone(), root, len),
                tuple_type: th.tuple_type.clone(),
                key,
            })))
        }
        StoredValue::LsdTree(snap) => {
            let template = engine.init_value(sig, env, ty)?;
            let Value::LsdTree(th) = template else {
                return Err(ExecError::Other(format!(
                    "stored LSD-tree but type {ty} is not an lsdtree constructor"
                )));
            };
            Ok(Value::LsdTree(Arc::new(LsdHandle {
                tree: LsdTree::from_snapshot(engine.pool.clone(), snap),
                tuple_type: th.tuple_type.clone(),
                keyfun: th.keyfun.clone(),
            })))
        }
        StoredValue::Part { spec, parts } => {
            // Each partition re-attaches under the object's declared
            // type (they all share the one shape), then the handle
            // re-derives the routing attribute index.
            let parts: Vec<Value> = parts
                .into_iter()
                .map(|p| from_stored(engine, sig, env, ty, p))
                .collect::<ExecResult<_>>()?;
            let tuple_ty = ty.single_type_arg().cloned();
            Ok(Value::Part(Arc::new(crate::partition::PartHandle::new(
                spec,
                parts,
                tuple_ty.as_ref(),
            )?)))
        }
    }
}
