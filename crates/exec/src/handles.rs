//! Handles tying storage structures to their SOS types: what the paper's
//! `btree(...)`, `kbtree(...)` and `lsdtree(...)` types denote at run time.

use crate::error::{mismatch, ExecResult};
use sos_core::typed::TypedExpr;
use sos_core::{DataType, Symbol};
use sos_storage::btree::BTree;
use sos_storage::keys::{self, KeyBytes};
use sos_storage::lsdtree::LsdTree;

/// How a B-tree derives its key from a tuple: a plain attribute
/// (`btree(city, pop, int)`) or a key expression
/// (`kbtree(city, fun (c: city) c pop div 1000)`).
pub enum KeyExtractor {
    /// Attribute index within the tuple.
    Attr(usize),
    /// Several attribute indices forming a composite key (the
    /// multi-attribute B-tree mentioned at the end of Section 4).
    Attrs(Vec<usize>),
    /// A checked key function, evaluated per tuple by the engine.
    Fun(TypedExpr),
}

/// A clustered B-tree plus its key derivation.
pub struct BTreeHandle {
    pub tree: BTree,
    pub tuple_type: DataType,
    pub key: KeyExtractor,
}

/// An LSD-tree plus its rectangle derivation function.
pub struct LsdHandle {
    pub tree: LsdTree,
    pub tuple_type: DataType,
    /// The checked key function producing the indexed `rect`.
    pub keyfun: TypedExpr,
}

/// Encode an ORD value (`int`, `real`, `string`, `bool`) as a
/// memcomparable key. A `Pair` of ORD values encodes as the
/// concatenation of its components (composite keys order
/// lexicographically; see `sos_storage::keys`).
pub fn encode_key(op: &str, v: &crate::value::Value) -> ExecResult<KeyBytes> {
    use crate::value::Value;
    match v {
        Value::Int(x) => Ok(keys::int_key(*x)),
        Value::Real(x) => Ok(keys::real_key(*x)),
        Value::Str(s) => Ok(keys::str_key(s)),
        Value::Bool(b) => Ok(keys::bool_key(*b)),
        Value::Pair(components) => {
            let mut out = KeyBytes::new();
            for c in components {
                out.extend_from_slice(&encode_key(op, c)?);
            }
            Ok(out)
        }
        other => Err(mismatch(op, "ORD key value", &other.kind_name())),
    }
}

/// The attribute index of `attr` in a tuple type.
pub fn attr_index(tuple_ty: &DataType, attr: &Symbol) -> Option<usize> {
    tuple_ty.tuple_attrs()?.iter().position(|(a, _)| a == attr)
}
