//! Atomic data operators: comparisons, arithmetic, logic, geometry.
//!
//! Every operator here is *context-free*: a pure function from argument
//! values to a result, touching neither the object store nor the
//! catalog. [`eval_atomic`] is the single implementation, used both by
//! the registered engine operators and by the parallel executor's pure
//! evaluator ([`crate::parallel`]) — sharing one code path is what makes
//! a parallel plan extensionally equal to its serial counterpart by
//! construction.

use crate::engine::ExecEngine;
use crate::error::{mismatch, ExecError, ExecResult};
use crate::value::{compare, Value};
use sos_geom::{Point, Rect};
use std::cmp::Ordering;

/// The names of all atomic (context-free) operators.
pub const ATOMIC_OPS: &[&str] = &[
    "=",
    "!=",
    "<",
    "<=",
    ">",
    ">=",
    "+",
    "-",
    "*",
    "/",
    "div",
    "mod",
    "and",
    "or",
    "not",
    "bbox",
    "inside",
    "intersects",
    "makepoint",
    "makerect",
    "makepgon",
    "area",
    "distance",
];

/// Whether `op` is an atomic operator evaluable without an engine context.
pub fn is_atomic(op: &str) -> bool {
    ATOMIC_OPS.contains(&op)
}

/// Evaluate an atomic operator on already-evaluated arguments. Returns
/// `None` when `op` is not an atomic operator.
pub fn eval_atomic(op: &str, args: &[Value]) -> Option<ExecResult<Value>> {
    if !is_atomic(op) {
        return None;
    }
    Some(eval_known_atomic(op, args))
}

fn eval_known_atomic(op: &str, args: &[Value]) -> ExecResult<Value> {
    match op {
        // ---- equality / comparison (polymorphic over DATA) ----
        "=" => Ok(Value::Bool(args[0] == args[1])),
        "!=" => Ok(Value::Bool(args[0] != args[1])),
        "<" | "<=" | ">" | ">=" => {
            let ord = compare(op, &args[0], &args[1])?;
            let holds = match op {
                "<" => ord == Ordering::Less,
                "<=" => ord != Ordering::Greater,
                ">" => ord == Ordering::Greater,
                _ => ord != Ordering::Less,
            };
            Ok(Value::Bool(holds))
        }

        // ---- arithmetic with int/real promotion ----
        "+" | "-" | "*" | "/" => numeric(&args[0], &args[1], op),
        "div" => {
            let (a, b) = (args[0].as_int("div")?, args[1].as_int("div")?);
            if b == 0 {
                return Err(ExecError::Arithmetic("division by zero".into()));
            }
            Ok(Value::Int(a.div_euclid(b)))
        }
        "mod" => {
            let (a, b) = (args[0].as_int("mod")?, args[1].as_int("mod")?);
            if b == 0 {
                return Err(ExecError::Arithmetic("modulo by zero".into()));
            }
            Ok(Value::Int(a.rem_euclid(b)))
        }

        // ---- logic ----
        "and" => Ok(Value::Bool(
            args[0].as_bool("and")? && args[1].as_bool("and")?,
        )),
        "or" => Ok(Value::Bool(
            args[0].as_bool("or")? || args[1].as_bool("or")?,
        )),
        "not" => Ok(Value::Bool(!args[0].as_bool("not")?)),

        // ---- geometry (Section 4's point/rect/pgon algebra) ----
        "bbox" => match &args[0] {
            Value::Pgon(p) => Ok(Value::Rect(p.bbox())),
            Value::Rect(r) => Ok(Value::Rect(*r)),
            other => Err(mismatch("bbox", "pgon", &other.kind_name())),
        },
        "inside" => match (&args[0], &args[1]) {
            (Value::Point(p), Value::Pgon(g)) => Ok(Value::Bool(g.contains_point(p))),
            (Value::Point(p), Value::Rect(r)) => Ok(Value::Bool(r.contains_point(p))),
            (Value::Rect(a), Value::Rect(b)) => Ok(Value::Bool(b.contains_rect(a))),
            (a, b) => Err(mismatch(
                "inside",
                "point x pgon / point x rect / rect x rect",
                &format!("{} x {}", a.kind_name(), b.kind_name()),
            )),
        },
        "intersects" => match (&args[0], &args[1]) {
            (Value::Rect(a), Value::Rect(b)) => Ok(Value::Bool(a.intersects(b))),
            (a, b) => Err(mismatch(
                "intersects",
                "rect x rect",
                &format!("{} x {}", a.kind_name(), b.kind_name()),
            )),
        },
        "makepoint" => {
            let x = as_real(&args[0], "makepoint")?;
            let y = as_real(&args[1], "makepoint")?;
            Ok(Value::Point(Point::new(x, y)))
        }
        "makerect" => {
            let vals: Vec<f64> = args
                .iter()
                .map(|a| as_real(a, "makerect"))
                .collect::<ExecResult<_>>()?;
            Ok(Value::Rect(Rect::new(vals[0], vals[1], vals[2], vals[3])))
        }
        "makepgon" => {
            let Value::List(pairs) = &args[0] else {
                return Err(mismatch("makepgon", "list of pairs", &args[0].kind_name()));
            };
            let mut vs = Vec::with_capacity(pairs.len());
            for p in pairs {
                let Value::Pair(comps) = p else {
                    return Err(mismatch("makepgon", "(x, y) pair", &p.kind_name()));
                };
                if comps.len() != 2 {
                    return Err(ExecError::Other("makepgon pairs must be binary".into()));
                }
                vs.push(Point::new(
                    as_real(&comps[0], "makepgon")?,
                    as_real(&comps[1], "makepgon")?,
                ));
            }
            if vs.len() < 3 {
                return Err(ExecError::Other(
                    "makepgon needs at least 3 vertices".into(),
                ));
            }
            Ok(Value::Pgon(sos_geom::Polygon::new(vs)))
        }
        "area" => match &args[0] {
            Value::Pgon(p) => Ok(Value::Real(p.area())),
            Value::Rect(r) => Ok(Value::Real(r.area())),
            other => Err(mismatch("area", "pgon or rect", &other.kind_name())),
        },
        "distance" => match (&args[0], &args[1]) {
            (Value::Point(a), Value::Point(b)) => Ok(Value::Real(a.distance(b))),
            (a, b) => Err(mismatch(
                "distance",
                "point x point",
                &format!("{} x {}", a.kind_name(), b.kind_name()),
            )),
        },
        other => unreachable!("`{other}` listed in ATOMIC_OPS but not implemented"),
    }
}

pub fn register(e: &mut ExecEngine) {
    for op in ATOMIC_OPS {
        e.add_op(op, move |_, _, args| eval_known_atomic(op, &args));
        e.mark_atomic(op);
    }
}

fn as_real(v: &Value, op: &str) -> ExecResult<f64> {
    match v {
        Value::Int(x) => Ok(*x as f64),
        Value::Real(x) => Ok(*x),
        other => Err(mismatch(op, "number", &other.kind_name())),
    }
}

fn numeric(a: &Value, b: &Value, op: &str) -> ExecResult<Value> {
    use Value::*;
    match (a, b) {
        // `/` is real division regardless of operand types (the integer
        // quotient is `div`), matching its specification `-> real`.
        (Int(x), Int(y)) if op != "/" => {
            let r = match op {
                "+" => x.checked_add(*y),
                "-" => x.checked_sub(*y),
                "*" => x.checked_mul(*y),
                _ => unreachable!(),
            };
            r.map(Int)
                .ok_or_else(|| ExecError::Arithmetic(format!("integer overflow in `{op}`")))
        }
        _ => {
            let (x, y) = (as_real(a, op)?, as_real(b, op)?);
            let r = match op {
                "+" => x + y,
                "-" => x - y,
                "*" => x * y,
                "/" => {
                    if y == 0.0 {
                        return Err(ExecError::Arithmetic("division by zero".into()));
                    }
                    x / y
                }
                _ => unreachable!(),
            };
            Ok(Real(r))
        }
    }
}
