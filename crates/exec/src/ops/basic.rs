//! Atomic data operators: comparisons, arithmetic, logic, geometry.

use crate::engine::ExecEngine;
use crate::error::{mismatch, ExecError, ExecResult};
use crate::value::{compare, Value};
use sos_geom::{Point, Rect};
use std::cmp::Ordering;

pub fn register(e: &mut ExecEngine) {
    // ---- equality / comparison (polymorphic over DATA) ----
    e.add_op("=", |_, _, args| Ok(Value::Bool(args[0] == args[1])));
    e.add_op("!=", |_, _, args| Ok(Value::Bool(args[0] != args[1])));
    for (name, wanted) in [
        ("<", vec![Ordering::Less]),
        ("<=", vec![Ordering::Less, Ordering::Equal]),
        (">", vec![Ordering::Greater]),
        (">=", vec![Ordering::Greater, Ordering::Equal]),
    ] {
        let w = wanted.clone();
        let n = name.to_string();
        e.add_op(name, move |_, _, args| {
            let ord = compare(&n, &args[0], &args[1])?;
            Ok(Value::Bool(w.contains(&ord)))
        });
    }

    // ---- arithmetic with int/real promotion ----
    e.add_op("+", |_, _, args| numeric(&args[0], &args[1], "+"));
    e.add_op("-", |_, _, args| numeric(&args[0], &args[1], "-"));
    e.add_op("*", |_, _, args| numeric(&args[0], &args[1], "*"));
    e.add_op("/", |_, _, args| numeric(&args[0], &args[1], "/"));
    e.add_op("div", |_, _, args| {
        let (a, b) = (args[0].as_int("div")?, args[1].as_int("div")?);
        if b == 0 {
            return Err(ExecError::Arithmetic("division by zero".into()));
        }
        Ok(Value::Int(a.div_euclid(b)))
    });
    e.add_op("mod", |_, _, args| {
        let (a, b) = (args[0].as_int("mod")?, args[1].as_int("mod")?);
        if b == 0 {
            return Err(ExecError::Arithmetic("modulo by zero".into()));
        }
        Ok(Value::Int(a.rem_euclid(b)))
    });

    // ---- logic ----
    e.add_op("and", |_, _, args| {
        Ok(Value::Bool(
            args[0].as_bool("and")? && args[1].as_bool("and")?,
        ))
    });
    e.add_op("or", |_, _, args| {
        Ok(Value::Bool(
            args[0].as_bool("or")? || args[1].as_bool("or")?,
        ))
    });
    e.add_op("not", |_, _, args| {
        Ok(Value::Bool(!args[0].as_bool("not")?))
    });

    // ---- geometry (Section 4's point/rect/pgon algebra) ----
    e.add_op("bbox", |_, _, args| match &args[0] {
        Value::Pgon(p) => Ok(Value::Rect(p.bbox())),
        Value::Rect(r) => Ok(Value::Rect(*r)),
        other => Err(mismatch("bbox", "pgon", &other.kind_name())),
    });
    e.add_op("inside", |_, _, args| match (&args[0], &args[1]) {
        (Value::Point(p), Value::Pgon(g)) => Ok(Value::Bool(g.contains_point(p))),
        (Value::Point(p), Value::Rect(r)) => Ok(Value::Bool(r.contains_point(p))),
        (Value::Rect(a), Value::Rect(b)) => Ok(Value::Bool(b.contains_rect(a))),
        (a, b) => Err(mismatch(
            "inside",
            "point x pgon / point x rect / rect x rect",
            &format!("{} x {}", a.kind_name(), b.kind_name()),
        )),
    });
    e.add_op("intersects", |_, _, args| match (&args[0], &args[1]) {
        (Value::Rect(a), Value::Rect(b)) => Ok(Value::Bool(a.intersects(b))),
        (a, b) => Err(mismatch(
            "intersects",
            "rect x rect",
            &format!("{} x {}", a.kind_name(), b.kind_name()),
        )),
    });
    e.add_op("makepoint", |_, _, args| {
        let x = as_real(&args[0], "makepoint")?;
        let y = as_real(&args[1], "makepoint")?;
        Ok(Value::Point(Point::new(x, y)))
    });
    e.add_op("makerect", |_, _, args| {
        let vals: Vec<f64> = args
            .iter()
            .map(|a| as_real(a, "makerect"))
            .collect::<ExecResult<_>>()?;
        Ok(Value::Rect(Rect::new(vals[0], vals[1], vals[2], vals[3])))
    });
    e.add_op("makepgon", |_, _, args| {
        let Value::List(pairs) = &args[0] else {
            return Err(mismatch("makepgon", "list of pairs", &args[0].kind_name()));
        };
        let mut vs = Vec::with_capacity(pairs.len());
        for p in pairs {
            let Value::Pair(comps) = p else {
                return Err(mismatch("makepgon", "(x, y) pair", &p.kind_name()));
            };
            if comps.len() != 2 {
                return Err(ExecError::Other("makepgon pairs must be binary".into()));
            }
            vs.push(Point::new(
                as_real(&comps[0], "makepgon")?,
                as_real(&comps[1], "makepgon")?,
            ));
        }
        if vs.len() < 3 {
            return Err(ExecError::Other(
                "makepgon needs at least 3 vertices".into(),
            ));
        }
        Ok(Value::Pgon(sos_geom::Polygon::new(vs)))
    });
    e.add_op("area", |_, _, args| match &args[0] {
        Value::Pgon(p) => Ok(Value::Real(p.area())),
        Value::Rect(r) => Ok(Value::Real(r.area())),
        other => Err(mismatch("area", "pgon or rect", &other.kind_name())),
    });
    e.add_op("distance", |_, _, args| match (&args[0], &args[1]) {
        (Value::Point(a), Value::Point(b)) => Ok(Value::Real(a.distance(b))),
        (a, b) => Err(mismatch(
            "distance",
            "point x point",
            &format!("{} x {}", a.kind_name(), b.kind_name()),
        )),
    });
}

fn as_real(v: &Value, op: &str) -> ExecResult<f64> {
    match v {
        Value::Int(x) => Ok(*x as f64),
        Value::Real(x) => Ok(*x),
        other => Err(mismatch(op, "number", &other.kind_name())),
    }
}

fn numeric(a: &Value, b: &Value, op: &str) -> ExecResult<Value> {
    use Value::*;
    match (a, b) {
        // `/` is real division regardless of operand types (the integer
        // quotient is `div`), matching its specification `-> real`.
        (Int(x), Int(y)) if op != "/" => {
            let r = match op {
                "+" => x.checked_add(*y),
                "-" => x.checked_sub(*y),
                "*" => x.checked_mul(*y),
                _ => unreachable!(),
            };
            r.map(Int)
                .ok_or_else(|| ExecError::Arithmetic(format!("integer overflow in `{op}`")))
        }
        _ => {
            let (x, y) = (as_real(a, op)?, as_real(b, op)?);
            let r = match op {
                "+" => x + y,
                "-" => x - y,
                "*" => x * y,
                "/" => {
                    if y == 0.0 {
                        return Err(ExecError::Arithmetic("division by zero".into()));
                    }
                    x / y
                }
                _ => unreachable!(),
            };
            Ok(Real(r))
        }
    }
}
