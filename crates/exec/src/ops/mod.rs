//! Built-in operator implementations: the Ω_A functions of the built-in
//! model and representation algebras.

pub mod basic;
mod indexes;
pub mod relational;
pub mod streams;
pub mod updates;

use crate::engine::ExecEngine;

/// Register every built-in operator.
pub fn register_builtins(engine: &mut ExecEngine) {
    basic::register(engine);
    relational::register(engine);
    streams::register(engine);
    indexes::register(engine);
    updates::register(engine);
}
