//! Update functions (Section 6): operators whose first argument type
//! equals their result type; the statement processor assigns the result
//! back to the first-argument object.
//!
//! One `insert`/`delete`/`modify` name covers the model level (pure
//! functions over in-memory relations), the representation level
//! (mutating B-trees, heap files, LSD-trees in place and returning the
//! handle), and the catalog (Section 6's special catalog insert).
//!
//! Durability: these operators never touch the disk or the log
//! themselves. They dirty pages through the shared buffer pool, and the
//! statement processor brackets each update statement in a
//! [`crate::txn::StatementTx`] — over a WAL-backed pool the dirtied
//! pages are logged and committed (or rolled back) as one atomic unit.

use crate::engine::{EvalCtx, ExecEngine};
use crate::error::{mismatch, ExecError, ExecResult};
use crate::handles::encode_key;
use crate::ops::relational::attr_index_of_node;
use crate::value::{Closure, Value};
use sos_core::typed::{TypedExpr, TypedNode};
use sos_core::{Const, Symbol};
use std::sync::Arc;

/// The object name of an application argument (catalog updates need the
/// name, not a value).
fn object_name(node: &TypedExpr) -> Option<&Symbol> {
    match &node.node {
        TypedNode::Object(n) => Some(n),
        _ => None,
    }
}

fn is_catalog(node: &TypedExpr) -> bool {
    matches!(&node.ty, sos_core::DataType::Cons(n, _) if n.as_str() == "catalog")
}

/// Insert one tuple value into any updatable collection (also used by
/// the system's bulk-load API).
pub fn insert_into(ctx: &mut EvalCtx, target: &Value, tuple: &Value) -> ExecResult<Value> {
    match target {
        Value::Rel(ts) => {
            let mut ts = ts.clone();
            ts.push(tuple.clone());
            Ok(Value::Rel(ts))
        }
        Value::Undefined => Ok(Value::Rel(vec![tuple.clone()])),
        Value::SRel(h) | Value::TidRel(h) => {
            h.insert(&tuple.encode_tuple("insert")?)?;
            Ok(target.clone())
        }
        Value::BTree(h) => {
            let key_val = ctx.key_value(h, tuple)?;
            let key = encode_key("insert", &key_val)?;
            h.tree.insert(&key, &tuple.encode_tuple("insert")?)?;
            Ok(target.clone())
        }
        Value::LsdTree(h) => {
            let rect = ctx.rect_value(h, tuple)?;
            h.tree.insert(rect, &tuple.encode_tuple("insert")?)?;
            Ok(target.clone())
        }
        Value::Part(h) => {
            let i = route_into(ctx, h, tuple)?;
            insert_into(ctx, &h.parts[i], tuple)?;
            Ok(target.clone())
        }
        other => Err(mismatch(
            "insert",
            "updatable collection",
            &other.kind_name(),
        )),
    }
}

/// The partition a tuple routes to: by indexed rectangle for rect-keyed
/// (LSD-tree) partitions, by the routing attribute otherwise.
fn route_into(
    ctx: &mut EvalCtx,
    h: &crate::partition::PartHandle,
    tuple: &Value,
) -> ExecResult<usize> {
    match h.parts.first() {
        Some(Value::LsdTree(lh)) => {
            let rect = ctx.rect_value(lh, tuple)?;
            h.route_rect(&rect)
        }
        _ => h.route_tuple(tuple),
    }
}

fn delete_tuple(ctx: &mut EvalCtx, target: &Value, tuple: &Value) -> ExecResult<bool> {
    match target {
        Value::BTree(h) => {
            let key_val = ctx.key_value(h, tuple)?;
            let key = encode_key("delete", &key_val)?;
            Ok(h.tree.delete_exact(&key, &tuple.encode_tuple("delete")?)?)
        }
        Value::LsdTree(h) => {
            let rect = ctx.rect_value(h, tuple)?;
            Ok(h.tree.delete(rect, &tuple.encode_tuple("delete")?)?)
        }
        Value::SRel(h) | Value::TidRel(h) => {
            let bytes = tuple.encode_tuple("delete")?;
            for item in h.scan() {
                let (tid, rec) = item?;
                if rec == bytes {
                    h.delete(tid)?;
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Value::Part(h) => {
            let i = route_into(ctx, h, tuple)?;
            delete_tuple(ctx, &h.parts[i], tuple)
        }
        other => Err(mismatch(
            "delete",
            "representation structure",
            &other.kind_name(),
        )),
    }
}

/// Apply a stream-modifying function to a stream of tuples and pair each
/// original with its modified version.
fn modified_pairs(
    ctx: &mut EvalCtx,
    tuples: &[Value],
    fun: &Arc<Closure>,
    op: &str,
) -> ExecResult<Vec<(Value, Value)>> {
    let out = ctx.call(fun, vec![Value::Stream(tuples.to_vec())])?;
    let news = crate::stream::materialize(ctx, out)?;
    if news.len() != tuples.len() {
        return Err(ExecError::Other(format!(
            "`{op}` modification function changed the stream length ({} -> {})",
            tuples.len(),
            news.len()
        )));
    }
    Ok(tuples.iter().cloned().zip(news).collect())
}

pub fn register(e: &mut ExecEngine) {
    // insert — model rel, representation structures, and the catalog.
    e.add_op("insert", |ctx, node, args| {
        if is_catalog(&node.args_of()[0]) {
            let name = object_name(&node.args_of()[0])
                .ok_or_else(|| ExecError::Other("catalog insert needs a named catalog".into()))?
                .clone();
            let row: Vec<Const> = args[1..]
                .iter()
                .map(|v| match v {
                    Value::Ident(s) => Ok(Const::Ident(s.clone())),
                    Value::Int(i) => Ok(Const::Int(*i)),
                    Value::Str(s) => Ok(Const::Str(s.clone())),
                    other => Err(mismatch("insert", "catalog row value", &other.kind_name())),
                })
                .collect::<ExecResult<_>>()?;
            ctx.catalog
                .catalog_insert(&name, row)
                .map_err(|e| ExecError::Other(e.to_string()))?;
            return Ok(Value::Ident(name));
        }
        insert_into(ctx, &args[0], &args[1])
    });

    // rel_insert — bag union into a model relation.
    e.add_op("rel_insert", |_, _, args| {
        let mut ts = crate::ops::relational::tuples_of(&args[0], "rel_insert")?;
        ts.extend(crate::ops::relational::tuples_of(&args[1], "rel_insert")?);
        Ok(Value::Rel(ts))
    });

    // stream_insert — bulk insert a stream. The input is materialized
    // *before* any mutation: the stream may scan the very structure
    // being inserted into (`stream_insert(x, x feed)` must append a
    // snapshot, not chase its own inserts).
    e.add_op("stream_insert", |ctx, _, args| {
        let tuples = crate::stream::materialize(ctx, args[1].clone())?;
        let mut target = args[0].clone();
        for t in tuples {
            target = insert_into(ctx, &target, &t)?;
        }
        Ok(target)
    });

    // delete — model form `delete(rel, pred)`, representation form
    // `delete(structure, stream)`.
    e.add_op("delete", |ctx, _, args| match (&args[0], &args[1]) {
        (Value::Rel(ts) | Value::Stream(ts), Value::Closure(_)) => {
            let keep = {
                let pred = args[1].as_closure("delete")?.clone();
                let mut keep = Vec::with_capacity(ts.len());
                for t in ts {
                    if !ctx.call(&pred, vec![t.clone()])?.as_bool("delete")? {
                        keep.push(t.clone());
                    }
                }
                keep
            };
            Ok(Value::Rel(keep))
        }
        (Value::Undefined, Value::Closure(_)) => Ok(Value::Rel(Vec::new())),
        (target, Value::Stream(_) | Value::Cursor(_)) => {
            let tuples = crate::stream::materialize(ctx, args[1].clone())?;
            for t in &tuples {
                delete_tuple(ctx, target, t)?;
            }
            Ok(target.clone())
        }
        (a, b) => Err(mismatch(
            "delete",
            "(rel, predicate) or (structure, stream)",
            &format!("{} x {}", a.kind_name(), b.kind_name()),
        )),
    });

    // modify — model form `modify(rel, pred, attr, fun)`; representation
    // form `modify(btree, stream, streamfun)` for non-key updates.
    e.add_op("modify", |ctx, node, args| {
        if args.len() == 4 {
            // Model level.
            let tuples = crate::ops::relational::tuples_of(&args[0], "modify")?;
            let pred = args[1].as_closure("modify")?.clone();
            let Value::Ident(attr) = &args[2] else {
                return Err(mismatch("modify", "attribute name", &args[2].kind_name()));
            };
            let idx = attr_index_of_node(node, attr)?;
            let fun = args[3].as_closure("modify")?.clone();
            let mut out = Vec::with_capacity(tuples.len());
            for t in tuples {
                if ctx.call(&pred, vec![t.clone()])?.as_bool("modify")? {
                    let mut fields = t.as_tuple("modify")?.to_vec();
                    fields[idx] = ctx.call(&fun, vec![t.clone()])?;
                    out.push(Value::tuple(fields));
                } else {
                    out.push(t);
                }
            }
            return Ok(Value::Rel(out));
        }
        // Representation level: in-situ modification, key must not change.
        let Value::BTree(h) = &args[0] else {
            return Err(mismatch("modify", "btree", &args[0].kind_name()));
        };
        let tuples = crate::stream::materialize(ctx, args[1].clone())?;
        let fun = args[2].as_closure("modify")?.clone();
        for (old, new) in modified_pairs(ctx, &tuples, &fun, "modify")? {
            let old_key = encode_key("modify", &ctx.key_value(h, &old)?)?;
            let new_key = encode_key("modify", &ctx.key_value(h, &new)?)?;
            if old_key != new_key {
                return Err(ExecError::Other(
                    "modify changed the key value; use re_insert for key updates".into(),
                ));
            }
            h.tree.modify_exact(
                &old_key,
                &old.encode_tuple("modify")?,
                &new.encode_tuple("modify")?,
            )?;
        }
        Ok(args[0].clone())
    });

    // vacuum — rebuild a clustering B-tree into densely packed pages.
    e.add_op("vacuum", |_, _, args| {
        let Value::BTree(h) = &args[0] else {
            return Err(mismatch("vacuum", "btree", &args[0].kind_name()));
        };
        h.tree.rebuild()?;
        Ok(args[0].clone())
    });

    // re_insert — key updates: delete at the old position, insert at the
    // position of the new key value.
    e.add_op("re_insert", |ctx, _, args| {
        let Value::BTree(h) = &args[0] else {
            return Err(mismatch("re_insert", "btree", &args[0].kind_name()));
        };
        let tuples = crate::stream::materialize(ctx, args[1].clone())?;
        let fun = args[2].as_closure("re_insert")?.clone();
        for (old, new) in modified_pairs(ctx, &tuples, &fun, "re_insert")? {
            let old_key = encode_key("re_insert", &ctx.key_value(h, &old)?)?;
            let new_key = encode_key("re_insert", &ctx.key_value(h, &new)?)?;
            h.tree.re_insert(
                &old_key,
                &old.encode_tuple("re_insert")?,
                &new_key,
                &new.encode_tuple("re_insert")?,
            )?;
        }
        Ok(args[0].clone())
    });
}

/// Access to an Apply node's argument nodes (helper shared with other
/// op modules).
trait ArgsOf {
    fn args_of(&self) -> &[TypedExpr];
}

impl ArgsOf for TypedExpr {
    fn args_of(&self) -> &[TypedExpr] {
        match &self.node {
            TypedNode::Apply { args, .. } => args,
            _ => &[],
        }
    }
}
