//! Model-level relational operators (Section 2.2): `select`, `join`,
//! `union`, `mktuple`, `count` — pure functions over in-memory relations.

use crate::engine::{EvalCtx, ExecEngine};
use crate::error::{mismatch, ExecError, ExecResult};
use crate::value::Value;
use sos_core::typed::TypedExpr;

/// Interpret a value as a bag of tuples (relations and streams are both
/// accepted where the specs allow).
pub fn tuples_of(v: &Value, op: &str) -> ExecResult<Vec<Value>> {
    match v {
        Value::Rel(ts) | Value::Stream(ts) => Ok(ts.clone()),
        Value::Undefined => Ok(Vec::new()),
        other => Err(mismatch(op, "relation", &other.kind_name())),
    }
}

/// Evaluate a predicate closure on tuples, keeping those where it holds.
pub fn filter_tuples(
    ctx: &mut EvalCtx,
    tuples: Vec<Value>,
    pred: &Value,
    op: &str,
) -> ExecResult<Vec<Value>> {
    let closure = pred.as_closure(op)?.clone();
    let mut out = Vec::with_capacity(tuples.len());
    for t in tuples {
        if ctx.call(&closure, vec![t.clone()])?.as_bool(op)? {
            out.push(t);
        }
    }
    Ok(out)
}

/// Concatenate the fields of two tuples (the semantics of `join` and
/// `search_join` result construction).
pub fn concat_tuples(a: &Value, b: &Value, op: &str) -> ExecResult<Value> {
    let mut fields = a.as_tuple(op)?.to_vec();
    fields.extend(b.as_tuple(op)?.iter().cloned());
    Ok(Value::tuple(fields))
}

pub fn register(e: &mut ExecEngine) {
    e.add_op("select", |ctx, _, args| {
        let tuples = tuples_of(&args[0], "select")?;
        if let Some(res) = crate::parallel::try_par_filter(ctx.engine, &tuples, &args[1], "select")
        {
            return Ok(Value::Rel(res?));
        }
        let n_in = tuples.len();
        // Serial path: compiled mask when the predicate lowers (same
        // per-row order and errors as the interpreted loop below).
        if let Ok(closure) = args[1].as_closure("select") {
            if let Some(cf) = crate::compile::compile_gated(ctx.engine, closure) {
                let mask = cf.eval_mask(&tuples, "select")?;
                let out: Vec<Value> = tuples
                    .into_iter()
                    .zip(mask)
                    .filter_map(|(t, keep)| keep.then_some(t))
                    .collect();
                ctx.engine.stats.record("select", 1, n_in, out.len(), 0);
                return Ok(Value::Rel(out));
            }
        }
        let out = filter_tuples(ctx, tuples, &args[1], "select")?;
        ctx.engine.stats.record("select", 1, n_in, out.len(), 0);
        Ok(Value::Rel(out))
    });

    e.add_op("join", |ctx, _, args| {
        let left = tuples_of(&args[0], "join")?;
        let right = tuples_of(&args[1], "join")?;
        if let Some(res) = crate::parallel::try_par_join(ctx.engine, &left, &right, &args[2]) {
            return Ok(Value::Rel(res?));
        }
        let pred = args[2].as_closure("join")?.clone();
        let mut out = Vec::new();
        for l in &left {
            for r in &right {
                if ctx
                    .call(&pred, vec![l.clone(), r.clone()])?
                    .as_bool("join")?
                {
                    out.push(concat_tuples(l, r, "join")?);
                }
            }
        }
        ctx.engine
            .stats
            .record("join", 1, left.len() + right.len(), out.len(), 0);
        Ok(Value::Rel(out))
    });

    e.add_op("union", |_, _, args| {
        let Value::List(rels) = &args[0] else {
            return Err(mismatch("union", "list of relations", &args[0].kind_name()));
        };
        let mut out = Vec::new();
        for r in rels {
            out.extend(tuples_of(r, "union")?);
        }
        Ok(Value::Rel(out))
    });

    // mktuple[(a, v), (b, w)] — construct a tuple value with named
    // attributes; the result type is computed by a type operator.
    e.add_op("mktuple", |_, _, args| {
        let Value::List(pairs) = &args[0] else {
            return Err(mismatch("mktuple", "list of pairs", &args[0].kind_name()));
        };
        let mut fields = Vec::with_capacity(pairs.len());
        for p in pairs {
            let Value::Pair(comps) = p else {
                return Err(mismatch("mktuple", "(ident, value) pair", &p.kind_name()));
            };
            if comps.len() != 2 {
                return Err(ExecError::Other("mktuple pairs must be binary".into()));
            }
            fields.push(comps[1].clone());
        }
        Ok(Value::tuple(fields))
    });

    e.add_op("count", |ctx, _, args| match &args[0] {
        Value::Rel(ts) | Value::Stream(ts) => Ok(Value::Int(ts.len() as i64)),
        Value::Cursor(_) => {
            let mut cursor = crate::stream::into_cursor(args[0].clone())?;
            // Count page-partitioned when the pipeline allows it...
            if let Some(res) = crate::parallel::try_par_count(ctx.engine, &mut cursor) {
                return Ok(Value::Int(res?));
            }
            // ...else drain the pipeline without buffering: whole
            // batches when the engine's batch width allows, one tuple
            // at a time otherwise.
            let width = ctx.engine.batch_size();
            let mut n = 0i64;
            if width > 1 {
                let mut batches = 0u64;
                let mut buf = Vec::with_capacity(width.min(4096));
                loop {
                    buf.clear();
                    let got = cursor.next_batch_into(ctx, width, &mut buf)?;
                    if got == 0 {
                        break;
                    }
                    n += got as i64;
                    batches += 1;
                }
                ctx.engine.stats.record_batches("count", batches, n as u64);
            } else {
                while cursor.next(ctx)?.is_some() {
                    n += 1;
                }
            }
            ctx.engine.stats.record("count", 1, n as usize, 1, 0);
            Ok(Value::Int(n))
        }
        Value::SRel(h) | Value::TidRel(h) => {
            let workers = ctx.engine.workers();
            if workers > 1 && h.pages().len() >= crate::parallel::PAR_MIN_PAGES {
                let n = sos_storage::parallel::par_count(h, workers, |_| true)?;
                ctx.engine
                    .stats
                    .record("count", workers, n, 1, h.pages().len());
                return Ok(Value::Int(n as i64));
            }
            Ok(Value::Int(h.count()? as i64))
        }
        Value::BTree(h) => Ok(Value::Int(h.tree.len() as i64)),
        Value::LsdTree(h) => Ok(Value::Int(h.tree.len() as i64)),
        Value::Part(h) => {
            // Heap partitions walk their pages; tree partitions answer
            // from their stored length. Cheap enough to stay serial —
            // a `feed ... count` pipeline takes the partition-parallel
            // scan path instead.
            let n = h.len()?;
            ctx.engine.stats.record("count", 1, n, 1, 0);
            ctx.engine
                .stats
                .record_partitions("count", h.part_count() as u64, 0);
            Ok(Value::Int(n as i64))
        }
        Value::Undefined => Ok(Value::Int(0)),
        other => Err(mismatch("count", "collection", &other.kind_name())),
    });
}

/// The attribute index of `attr` in the tuple type of a collection-typed
/// node argument (rel(t), stream(t), ...).
pub fn attr_index_of_node(node: &TypedExpr, attr: &sos_core::Symbol) -> ExecResult<usize> {
    let coll_ty = &node.ty;
    attr_index_in_collection(coll_ty, attr)
}

/// Same, but against the node's *first argument* type (for operators
/// whose result type is a scalar, e.g. aggregates).
pub fn attr_index_of_first_arg(node: &TypedExpr, attr: &sos_core::Symbol) -> ExecResult<usize> {
    let arg = match &node.node {
        sos_core::typed::TypedNode::Apply { args, .. } => args
            .first()
            .ok_or_else(|| ExecError::Other("operator has no arguments".into()))?,
        _ => return Err(ExecError::Other("not an operator application".into())),
    };
    attr_index_in_collection(&arg.ty, attr)
}

fn attr_index_in_collection(
    coll_ty: &sos_core::DataType,
    attr: &sos_core::Symbol,
) -> ExecResult<usize> {
    let tuple_ty = coll_ty
        .single_type_arg()
        .ok_or_else(|| ExecError::Other(format!("no tuple type in {coll_ty}")))?;
    crate::handles::attr_index(tuple_ty, attr)
        .ok_or_else(|| ExecError::Other(format!("attribute `{attr}` not in {tuple_ty}")))
}
