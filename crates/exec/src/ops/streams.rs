//! Representation-level stream operators (Section 4): `feed`, `filter`,
//! `project`, `replace`, `collect`, `search_join`, `head`, `sortby`.
//!
//! The scan/range/filter/head/project/replace/search_join spine is
//! pipelined through [`crate::stream::Cursor`]; blocking operators
//! (`sortby`, `hashjoin`, aggregates, `collect`) drain their input.

use crate::engine::ExecEngine;
use crate::error::{mismatch, ExecResult};
use crate::ops::relational::concat_tuples;
use crate::stream::{into_cursor, materialize, Cursor};
use crate::value::Value;
use sos_storage::heap::HeapFile;
use std::sync::Arc;

/// Fold one attribute of a stream (`sum`, `min`, `max`, `avg`).
fn aggregate(op: &str, tuples: &[Value], idx: usize) -> ExecResult<Value> {
    use crate::value::compare;
    if tuples.is_empty() {
        return match op {
            "sum" => Ok(Value::Int(0)),
            _ => Err(crate::error::ExecError::Other(format!(
                "`{op}` over an empty stream"
            ))),
        };
    }
    let field = |t: &Value| -> ExecResult<Value> { Ok(t.as_tuple(op)?[idx].clone()) };
    match op {
        "min" | "max" => {
            let mut best = field(&tuples[0])?;
            for t in &tuples[1..] {
                let v = field(t)?;
                let ord = compare(op, &v, &best)?;
                let better = if op == "min" {
                    ord == std::cmp::Ordering::Less
                } else {
                    ord == std::cmp::Ordering::Greater
                };
                if better {
                    best = v;
                }
            }
            Ok(best)
        }
        "sum" | "avg" => {
            let mut acc_i: i64 = 0;
            let mut acc_r: f64 = 0.0;
            let mut real = false;
            for t in tuples {
                match field(t)? {
                    Value::Int(v) => {
                        acc_i = acc_i.checked_add(v).ok_or_else(|| {
                            crate::error::ExecError::Arithmetic("sum overflow".into())
                        })?;
                    }
                    Value::Real(v) => {
                        real = true;
                        acc_r += v;
                    }
                    other => return Err(mismatch(op, "numeric attribute", &other.kind_name())),
                }
            }
            let total = acc_r + acc_i as f64;
            if op == "avg" {
                Ok(Value::Real(total / tuples.len() as f64))
            } else if real {
                Ok(Value::Real(total))
            } else {
                Ok(Value::Int(acc_i))
            }
        }
        _ => unreachable!(),
    }
}

/// Scan any relation representation into a stream of tuple values
/// (the `feed` of the `relrep` subtype hierarchy).
pub fn feed_value(v: &Value) -> ExecResult<Vec<Value>> {
    match v {
        Value::SRel(h) | Value::TidRel(h) => {
            let mut out = Vec::new();
            for item in h.scan() {
                let (_, bytes) = item?;
                out.push(Value::decode_tuple(&bytes)?);
            }
            Ok(out)
        }
        Value::BTree(h) => {
            let mut out = Vec::new();
            for item in h.tree.scan()? {
                let (_, bytes) = item?;
                out.push(Value::decode_tuple(&bytes)?);
            }
            Ok(out)
        }
        Value::LsdTree(h) => {
            let mut out = Vec::new();
            for e in h.tree.scan()? {
                out.push(Value::decode_tuple(&e.payload)?);
            }
            Ok(out)
        }
        // A partitioned object feeds its partitions in order.
        Value::Part(h) => {
            let mut out = Vec::new();
            for p in &h.parts {
                out.extend(feed_value(p)?);
            }
            Ok(out)
        }
        // Hybrid convenience: an in-memory relation also feeds.
        Value::Rel(ts) | Value::Stream(ts) => Ok(ts.clone()),
        Value::Undefined => Ok(Vec::new()),
        other => Err(mismatch(
            "feed",
            "relation representation",
            &other.kind_name(),
        )),
    }
}

fn cursor_value(c: Cursor) -> Value {
    Value::Cursor(std::sync::Arc::new(parking_lot::Mutex::new(c)))
}

/// Partition pruning for `filter` over a fresh partition scan: key
/// conditions the predicate imposes on the routing attribute drop the
/// partitions they exclude before any page is touched. Pruning is
/// conservative — surviving partitions still evaluate the full
/// predicate per tuple, so the result is identical to the unpruned
/// scan. Records partition counts under the `filter` operator.
fn prune_part_scan(
    engine: &ExecEngine,
    input: &mut Cursor,
    pred: &std::sync::Arc<crate::value::Closure>,
) {
    let Cursor::PartScan {
        handle,
        cursors,
        idx,
    } = input
    else {
        return;
    };
    // Only a fresh, complete scan is pruned (a partially drained or
    // already-pruned scan keeps its remaining partitions).
    if *idx != 0 || cursors.len() != handle.part_count() {
        return;
    }
    let total = cursors.len() as u64;
    let conds = crate::partition::key_conds(engine, pred, &handle.spec.attr);
    if conds.is_empty() {
        engine.stats.record_partitions("filter", total, 0);
        return;
    }
    let mask = handle.candidate_mask(&conds);
    let kept: Vec<Cursor> = std::mem::take(cursors)
        .into_iter()
        .zip(&mask)
        .filter_map(|(c, keep)| keep.then_some(c))
        .collect();
    let pruned = total - kept.len() as u64;
    *cursors = kept;
    engine.stats.record_partitions("filter", total, pruned);
}

pub fn register(e: &mut ExecEngine) {
    // feed produces a *pipelined* cursor for page-backed structures
    // (Section 4's pipelined processing); in-memory relations and
    // LSD-trees come back materialized.
    e.add_op("feed", |ctx, _, args| match &args[0] {
        Value::SRel(h) | Value::TidRel(h) => Ok(cursor_value(Cursor::heap_scan(h.clone()))),
        Value::BTree(h) => Ok(cursor_value(Cursor::btree_range(
            h.clone(),
            sos_storage::keys::bottom(),
            sos_storage::keys::top(),
        ))),
        Value::Part(h) => {
            ctx.engine
                .stats
                .record_partitions("feed", h.part_count() as u64, 0);
            Ok(cursor_value(Cursor::part_scan(h.clone())?))
        }
        other => Ok(Value::Stream(feed_value(other)?)),
    });

    e.add_op("filter", |ctx, _, args| {
        let pred = args[1].as_closure("filter")?.clone();
        let mut input = into_cursor(args[0].clone())?;
        prune_part_scan(ctx.engine, &mut input, &pred);
        Ok(cursor_value(Cursor::filter(ctx.engine, input, pred)))
    });

    // project[(name, fun-or-attr), ...] — generalized projection; the
    // result schema comes from the type operator at check time.
    e.add_op("project", |ctx, _, args| {
        let Value::List(pairs) = &args[1] else {
            return Err(mismatch("project", "list of pairs", &args[1].kind_name()));
        };
        let mut funs = Vec::with_capacity(pairs.len());
        for p in pairs {
            let Value::Pair(comps) = p else {
                return Err(mismatch("project", "(ident, fun) pair", &p.kind_name()));
            };
            funs.push(comps[1].as_closure("project")?.clone());
        }
        let input = into_cursor(args[0].clone())?;
        Ok(cursor_value(Cursor::project(ctx.engine, input, funs)))
    });

    // replace[attr, fun] — replace one attribute value per tuple.
    e.add_op("replace", |ctx, node, args| {
        let Value::Ident(attr) = &args[1] else {
            return Err(mismatch("replace", "attribute name", &args[1].kind_name()));
        };
        let idx = crate::ops::relational::attr_index_of_node(node, attr)?;
        let fun = args[2].as_closure("replace")?.clone();
        let input = into_cursor(args[0].clone())?;
        Ok(cursor_value(Cursor::replace(ctx.engine, input, idx, fun)))
    });

    // collect — materialize a stream into a temporary relation (srel).
    e.add_op("collect", |ctx, _, args| {
        let mut input = into_cursor(args[0].clone())?;
        let heap = HeapFile::create(ctx.engine.pool.clone())?;
        let width = ctx.engine.batch_size();
        if width > 1 {
            let mut batches = 0u64;
            let mut rows = 0u64;
            let mut buf = Vec::with_capacity(width.min(4096));
            loop {
                buf.clear();
                let got = input.next_batch_into(ctx, width, &mut buf)?;
                if got == 0 {
                    break;
                }
                batches += 1;
                rows += got as u64;
                for t in &buf {
                    heap.insert(&t.encode_tuple("collect")?)?;
                }
            }
            ctx.engine.stats.record_batches("collect", batches, rows);
        } else {
            while let Some(t) = input.next(ctx)? {
                heap.insert(&t.encode_tuple("collect")?)?;
            }
        }
        Ok(Value::SRel(Arc::new(heap)))
    });

    // hashjoin[a1, a2] — a classic equi-join: build a hash table on the
    // inner stream's join attribute, probe with the outer stream. One of
    // the paper's motivating "special join algorithms" an extensible
    // system must be able to add.
    e.add_op("hashjoin", |ctx, node, args| {
        let (Value::Ident(a1), Value::Ident(a2)) = (&args[2], &args[3]) else {
            return Err(mismatch(
                "hashjoin",
                "two attribute names",
                &format!("{:?}, {:?}", args[2].kind_name(), args[3].kind_name()),
            ));
        };
        let node_args = match &node.node {
            sos_core::typed::TypedNode::Apply { args, .. } => args,
            _ => unreachable!("hashjoin is an operator application"),
        };
        let i1 = crate::handles::attr_index(
            node_args[0]
                .ty
                .single_type_arg()
                .ok_or_else(|| crate::error::ExecError::Other("no tuple type".into()))?,
            a1,
        )
        .ok_or_else(|| crate::error::ExecError::Other(format!("attribute `{a1}` missing")))?;
        let i2 = crate::handles::attr_index(
            node_args[1]
                .ty
                .single_type_arg()
                .ok_or_else(|| crate::error::ExecError::Other("no tuple type".into()))?,
            a2,
        )
        .ok_or_else(|| crate::error::ExecError::Other(format!("attribute `{a2}` missing")))?;
        // Co-partitioned fast path: when both sides are fresh scans of
        // objects partitioned the same way on the join attributes, the
        // global repartition is unnecessary — equal keys can only meet
        // within the same partition index.
        if let Some(out) = try_copart_hashjoin(ctx, &args, a1, a2, i1, i2)? {
            return Ok(Value::Stream(out));
        }
        let outer = &materialize(ctx, args[0].clone())?;
        let inner = &materialize(ctx, args[1].clone())?;
        // Build on the inner side, keyed by the memcomparable encoding.
        // With several workers, each builds a table over a contiguous
        // inner chunk; merging in chunk order keeps every key's match
        // list in serial insertion order, so probe output is identical
        // to the single-threaded build.
        let workers = ctx.engine.workers();
        let par = workers > 1 && inner.len() + outer.len() >= crate::parallel::PAR_MIN_TUPLES;
        type Table = std::collections::HashMap<Vec<u8>, Vec<usize>>;
        let build = |base: usize, part: &[Value]| -> ExecResult<Table> {
            let mut t: Table = Table::new();
            for (j, tup) in part.iter().enumerate() {
                let key = crate::handles::encode_key("hashjoin", &tup.as_tuple("hashjoin")?[i2])?;
                t.entry(key).or_default().push(base + j);
            }
            Ok(t)
        };
        let mut table: Table = Table::new();
        let parts = if par {
            crate::parallel::par_chunks(inner, workers, build)
        } else {
            vec![build(0, inner)]
        };
        for p in parts {
            for (k, mut v) in p? {
                table.entry(k).or_default().append(&mut v);
            }
        }
        // Probe with the outer side, partitioned the same way.
        let probe = |_: usize, part: &[Value]| -> ExecResult<Vec<Value>> {
            let mut out = Vec::new();
            for o in part {
                let key = crate::handles::encode_key("hashjoin", &o.as_tuple("hashjoin")?[i1])?;
                if let Some(matches) = table.get(&key) {
                    for &m in matches {
                        out.push(concat_tuples(o, &inner[m], "hashjoin")?);
                    }
                }
            }
            Ok(out)
        };
        let parts = if par {
            crate::parallel::par_chunks(outer, workers, probe)
        } else {
            vec![probe(0, outer)]
        };
        let mut out = Vec::new();
        for p in parts {
            out.append(&mut p?);
        }
        ctx.engine.stats.record(
            "hashjoin",
            if par { workers } else { 1 },
            inner.len() + outer.len(),
            out.len(),
            0,
        );
        Ok(Value::Stream(out))
    });

    // search_join — the paper's generalized nested-loop join: the second
    // argument maps each outer tuple to a stream of matching inner tuples
    // (a scan, an index search, whatever the plan chose).
    e.add_op("search_join", |_, _, args| {
        let fun = args[1].as_closure("search_join")?.clone();
        Ok(cursor_value(Cursor::SearchJoin {
            outer: Box::new(into_cursor(args[0].clone())?),
            fun,
            current_outer: None,
            inner: std::collections::VecDeque::new(),
        }))
    });

    // head[n] — first n tuples (a practical extension).
    e.add_op("head", |_, _, args| {
        let n = args[1].as_int("head")?.max(0) as usize;
        let input = into_cursor(args[0].clone())?;
        Ok(cursor_value(Cursor::Head {
            input: Box::new(input),
            remaining: n,
        }))
    });

    // sortby[attr] — sort a stream by one attribute (a practical
    // extension; stable).
    e.add_op("sortby", |ctx, node, args| {
        let mut tuples = materialize(ctx, args[0].clone())?;
        let Value::Ident(attr) = &args[1] else {
            return Err(mismatch("sortby", "attribute name", &args[1].kind_name()));
        };
        let idx = crate::ops::relational::attr_index_of_node(node, attr)?;
        let mut err = None;
        tuples.sort_by(|a, b| {
            let (fa, fb) = match (a.as_tuple("sortby"), b.as_tuple("sortby")) {
                (Ok(x), Ok(y)) => (x, y),
                _ => return std::cmp::Ordering::Equal,
            };
            crate::value::compare("sortby", &fa[idx], &fb[idx]).unwrap_or_else(|e| {
                err.get_or_insert(e);
                std::cmp::Ordering::Equal
            })
        });
        match err {
            Some(e) => Err(e),
            None => Ok(Value::Stream(tuples)),
        }
    });

    // rdup — remove adjacent duplicates (use after sortby).
    e.add_op("rdup", |ctx, _, args| {
        let tuples = &materialize(ctx, args[0].clone())?;
        let mut out: Vec<Value> = Vec::with_capacity(tuples.len());
        for t in tuples {
            if out.last() != Some(t) {
                out.push(t.clone());
            }
        }
        Ok(Value::Stream(out))
    });

    // sum/min/max/avg[attr] — aggregates over one attribute.
    for agg in ["sum", "min", "max", "avg"] {
        e.add_op(agg, move |ctx, node, args| {
            let tuples = &materialize(ctx, args[0].clone())?;
            let Value::Ident(attr) = &args[1] else {
                return Err(mismatch(agg, "attribute name", &args[1].kind_name()));
            };
            let idx = crate::ops::relational::attr_index_of_first_arg(node, attr)?;
            // The scan beneath already ran parallel where possible (see
            // `materialize`); the fold itself stays serial so that
            // floating-point accumulation order — and thus the result —
            // is bit-identical to the legacy path.
            ctx.engine.stats.record(agg, 1, tuples.len(), 1, 0);
            aggregate(agg, tuples, idx)
        });
    }

    // consume — a stream used as a model relation result.
    e.add_op("consume", |ctx, _, args| {
        Ok(Value::Rel(materialize(ctx, args[0].clone())?))
    });
}

/// The co-partitioned hash join: both inputs are fresh partition scans
/// whose objects share one partitioning method, and the join attributes
/// are the routing attributes. Tuples with equal (encoded) join keys
/// route to the same partition index on both sides, so the join runs
/// partition-against-partition — one build + probe per pair, scheduled
/// across workers — with no global repartition. Output is grouped by
/// partition (outer scan order within each); hash join output order is
/// bag semantics either way.
///
/// Returns `Ok(None)` when the fast path does not apply; on `Some` both
/// input cursors are consumed, exactly as the materializing path would.
fn try_copart_hashjoin(
    ctx: &mut crate::engine::EvalCtx,
    args: &[Value],
    a1: &sos_core::Symbol,
    a2: &sos_core::Symbol,
    i1: usize,
    i2: usize,
) -> ExecResult<Option<Vec<Value>>> {
    let (Value::Cursor(ca), Value::Cursor(cb)) = (&args[0], &args[1]) else {
        return Ok(None);
    };
    // A self-join over one shared cursor stays serial (and the second
    // drain sees the stream already consumed, as ever).
    if Arc::ptr_eq(ca, cb) {
        return Ok(None);
    }
    let mut ga = ca.lock();
    let mut gb = cb.lock();
    let (ha, hb) = match (&*ga, &*gb) {
        (
            Cursor::PartScan {
                handle: ha,
                cursors: csa,
                idx: 0,
            },
            Cursor::PartScan {
                handle: hb,
                cursors: csb,
                idx: 0,
            },
        ) if csa.len() == ha.part_count() && csb.len() == hb.part_count() => {
            (ha.clone(), hb.clone())
        }
        _ => return Ok(None),
    };
    if ha.spec.method != hb.spec.method || ha.spec.attr != *a1 || hb.spec.attr != *a2 {
        return Ok(None);
    }
    // Both scans are consumed by this join, like any drained stream.
    *ga = Cursor::Mat(Default::default());
    *gb = Cursor::Mat(Default::default());
    drop(ga);
    drop(gb);
    let n = ha.part_count();
    let workers = ctx.engine.workers();
    let join_one = |i: usize| -> ExecResult<(Vec<Value>, usize)> {
        let inner = feed_value(&hb.parts[i])?;
        let outer = feed_value(&ha.parts[i])?;
        let mut table: std::collections::HashMap<Vec<u8>, Vec<usize>> = Default::default();
        for (j, tup) in inner.iter().enumerate() {
            let key = crate::handles::encode_key("hashjoin", &tup.as_tuple("hashjoin")?[i2])?;
            table.entry(key).or_default().push(j);
        }
        let mut out = Vec::new();
        for o in &outer {
            let key = crate::handles::encode_key("hashjoin", &o.as_tuple("hashjoin")?[i1])?;
            if let Some(matches) = table.get(&key) {
                for &m in matches {
                    out.push(concat_tuples(o, &inner[m], "hashjoin")?);
                }
            }
        }
        Ok((out, inner.len() + outer.len()))
    };
    let idxs: Vec<usize> = (0..n).collect();
    let par = workers > 1 && n >= 2;
    let chunks: Vec<ExecResult<(Vec<Value>, usize)>> = if par {
        crate::parallel::par_chunks(&idxs, workers, |_, part| {
            let mut out = Vec::new();
            let mut read = 0;
            for &i in part {
                let (rows, r) = join_one(i)?;
                out.extend(rows);
                read += r;
            }
            Ok((out, read))
        })
    } else {
        idxs.iter().map(|&i| join_one(i)).collect()
    };
    let mut out = Vec::new();
    let mut read = 0;
    for c in chunks {
        let (mut rows, r) = c?;
        out.append(&mut rows);
        read += r;
    }
    ctx.engine.stats.record(
        "hashjoin",
        if par { workers } else { 1 },
        read,
        out.len(),
        0,
    );
    ctx.engine.stats.record_partitions("hashjoin", n as u64, 0);
    Ok(Some(out))
}
