//! Index search operators (Section 4): B-tree range queries (with
//! halfrange variants standing in for the paper's `bottom`/`top`
//! constants) and LSD-tree point/overlap searches.

use crate::engine::ExecEngine;
use crate::error::mismatch;
use crate::handles::encode_key;
use crate::stream::Cursor;
use crate::value::Value;
use sos_storage::keys;

/// A pipelined range cursor over a clustered B-tree.
fn range_cursor(
    h: &std::sync::Arc<crate::handles::BTreeHandle>,
    lo: Vec<u8>,
    hi: Vec<u8>,
) -> Value {
    Value::Cursor(std::sync::Arc::new(parking_lot::Mutex::new(
        Cursor::btree_range(h.clone(), lo, hi),
    )))
}

pub fn register(e: &mut ExecEngine) {
    // range[lo, hi] — inclusive range query on a clustering B-tree.
    e.add_op("range", |_, _, args| {
        let Value::BTree(h) = &args[0] else {
            return Err(mismatch("range", "btree", &args[0].kind_name()));
        };
        let lo = encode_key("range", &args[1])?;
        let hi = encode_key("range", &args[2])?;
        Ok(range_cursor(h, lo, hi))
    });

    // range_from[lo] — halfrange `lo..top` (the paper's `top` constant).
    e.add_op("range_from", |_, _, args| {
        let Value::BTree(h) = &args[0] else {
            return Err(mismatch("range_from", "btree", &args[0].kind_name()));
        };
        let lo = encode_key("range_from", &args[1])?;
        Ok(range_cursor(h, lo, keys::top()))
    });

    // range_to[hi] — halfrange `bottom..hi` (the paper's `bottom`).
    e.add_op("range_to", |_, _, args| {
        let Value::BTree(h) = &args[0] else {
            return Err(mismatch("range_to", "btree", &args[0].kind_name()));
        };
        let hi = encode_key("range_to", &args[1])?;
        Ok(range_cursor(h, keys::bottom(), hi))
    });

    // exactmatch[k] — all tuples with key exactly k.
    e.add_op("exactmatch", |_, _, args| {
        let Value::BTree(h) = &args[0] else {
            return Err(mismatch("exactmatch", "btree", &args[0].kind_name()));
        };
        let k = encode_key("exactmatch", &args[1])?;
        Ok(range_cursor(h, k.clone(), k))
    });

    // prefixmatch[v] — multi-attribute B-tree: all tuples whose first
    // key attribute equals v (Section 4's "query operator specifying
    // values for a prefix of the attributes used for indexing").
    e.add_op("prefixmatch", |_, _, args| {
        let Value::BTree(h) = &args[0] else {
            return Err(mismatch("prefixmatch", "mbtree", &args[0].kind_name()));
        };
        let prefix = encode_key("prefixmatch", &args[1])?;
        let mut hi = prefix.clone();
        hi.extend_from_slice(&keys::top());
        Ok(range_cursor(h, prefix, hi))
    });

    // prefixrange[v, lo, hi] — first attribute fixed, second attribute
    // in an inclusive range.
    e.add_op("prefixrange", |_, _, args| {
        let Value::BTree(h) = &args[0] else {
            return Err(mismatch("prefixrange", "mbtree", &args[0].kind_name()));
        };
        let prefix = encode_key("prefixrange", &args[1])?;
        let mut lo = prefix.clone();
        lo.extend_from_slice(&encode_key("prefixrange", &args[2])?);
        let mut hi = prefix;
        hi.extend_from_slice(&encode_key("prefixrange", &args[3])?);
        hi.extend_from_slice(&keys::top());
        Ok(range_cursor(h, lo, hi))
    });

    // point_search — all tuples whose indexed rectangle contains the point.
    e.add_op("point_search", |_, _, args| {
        let Value::LsdTree(h) = &args[0] else {
            return Err(mismatch("point_search", "lsdtree", &args[0].kind_name()));
        };
        let Value::Point(p) = &args[1] else {
            return Err(mismatch("point_search", "point", &args[1].kind_name()));
        };
        let mut out = Vec::new();
        for entry in h.tree.point_search(*p)? {
            out.push(Value::decode_tuple(&entry.payload)?);
        }
        Ok(Value::Stream(out))
    });

    // overlap_search — all tuples whose rectangle overlaps the query rect.
    e.add_op("overlap_search", |_, _, args| {
        let Value::LsdTree(h) = &args[0] else {
            return Err(mismatch("overlap_search", "lsdtree", &args[0].kind_name()));
        };
        let Value::Rect(r) = &args[1] else {
            return Err(mismatch("overlap_search", "rect", &args[1].kind_name()));
        };
        let mut out = Vec::new();
        for entry in h.tree.overlap_search(*r)? {
            out.push(Value::decode_tuple(&entry.payload)?);
        }
        Ok(Value::Stream(out))
    });
}
