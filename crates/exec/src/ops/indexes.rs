//! Index search operators (Section 4): B-tree range queries (with
//! halfrange variants standing in for the paper's `bottom`/`top`
//! constants) and LSD-tree point/overlap searches.
//!
//! Every operator also accepts a *partitioned* index (a `Value::Part`
//! whose partitions are per-partition trees): the probe fans out to the
//! partitions, pruning the ones the partitioning spec proves cannot
//! hold matches — equality and range conditions on the routing
//! attribute for B-trees, root-cover containment/overlap for LSD-trees.
//! Pruned counts land in `ExecStats` for EXPLAIN ANALYZE.

use crate::engine::ExecEngine;
use crate::error::{mismatch, ExecError, ExecResult};
use crate::handles::{encode_key, KeyExtractor};
use crate::partition::{KeyCond, PartHandle};
use crate::stream::Cursor;
use crate::value::Value;
use sos_storage::keys;
use std::sync::Arc;

/// A pipelined range cursor over a clustered B-tree.
fn range_cursor(
    h: &std::sync::Arc<crate::handles::BTreeHandle>,
    lo: Vec<u8>,
    hi: Vec<u8>,
) -> Value {
    Value::Cursor(std::sync::Arc::new(parking_lot::Mutex::new(
        Cursor::btree_range(h.clone(), lo, hi),
    )))
}

/// Whether key-level pruning is sound for a partitioned B-tree: the
/// routing attribute must be what the trees index. With `prefix_ok` the
/// probe fixes only the first key attribute, so a composite key whose
/// first attribute is the routing attribute also qualifies.
fn key_aligned(h: &PartHandle, prefix_ok: bool) -> bool {
    let Some(attr_idx) = h.attr_idx else {
        return false;
    };
    h.parts.iter().all(|p| match p {
        Value::BTree(bh) => match &bh.key {
            KeyExtractor::Attr(i) => *i == attr_idx,
            KeyExtractor::Attrs(is) => prefix_ok && is.first() == Some(&attr_idx),
            KeyExtractor::Fun(_) => false,
        },
        _ => false,
    })
}

/// The same range probe against every surviving partition of a
/// partitioned B-tree, as a partition scan over pipelined range
/// cursors (so downstream partition-parallel drains still apply).
fn part_range_cursor(
    op: &'static str,
    engine: &ExecEngine,
    h: &Arc<PartHandle>,
    mask: Vec<bool>,
    lo: Vec<u8>,
    hi: Vec<u8>,
) -> ExecResult<Value> {
    let total = h.part_count();
    let mut cursors = Vec::new();
    for (p, keep) in h.parts.iter().zip(&mask) {
        if !*keep {
            continue;
        }
        let Value::BTree(bh) = p else {
            return Err(mismatch(op, "btree", &p.kind_name()));
        };
        cursors.push(Cursor::btree_range(bh.clone(), lo.clone(), hi.clone()));
    }
    engine
        .stats
        .record_partitions(op, total as u64, (total - cursors.len()) as u64);
    Ok(Value::Cursor(Arc::new(parking_lot::Mutex::new(
        Cursor::PartScan {
            handle: h.clone(),
            cursors,
            idx: 0,
        },
    ))))
}

/// All-true mask (no pruning applies).
fn keep_all(h: &PartHandle) -> Vec<bool> {
    vec![true; h.part_count()]
}

pub fn register(e: &mut ExecEngine) {
    // range[lo, hi] — inclusive range query on a clustering B-tree.
    e.add_op("range", |ctx, _, args| {
        let lo = encode_key("range", &args[1])?;
        let hi = encode_key("range", &args[2])?;
        match &args[0] {
            Value::BTree(h) => Ok(range_cursor(h, lo, hi)),
            Value::Part(h) => {
                let mask = if key_aligned(h, false) {
                    h.range_mask(Some(&args[1]), Some(&args[2]))
                } else {
                    keep_all(h)
                };
                part_range_cursor("range", ctx.engine, h, mask, lo, hi)
            }
            other => Err(mismatch("range", "btree", &other.kind_name())),
        }
    });

    // range_from[lo] — halfrange `lo..top` (the paper's `top` constant).
    e.add_op("range_from", |ctx, _, args| {
        let lo = encode_key("range_from", &args[1])?;
        match &args[0] {
            Value::BTree(h) => Ok(range_cursor(h, lo, keys::top())),
            Value::Part(h) => {
                let mask = if key_aligned(h, false) {
                    h.range_mask(Some(&args[1]), None)
                } else {
                    keep_all(h)
                };
                part_range_cursor("range_from", ctx.engine, h, mask, lo, keys::top())
            }
            other => Err(mismatch("range_from", "btree", &other.kind_name())),
        }
    });

    // range_to[hi] — halfrange `bottom..hi` (the paper's `bottom`).
    e.add_op("range_to", |ctx, _, args| {
        let hi = encode_key("range_to", &args[1])?;
        match &args[0] {
            Value::BTree(h) => Ok(range_cursor(h, keys::bottom(), hi)),
            Value::Part(h) => {
                let mask = if key_aligned(h, false) {
                    h.range_mask(None, Some(&args[1]))
                } else {
                    keep_all(h)
                };
                part_range_cursor("range_to", ctx.engine, h, mask, keys::bottom(), hi)
            }
            other => Err(mismatch("range_to", "btree", &other.kind_name())),
        }
    });

    // exactmatch[k] — all tuples with key exactly k.
    e.add_op("exactmatch", |ctx, _, args| {
        let k = encode_key("exactmatch", &args[1])?;
        match &args[0] {
            Value::BTree(h) => Ok(range_cursor(h, k.clone(), k)),
            Value::Part(h) => {
                let mask = if key_aligned(h, false) {
                    h.candidate_mask(&[KeyCond::Eq(args[1].clone())])
                } else {
                    keep_all(h)
                };
                part_range_cursor("exactmatch", ctx.engine, h, mask, k.clone(), k)
            }
            other => Err(mismatch("exactmatch", "btree", &other.kind_name())),
        }
    });

    // prefixmatch[v] — multi-attribute B-tree: all tuples whose first
    // key attribute equals v (Section 4's "query operator specifying
    // values for a prefix of the attributes used for indexing").
    e.add_op("prefixmatch", |ctx, _, args| {
        let prefix = encode_key("prefixmatch", &args[1])?;
        let mut hi = prefix.clone();
        hi.extend_from_slice(&keys::top());
        match &args[0] {
            Value::BTree(h) => Ok(range_cursor(h, prefix, hi)),
            Value::Part(h) => {
                // The probe fixes the first key attribute, so equality
                // pruning applies when that attribute routes.
                let mask = if key_aligned(h, true) {
                    h.candidate_mask(&[KeyCond::Eq(args[1].clone())])
                } else {
                    keep_all(h)
                };
                part_range_cursor("prefixmatch", ctx.engine, h, mask, prefix, hi)
            }
            other => Err(mismatch("prefixmatch", "mbtree", &other.kind_name())),
        }
    });

    // prefixrange[v, lo, hi] — first attribute fixed, second attribute
    // in an inclusive range.
    e.add_op("prefixrange", |ctx, _, args| {
        let prefix = encode_key("prefixrange", &args[1])?;
        let mut lo = prefix.clone();
        lo.extend_from_slice(&encode_key("prefixrange", &args[2])?);
        let mut hi = prefix;
        hi.extend_from_slice(&encode_key("prefixrange", &args[3])?);
        hi.extend_from_slice(&keys::top());
        match &args[0] {
            Value::BTree(h) => Ok(range_cursor(h, lo, hi)),
            Value::Part(h) => {
                let mask = if key_aligned(h, true) {
                    h.candidate_mask(&[KeyCond::Eq(args[1].clone())])
                } else {
                    keep_all(h)
                };
                part_range_cursor("prefixrange", ctx.engine, h, mask, lo, hi)
            }
            other => Err(mismatch("prefixrange", "mbtree", &other.kind_name())),
        }
    });

    // point_search — all tuples whose indexed rectangle contains the point.
    e.add_op("point_search", |ctx, _, args| {
        let Value::Point(p) = &args[1] else {
            return Err(mismatch("point_search", "point", &args[1].kind_name()));
        };
        match &args[0] {
            Value::LsdTree(h) => {
                let mut out = Vec::new();
                for entry in h.tree.point_search(*p)? {
                    out.push(Value::decode_tuple(&entry.payload)?);
                }
                Ok(Value::Stream(out))
            }
            Value::Part(h) => {
                let mask = h.cover_mask(|c| c.contains_point(p));
                let out = part_spatial_search("point_search", ctx.engine, h, &mask, |t| {
                    t.point_search(*p)
                })?;
                Ok(Value::Stream(out))
            }
            other => Err(mismatch("point_search", "lsdtree", &other.kind_name())),
        }
    });

    // overlap_search — all tuples whose rectangle overlaps the query rect.
    e.add_op("overlap_search", |ctx, _, args| {
        let Value::Rect(r) = &args[1] else {
            return Err(mismatch("overlap_search", "rect", &args[1].kind_name()));
        };
        match &args[0] {
            Value::LsdTree(h) => {
                let mut out = Vec::new();
                for entry in h.tree.overlap_search(*r)? {
                    out.push(Value::decode_tuple(&entry.payload)?);
                }
                Ok(Value::Stream(out))
            }
            Value::Part(h) => {
                let mask = h.cover_mask(|c| c.intersects(r));
                let out = part_spatial_search("overlap_search", ctx.engine, h, &mask, |t| {
                    t.overlap_search(*r)
                })?;
                Ok(Value::Stream(out))
            }
            other => Err(mismatch("overlap_search", "lsdtree", &other.kind_name())),
        }
    });
}

/// The same spatial probe against every surviving LSD-tree partition,
/// concatenated in partition order.
fn part_spatial_search(
    op: &'static str,
    engine: &ExecEngine,
    h: &Arc<PartHandle>,
    mask: &[bool],
    search: impl Fn(
        &sos_storage::lsdtree::LsdTree,
    ) -> sos_storage::StorageResult<Vec<sos_storage::lsdtree::Entry>>,
) -> ExecResult<Vec<Value>> {
    let total = h.part_count() as u64;
    let mut pruned = 0u64;
    let mut out = Vec::new();
    for (p, keep) in h.parts.iter().zip(mask) {
        if !*keep {
            pruned += 1;
            continue;
        }
        let Value::LsdTree(lh) = p else {
            return Err(mismatch(op, "lsdtree", &p.kind_name()));
        };
        for entry in search(&lh.tree).map_err(ExecError::Storage)? {
            out.push(Value::decode_tuple(&entry.payload)?);
        }
    }
    engine.stats.record_partitions(op, total, pruned);
    Ok(out)
}
