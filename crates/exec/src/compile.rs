//! The expression compiler: checked [`TypedExpr`] trees lowered to a
//! flat register bytecode.
//!
//! The paper's second-order signature separates specification from
//! execution; since the checker resolves every type before a term
//! reaches the engine, a predicate like `k mod 7 = 0` can be lowered to
//! monomorphic code with no interpreter frames. A [`CompiledFun`] is
//! such a lowering of a [`Closure`] body: a postorder instruction
//! sequence over a flat register file, evaluated once per tuple without
//! environment pushes, name lookups, operator-table probes, or per-node
//! argument vectors.
//!
//! Two tiers:
//!
//! * **Tier A (register bytecode)** — any pure body compiles: constants,
//!   parameters, captured variables (frozen as constants — a closure's
//!   captured environment is immutable), attribute access, and the
//!   atomic operators of [`crate::ops::basic`]. Arithmetic and
//!   comparison opcodes carry integer fast paths and delegate every
//!   other operand shape to [`basic::eval_atomic`] — the same single
//!   implementation the interpreter dispatches to — so a compiled
//!   program is extensionally equal to the interpreted closure *by
//!   construction*, including error text and error order (evaluation is
//!   strict in both: argument subterms evaluate left-to-right, `and` /
//!   `or` do not short-circuit).
//! * **Tier B (columnar kernel)** — when the whole body is int/bool
//!   typed (int field loads and constants, checked arithmetic, integer
//!   `div`/`mod`, comparisons, logic), the program additionally lowers
//!   to a columnar form executed over unboxed `i64` / `bool` vectors for
//!   a whole batch: the roadmap's "tight loop, no frames". On *any*
//!   irregularity — overflow, division by zero, a non-int value in an
//!   int-typed field — the kernel bails out and the batch re-runs
//!   row-by-row through tier A, which reproduces the exact
//!   first-error-in-row-order behavior of the interpreter (tier A is
//!   pure, so the abandoned columnar attempt has no side effects).
//!
//! Anything outside the pure subset — object references, nested
//! function values, non-atomic or overridden operators, unbound
//! variables — refuses to compile with a named [`Fallback`] reason; the
//! caller keeps the interpreter path and the engine counts the fallback
//! (surfaced through `.metrics` and EXPLAIN ANALYZE).
//!
//! Every lowered program additionally passes the **bytecode verifier**
//! ([`CompiledFun::verify`]) before it is accepted: a static pass that
//! proves single assignment, read-after-write, in-bounds register and
//! input-slot indices, and opcode-kind consistency — the invariants the
//! dirty-register-file executor and the split-borrowing columnar kernel
//! rely on. A program that fails verification is rejected with
//! [`Fallback::Rejected`] (`verifier-reject` in the compile counters)
//! and the interpreter keeps the closure.
//!
//! `tests/prop_compiled_vs_interp.rs` checks compiled ≡ interpreted
//! differentially over random expressions, batch widths, and worker
//! counts.

use crate::engine::ExecEngine;
use crate::error::{ExecError, ExecResult};
use crate::handles::attr_index;
use crate::ops::basic;
use crate::value::{Closure, Value};
use sos_core::typed::{TypedExpr, TypedNode};
use sos_core::{DataType, Symbol};
use std::cell::RefCell;
use std::sync::Arc;

/// Why a closure could not be compiled. [`Fallback::reason`] is the
/// stable key recorded in [`crate::stats::CompileStats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fallback {
    /// The body reads a database object (needs the store).
    Object(Symbol),
    /// The body builds or applies a function value (re-enters the
    /// interpreter).
    Function,
    /// An operator that is not an atomic built-in (or whose built-in
    /// implementation was overridden via [`ExecEngine::add_op`]).
    ImpureOp(Symbol),
    /// A variable bound neither by the parameters nor the captured
    /// environment; the interpreter owns the error.
    UnboundVar(Symbol),
    /// The lowered program failed the bytecode verifier (see
    /// [`CompiledFun::verify`]); the payload is the verifier's finding.
    /// Under a correct lowering this is unreachable, but the verifier
    /// keeps the single-assignment invariants the executor relies on
    /// checked rather than assumed.
    Rejected(String),
}

impl Fallback {
    /// The stable counter key for this reason.
    pub fn reason(&self) -> &'static str {
        match self {
            Fallback::Object(_) => "object-ref",
            Fallback::Function => "nested-function",
            Fallback::ImpureOp(_) => "impure-op",
            Fallback::UnboundVar(_) => "unbound-variable",
            Fallback::Rejected(_) => "verifier-reject",
        }
    }
}

/// Binary opcodes with integer fast paths. Every other operand shape
/// delegates to [`basic::eval_atomic`], so semantics (promotion rules,
/// error text) stay the interpreter's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BinOp {
    Add,
    Sub,
    Mul,
    DivInt,
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinOp {
    fn of(op: &str) -> Option<BinOp> {
        Some(match op {
            "+" => BinOp::Add,
            "-" => BinOp::Sub,
            "*" => BinOp::Mul,
            "div" => BinOp::DivInt,
            "mod" => BinOp::Mod,
            "=" => BinOp::Eq,
            "!=" => BinOp::Ne,
            "<" => BinOp::Lt,
            "<=" => BinOp::Le,
            ">" => BinOp::Gt,
            ">=" => BinOp::Ge,
            "and" => BinOp::And,
            "or" => BinOp::Or,
            _ => return None,
        })
    }

    fn name(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::DivInt => "div",
            BinOp::Mod => "mod",
            BinOp::Eq => "=",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "and",
            BinOp::Or => "or",
        }
    }
}

/// One bytecode instruction. Registers are allocated in postorder (SSA:
/// each written exactly once per evaluation), so a dirty register file
/// can be reused across rows without clearing.
#[derive(Debug)]
enum Inst {
    /// Load a constant (source constants and frozen captured values).
    Const(usize, Value),
    /// Load the argument in input slot `.1`.
    Input(usize, usize),
    /// Tuple attribute access: `dst, src, field index, attribute name`
    /// (the name only feeds the error message).
    Field(usize, usize, usize, Symbol),
    /// Binary atomic operator: `dst, op, a, b`.
    Bin(usize, BinOp, usize, usize),
    /// Boolean negation: `dst, a`.
    Not(usize, usize),
    /// Any other atomic operator, via [`basic::eval_atomic`]:
    /// `dst, name, argument registers`.
    Atomic(usize, &'static str, Box<[usize]>),
    /// `<a, b, ...>` list construction.
    MakeList(usize, Box<[usize]>),
    /// `(a, b)` product construction.
    MakePair(usize, Box<[usize]>),
}

// ---------------------------------------------------------------------
// Tier B: the columnar int/bool kernel.
// ---------------------------------------------------------------------

/// A columnar register: an `i64` column or a `bool` column.
#[derive(Debug, Clone, Copy)]
enum ColReg {
    I(usize),
    B(usize),
}

#[derive(Debug)]
enum ColInst {
    /// Gather an int-typed field from every tuple of the batch.
    GatherInt {
        dst: usize,
        field: usize,
    },
    /// Gather a bool-typed field from every tuple of the batch.
    GatherBool {
        dst: usize,
        field: usize,
    },
    BroadcastInt {
        dst: usize,
        v: i64,
    },
    BroadcastBool {
        dst: usize,
        v: bool,
    },
    /// `+ - * div mod` over two int columns (checked; errors bail).
    Arith {
        op: BinOp,
        dst: usize,
        a: usize,
        b: usize,
    },
    /// `= != < <= > >=` over two int columns into a bool column.
    Cmp {
        op: BinOp,
        dst: usize,
        a: usize,
        b: usize,
    },
    /// Strict logic over bool columns.
    And {
        dst: usize,
        a: usize,
        b: usize,
    },
    Or {
        dst: usize,
        a: usize,
        b: usize,
    },
    Not {
        dst: usize,
        a: usize,
    },
}

/// The whole-batch outcome of the columnar kernel.
enum ColOutcome {
    Ints(Vec<i64>),
    Bools(Vec<bool>),
    /// Something irregular (overflow, div by zero, non-int field):
    /// re-run the batch row-by-row through tier A.
    Bail,
}

#[derive(Debug)]
struct ColProgram {
    insts: Vec<ColInst>,
    n_int: usize,
    n_bool: usize,
    out: ColReg,
}

impl ColProgram {
    // Index loops are deliberate: each arm reads and writes different
    // rows of one `Vec<Vec<_>>`, which iterator zips can't split-borrow.
    #[allow(clippy::needless_range_loop)]
    fn run(&self, batch: &[Value]) -> ColOutcome {
        let n = batch.len();
        let mut ints: Vec<Vec<i64>> = (0..self.n_int).map(|_| vec![0; n]).collect();
        let mut bools: Vec<Vec<bool>> = (0..self.n_bool).map(|_| vec![false; n]).collect();
        for inst in &self.insts {
            match inst {
                ColInst::GatherInt { dst, field } => {
                    let col = &mut ints[*dst];
                    for (r, t) in batch.iter().enumerate() {
                        let Value::Tuple(fs) = t else {
                            return ColOutcome::Bail;
                        };
                        match fs.get(*field) {
                            Some(Value::Int(v)) => col[r] = *v,
                            _ => return ColOutcome::Bail,
                        }
                    }
                }
                ColInst::GatherBool { dst, field } => {
                    let col = &mut bools[*dst];
                    for (r, t) in batch.iter().enumerate() {
                        let Value::Tuple(fs) = t else {
                            return ColOutcome::Bail;
                        };
                        match fs.get(*field) {
                            Some(Value::Bool(v)) => col[r] = *v,
                            _ => return ColOutcome::Bail,
                        }
                    }
                }
                ColInst::BroadcastInt { dst, v } => ints[*dst].fill(*v),
                ColInst::BroadcastBool { dst, v } => bools[*dst].fill(*v),
                ColInst::Arith { op, dst, a, b } => {
                    // Split-borrow via raw index juggling: dst is always a
                    // fresh register (postorder SSA), never equal to a/b.
                    for r in 0..n {
                        let (x, y) = (ints[*a][r], ints[*b][r]);
                        let v = match op {
                            BinOp::Add => x.checked_add(y),
                            BinOp::Sub => x.checked_sub(y),
                            BinOp::Mul => x.checked_mul(y),
                            BinOp::DivInt => (y != 0).then(|| x.div_euclid(y)),
                            BinOp::Mod => (y != 0).then(|| x.rem_euclid(y)),
                            _ => unreachable!("non-arith op in Arith"),
                        };
                        match v {
                            Some(v) => ints[*dst][r] = v,
                            None => return ColOutcome::Bail,
                        }
                    }
                }
                ColInst::Cmp { op, dst, a, b } => {
                    for r in 0..n {
                        let (x, y) = (ints[*a][r], ints[*b][r]);
                        bools[*dst][r] = match op {
                            BinOp::Eq => x == y,
                            BinOp::Ne => x != y,
                            BinOp::Lt => x < y,
                            BinOp::Le => x <= y,
                            BinOp::Gt => x > y,
                            BinOp::Ge => x >= y,
                            _ => unreachable!("non-compare op in Cmp"),
                        };
                    }
                }
                ColInst::And { dst, a, b } => {
                    for r in 0..n {
                        bools[*dst][r] = bools[*a][r] && bools[*b][r];
                    }
                }
                ColInst::Or { dst, a, b } => {
                    for r in 0..n {
                        bools[*dst][r] = bools[*a][r] || bools[*b][r];
                    }
                }
                ColInst::Not { dst, a } => {
                    for r in 0..n {
                        bools[*dst][r] = !bools[*a][r];
                    }
                }
            }
        }
        match self.out {
            ColReg::I(i) => ColOutcome::Ints(std::mem::take(&mut ints[i])),
            ColReg::B(i) => ColOutcome::Bools(std::mem::take(&mut bools[i])),
        }
    }

    /// Verify the columnar kernel: the same single-assignment and
    /// read-after-write discipline as tier A, per register file, plus
    /// opcode-kind consistency (`Arith` must carry an arithmetic opcode
    /// and `Cmp` a comparison — `run` panics otherwise).
    fn verify(&self) -> Result<(), String> {
        let mut ints = vec![false; self.n_int];
        let mut bools = vec![false; self.n_bool];
        for (pc, inst) in self.insts.iter().enumerate() {
            match inst {
                ColInst::GatherInt { dst, .. } | ColInst::BroadcastInt { dst, .. } => {
                    reg_write(&mut ints, *dst, pc)?;
                }
                ColInst::GatherBool { dst, .. } | ColInst::BroadcastBool { dst, .. } => {
                    reg_write(&mut bools, *dst, pc)?;
                }
                ColInst::Arith { op, dst, a, b } => {
                    if !matches!(
                        op,
                        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::DivInt | BinOp::Mod
                    ) {
                        return Err(format!(
                            "columnar inst {pc}: `{}` is not an arithmetic opcode",
                            op.name()
                        ));
                    }
                    reg_read(&ints, *a, pc)?;
                    reg_read(&ints, *b, pc)?;
                    reg_write(&mut ints, *dst, pc)?;
                }
                ColInst::Cmp { op, dst, a, b } => {
                    if !matches!(
                        op,
                        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
                    ) {
                        return Err(format!(
                            "columnar inst {pc}: `{}` is not a comparison opcode",
                            op.name()
                        ));
                    }
                    reg_read(&ints, *a, pc)?;
                    reg_read(&ints, *b, pc)?;
                    reg_write(&mut bools, *dst, pc)?;
                }
                ColInst::And { dst, a, b } | ColInst::Or { dst, a, b } => {
                    reg_read(&bools, *a, pc)?;
                    reg_read(&bools, *b, pc)?;
                    reg_write(&mut bools, *dst, pc)?;
                }
                ColInst::Not { dst, a } => {
                    reg_read(&bools, *a, pc)?;
                    reg_write(&mut bools, *dst, pc)?;
                }
            }
        }
        let (init, i) = match self.out {
            ColReg::I(i) => (&ints, i),
            ColReg::B(i) => (&bools, i),
        };
        reg_read(init, i, self.insts.len()).map_err(|e| format!("columnar output register: {e}"))
    }
}

/// Shared verifier step: a read of register `r` at instruction `pc` is
/// legal when `r` is in bounds and already written.
fn reg_read(init: &[bool], r: usize, pc: usize) -> Result<(), String> {
    if r >= init.len() {
        Err(format!(
            "inst {pc} reads out-of-bounds register r{r} (register file holds {})",
            init.len()
        ))
    } else if !init[r] {
        Err(format!(
            "inst {pc} reads register r{r} before any instruction writes it"
        ))
    } else {
        Ok(())
    }
}

/// Shared verifier step: a write of register `r` at instruction `pc` is
/// legal when `r` is in bounds and not yet written (single assignment).
fn reg_write(init: &mut [bool], r: usize, pc: usize) -> Result<(), String> {
    if r >= init.len() {
        Err(format!(
            "inst {pc} writes out-of-bounds register r{r} (register file holds {})",
            init.len()
        ))
    } else if init[r] {
        Err(format!(
            "inst {pc} writes register r{r} twice (programs are single-assignment)"
        ))
    } else {
        init[r] = true;
        Ok(())
    }
}

// ---------------------------------------------------------------------
// The compiled function.
// ---------------------------------------------------------------------

thread_local! {
    /// Shared register scratch: compiled programs never nest (the pure
    /// subset has no function calls), so one register file per thread
    /// suffices and per-row evaluation allocates nothing.
    static REGS: RefCell<Vec<Value>> = const { RefCell::new(Vec::new()) };
}

/// A closure lowered to register bytecode (and, when the body is
/// int/bool typed throughout, a columnar batch kernel).
#[derive(Debug)]
pub struct CompiledFun {
    arity: usize,
    insts: Box<[Inst]>,
    out: usize,
    n_regs: usize,
    col: Option<ColProgram>,
}

impl CompiledFun {
    /// Lower `closure`'s body, or report why the interpreter must keep
    /// it. Captured variables are frozen into the program as constants
    /// (a closure's captured environment never changes after capture).
    pub fn compile(engine: &ExecEngine, closure: &Closure) -> Result<CompiledFun, Fallback> {
        let mut c = Lowering {
            engine,
            params: &closure.params,
            captured: &closure.captured,
            insts: Vec::new(),
            next: 0,
        };
        let out = c.lower(&closure.body)?;
        let n_regs = c.next;
        let insts = c.insts.into_boxed_slice();
        let col = lower_columnar(engine, closure);
        let cf = CompiledFun {
            arity: closure.params.len(),
            insts,
            out,
            n_regs,
            col,
        };
        cf.verify().map_err(Fallback::Rejected)?;
        Ok(cf)
    }

    /// The bytecode verifier: a static pass over the lowered program,
    /// run once at compile time before the program is ever executed.
    ///
    /// The executor reuses a dirty per-thread register file without
    /// clearing and the columnar kernel split-borrows its column
    /// vectors; both are sound only if programs are single-assignment
    /// and every read happens after the (unique) write. The verifier
    /// checks those invariants instead of assuming them:
    ///
    /// * every register is written exactly once, read only afterwards,
    ///   and in bounds for its register file;
    /// * input slots are within the closure's arity;
    /// * `Atomic` names a listed atomic operator, `Arith`/`Cmp` carry
    ///   an opcode of the right kind (the executor would panic on a
    ///   mismatch);
    /// * the output register is defined.
    ///
    /// A rejected program falls back to the interpreter and counts as
    /// `verifier-reject` in the compile statistics.
    pub fn verify(&self) -> Result<(), String> {
        let mut init = vec![false; self.n_regs];
        for (pc, inst) in self.insts.iter().enumerate() {
            match inst {
                Inst::Const(dst, _) => reg_write(&mut init, *dst, pc)?,
                Inst::Input(dst, slot) => {
                    if *slot >= self.arity {
                        return Err(format!(
                            "inst {pc} reads input slot {slot}, but the function \
                             takes {} argument(s)",
                            self.arity
                        ));
                    }
                    reg_write(&mut init, *dst, pc)?;
                }
                Inst::Field(dst, src, _, _) => {
                    reg_read(&init, *src, pc)?;
                    reg_write(&mut init, *dst, pc)?;
                }
                Inst::Bin(dst, _, a, b) => {
                    reg_read(&init, *a, pc)?;
                    reg_read(&init, *b, pc)?;
                    reg_write(&mut init, *dst, pc)?;
                }
                Inst::Not(dst, a) => {
                    reg_read(&init, *a, pc)?;
                    reg_write(&mut init, *dst, pc)?;
                }
                Inst::Atomic(dst, name, arg_regs) => {
                    if !basic::ATOMIC_OPS.contains(name) {
                        return Err(format!(
                            "inst {pc} calls `{name}`, which is not an atomic operator"
                        ));
                    }
                    for r in arg_regs.iter() {
                        reg_read(&init, *r, pc)?;
                    }
                    reg_write(&mut init, *dst, pc)?;
                }
                Inst::MakeList(dst, arg_regs) | Inst::MakePair(dst, arg_regs) => {
                    for r in arg_regs.iter() {
                        reg_read(&init, *r, pc)?;
                    }
                    reg_write(&mut init, *dst, pc)?;
                }
            }
        }
        reg_read(&init, self.out, self.insts.len()).map_err(|e| format!("output register: {e}"))?;
        if let Some(col) = &self.col {
            col.verify()?;
        }
        Ok(())
    }

    /// Whether the tier-B columnar kernel applies (observable for tests).
    pub fn is_columnar(&self) -> bool {
        self.col.is_some()
    }

    /// Apply to argument values: tier A, one row. Arity errors match
    /// `EvalCtx::call_bound` exactly.
    pub fn call(&self, args: &[Value]) -> ExecResult<Value> {
        if self.arity != args.len() {
            return Err(ExecError::Other(format!(
                "function expects {} argument(s), got {}",
                self.arity,
                args.len()
            )));
        }
        REGS.with(|cell| {
            let mut regs = cell.borrow_mut();
            if regs.len() < self.n_regs {
                regs.resize(self.n_regs, Value::Undefined);
            }
            self.exec(&mut regs, args)
        })
    }

    /// Evaluate as a predicate over a whole batch, returning the keep
    /// mask. Columnar when possible; otherwise row-by-row, surfacing the
    /// first error in row order (the interpreter's order).
    pub fn eval_mask(&self, batch: &[Value], op: &'static str) -> ExecResult<Vec<bool>> {
        if let Some(col) = &self.col {
            if let ColOutcome::Bools(mask) = col.run(batch) {
                return Ok(mask);
            }
        }
        let mut mask = Vec::with_capacity(batch.len());
        for t in batch {
            mask.push(self.call(std::slice::from_ref(t))?.as_bool(op)?);
        }
        Ok(mask)
    }

    /// Evaluate over a whole batch, returning one value per row.
    /// Columnar when possible; otherwise row-by-row.
    pub fn eval_column(&self, batch: &[Value]) -> ExecResult<Vec<Value>> {
        if let Some(vs) = self.try_columnar(batch) {
            return Ok(vs);
        }
        batch
            .iter()
            .map(|t| self.call(std::slice::from_ref(t)))
            .collect()
    }

    /// Run the tier-B kernel alone: `Some(values)` only when the whole
    /// batch evaluated columnar with no bail-out. Callers that interleave
    /// the per-row result with other fallible work (`replace` rebuilds
    /// the tuple per row) use this so that on `None` they can fall back
    /// to fully interleaved per-row evaluation, keeping the
    /// interpreter's error order exactly.
    pub fn try_columnar(&self, batch: &[Value]) -> Option<Vec<Value>> {
        match self.col.as_ref()?.run(batch) {
            ColOutcome::Ints(vs) => Some(vs.into_iter().map(Value::Int).collect()),
            ColOutcome::Bools(vs) => Some(vs.into_iter().map(Value::Bool).collect()),
            ColOutcome::Bail => None,
        }
    }

    fn exec(&self, regs: &mut [Value], args: &[Value]) -> ExecResult<Value> {
        for inst in self.insts.iter() {
            match inst {
                Inst::Const(dst, v) => regs[*dst] = v.clone(),
                Inst::Input(dst, slot) => regs[*dst] = args[*slot].clone(),
                Inst::Field(dst, src, idx, attr) => {
                    let tuple = regs[*src].as_tuple(attr.as_str())?;
                    regs[*dst] = tuple.get(*idx).cloned().ok_or_else(|| {
                        ExecError::Other(format!("tuple too short for attribute `{attr}`"))
                    })?;
                }
                Inst::Bin(dst, op, a, b) => {
                    regs[*dst] = bin_op(*op, &regs[*a], &regs[*b])?;
                }
                Inst::Not(dst, a) => {
                    regs[*dst] = match &regs[*a] {
                        Value::Bool(b) => Value::Bool(!b),
                        other => basic::eval_atomic("not", std::slice::from_ref(other))
                            .expect("not is atomic")?,
                    };
                }
                Inst::Atomic(dst, name, arg_regs) => {
                    let argv: Vec<Value> = arg_regs.iter().map(|&r| regs[r].clone()).collect();
                    regs[*dst] = basic::eval_atomic(name, &argv).expect("op is atomic")?;
                }
                Inst::MakeList(dst, arg_regs) => {
                    regs[*dst] = Value::List(arg_regs.iter().map(|&r| regs[r].clone()).collect());
                }
                Inst::MakePair(dst, arg_regs) => {
                    regs[*dst] = Value::Pair(arg_regs.iter().map(|&r| regs[r].clone()).collect());
                }
            }
        }
        Ok(std::mem::replace(&mut regs[self.out], Value::Undefined))
    }
}

/// One binary opcode: integer (and boolean) fast paths, everything else
/// through the shared atomic implementation for identical promotion and
/// identical errors.
fn bin_op(op: BinOp, a: &Value, b: &Value) -> ExecResult<Value> {
    match (op, a, b) {
        (BinOp::Add, Value::Int(x), Value::Int(y)) => x
            .checked_add(*y)
            .map(Value::Int)
            .ok_or_else(|| ExecError::Arithmetic("integer overflow in `+`".into())),
        (BinOp::Sub, Value::Int(x), Value::Int(y)) => x
            .checked_sub(*y)
            .map(Value::Int)
            .ok_or_else(|| ExecError::Arithmetic("integer overflow in `-`".into())),
        (BinOp::Mul, Value::Int(x), Value::Int(y)) => x
            .checked_mul(*y)
            .map(Value::Int)
            .ok_or_else(|| ExecError::Arithmetic("integer overflow in `*`".into())),
        (BinOp::DivInt, Value::Int(x), Value::Int(y)) => {
            if *y == 0 {
                Err(ExecError::Arithmetic("division by zero".into()))
            } else {
                Ok(Value::Int(x.div_euclid(*y)))
            }
        }
        (BinOp::Mod, Value::Int(x), Value::Int(y)) => {
            if *y == 0 {
                Err(ExecError::Arithmetic("modulo by zero".into()))
            } else {
                Ok(Value::Int(x.rem_euclid(*y)))
            }
        }
        (BinOp::Eq, Value::Int(x), Value::Int(y)) => Ok(Value::Bool(x == y)),
        (BinOp::Ne, Value::Int(x), Value::Int(y)) => Ok(Value::Bool(x != y)),
        (BinOp::Lt, Value::Int(x), Value::Int(y)) => Ok(Value::Bool(x < y)),
        (BinOp::Le, Value::Int(x), Value::Int(y)) => Ok(Value::Bool(x <= y)),
        (BinOp::Gt, Value::Int(x), Value::Int(y)) => Ok(Value::Bool(x > y)),
        (BinOp::Ge, Value::Int(x), Value::Int(y)) => Ok(Value::Bool(x >= y)),
        (BinOp::And, Value::Bool(x), Value::Bool(y)) => Ok(Value::Bool(*x && *y)),
        (BinOp::Or, Value::Bool(x), Value::Bool(y)) => Ok(Value::Bool(*x || *y)),
        _ => basic::eval_atomic(op.name(), &[a.clone(), b.clone()]).expect("op is atomic"),
    }
}

// ---------------------------------------------------------------------
// Lowering: TypedExpr -> bytecode.
// ---------------------------------------------------------------------

struct Lowering<'a> {
    engine: &'a ExecEngine,
    params: &'a [(Symbol, DataType)],
    captured: &'a [(Symbol, Value)],
    insts: Vec<Inst>,
    next: usize,
}

impl Lowering<'_> {
    fn fresh(&mut self) -> usize {
        let r = self.next;
        self.next += 1;
        r
    }

    fn lower(&mut self, te: &TypedExpr) -> Result<usize, Fallback> {
        match &te.node {
            TypedNode::Const(c) => {
                let dst = self.fresh();
                self.insts.push(Inst::Const(dst, Value::from_const(c)));
                Ok(dst)
            }
            TypedNode::Object(name) => Err(Fallback::Object(name.clone())),
            TypedNode::Lambda { .. } | TypedNode::ApplyFun { .. } => Err(Fallback::Function),
            TypedNode::Var(name) => {
                let dst = self.fresh();
                // The interpreter's environment is captured ++ params,
                // searched innermost-first: parameters shadow captures.
                if let Some(slot) = self.params.iter().rposition(|(n, _)| n == name) {
                    self.insts.push(Inst::Input(dst, slot));
                } else if let Some((_, v)) = self.captured.iter().rev().find(|(n, _)| n == name) {
                    self.insts.push(Inst::Const(dst, v.clone()));
                } else {
                    return Err(Fallback::UnboundVar(name.clone()));
                }
                Ok(dst)
            }
            TypedNode::List(items) => {
                let regs = self.lower_all(items)?;
                let dst = self.fresh();
                self.insts.push(Inst::MakeList(dst, regs));
                Ok(dst)
            }
            TypedNode::Tuple(items) => {
                let regs = self.lower_all(items)?;
                let dst = self.fresh();
                self.insts.push(Inst::MakePair(dst, regs));
                Ok(dst)
            }
            TypedNode::Apply { op, args, .. } => {
                // Same dispatch order as `EvalCtx::eval` / `is_pure_expr`:
                // a registered operator wins over attribute access, and
                // only the unoverridden atomic built-ins compile.
                if self.engine.is_atomic_op(op) {
                    let regs = self.lower_all(args)?;
                    let dst = self.fresh();
                    match (BinOp::of(op.as_str()), regs.as_ref()) {
                        (Some(b), [a, bb]) => self.insts.push(Inst::Bin(dst, b, *a, *bb)),
                        _ if op.as_str() == "not" && regs.len() == 1 => {
                            self.insts.push(Inst::Not(dst, regs[0]))
                        }
                        _ => {
                            let name = basic::ATOMIC_OPS
                                .iter()
                                .find(|s| **s == op.as_str())
                                .copied()
                                .expect("atomic op is listed");
                            self.insts.push(Inst::Atomic(dst, name, regs));
                        }
                    }
                    return Ok(dst);
                }
                if !self.engine.has_op(op) && args.len() == 1 {
                    if let Some(idx) = attr_index(&args[0].ty, op) {
                        let src = self.lower(&args[0])?;
                        let dst = self.fresh();
                        self.insts.push(Inst::Field(dst, src, idx, op.clone()));
                        return Ok(dst);
                    }
                }
                Err(Fallback::ImpureOp(op.clone()))
            }
        }
    }

    fn lower_all(&mut self, items: &[TypedExpr]) -> Result<Box<[usize]>, Fallback> {
        items.iter().map(|i| self.lower(i)).collect()
    }
}

// ---------------------------------------------------------------------
// Columnar lowering.
// ---------------------------------------------------------------------

fn is_atom(ty: &DataType, name: &str) -> bool {
    matches!(ty, DataType::Cons(n, args) if n.as_str() == name && args.is_empty())
}

/// Try to lower the body to the int/bool columnar kernel. `None` keeps
/// tier A only — never an error, since tier A already compiled.
fn lower_columnar(engine: &ExecEngine, closure: &Closure) -> Option<ColProgram> {
    let [(param, _)] = closure.params.as_slice() else {
        return None;
    };
    let mut c = ColLowering {
        engine,
        param,
        captured: &closure.captured,
        insts: Vec::new(),
        n_int: 0,
        n_bool: 0,
    };
    let out = c.lower(&closure.body)?;
    Some(ColProgram {
        insts: c.insts,
        n_int: c.n_int,
        n_bool: c.n_bool,
        out,
    })
}

struct ColLowering<'a> {
    engine: &'a ExecEngine,
    param: &'a Symbol,
    captured: &'a [(Symbol, Value)],
    insts: Vec<ColInst>,
    n_int: usize,
    n_bool: usize,
}

impl ColLowering<'_> {
    fn fresh_int(&mut self) -> usize {
        self.n_int += 1;
        self.n_int - 1
    }

    fn fresh_bool(&mut self) -> usize {
        self.n_bool += 1;
        self.n_bool - 1
    }

    fn lower(&mut self, te: &TypedExpr) -> Option<ColReg> {
        match &te.node {
            TypedNode::Const(sos_core::Const::Int(v)) => {
                let dst = self.fresh_int();
                self.insts.push(ColInst::BroadcastInt { dst, v: *v });
                Some(ColReg::I(dst))
            }
            TypedNode::Const(sos_core::Const::Bool(v)) => {
                let dst = self.fresh_bool();
                self.insts.push(ColInst::BroadcastBool { dst, v: *v });
                Some(ColReg::B(dst))
            }
            TypedNode::Var(name) => {
                // The tuple parameter itself is not a column; captured
                // int/bool values broadcast (parameters shadow captures,
                // so a captured value under the parameter's name is
                // unreachable and must not broadcast).
                if name == self.param {
                    return None;
                }
                match self.captured.iter().rev().find(|(n, _)| n == name)? {
                    (_, Value::Int(v)) => {
                        let dst = self.fresh_int();
                        self.insts.push(ColInst::BroadcastInt { dst, v: *v });
                        Some(ColReg::I(dst))
                    }
                    (_, Value::Bool(v)) => {
                        let dst = self.fresh_bool();
                        self.insts.push(ColInst::BroadcastBool { dst, v: *v });
                        Some(ColReg::B(dst))
                    }
                    _ => None,
                }
            }
            TypedNode::Apply { op, args, .. } => {
                if self.engine.is_atomic_op(op) {
                    return self.lower_atomic(op.as_str(), args);
                }
                // Attribute access directly on the tuple parameter, for
                // int- and bool-typed fields.
                if !self.engine.has_op(op) && args.len() == 1 {
                    if !matches!(&args[0].node, TypedNode::Var(n) if n == self.param) {
                        return None;
                    }
                    let field = attr_index(&args[0].ty, op)?;
                    if is_atom(&te.ty, "int") {
                        let dst = self.fresh_int();
                        self.insts.push(ColInst::GatherInt { dst, field });
                        return Some(ColReg::I(dst));
                    }
                    if is_atom(&te.ty, "bool") {
                        let dst = self.fresh_bool();
                        self.insts.push(ColInst::GatherBool { dst, field });
                        return Some(ColReg::B(dst));
                    }
                }
                None
            }
            _ => None,
        }
    }

    fn lower_atomic(&mut self, op: &str, args: &[TypedExpr]) -> Option<ColReg> {
        if op == "not" {
            let [arg] = args else { return None };
            let ColReg::B(a) = self.lower(arg)? else {
                return None;
            };
            let dst = self.fresh_bool();
            self.insts.push(ColInst::Not { dst, a });
            return Some(ColReg::B(dst));
        }
        let b = BinOp::of(op)?;
        let [x, y] = args else { return None };
        let (ra, rb) = (self.lower(x)?, self.lower(y)?);
        match (b, ra, rb) {
            (
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::DivInt | BinOp::Mod,
                ColReg::I(a),
                ColReg::I(bb),
            ) => {
                let dst = self.fresh_int();
                self.insts.push(ColInst::Arith {
                    op: b,
                    dst,
                    a,
                    b: bb,
                });
                Some(ColReg::I(dst))
            }
            (
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge,
                ColReg::I(a),
                ColReg::I(bb),
            ) => {
                let dst = self.fresh_bool();
                self.insts.push(ColInst::Cmp {
                    op: b,
                    dst,
                    a,
                    b: bb,
                });
                Some(ColReg::B(dst))
            }
            (BinOp::And, ColReg::B(a), ColReg::B(bb)) => {
                let dst = self.fresh_bool();
                self.insts.push(ColInst::And { dst, a, b: bb });
                Some(ColReg::B(dst))
            }
            (BinOp::Or, ColReg::B(a), ColReg::B(bb)) => {
                let dst = self.fresh_bool();
                self.insts.push(ColInst::Or { dst, a, b: bb });
                Some(ColReg::B(dst))
            }
            _ => None,
        }
    }
}

/// Compile a shared closure through the engine's knob and counters:
/// `None` (interpreter) when compilation is disabled or the body falls
/// outside the pure subset, recording the outcome either way.
pub fn compile_gated(engine: &ExecEngine, closure: &Arc<Closure>) -> Option<Arc<CompiledFun>> {
    if !engine.compile_exprs_enabled() {
        return None;
    }
    match CompiledFun::compile(engine, closure) {
        Ok(cf) => {
            engine.stats.record_compiled();
            Some(Arc::new(cf))
        }
        Err(f) => {
            engine.stats.record_fallback(f.reason());
            None
        }
    }
}

/// [`compile_gated`] without the counters: for transient per-call
/// lowerings (the parallel executor's [`crate::parallel::PureFun`]) that
/// would otherwise inflate the per-plan compile statistics.
pub fn compile_silent(engine: &ExecEngine, closure: &Arc<Closure>) -> Option<Arc<CompiledFun>> {
    if !engine.compile_exprs_enabled() {
        return None;
    }
    CompiledFun::compile(engine, closure).ok().map(Arc::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sos_core::{Const, TypeArg};

    fn ty(name: &str) -> DataType {
        DataType::atom(name)
    }

    /// tuple(<(k, int), (g, int), (s, string), (b, bool)>)
    fn item_ty() -> DataType {
        let attr = |name: &str, t: &str| {
            TypeArg::Pair(vec![
                TypeArg::Expr(sos_core::Expr::Const(Const::Ident(Symbol::new(name)))),
                TypeArg::Type(ty(t)),
            ])
        };
        DataType::Cons(
            Symbol::new("tuple"),
            vec![TypeArg::List(vec![
                attr("k", "int"),
                attr("g", "int"),
                attr("s", "string"),
                attr("b", "bool"),
            ])],
        )
    }

    fn cint(v: i64) -> TypedExpr {
        TypedExpr::new(TypedNode::Const(Const::Int(v)), ty("int"))
    }

    fn var(name: &str, t: DataType) -> TypedExpr {
        TypedExpr::new(TypedNode::Var(Symbol::new(name)), t)
    }

    fn apply(op: &str, args: Vec<TypedExpr>, t: DataType) -> TypedExpr {
        TypedExpr::new(
            TypedNode::Apply {
                op: Symbol::new(op),
                spec: 0,
                args,
            },
            t,
        )
    }

    /// `attr(t)` — attribute access on the tuple parameter.
    fn field(attr: &str, result: &str) -> TypedExpr {
        apply(attr, vec![var("t", item_ty())], ty(result))
    }

    fn closure1(body: TypedExpr) -> Closure {
        Closure {
            params: vec![(Symbol::new("t"), item_ty())],
            body,
            captured: vec![],
        }
    }

    fn engine() -> ExecEngine {
        ExecEngine::new(sos_storage::mem_pool(16))
    }

    fn item(k: i64, g: i64, s: &str, b: bool) -> Value {
        Value::tuple(vec![
            Value::Int(k),
            Value::Int(g),
            Value::Str(s.into()),
            Value::Bool(b),
        ])
    }

    fn compile1(body: TypedExpr) -> CompiledFun {
        CompiledFun::compile(&engine(), &closure1(body)).expect("compiles")
    }

    #[test]
    fn const_input_and_field_opcodes() {
        let e = engine();
        // Const
        let cf = compile1(cint(42));
        assert_eq!(cf.call(&[item(0, 0, "x", false)]).unwrap(), Value::Int(42));
        // Input: the identity closure returns the tuple itself.
        let cf = compile1(var("t", item_ty()));
        let t = item(7, 1, "x", true);
        assert_eq!(cf.call(std::slice::from_ref(&t)).unwrap(), t);
        // Field
        let cf = compile1(field("k", "int"));
        assert_eq!(cf.call(&[item(9, 1, "x", true)]).unwrap(), Value::Int(9));
        // Field on a too-short tuple: identical error to the interpreter.
        let cf = compile1(field("b", "bool"));
        let short = Value::tuple(vec![Value::Int(1)]);
        assert_eq!(
            cf.call(&[short]).unwrap_err().to_string(),
            "tuple too short for attribute `b`"
        );
        // Captured variables freeze as constants; parameters shadow them.
        let c = Closure {
            params: vec![(Symbol::new("t"), item_ty())],
            body: var("n", ty("int")),
            captured: vec![(Symbol::new("n"), Value::Int(5))],
        };
        let cf = CompiledFun::compile(&e, &c).unwrap();
        assert_eq!(cf.call(&[item(0, 0, "", false)]).unwrap(), Value::Int(5));
    }

    #[test]
    fn arithmetic_opcodes_match_interpreter_errors() {
        let k = || field("k", "int");
        for (op, lhs, rhs, want) in [
            ("+", 40, 2, 42i64),
            ("-", 40, 2, 38),
            ("*", 6, 7, 42),
            ("div", 45, 7, 6),
            ("mod", 45, 7, 3),
        ] {
            let cf = compile1(apply(op, vec![k(), cint(rhs)], ty("int")));
            assert_eq!(
                cf.call(&[item(lhs, 0, "", false)]).unwrap(),
                Value::Int(want),
                "{op}"
            );
        }
        // Overflow and zero divisors carry the interpreter's messages.
        let cf = compile1(apply("+", vec![k(), cint(1)], ty("int")));
        assert_eq!(
            cf.call(&[item(i64::MAX, 0, "", false)])
                .unwrap_err()
                .to_string(),
            "arithmetic error: integer overflow in `+`"
        );
        let cf = compile1(apply("div", vec![cint(1), k()], ty("int")));
        assert_eq!(
            cf.call(&[item(0, 0, "", false)]).unwrap_err().to_string(),
            "arithmetic error: division by zero"
        );
        let cf = compile1(apply("mod", vec![cint(1), k()], ty("int")));
        assert_eq!(
            cf.call(&[item(0, 0, "", false)]).unwrap_err().to_string(),
            "arithmetic error: modulo by zero"
        );
        // `/` has no int fast path: it is real division, via the shared
        // atomic implementation.
        let cf = compile1(apply("/", vec![k(), cint(2)], ty("real")));
        assert_eq!(cf.call(&[item(5, 0, "", false)]).unwrap(), Value::Real(2.5));
    }

    #[test]
    fn comparison_logic_and_not_opcodes() {
        let k = || field("k", "int");
        for (op, lhs, want) in [
            ("=", 7, true),
            ("!=", 7, false),
            ("<", 6, true),
            ("<=", 7, true),
            (">", 8, true),
            (">=", 6, false),
        ] {
            let cf = compile1(apply(op, vec![k(), cint(7)], ty("bool")));
            assert_eq!(
                cf.call(&[item(lhs, 0, "", false)]).unwrap(),
                Value::Bool(want),
                "{op} {lhs} 7"
            );
        }
        let both = apply(
            "and",
            vec![
                apply(">", vec![k(), cint(0)], ty("bool")),
                field("b", "bool"),
            ],
            ty("bool"),
        );
        let cf = compile1(both);
        assert_eq!(cf.call(&[item(1, 0, "", true)]).unwrap(), Value::Bool(true));
        assert_eq!(
            cf.call(&[item(1, 0, "", false)]).unwrap(),
            Value::Bool(false)
        );
        let cf = compile1(apply(
            "or",
            vec![field("b", "bool"), field("b", "bool")],
            ty("bool"),
        ));
        assert_eq!(
            cf.call(&[item(0, 0, "", false)]).unwrap(),
            Value::Bool(false)
        );
        let cf = compile1(apply("not", vec![field("b", "bool")], ty("bool")));
        assert_eq!(
            cf.call(&[item(0, 0, "", false)]).unwrap(),
            Value::Bool(true)
        );
        // Mismatched operands route through the shared atomic
        // implementation: identical error text.
        let cf = compile1(apply("and", vec![k(), k()], ty("bool")));
        assert_eq!(
            cf.call(&[item(1, 0, "", false)]).unwrap_err().to_string(),
            "`and` expected bool, found \"int\""
        );
    }

    #[test]
    fn atomic_list_and_pair_opcodes() {
        // Geometry goes through the generic Atomic opcode.
        let cf = compile1(apply(
            "makepoint",
            vec![field("k", "int"), field("g", "int")],
            ty("point"),
        ));
        assert_eq!(
            cf.call(&[item(3, 4, "", false)]).unwrap(),
            Value::Point(sos_geom::Point::new(3.0, 4.0))
        );
        let dist = apply(
            "distance",
            vec![
                apply("makepoint", vec![cint(0), cint(0)], ty("point")),
                apply(
                    "makepoint",
                    vec![field("k", "int"), field("g", "int")],
                    ty("point"),
                ),
            ],
            ty("real"),
        );
        let cf = compile1(dist);
        assert_eq!(cf.call(&[item(3, 4, "", false)]).unwrap(), Value::Real(5.0));
        // MakeList / MakePair.
        let cf = compile1(TypedExpr::new(
            TypedNode::List(vec![cint(1), field("k", "int")]),
            ty("list"),
        ));
        assert_eq!(
            cf.call(&[item(2, 0, "", false)]).unwrap(),
            Value::List(vec![Value::Int(1), Value::Int(2)])
        );
        let cf = compile1(TypedExpr::new(
            TypedNode::Tuple(vec![cint(1), field("k", "int")]),
            ty("pair"),
        ));
        assert_eq!(
            cf.call(&[item(2, 0, "", false)]).unwrap(),
            Value::Pair(vec![Value::Int(1), Value::Int(2)])
        );
    }

    #[test]
    fn arity_error_matches_interpreter() {
        let cf = compile1(cint(1));
        assert_eq!(
            cf.call(&[]).unwrap_err().to_string(),
            "function expects 1 argument(s), got 0"
        );
    }

    #[test]
    fn every_fallback_reason_is_reported() {
        let mut e = engine();
        // object-ref
        let c = closure1(TypedExpr::new(
            TypedNode::Object(Symbol::new("cities")),
            ty("int"),
        ));
        let f = CompiledFun::compile(&e, &c).unwrap_err();
        assert_eq!(f.reason(), "object-ref");
        // nested-function (both lambda construction and application)
        let lam = TypedExpr::new(
            TypedNode::Lambda {
                params: vec![(Symbol::new("x"), ty("int"))],
                body: Box::new(cint(1)),
            },
            ty("fun"),
        );
        let f = CompiledFun::compile(&e, &closure1(lam.clone())).unwrap_err();
        assert_eq!(f.reason(), "nested-function");
        let appf = TypedExpr::new(
            TypedNode::ApplyFun {
                fun: Box::new(lam),
                args: vec![cint(1)],
            },
            ty("int"),
        );
        let f = CompiledFun::compile(&e, &closure1(appf)).unwrap_err();
        assert_eq!(f.reason(), "nested-function");
        // impure-op: a non-atomic operator...
        let c = closure1(apply("count", vec![var("t", item_ty())], ty("int")));
        let f = CompiledFun::compile(&e, &c).unwrap_err();
        assert_eq!(f.reason(), "impure-op");
        // ...and an overridden atomic one.
        let plus = closure1(apply("+", vec![cint(1), cint(2)], ty("int")));
        assert!(CompiledFun::compile(&e, &plus).is_ok());
        e.add_op("+", |_, _, _| Ok(Value::Int(0)));
        let f = CompiledFun::compile(&e, &plus).unwrap_err();
        assert_eq!(f.reason(), "impure-op");
        // unbound-variable
        let c = closure1(var("nowhere", ty("int")));
        let f = CompiledFun::compile(&e, &c).unwrap_err();
        assert_eq!(f.reason(), "unbound-variable");
    }

    #[test]
    fn gating_respects_the_engine_knob_and_counts() {
        let mut e = engine();
        let pred = Arc::new(closure1(apply(
            "=",
            vec![field("k", "int"), cint(0)],
            ty("bool"),
        )));
        assert!(compile_gated(&e, &pred).is_some());
        assert_eq!(e.stats.compile_snapshot().compiled, 1);
        let impure = Arc::new(closure1(TypedExpr::new(
            TypedNode::Object(Symbol::new("r")),
            ty("int"),
        )));
        assert!(compile_gated(&e, &impure).is_none());
        assert_eq!(e.stats.compile_snapshot().fallback("object-ref"), 1);
        e.set_compile_exprs(false);
        assert!(!e.compile_exprs_enabled());
        assert!(compile_gated(&e, &pred).is_none());
        // Disabled is not a fallback: the counters are untouched.
        let snap = e.stats.compile_snapshot();
        assert_eq!((snap.compiled, snap.total_fallbacks()), (1, 1));
    }

    #[test]
    fn columnar_kernel_masks_and_columns_match_tier_a() {
        // k mod 7 = 0 and g < 3 — all int/bool: tier B applies.
        let body = apply(
            "and",
            vec![
                apply(
                    "=",
                    vec![
                        apply("mod", vec![field("k", "int"), cint(7)], ty("int")),
                        cint(0),
                    ],
                    ty("bool"),
                ),
                apply("<", vec![field("g", "int"), cint(3)], ty("bool")),
            ],
            ty("bool"),
        );
        let cf = compile1(body);
        assert!(cf.is_columnar());
        let batch: Vec<Value> = (0..100).map(|i| item(i, i % 10, "p", false)).collect();
        let mask = cf.eval_mask(&batch, "filter").unwrap();
        for (t, got) in batch.iter().zip(&mask) {
            assert_eq!(cf.call(std::slice::from_ref(t)).unwrap(), Value::Bool(*got));
        }
        // A string comparison keeps tier A only.
        let cf = compile1(apply(
            "!=",
            vec![
                field("s", "string"),
                TypedExpr::new(TypedNode::Const(Const::Str("x".into())), ty("string")),
            ],
            ty("bool"),
        ));
        assert!(!cf.is_columnar());
        assert_eq!(cf.eval_mask(&batch, "filter").unwrap(), vec![true; 100]);
        // Int columns for project/replace-shaped programs.
        let cf = compile1(apply("*", vec![field("k", "int"), cint(2)], ty("int")));
        assert!(cf.is_columnar());
        assert_eq!(
            cf.eval_column(&batch[..3]).unwrap(),
            vec![Value::Int(0), Value::Int(2), Value::Int(4)]
        );
    }

    #[test]
    fn columnar_bailout_reruns_tier_a_with_identical_errors() {
        // Overflow in the middle of a batch: the columnar attempt bails
        // and the row-order first error surfaces, as the interpreter
        // would.
        let cf = compile1(apply("*", vec![field("k", "int"), cint(2)], ty("int")));
        assert!(cf.is_columnar());
        let batch = vec![
            item(1, 0, "", false),
            item(i64::MAX, 0, "", false),
            item(2, 0, "", false),
        ];
        assert_eq!(
            cf.eval_column(&batch).unwrap_err().to_string(),
            "arithmetic error: integer overflow in `*`"
        );
        // A division by zero bails the mask path the same way.
        let cf = compile1(apply(
            "=",
            vec![
                apply("div", vec![cint(100), field("k", "int")], ty("int")),
                cint(1),
            ],
            ty("bool"),
        ));
        assert!(cf.is_columnar());
        let batch = vec![item(100, 0, "", false), item(0, 0, "", false)];
        assert_eq!(
            cf.eval_mask(&batch, "filter").unwrap_err().to_string(),
            "arithmetic error: division by zero"
        );
        // A non-int runtime value in an int-typed field bails to tier A
        // *successfully* (the interpreter promotes int/real compares).
        let cf = compile1(apply("<", vec![field("k", "int"), cint(10)], ty("bool")));
        assert!(cf.is_columnar());
        let odd = vec![Value::tuple(vec![
            Value::Real(2.5),
            Value::Int(0),
            Value::Str("".into()),
            Value::Bool(false),
        ])];
        assert_eq!(cf.eval_mask(&odd, "filter").unwrap(), vec![true]);
    }

    /// Hand-built malformed programs trip each verifier check. The
    /// lowering never produces these; the verifier exists so that claim
    /// is checked once per program instead of assumed per row.
    #[test]
    fn verifier_rejects_malformed_programs() {
        let tier_a = |insts: Vec<Inst>, out: usize, n_regs: usize| CompiledFun {
            arity: 1,
            insts: insts.into_boxed_slice(),
            out,
            n_regs,
            col: None,
        };

        // Read before write (also covers the dst == operand aliasing the
        // executor's register reuse forbids).
        let cf = tier_a(vec![Inst::Bin(1, BinOp::Add, 0, 0)], 1, 2);
        let err = cf.verify().unwrap_err();
        assert!(err.contains("before any instruction writes it"), "{err}");

        // Out-of-bounds register and input slot.
        let cf = tier_a(vec![Inst::Const(5, Value::Int(1))], 0, 1);
        assert!(cf.verify().unwrap_err().contains("out-of-bounds register"));
        let cf = tier_a(vec![Inst::Input(0, 3)], 0, 1);
        let err = cf.verify().unwrap_err();
        assert!(err.contains("input slot 3"), "{err}");

        // Double write breaks single assignment.
        let cf = tier_a(
            vec![Inst::Const(0, Value::Int(1)), Inst::Const(0, Value::Int(2))],
            0,
            1,
        );
        assert!(cf.verify().unwrap_err().contains("twice"));

        // Undefined output register.
        let cf = tier_a(vec![], 0, 1);
        assert!(cf.verify().unwrap_err().contains("output register"));

        // A non-atomic name in an Atomic slot would panic the executor.
        let cf = tier_a(
            vec![
                Inst::Const(0, Value::Int(1)),
                Inst::Atomic(1, "feed", vec![0].into_boxed_slice()),
            ],
            1,
            2,
        );
        assert!(cf.verify().unwrap_err().contains("not an atomic operator"));

        // Columnar kernel: an opcode of the wrong kind in Arith/Cmp.
        let col = ColProgram {
            insts: vec![
                ColInst::BroadcastInt { dst: 0, v: 1 },
                ColInst::BroadcastInt { dst: 1, v: 2 },
                ColInst::Arith {
                    op: BinOp::Eq,
                    dst: 2,
                    a: 0,
                    b: 1,
                },
            ],
            n_int: 3,
            n_bool: 0,
            out: ColReg::I(2),
        };
        assert!(col
            .verify()
            .unwrap_err()
            .contains("not an arithmetic opcode"));

        // Columnar kernel: output register never written.
        let col = ColProgram {
            insts: vec![ColInst::BroadcastInt { dst: 0, v: 1 }],
            n_int: 1,
            n_bool: 1,
            out: ColReg::B(0),
        };
        let err = col.verify().unwrap_err();
        assert!(err.contains("columnar output register"), "{err}");

        // The counter key for a verifier rejection.
        assert_eq!(Fallback::Rejected("r0".into()).reason(), "verifier-reject");
    }

    /// Every program the lowering produces passes the verifier (it runs
    /// inside `compile`, so a failure would surface as a fallback; this
    /// pins the property explicitly on representative shapes, columnar
    /// kernels included).
    #[test]
    fn lowered_programs_verify_clean() {
        let bodies = [
            cint(42),
            field("k", "int"),
            apply(
                "and",
                vec![
                    apply("<", vec![field("k", "int"), cint(10)], ty("bool")),
                    apply(
                        "=",
                        vec![
                            apply("mod", vec![field("g", "int"), cint(7)], ty("int")),
                            cint(0),
                        ],
                        ty("bool"),
                    ),
                ],
                ty("bool"),
            ),
            apply(
                "makepoint",
                vec![field("k", "int"), field("g", "int")],
                ty("point"),
            ),
        ];
        for body in bodies {
            compile1(body).verify().expect("lowered program verifies");
        }
    }
}
