//! Partitioned storage objects: one logical relation or index spread
//! across multiple heap files / trees, routed by a key attribute.
//!
//! A partitioned object keeps its *declared* type — `srel(city)` or
//! `btree(city, pop, int)` — so the checker, signature, and optimizer
//! are untouched; only the runtime value changes: the store holds a
//! [`Value::Part`](crate::Value) wrapping a [`PartHandle`] whose
//! `parts` are the per-partition values of the declared shape. Routing
//! follows the catalog's [`PartSpec`]:
//!
//! * **hash** — FNV-1a over the key's order-preserving encoded bytes,
//!   modulo the partition count;
//! * **range** — the first partition whose inclusive upper bound admits
//!   the key; keys above every bound go to the last partition. For
//!   spatially keyed objects (lsdtree) the bounds are numeric and are
//!   compared against the indexed rectangle's center x.
//!
//! Partition *pruning* is the query-side payoff: an equality predicate
//! on the routing attribute touches one partition, a range predicate
//! touches a contiguous run (range partitioning), and a spatial probe
//! skips partitions whose cover cannot intersect the query. All pruning
//! here is conservative — a kept partition may still yield nothing, but
//! a pruned partition provably contributes nothing.

use crate::error::{ExecError, ExecResult};
use crate::handles::{attr_index, encode_key};
use crate::value::{compare, Closure, Value};
use sos_catalog::{PartMethod, PartSpec};
use sos_core::typed::{TypedExpr, TypedNode};
use sos_core::{DataType, Symbol};
use sos_geom::Rect;
use std::sync::Arc;

/// The runtime handle of a partitioned object.
pub struct PartHandle {
    pub spec: PartSpec,
    /// Index of the routing attribute within the stored tuple type.
    /// `None` for lsdtree partitions, which route by rect center.
    pub attr_idx: Option<usize>,
    /// Per-partition values, all of the object's declared shape
    /// (`SRel` / `TidRel` / `BTree` / `LsdTree`).
    pub parts: Vec<Value>,
}

impl PartHandle {
    /// Wrap per-partition values. `tuple_ty` is the stored tuple type,
    /// needed to resolve the routing attribute for heap partitions
    /// (B-trees carry their tuple type; lsdtrees route by rect and use
    /// no attribute index).
    pub fn new(
        spec: PartSpec,
        parts: Vec<Value>,
        tuple_ty: Option<&DataType>,
    ) -> ExecResult<PartHandle> {
        if parts.len() != spec.method.parts() {
            return Err(ExecError::Other(format!(
                "partition spec names {} partition(s) but {} were supplied",
                spec.method.parts(),
                parts.len()
            )));
        }
        let attr_idx = match parts.first() {
            Some(Value::LsdTree(_)) => None,
            Some(Value::BTree(h)) => Some(resolve_attr(&spec.attr, &h.tuple_type)?),
            Some(Value::SRel(_) | Value::TidRel(_)) => {
                let ty = tuple_ty.ok_or_else(|| {
                    ExecError::Other("heap partitions need their tuple type".into())
                })?;
                Some(resolve_attr(&spec.attr, ty)?)
            }
            other => {
                return Err(ExecError::Other(format!(
                    "cannot partition a {} object",
                    other.map(|v| v.kind_name()).unwrap_or("missing")
                )))
            }
        };
        Ok(PartHandle {
            spec,
            attr_idx,
            parts,
        })
    }

    pub fn part_count(&self) -> usize {
        self.parts.len()
    }

    /// Total stored entries across partitions (heap partitions count
    /// records on their pages).
    pub fn len(&self) -> ExecResult<usize> {
        let mut n = 0;
        for p in &self.parts {
            n += match p {
                Value::SRel(h) | Value::TidRel(h) => h.count().map_err(ExecError::Storage)?,
                Value::BTree(h) => h.tree.len(),
                Value::LsdTree(h) => h.tree.len(),
                other => {
                    return Err(ExecError::Other(format!(
                        "unexpected {} partition",
                        other.kind_name()
                    )))
                }
            };
        }
        Ok(n)
    }

    pub fn is_empty(&self) -> ExecResult<bool> {
        Ok(self.len()? == 0)
    }

    // ---- routing ----

    /// The partition a key value routes to.
    pub fn route_key(&self, key: &Value) -> ExecResult<usize> {
        route_by_method(&self.spec.method, key)
    }

    /// The partition a stored tuple routes to (heap / B-tree objects).
    pub fn route_tuple(&self, tuple: &Value) -> ExecResult<usize> {
        let idx = self.attr_idx.ok_or_else(|| {
            ExecError::Other("rect-keyed partitions route by rectangle, not attribute".into())
        })?;
        let fields = tuple.as_tuple("partition")?;
        let key = fields.get(idx).ok_or_else(|| {
            ExecError::Other(format!(
                "tuple too short for partition attribute `{}`",
                self.spec.attr
            ))
        })?;
        self.route_key(key)
    }

    /// The partition an indexed rectangle routes to (lsdtree objects).
    pub fn route_rect(&self, rect: &Rect) -> ExecResult<usize> {
        let c = rect.center();
        match &self.spec.method {
            PartMethod::Hash { parts } => {
                let mut bytes = [0u8; 16];
                bytes[..8].copy_from_slice(&c.x.to_bits().to_le_bytes());
                bytes[8..].copy_from_slice(&c.y.to_bits().to_le_bytes());
                Ok((fnv1a(&bytes) % *parts as u64) as usize)
            }
            PartMethod::Range { .. } => route_by_method(&self.spec.method, &Value::Real(c.x)),
        }
    }

    // ---- pruning ----

    /// Partition keep-mask for a conjunction of key conditions. Empty
    /// `conds` keeps everything; a condition that cannot be routed
    /// (e.g. a type-mismatched constant) prunes nothing — conservative
    /// in both directions.
    pub fn candidate_mask(&self, conds: &[KeyCond]) -> Vec<bool> {
        let n = self.parts.len();
        let mut keep = vec![true; n];
        for cond in conds {
            match cond {
                KeyCond::Eq(v) => {
                    if let Ok(i) = self.route_key(v) {
                        for (j, k) in keep.iter_mut().enumerate() {
                            *k &= j == i;
                        }
                    }
                }
                KeyCond::Upper(v) => {
                    // key <= v (or < v: same inclusive mask, still sound)
                    if let PartMethod::Range { .. } = self.spec.method {
                        if let Ok(i) = self.route_key(v) {
                            for (j, k) in keep.iter_mut().enumerate() {
                                *k &= j <= i;
                            }
                        }
                    }
                }
                KeyCond::Lower(v) => {
                    if let PartMethod::Range { .. } = self.spec.method {
                        if let Ok(i) = self.route_key(v) {
                            for (j, k) in keep.iter_mut().enumerate() {
                                *k &= j >= i;
                            }
                        }
                    }
                }
            }
        }
        keep
    }

    /// Keep-mask for a B-tree range query `[lo, hi]` (either bound
    /// optional: half-open queries).
    pub fn range_mask(&self, lo: Option<&Value>, hi: Option<&Value>) -> Vec<bool> {
        let mut conds = Vec::new();
        if let Some(lo) = lo {
            conds.push(KeyCond::Lower(lo.clone()));
        }
        if let Some(hi) = hi {
            conds.push(KeyCond::Upper(hi.clone()));
        }
        self.candidate_mask(&conds)
    }

    /// Keep-mask for a spatial probe over lsdtree partitions: a
    /// partition survives iff its cover (the root bounding box of its
    /// tree) passes `probe`. Non-lsdtree partitions keep everything.
    pub fn cover_mask(&self, probe: impl Fn(&Rect) -> bool) -> Vec<bool> {
        self.parts
            .iter()
            .map(|p| match p {
                Value::LsdTree(h) => h.tree.cover().map(|c| probe(&c)).unwrap_or(false),
                _ => true,
            })
            .collect()
    }
}

fn resolve_attr(attr: &Symbol, tuple_ty: &DataType) -> ExecResult<usize> {
    attr_index(tuple_ty, attr).ok_or_else(|| {
        ExecError::Other(format!(
            "partition attribute `{attr}` is not an attribute of {tuple_ty}"
        ))
    })
}

fn route_by_method(method: &PartMethod, key: &Value) -> ExecResult<usize> {
    match method {
        PartMethod::Hash { parts } => {
            let bytes = encode_key("partition", key)?;
            Ok((fnv1a(&bytes) % *parts as u64) as usize)
        }
        PartMethod::Range { bounds } => {
            for (i, b) in bounds.iter().enumerate() {
                let bound = Value::from_const(b);
                if compare("partition", key, &bound)? != std::cmp::Ordering::Greater {
                    return Ok(i);
                }
            }
            Ok(bounds.len())
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

// ---- predicate analysis ----

/// A key condition extracted from a filter predicate: the routing
/// attribute compared against a constant. Strict bounds are folded into
/// their inclusive forms (`< v` prunes like `<= v`), which only ever
/// keeps extra partitions.
#[derive(Debug, Clone)]
pub enum KeyCond {
    Eq(Value),
    /// `attr <= v` (or `< v`).
    Upper(Value),
    /// `attr >= v` (or `> v`).
    Lower(Value),
}

/// Extract the key conditions a one-parameter filter predicate imposes
/// on `attr`: top-level `and`-conjuncts of the shape
/// `attr(%t) cmp const` (either operand order). Anything else in the
/// predicate is ignored — the extracted conditions are implied by the
/// predicate, which is all pruning needs.
pub fn key_conds(
    engine: &crate::engine::ExecEngine,
    pred: &Arc<Closure>,
    attr: &Symbol,
) -> Vec<KeyCond> {
    let [(param, _)] = pred.params.as_slice() else {
        return Vec::new();
    };
    let mut out = Vec::new();
    collect_conds(engine, &pred.body, param, attr, &mut out);
    out
}

fn collect_conds(
    engine: &crate::engine::ExecEngine,
    te: &TypedExpr,
    param: &Symbol,
    attr: &Symbol,
    out: &mut Vec<KeyCond>,
) {
    let TypedNode::Apply { op, args, .. } = &te.node else {
        return;
    };
    if op.as_str() == "and" && args.len() == 2 {
        collect_conds(engine, &args[0], param, attr, out);
        collect_conds(engine, &args[1], param, attr, out);
        return;
    }
    let [a, b] = args.as_slice() else {
        return;
    };
    let (attr_side, const_side, flipped) = if is_attr_access(engine, a, param, attr) {
        (a, b, false)
    } else if is_attr_access(engine, b, param, attr) {
        (b, a, true)
    } else {
        return;
    };
    let _ = attr_side;
    let TypedNode::Const(c) = &const_side.node else {
        return;
    };
    let v = Value::from_const(c);
    // `v cmp attr` is `attr cmp' v` with the comparison mirrored.
    let cond = match (op.as_str(), flipped) {
        ("=", _) => KeyCond::Eq(v),
        ("<" | "<=", false) | (">" | ">=", true) => KeyCond::Upper(v),
        (">" | ">=", false) | ("<" | "<=", true) => KeyCond::Lower(v),
        _ => return,
    };
    out.push(cond);
}

/// Whether `te` is exactly `attr(param)` — an attribute access of the
/// predicate's own parameter, using the same resolution rule as the
/// evaluator (not shadowed by a registered operator).
fn is_attr_access(
    engine: &crate::engine::ExecEngine,
    te: &TypedExpr,
    param: &Symbol,
    attr: &Symbol,
) -> bool {
    let TypedNode::Apply { op, args, .. } = &te.node else {
        return false;
    };
    if op != attr || engine.has_op(op) {
        return false;
    }
    matches!(&args[..], [arg]
        if matches!(&arg.node, TypedNode::Var(v) if v == param)
            && attr_index(&arg.ty, op).is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sos_core::sym;

    fn hash_spec(parts: usize) -> PartSpec {
        PartSpec {
            attr: sym("k"),
            method: PartMethod::Hash { parts },
        }
    }

    fn range_spec(bounds: Vec<sos_core::Const>) -> PartSpec {
        PartSpec {
            attr: sym("k"),
            method: PartMethod::Range { bounds },
        }
    }

    #[test]
    fn hash_routing_is_stable_and_in_range() {
        let m = PartMethod::Hash { parts: 7 };
        for i in 0..1000i64 {
            let a = route_by_method(&m, &Value::Int(i)).unwrap();
            let b = route_by_method(&m, &Value::Int(i)).unwrap();
            assert_eq!(a, b);
            assert!(a < 7);
        }
        // All partitions get some keys.
        let mut seen = [false; 7];
        for i in 0..1000i64 {
            seen[route_by_method(&m, &Value::Int(i)).unwrap()] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn range_routing_respects_bounds() {
        use sos_core::Const;
        let m = PartMethod::Range {
            bounds: vec![Const::Int(10), Const::Int(20)],
        };
        assert_eq!(route_by_method(&m, &Value::Int(-5)).unwrap(), 0);
        assert_eq!(route_by_method(&m, &Value::Int(10)).unwrap(), 0);
        assert_eq!(route_by_method(&m, &Value::Int(11)).unwrap(), 1);
        assert_eq!(route_by_method(&m, &Value::Int(20)).unwrap(), 1);
        assert_eq!(route_by_method(&m, &Value::Int(21)).unwrap(), 2);
        assert_eq!(route_by_method(&m, &Value::Int(1000)).unwrap(), 2);
        // int/real promotion in bound comparison
        assert_eq!(route_by_method(&m, &Value::Real(10.5)).unwrap(), 1);
        // mismatched type errors rather than silently misrouting
        assert!(route_by_method(&m, &Value::Str("x".into())).is_err());
    }

    fn dummy_handle(spec: PartSpec) -> PartHandle {
        // Routing and masks only consult the spec and part count, so
        // a handle over empty heaps suffices.
        let pool = sos_storage::mem_pool(64);
        let n = spec.method.parts();
        let parts: Vec<Value> = (0..n)
            .map(|_| {
                Value::SRel(Arc::new(
                    sos_storage::heap::HeapFile::create(pool.clone()).unwrap(),
                ))
            })
            .collect();
        let ty = DataType::tuple(vec![(sym("k"), DataType::atom("int"))]);
        PartHandle::new(spec, parts, Some(&ty)).unwrap()
    }

    #[test]
    fn eq_cond_keeps_one_partition() {
        let h = dummy_handle(hash_spec(5));
        let mask = h.candidate_mask(&[KeyCond::Eq(Value::Int(42))]);
        assert_eq!(mask.iter().filter(|k| **k).count(), 1);
        let i = h.route_key(&Value::Int(42)).unwrap();
        assert!(mask[i]);
    }

    #[test]
    fn range_conds_keep_contiguous_run() {
        use sos_core::Const;
        let h = dummy_handle(range_spec(vec![
            Const::Int(10),
            Const::Int(20),
            Const::Int(30),
        ]));
        assert_eq!(
            h.candidate_mask(&[KeyCond::Upper(Value::Int(15))]),
            vec![true, true, false, false]
        );
        assert_eq!(
            h.candidate_mask(&[KeyCond::Lower(Value::Int(15))]),
            vec![false, true, true, true]
        );
        assert_eq!(
            h.candidate_mask(&[
                KeyCond::Lower(Value::Int(15)),
                KeyCond::Upper(Value::Int(25))
            ]),
            vec![false, true, true, false]
        );
        assert_eq!(h.range_mask(None, None), vec![true; 4]);
    }

    #[test]
    fn hash_ignores_inequalities_but_not_equality() {
        let h = dummy_handle(hash_spec(4));
        assert_eq!(
            h.candidate_mask(&[KeyCond::Upper(Value::Int(3))]),
            vec![true; 4]
        );
    }

    #[test]
    fn unroutable_cond_prunes_nothing() {
        use sos_core::Const;
        let h = dummy_handle(range_spec(vec![Const::Int(10)]));
        assert_eq!(
            h.candidate_mask(&[KeyCond::Eq(Value::Str("oops".into()))]),
            vec![true, true]
        );
    }

    #[test]
    fn tuple_routing_reads_the_spec_attr() {
        let h = dummy_handle(range_spec(vec![sos_core::Const::Int(10)]));
        let t = Value::tuple(vec![Value::Int(7)]);
        assert_eq!(h.route_tuple(&t).unwrap(), 0);
        let t = Value::tuple(vec![Value::Int(70)]);
        assert_eq!(h.route_tuple(&t).unwrap(), 1);
    }

    #[test]
    fn rect_routing_uses_center() {
        use sos_core::Const;
        let h = {
            let pool = sos_storage::mem_pool(64);
            let spec = PartSpec {
                attr: sym("box"),
                method: PartMethod::Range {
                    bounds: vec![Const::Real(500.0)],
                },
            };
            let parts: Vec<Value> = (0..2)
                .map(|_| {
                    let tree = sos_storage::lsdtree::LsdTree::create(pool.clone()).unwrap();
                    Value::LsdTree(Arc::new(crate::handles::LsdHandle {
                        tree,
                        tuple_type: DataType::tuple(vec![(sym("box"), DataType::atom("rect"))]),
                        // Never evaluated here: routing uses the rect.
                        keyfun: TypedExpr::new(TypedNode::Var(sym("r")), DataType::atom("rect")),
                    }))
                })
                .collect();
            PartHandle::new(spec, parts, None).unwrap()
        };
        assert_eq!(
            h.route_rect(&Rect::new(0.0, 0.0, 10.0, 10.0)).unwrap(),
            0usize
        );
        assert_eq!(
            h.route_rect(&Rect::new(900.0, 0.0, 950.0, 10.0)).unwrap(),
            1usize
        );
    }
}
