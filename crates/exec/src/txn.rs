//! Statement transactions: the commit boundary of the update operators.
//!
//! Section 6 of the paper treats updates as operators translated by the
//! same rule machinery as queries; durability gives each update
//! *statement* transactional semantics. A [`StatementTx`] brackets one
//! statement's evaluation over a WAL-backed buffer pool: pages the
//! update operators dirty are fenced from the data disk (no-steal) until
//! [`StatementTx::commit`] logs their after-images and the commit
//! marker. Dropping the guard without committing — the `?`-propagation
//! path out of a failed statement — aborts, restoring every touched
//! page, so a half-applied `insert`/`delete`/`modify` can never be
//! observed, in memory or after a crash.
//!
//! Over a pool without a WAL both `begin` and `commit` are no-ops, so
//! the system layer can bracket statements unconditionally.
//!
//! What "commit returned `Ok`" buys depends on the pool's
//! `SyncPolicy`: under `PerCommit` the committing thread wrote and
//! synced the log itself; under `Group` the commit was *enqueued* on
//! the WAL's background writer and this call parked until the writer's
//! coalesced fsync covered the statement's durable LSN; under `NoSync`
//! the records are appended and the writer nudged, and the statement
//! may ride a later fsync. Atomicity is identical in all three —
//! recovery replays a statement entirely or not at all.

use crate::{ExecError, ExecResult};
use sos_storage::BufferPool;
use std::sync::Arc;

/// RAII guard for one statement's transaction. Commit consumes the
/// guard; dropping it uncommitted aborts.
pub struct StatementTx {
    pool: Arc<BufferPool>,
    committed: bool,
}

impl StatementTx {
    /// Open a transaction on `pool`. Fails if one is already open (the
    /// engine is single-writer: statements are serialized).
    pub fn begin(pool: Arc<BufferPool>) -> ExecResult<StatementTx> {
        pool.begin_tx().map_err(ExecError::Storage)?;
        Ok(StatementTx {
            pool,
            committed: false,
        })
    }

    /// Commit: log after-images of every dirtied page plus `meta` (the
    /// system layer's serialized catalog snapshot) and sync the log.
    /// On error the transaction is rolled back before returning.
    pub fn commit(mut self, meta: Option<&[u8]>) -> ExecResult<()> {
        match self.pool.commit_tx(meta) {
            Ok(()) => {
                self.committed = true;
                Ok(())
            }
            Err(e) => {
                // The drop below would abort anyway; do it eagerly so
                // the caller sees a consistent pool alongside the error.
                self.committed = true;
                let _ = self.pool.abort_tx();
                Err(ExecError::Storage(e))
            }
        }
    }
}

impl Drop for StatementTx {
    fn drop(&mut self) {
        if !self.committed {
            let _ = self.pool.abort_tx();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sos_storage::{DiskManager, MemDisk, SyncPolicy, Wal, WalOptions};

    fn wal_pool() -> Arc<BufferPool> {
        let data: Arc<dyn DiskManager> = Arc::new(MemDisk::new());
        let wal_disk: Arc<dyn DiskManager> = Arc::new(MemDisk::new());
        let (wal, _, _) = Wal::recover(wal_disk, &data).unwrap();
        Arc::new(BufferPool::with_wal(data, 8, Arc::new(wal)))
    }

    #[test]
    fn group_policy_commit_waits_for_durable_lsn() {
        // Commit under group commit is "enqueue + wait": when it returns,
        // the statement's records are durable even though the fsync ran
        // on the WAL's writer thread.
        let data: Arc<dyn DiskManager> = Arc::new(MemDisk::new());
        let wal_disk: Arc<dyn DiskManager> = Arc::new(MemDisk::new());
        let (wal, _, _) = Wal::recover_with(
            wal_disk,
            &data,
            WalOptions {
                policy: SyncPolicy::Group {
                    window_us: 100,
                    max_batch: 8,
                },
                ..WalOptions::default()
            },
        )
        .unwrap();
        let pool = Arc::new(BufferPool::with_wal(data, 8, Arc::new(wal)));
        let tx = StatementTx::begin(Arc::clone(&pool)).unwrap();
        let (pid, g) = pool.allocate().unwrap();
        g.write()[0] = 5;
        drop(g);
        tx.commit(None).unwrap();
        let wal = pool.wal().unwrap();
        assert_eq!(wal.durable_lsn(), wal.appended_lsn());
        let g = pool.fetch(pid).unwrap();
        assert_eq!(g.read()[0], 5);
    }

    #[test]
    fn drop_without_commit_aborts() {
        let pool = wal_pool();
        let pid;
        {
            let _tx = StatementTx::begin(Arc::clone(&pool)).unwrap();
            let (p, g) = pool.allocate().unwrap();
            g.write()[0] = 9;
            drop(g);
            pid = p;
            // `_tx` dropped here: abort.
        }
        let g = pool.fetch(pid).unwrap();
        assert_eq!(g.read()[0], 0, "dropped guard rolled the write back");
    }

    #[test]
    fn commit_makes_writes_stick() {
        let pool = wal_pool();
        let tx = StatementTx::begin(Arc::clone(&pool)).unwrap();
        let (pid, g) = pool.allocate().unwrap();
        g.write()[0] = 9;
        drop(g);
        tx.commit(None).unwrap();
        let g = pool.fetch(pid).unwrap();
        assert_eq!(g.read()[0], 9);
        assert_eq!(pool.wal_stats().commits, 1);
    }

    #[test]
    fn no_wal_pool_is_a_transparent_noop() {
        let pool = sos_storage::mem_pool(4);
        let tx = StatementTx::begin(Arc::clone(&pool)).unwrap();
        let (pid, g) = pool.allocate().unwrap();
        g.write()[0] = 3;
        drop(g);
        tx.commit(None).unwrap();
        let g = pool.fetch(pid).unwrap();
        assert_eq!(g.read()[0], 3);
    }
}
