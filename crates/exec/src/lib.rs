//! Execution engine: the second-order *algebra* giving the built-in
//! signature its semantics.
//!
//! Where `sos-core` is purely symbolic (types and typed terms), this
//! crate supplies carrier sets ([`Value`]) and operator functions
//! ([`engine::OpImpl`]) — the `(T_A, Δ_A, Ω_A)` of the paper's
//! Definition of a second-order algebra. Representation structures are
//! backed by `sos-storage` through a shared buffer pool, so every query
//! plan's page-touch cost is observable via [`sos_storage::PoolStats`].

mod error;
mod handles;
mod value;

pub mod compile;
pub mod engine;
pub mod ops;
pub mod parallel;
pub mod partition;
pub mod stats;
pub mod stored;
pub mod stream;
pub mod txn;

pub use compile::{CompiledFun, Fallback};
pub use engine::{EvalCtx, ExecEngine};
pub use error::{ExecError, ExecResult};
pub use handles::{encode_key, BTreeHandle, KeyExtractor, LsdHandle};
pub use partition::PartHandle;
pub use stats::{CompileStats, ExecStats, OpStats};
pub use txn::StatementTx;
pub use value::{compare, render, Closure, Value};
