//! Runtime values: the carrier sets of the second-order algebra.

use crate::error::{mismatch, ExecError, ExecResult};
use crate::handles::{BTreeHandle, LsdHandle};
use sos_core::typed::TypedExpr;
use sos_core::{Const, DataType, Symbol};
use sos_geom::{Point, Polygon, Rect};
use sos_storage::field::Field;
use std::sync::Arc;

/// A runtime value.
#[derive(Clone)]
pub enum Value {
    // ---- atomic data values (kind DATA and friends) ----
    Int(i64),
    Real(f64),
    Str(String),
    Bool(bool),
    Ident(Symbol),
    Point(Point),
    Rect(Rect),
    Pgon(Polygon),
    // ---- structured model-level values ----
    /// A tuple: field values in schema order, shared behind an `Arc` so
    /// that passing a tuple across filter/project/join boundaries (and
    /// binding it to a predicate parameter) is a reference-count bump,
    /// not a deep copy. Tuples are immutable; operators that change
    /// fields build a fresh tuple.
    Tuple(Arc<[Value]>),
    /// A model-level relation: a bag of tuples.
    Rel(Vec<Value>),
    /// A materialized stream of tuples.
    Stream(Vec<Value>),
    /// A pipelined stream: tuples are pulled on demand (Section 4's
    /// "pipelined fashion"); see [`crate::stream::Cursor`].
    Cursor(std::sync::Arc<parking_lot::Mutex<crate::stream::Cursor>>),
    /// A function value: a closure over the evaluation environment.
    Closure(Arc<Closure>),
    /// A list argument (`<a, b, c>`).
    List(Vec<Value>),
    /// A product argument (`(a, b)`).
    Pair(Vec<Value>),
    // ---- representation-level handles ----
    SRel(Arc<sos_storage::heap::HeapFile>),
    TidRel(Arc<sos_storage::heap::HeapFile>),
    BTree(Arc<BTreeHandle>),
    LsdTree(Arc<LsdHandle>),
    /// A partitioned storage object: the declared shape split across
    /// per-partition values (see [`crate::partition::PartHandle`]).
    Part(Arc<crate::partition::PartHandle>),
    /// The value of a freshly created object before its first update.
    Undefined,
}

/// A lambda closed over its environment.
pub struct Closure {
    pub params: Vec<(Symbol, DataType)>,
    pub body: TypedExpr,
    /// Captured variables (outer lambda parameters).
    pub captured: Vec<(Symbol, Value)>,
}

impl Value {
    /// Construct a tuple value (the one place fields get wrapped in the
    /// shared allocation).
    pub fn tuple(fields: Vec<Value>) -> Value {
        Value::Tuple(fields.into())
    }

    /// Take ownership of a tuple's fields (cloning out of the shared
    /// slice; only cold paths — stored-object loads, updates — need
    /// owned fields).
    pub fn into_tuple(self, op: &str) -> ExecResult<Vec<Value>> {
        match self {
            Value::Tuple(fs) => Ok(fs.to_vec()),
            other => Err(mismatch(op, "tuple", &other.kind_name())),
        }
    }

    pub fn from_const(c: &Const) -> Value {
        match c {
            Const::Int(v) => Value::Int(*v),
            Const::Real(v) => Value::Real(*v),
            Const::Str(s) => Value::Str(s.clone()),
            Const::Bool(b) => Value::Bool(*b),
            Const::Ident(s) => Value::Ident(s.clone()),
        }
    }

    /// Short label used in error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Real(_) => "real",
            Value::Str(_) => "string",
            Value::Bool(_) => "bool",
            Value::Ident(_) => "ident",
            Value::Point(_) => "point",
            Value::Rect(_) => "rect",
            Value::Pgon(_) => "pgon",
            Value::Tuple(_) => "tuple",
            Value::Rel(_) => "rel",
            Value::Stream(_) | Value::Cursor(_) => "stream",
            Value::Closure(_) => "function",
            Value::List(_) => "list",
            Value::Pair(_) => "pair",
            Value::SRel(_) => "srel",
            Value::TidRel(_) => "tidrel",
            Value::BTree(_) => "btree",
            Value::LsdTree(_) => "lsdtree",
            // A partitioned object keeps its declared kind.
            Value::Part(h) => h
                .parts
                .first()
                .map(|p| p.kind_name())
                .unwrap_or("partitioned"),
            Value::Undefined => "undefined",
        }
    }

    pub fn as_bool(&self, op: &str) -> ExecResult<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(mismatch(op, "bool", &other.kind_name())),
        }
    }

    pub fn as_int(&self, op: &str) -> ExecResult<i64> {
        match self {
            Value::Int(v) => Ok(*v),
            other => Err(mismatch(op, "int", &other.kind_name())),
        }
    }

    pub fn as_tuple(&self, op: &str) -> ExecResult<&[Value]> {
        match self {
            Value::Tuple(fs) => Ok(fs),
            other => Err(mismatch(op, "tuple", &other.kind_name())),
        }
    }

    /// Borrow materialized stream tuples. Pipelined cursors must be
    /// drained with [`crate::stream::materialize`] instead.
    pub fn as_stream(&self, op: &str) -> ExecResult<&[Value]> {
        match self {
            Value::Stream(ts) => Ok(ts),
            other => Err(mismatch(op, "materialized stream", &other.kind_name())),
        }
    }

    pub fn as_closure(&self, op: &str) -> ExecResult<&Arc<Closure>> {
        match self {
            Value::Closure(c) => Ok(c),
            other => Err(mismatch(op, "function", &other.kind_name())),
        }
    }

    // ---- storage conversion ----

    /// Encode a tuple value as storage fields (schema order).
    pub fn to_fields(&self, op: &str) -> ExecResult<Vec<Field>> {
        let fields = self.as_tuple(op)?;
        fields
            .iter()
            .map(|v| match v {
                Value::Int(x) => Ok(Field::Int(*x)),
                Value::Real(x) => Ok(Field::Real(*x)),
                Value::Str(s) => Ok(Field::Str(s.clone())),
                Value::Bool(b) => Ok(Field::Bool(*b)),
                Value::Point(p) => Ok(Field::Point(*p)),
                Value::Rect(r) => Ok(Field::Rect(*r)),
                Value::Pgon(p) => Ok(Field::Pgon(p.clone())),
                other => Err(mismatch(op, "storable field", &other.kind_name())),
            })
            .collect()
    }

    /// Decode storage fields into a tuple value.
    pub fn from_fields(fields: Vec<Field>) -> Value {
        Value::tuple(fields.into_iter().map(Value::from_field).collect())
    }

    fn from_field(f: Field) -> Value {
        match f {
            Field::Int(v) => Value::Int(v),
            Field::Real(v) => Value::Real(v),
            Field::Str(s) => Value::Str(s),
            Field::Bool(b) => Value::Bool(b),
            Field::Point(p) => Value::Point(p),
            Field::Rect(r) => Value::Rect(r),
            Field::Pgon(p) => Value::Pgon(p),
        }
    }

    /// Encode a tuple value to record bytes.
    pub fn encode_tuple(&self, op: &str) -> ExecResult<Vec<u8>> {
        Ok(sos_storage::field::encode_record(&self.to_fields(op)?))
    }

    /// Decode record bytes to a tuple value. Fields are converted as
    /// they are decoded and collected straight into the shared slice:
    /// one allocation per record, no intermediate `Vec<Field>`.
    pub fn decode_tuple(bytes: &[u8]) -> ExecResult<Value> {
        Ok(Value::Tuple(sos_storage::field::decode_record_shared(
            bytes,
            Value::from_field,
            || Value::Undefined,
        )?))
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => a == b,
            (Real(a), Real(b)) => a == b,
            (Str(a), Str(b)) => a == b,
            (Bool(a), Bool(b)) => a == b,
            (Ident(a), Ident(b)) => a == b,
            (Point(a), Point(b)) => a == b,
            (Rect(a), Rect(b)) => a == b,
            (Pgon(a), Pgon(b)) => a == b,
            // Shared tuples short-circuit on pointer identity before
            // falling back to structural comparison.
            (Tuple(a), Tuple(b)) => Arc::ptr_eq(a, b) || a == b,
            (Rel(a), Rel(b)) | (Stream(a), Stream(b)) | (List(a), List(b)) | (Pair(a), Pair(b)) => {
                a == b
            }
            (Cursor(a), Cursor(b)) => Arc::ptr_eq(a, b),
            (SRel(a), SRel(b)) | (TidRel(a), TidRel(b)) => Arc::ptr_eq(a, b),
            (BTree(a), BTree(b)) => Arc::ptr_eq(a, b),
            (LsdTree(a), LsdTree(b)) => Arc::ptr_eq(a, b),
            (Part(a), Part(b)) => Arc::ptr_eq(a, b),
            (Undefined, Undefined) => true,
            // Closures are never equal (function extensionality is
            // undecidable).
            _ => false,
        }
    }
}

impl std::fmt::Debug for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Real(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Ident(s) => write!(f, "{s}"),
            Value::Point(p) => write!(f, "{p}"),
            Value::Rect(r) => write!(f, "{r}"),
            Value::Pgon(p) => write!(f, "{p}"),
            Value::Tuple(fs) => {
                write!(f, "(")?;
                for (i, v) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v:?}")?;
                }
                write!(f, ")")
            }
            Value::Rel(ts) => write!(f, "rel[{} tuples]", ts.len()),
            Value::Stream(ts) => write!(f, "stream[{} tuples]", ts.len()),
            Value::Cursor(c) => write!(f, "{:?}", c.lock()),
            Value::Closure(c) => write!(f, "fun/{}", c.params.len()),
            Value::List(vs) => {
                write!(f, "<")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v:?}")?;
                }
                write!(f, ">")
            }
            Value::Pair(vs) => {
                write!(f, "(")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v:?}")?;
                }
                write!(f, ")")
            }
            Value::SRel(h) => write!(f, "srel[{} pages]", h.pages().len()),
            Value::TidRel(h) => write!(f, "tidrel[{} pages]", h.pages().len()),
            Value::BTree(h) => write!(f, "btree[{} records]", h.tree.len()),
            Value::LsdTree(h) => write!(f, "lsdtree[{} entries]", h.tree.len()),
            Value::Part(h) => write!(
                f,
                "partitioned {}[{} parts]",
                self.kind_name(),
                h.parts.len()
            ),
            Value::Undefined => write!(f, "undefined"),
        }
    }
}

/// Render a query result the way the system's REPL prints it.
pub fn render(v: &Value) -> String {
    match v {
        Value::Rel(ts) | Value::Stream(ts) => {
            let mut out = String::new();
            for t in ts {
                out.push_str(&format!("{t:?}\n"));
            }
            out.push_str(&format!("({} tuples)", ts.len()));
            out
        }
        other => format!("{other:?}"),
    }
}

/// Ordering between two data values of the same type, used by sorting
/// and comparison operators.
pub fn compare(op: &str, a: &Value, b: &Value) -> ExecResult<std::cmp::Ordering> {
    use Value::*;
    match (a, b) {
        (Int(x), Int(y)) => Ok(x.cmp(y)),
        (Real(x), Real(y)) => Ok(x.total_cmp(y)),
        (Int(x), Real(y)) => Ok((*x as f64).total_cmp(y)),
        (Real(x), Int(y)) => Ok(x.total_cmp(&(*y as f64))),
        (Str(x), Str(y)) => Ok(x.cmp(y)),
        (Bool(x), Bool(y)) => Ok(x.cmp(y)),
        (Ident(x), Ident(y)) => Ok(x.cmp(y)),
        (Point(x), Point(y)) => Ok(x.total_cmp(y)),
        _ => Err(ExecError::TypeMismatch {
            op: op.to_string(),
            expected: "comparable values of equal type".into(),
            found: format!("{} vs {}", a.kind_name(), b.kind_name()),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_conversion() {
        assert_eq!(Value::from_const(&Const::Int(3)), Value::Int(3));
        assert_eq!(
            Value::from_const(&Const::Str("x".into())),
            Value::Str("x".into())
        );
    }

    #[test]
    fn tuple_field_roundtrip() {
        let t = Value::tuple(vec![
            Value::Str("Hagen".into()),
            Value::Int(190000),
            Value::Point(Point::new(7.5, 51.4)),
        ]);
        let bytes = t.encode_tuple("test").unwrap();
        assert_eq!(Value::decode_tuple(&bytes).unwrap(), t);
    }

    #[test]
    fn compare_mixed_numerics() {
        assert_eq!(
            compare("<", &Value::Int(2), &Value::Real(2.5)).unwrap(),
            std::cmp::Ordering::Less
        );
        assert!(compare("<", &Value::Int(1), &Value::Str("a".into())).is_err());
    }

    #[test]
    fn rel_equality_is_structural_handles_by_pointer() {
        let a = Value::Rel(vec![Value::tuple(vec![Value::Int(1)])]);
        let b = Value::Rel(vec![Value::tuple(vec![Value::Int(1)])]);
        assert_eq!(a, b);
        let pool = sos_storage::mem_pool(8);
        let h = Arc::new(sos_storage::heap::HeapFile::create(pool.clone()).unwrap());
        let h2 = Arc::new(sos_storage::heap::HeapFile::create(pool).unwrap());
        assert_eq!(Value::SRel(h.clone()), Value::SRel(h.clone()));
        assert_ne!(Value::SRel(h), Value::SRel(h2));
    }
}
