//! Pipelined stream cursors.
//!
//! Section 4 assumes "the underlying execution engine can process
//! sequences of operations on streams in a pipelined fashion". A
//! [`Cursor`] is a small pull-based plan: scans and index searches
//! produce tuples on demand (touching pages lazily), `filter` and `head`
//! compose without materializing, and consumers (`count`, `collect`,
//! blocking operators like `sortby`) drain incrementally. `head[n]` over
//! a million-tuple B-tree therefore touches a handful of pages — see
//! `tests/pipelining.rs`.
//!
//! A cursor travels inside a [`Value::Cursor`] behind `Arc<Mutex<..>>`:
//! cloning a stream value shares the cursor (streams are linear; a
//! drained stream stays drained). Crossing the statement boundary, the
//! system materializes cursors into plain [`Value::Stream`] results.

use crate::compile::{compile_gated, CompiledFun};
use crate::engine::{EvalCtx, ExecEngine};
use crate::error::{ExecError, ExecResult};
use crate::handles::BTreeHandle;
use crate::value::{Closure, Value};
use sos_storage::heap::HeapFile;
use sos_storage::keys::KeyBytes;
use sos_storage::PageId;
use std::collections::VecDeque;
use std::sync::Arc;

/// A pull-based tuple stream.
pub enum Cursor {
    /// Materialized tuples (the degenerate cursor).
    Mat(VecDeque<Value>),
    /// Page-at-a-time scan of a heap file.
    Heap {
        heap: Arc<HeapFile>,
        pages: Vec<PageId>,
        page_idx: usize,
        buf: VecDeque<Value>,
    },
    /// Leaf-chain walk of a clustered B-tree over `[lo, hi]`.
    BTreeRange {
        handle: Arc<BTreeHandle>,
        lo: KeyBytes,
        hi: KeyBytes,
        next_page: Option<PageId>,
        primed: bool,
        done: bool,
        buf: VecDeque<Value>,
    },
    /// Pipelined selection. `compiled` holds the predicate lowered to
    /// bytecode (see [`crate::compile`]); `None` keeps the interpreter.
    Filter {
        input: Box<Cursor>,
        pred: Arc<Closure>,
        compiled: Option<Arc<CompiledFun>>,
    },
    /// Pipelined prefix (stops pulling once exhausted).
    Head {
        input: Box<Cursor>,
        remaining: usize,
    },
    /// Pipelined generalized projection: each output tuple is built by
    /// applying the attribute functions to the input tuple. `compiled`
    /// parallels `funs` (compilation is per attribute function).
    Project {
        input: Box<Cursor>,
        funs: Vec<Arc<Closure>>,
        compiled: Vec<Option<Arc<CompiledFun>>>,
    },
    /// Pipelined attribute replacement.
    Replace {
        input: Box<Cursor>,
        idx: usize,
        fun: Arc<Closure>,
        compiled: Option<Arc<CompiledFun>>,
    },
    /// Pipelined search join: for each outer tuple, the parameter
    /// function produces the matching inner stream (Section 4).
    SearchJoin {
        outer: Box<Cursor>,
        fun: Arc<Closure>,
        current_outer: Option<Value>,
        inner: VecDeque<Value>,
    },
    /// Scan of a partitioned object: the per-partition sub-cursors are
    /// drained in partition order. Partition pruning (the `filter` and
    /// index operators) may drop sub-cursors before the first pull;
    /// the parallel executor schedules the survivors one per worker.
    PartScan {
        handle: Arc<crate::partition::PartHandle>,
        cursors: Vec<Cursor>,
        idx: usize,
    },
    /// A cursor shared through a cloned stream value.
    Shared(Arc<parking_lot::Mutex<Cursor>>),
}

impl Cursor {
    pub fn materialized(tuples: Vec<Value>) -> Cursor {
        Cursor::Mat(tuples.into())
    }

    pub fn heap_scan(heap: Arc<HeapFile>) -> Cursor {
        let pages = heap.pages();
        Cursor::Heap {
            heap,
            pages,
            page_idx: 0,
            buf: VecDeque::new(),
        }
    }

    pub fn btree_range(handle: Arc<BTreeHandle>, lo: KeyBytes, hi: KeyBytes) -> Cursor {
        Cursor::BTreeRange {
            handle,
            lo,
            hi,
            next_page: None,
            primed: false,
            done: false,
            buf: VecDeque::new(),
        }
    }

    /// Full scan of a partitioned object: one sub-cursor per partition,
    /// drained in order. Heap and B-tree partitions stay pipelined;
    /// LSD-tree partitions materialize (their `scan` is bulk, exactly
    /// like `feed` over an unpartitioned lsdtree).
    pub fn part_scan(handle: Arc<crate::partition::PartHandle>) -> ExecResult<Cursor> {
        let cursors = handle
            .parts
            .iter()
            .map(Cursor::part_cursor)
            .collect::<ExecResult<Vec<_>>>()?;
        Ok(Cursor::PartScan {
            handle,
            cursors,
            idx: 0,
        })
    }

    /// The scan cursor of one partition's value.
    fn part_cursor(part: &Value) -> ExecResult<Cursor> {
        match part {
            Value::SRel(h) | Value::TidRel(h) => Ok(Cursor::heap_scan(h.clone())),
            Value::BTree(h) => Ok(Cursor::btree_range(
                h.clone(),
                sos_storage::keys::bottom(),
                sos_storage::keys::top(),
            )),
            Value::LsdTree(h) => {
                let entries = h.tree.scan().map_err(ExecError::Storage)?;
                let tuples = entries
                    .iter()
                    .map(|e| Value::decode_tuple(&e.payload))
                    .collect::<ExecResult<Vec<_>>>()?;
                Ok(Cursor::materialized(tuples))
            }
            other => Err(ExecError::Other(format!(
                "cannot scan a {} partition",
                other.kind_name()
            ))),
        }
    }

    /// A filter step, compiling the predicate when the engine allows
    /// (recording the compile/fallback either way).
    pub fn filter(engine: &ExecEngine, input: Cursor, pred: Arc<Closure>) -> Cursor {
        let compiled = compile_gated(engine, &pred);
        Cursor::Filter {
            input: Box::new(input),
            pred,
            compiled,
        }
    }

    /// A projection step; each attribute function compiles independently
    /// (a mix of compiled and interpreted columns is fine).
    pub fn project(engine: &ExecEngine, input: Cursor, funs: Vec<Arc<Closure>>) -> Cursor {
        let compiled = funs.iter().map(|f| compile_gated(engine, f)).collect();
        Cursor::Project {
            input: Box::new(input),
            funs,
            compiled,
        }
    }

    /// An attribute-replacement step, compiling the field function when
    /// the engine allows.
    pub fn replace(engine: &ExecEngine, input: Cursor, idx: usize, fun: Arc<Closure>) -> Cursor {
        let compiled = compile_gated(engine, &fun);
        Cursor::Replace {
            input: Box::new(input),
            idx,
            fun,
            compiled,
        }
    }

    /// Pull the next tuple, touching pages only as needed.
    pub fn next(&mut self, ctx: &mut EvalCtx) -> ExecResult<Option<Value>> {
        match self {
            Cursor::Mat(buf) => Ok(buf.pop_front()),
            Cursor::Heap {
                heap,
                pages,
                page_idx,
                buf,
            } => loop {
                if let Some(v) = buf.pop_front() {
                    return Ok(Some(v));
                }
                if *page_idx >= pages.len() {
                    return Ok(None);
                }
                let page = pages[*page_idx];
                *page_idx += 1;
                for item in heap.scan_pages(vec![page]) {
                    let (_, bytes) = item?;
                    buf.push_back(Value::decode_tuple(&bytes)?);
                }
            },
            Cursor::BTreeRange {
                handle,
                lo,
                hi,
                next_page,
                primed,
                done,
                buf,
            } => loop {
                if let Some(v) = buf.pop_front() {
                    return Ok(Some(v));
                }
                if *done {
                    return Ok(None);
                }
                let pid = if !*primed {
                    *primed = true;
                    handle.tree.find_leaf(lo)?
                } else {
                    match *next_page {
                        Some(p) => p,
                        None => {
                            *done = true;
                            return Ok(None);
                        }
                    }
                };
                let (entries, next) = handle.tree.read_leaf(pid)?;
                *next_page = next;
                let mut past_hi = false;
                for (k, v) in entries {
                    if k.as_slice() < lo.as_slice() {
                        continue;
                    }
                    if k.as_slice() > hi.as_slice() {
                        past_hi = true;
                        break;
                    }
                    buf.push_back(Value::decode_tuple(&v)?);
                }
                // `done` stops further page reads; buffered tuples still
                // drain through the loop head above.
                if past_hi || next.is_none() {
                    *done = true;
                }
            },
            Cursor::Filter {
                input,
                pred,
                compiled,
            } => loop {
                let Some(t) = input.next(ctx)? else {
                    return Ok(None);
                };
                let keep = if let Some(cf) = compiled {
                    cf.call(std::slice::from_ref(&t))?.as_bool("filter")?
                } else {
                    let pred = pred.clone();
                    ctx.call(&pred, vec![t.clone()])?.as_bool("filter")?
                };
                if keep {
                    return Ok(Some(t));
                }
            },
            Cursor::Project {
                input,
                funs,
                compiled,
            } => {
                let Some(t) = input.next(ctx)? else {
                    return Ok(None);
                };
                let funs = funs.clone();
                let compiled = compiled.clone();
                let mut fields = Vec::with_capacity(funs.len());
                for (f, cf) in funs.iter().zip(&compiled) {
                    fields.push(match cf {
                        Some(cf) => cf.call(std::slice::from_ref(&t))?,
                        None => ctx.call(f, vec![t.clone()])?,
                    });
                }
                Ok(Some(Value::tuple(fields)))
            }
            Cursor::Replace {
                input,
                idx,
                fun,
                compiled,
            } => {
                let Some(t) = input.next(ctx)? else {
                    return Ok(None);
                };
                let (idx, fun, compiled) = (*idx, fun.clone(), compiled.clone());
                let mut fields = t.as_tuple("replace")?.to_vec();
                fields[idx] = match &compiled {
                    Some(cf) => cf.call(std::slice::from_ref(&t))?,
                    None => ctx.call(&fun, vec![t.clone()])?,
                };
                Ok(Some(Value::tuple(fields)))
            }
            Cursor::SearchJoin {
                outer,
                fun,
                current_outer,
                inner,
            } => loop {
                if let Some(i) = inner.pop_front() {
                    let o = current_outer.as_ref().expect("outer set with inner");
                    return Ok(Some(crate::ops::relational::concat_tuples(
                        o,
                        &i,
                        "search_join",
                    )?));
                }
                let fun = fun.clone();
                let Some(o) = outer.next(ctx)? else {
                    return Ok(None);
                };
                let produced = ctx.call(&fun, vec![o.clone()])?;
                *inner = materialize(ctx, produced)?.into();
                *current_outer = Some(o);
            },
            Cursor::PartScan { cursors, idx, .. } => loop {
                let Some(c) = cursors.get_mut(*idx) else {
                    return Ok(None);
                };
                if let Some(t) = c.next(ctx)? {
                    return Ok(Some(t));
                }
                *idx += 1;
            },
            Cursor::Shared(c) => {
                let mut guard = c.lock();
                guard.next(ctx)
            }
            Cursor::Head { input, remaining } => {
                if *remaining == 0 {
                    return Ok(None);
                }
                match input.next(ctx)? {
                    Some(t) => {
                        *remaining -= 1;
                        Ok(Some(t))
                    }
                    None => {
                        *remaining = 0;
                        Ok(None)
                    }
                }
            }
        }
    }

    /// Pull up to `n` tuples in one call — the vectorized counterpart of
    /// [`Cursor::next`]. Returns `None` once exhausted, otherwise
    /// `1..=n` tuples in the same order `next` would produce them.
    ///
    /// Sources decode a whole page per refill (one fetch and latch via
    /// the storage `visit_page`/`visit_leaf` helpers, spilling the
    /// remainder past `n` into the cursor's buffer); `Filter`, `Project`
    /// and `Replace` evaluate their closures over the whole batch inside
    /// one installed [`crate::engine::CallFrame`], paying the captured-
    /// environment clone once per batch instead of per tuple.
    ///
    /// Semantics match the tuple-at-a-time path, with one documented
    /// exception: `Project` evaluates column-wise (each function over
    /// the whole batch), so when several projection functions fail
    /// within one batch the error surfaced is the first in (function,
    /// row) order rather than (row, function) order.
    pub fn next_batch(&mut self, ctx: &mut EvalCtx, n: usize) -> ExecResult<Option<Vec<Value>>> {
        let mut out = Vec::with_capacity(n.clamp(1, 4096));
        let got = self.next_batch_into(ctx, n, &mut out)?;
        Ok((got > 0).then_some(out))
    }

    /// [`Cursor::next_batch`] into a caller-owned buffer: appends up to
    /// `n` tuples to `out` and returns how many were appended (0 once
    /// exhausted). Batched consumers (`count`, `collect`, the
    /// statement-boundary drain) reuse one buffer across the whole
    /// drain instead of allocating a fresh vector per batch.
    pub fn next_batch_into(
        &mut self,
        ctx: &mut EvalCtx,
        n: usize,
        out: &mut Vec<Value>,
    ) -> ExecResult<usize> {
        let n = n.max(1);
        let start = out.len();
        let target = start + n;
        match self {
            Cursor::Mat(buf) => {
                let take = n.min(buf.len());
                out.extend(buf.drain(..take));
            }
            Cursor::Heap {
                heap,
                pages,
                page_idx,
                buf,
            } => {
                while out.len() < target {
                    if let Some(v) = buf.pop_front() {
                        out.push(v);
                        continue;
                    }
                    if *page_idx >= pages.len() {
                        break;
                    }
                    let page = pages[*page_idx];
                    *page_idx += 1;
                    heap.visit_page::<ExecError, _>(page, |_, bytes| {
                        let v = Value::decode_tuple(bytes)?;
                        if out.len() < target {
                            out.push(v);
                        } else {
                            buf.push_back(v);
                        }
                        Ok(())
                    })?;
                }
            }
            Cursor::BTreeRange {
                handle,
                lo,
                hi,
                next_page,
                primed,
                done,
                buf,
            } => {
                while out.len() < target {
                    if let Some(v) = buf.pop_front() {
                        out.push(v);
                        continue;
                    }
                    if *done {
                        break;
                    }
                    let pid = if !*primed {
                        *primed = true;
                        handle.tree.find_leaf(lo)?
                    } else {
                        match *next_page {
                            Some(p) => p,
                            None => {
                                *done = true;
                                break;
                            }
                        }
                    };
                    let mut past_hi = false;
                    let next = handle.tree.visit_leaf::<ExecError, _>(pid, |k, bytes| {
                        if past_hi || k < lo.as_slice() {
                            return Ok(());
                        }
                        if k > hi.as_slice() {
                            past_hi = true;
                            return Ok(());
                        }
                        let v = Value::decode_tuple(bytes)?;
                        if out.len() < target {
                            out.push(v);
                        } else {
                            buf.push_back(v);
                        }
                        Ok(())
                    })?;
                    *next_page = next;
                    if past_hi || next.is_none() {
                        *done = true;
                    }
                }
            }
            Cursor::Filter {
                input,
                pred,
                compiled,
            } => {
                let pred = pred.clone();
                let compiled = compiled.clone();
                let mut scratch = Vec::with_capacity(n.min(4096));
                loop {
                    scratch.clear();
                    if input.next_batch_into(ctx, n, &mut scratch)? == 0 {
                        break;
                    }
                    if let Some(cf) = &compiled {
                        // Compiled path: the whole batch through the
                        // bytecode (columnar when the predicate is
                        // int/bool throughout), then push by mask.
                        let mask = cf.eval_mask(&scratch, "filter")?;
                        for (t, keep) in scratch.drain(..).zip(mask) {
                            if keep {
                                out.push(t);
                            }
                        }
                    } else {
                        let frame = ctx.begin_call(&pred);
                        let mut res = Ok(());
                        for t in scratch.drain(..) {
                            match ctx
                                .call_bound1(&pred, &frame, t.clone())
                                .and_then(|v| v.as_bool("filter"))
                            {
                                Ok(true) => out.push(t),
                                Ok(false) => {}
                                Err(e) => {
                                    res = Err(e);
                                    break;
                                }
                            }
                        }
                        ctx.end_call(frame);
                        res?;
                    }
                    if out.len() > start {
                        break;
                    }
                }
            }
            Cursor::Project {
                input,
                funs,
                compiled,
            } => {
                let mut batch = Vec::with_capacity(n.min(4096));
                if input.next_batch_into(ctx, n, &mut batch)? > 0 {
                    let funs = funs.clone();
                    let compiled = compiled.clone();
                    let mut cols: Vec<Vec<Value>> = Vec::with_capacity(funs.len());
                    for (f, cf) in funs.iter().zip(&compiled) {
                        if let Some(cf) = cf {
                            // Compiled column: same (function, row) error
                            // order as the interpreted batch loop below.
                            cols.push(cf.eval_column(&batch)?);
                            continue;
                        }
                        let frame = ctx.begin_call(f);
                        let mut col = Vec::with_capacity(batch.len());
                        let mut res = Ok(());
                        for t in &batch {
                            match ctx.call_bound1(f, &frame, t.clone()) {
                                Ok(v) => col.push(v),
                                Err(e) => {
                                    res = Err(e);
                                    break;
                                }
                            }
                        }
                        ctx.end_call(frame);
                        res?;
                        cols.push(col);
                    }
                    let mut iters: Vec<_> = cols.into_iter().map(|c| c.into_iter()).collect();
                    for _ in 0..batch.len() {
                        out.push(Value::tuple(
                            iters
                                .iter_mut()
                                .map(|it| it.next().expect("column length matches batch"))
                                .collect(),
                        ));
                    }
                }
            }
            Cursor::Replace {
                input,
                idx,
                fun,
                compiled,
            } => {
                let mut batch = Vec::with_capacity(n.min(4096));
                if input.next_batch_into(ctx, n, &mut batch)? > 0 {
                    let (idx, fun, compiled) = (*idx, fun.clone(), compiled.clone());
                    if let Some(cf) = &compiled {
                        // Columnar only when the whole batch evaluates
                        // clean (`try_columnar`); otherwise interleave
                        // call-then-rebuild per row like the interpreted
                        // loop, so the first error (function vs. tuple
                        // rebuild) lands in the same place.
                        let vals = cf.try_columnar(&batch);
                        for (r, t) in batch.iter().enumerate() {
                            let v = match &vals {
                                Some(vs) => vs[r].clone(),
                                None => cf.call(std::slice::from_ref(t))?,
                            };
                            let mut fields = t.as_tuple("replace")?.to_vec();
                            fields[idx] = v;
                            out.push(Value::tuple(fields));
                        }
                    } else {
                        let frame = ctx.begin_call(&fun);
                        let mut res = Ok(());
                        for t in &batch {
                            let built = ctx.call_bound1(&fun, &frame, t.clone()).and_then(|v| {
                                let mut fields = t.as_tuple("replace")?.to_vec();
                                fields[idx] = v;
                                Ok(Value::tuple(fields))
                            });
                            match built {
                                Ok(v) => out.push(v),
                                Err(e) => {
                                    res = Err(e);
                                    break;
                                }
                            }
                        }
                        ctx.end_call(frame);
                        res?;
                    }
                }
            }
            Cursor::Head { input, remaining } => {
                if *remaining > 0 {
                    let take = n.min(*remaining);
                    let got = input.next_batch_into(ctx, take, out)?;
                    *remaining = if got == 0 { 0 } else { *remaining - got };
                }
            }
            Cursor::PartScan { cursors, idx, .. } => {
                while out.len() < target {
                    let Some(c) = cursors.get_mut(*idx) else {
                        break;
                    };
                    if c.next_batch_into(ctx, target - out.len(), out)? == 0 {
                        *idx += 1;
                    }
                }
            }
            Cursor::Shared(c) => {
                let c = c.clone();
                let mut guard = c.lock();
                guard.next_batch_into(ctx, n, out)?;
            }
            // The search join refills its inner buffer per outer tuple;
            // batching adds nothing, so it stays on the tuple path.
            Cursor::SearchJoin { .. } => {
                while out.len() < target {
                    match self.next(ctx)? {
                        Some(t) => out.push(t),
                        None => break,
                    }
                }
            }
        }
        Ok(out.len() - start)
    }

    /// Drain the remaining tuples. With an engine batch width above 1
    /// the drain pulls whole batches (recorded under the `materialize`
    /// operator); width 1 is the exact legacy tuple-at-a-time loop.
    pub fn drain(&mut self, ctx: &mut EvalCtx) -> ExecResult<Vec<Value>> {
        let width = ctx.engine.batch_size();
        if width <= 1 {
            let mut out = Vec::new();
            while let Some(t) = self.next(ctx)? {
                out.push(t);
            }
            return Ok(out);
        }
        let mut out = Vec::new();
        let mut batches = 0u64;
        while self.next_batch_into(ctx, width, &mut out)? > 0 {
            batches += 1;
        }
        ctx.engine
            .stats
            .record_batches("materialize", batches, out.len() as u64);
        Ok(out)
    }
}

impl std::fmt::Debug for Cursor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self {
            Cursor::Mat(b) => return write!(f, "cursor[mat, {} buffered]", b.len()),
            Cursor::Heap { .. } => "heap-scan",
            Cursor::BTreeRange { .. } => "btree-range",
            Cursor::Filter { .. } => "filter",
            Cursor::Head { .. } => "head",
            Cursor::Project { .. } => "project",
            Cursor::Replace { .. } => "replace",
            Cursor::SearchJoin { .. } => "search-join",
            Cursor::PartScan { cursors, idx, .. } => {
                return write!(f, "cursor[part-scan, {}/{} parts]", idx, cursors.len())
            }
            Cursor::Shared(_) => "shared",
        };
        write!(f, "cursor[{kind}]")
    }
}

/// Turn any stream-like value into its tuples, draining cursors.
///
/// When the engine has more than one worker and the cursor is an
/// undrained heap scan under pure pipeline steps, the drain runs
/// data-parallel (see [`crate::parallel`]); the result is identical to
/// the serial drain, in the same order.
pub fn materialize(ctx: &mut EvalCtx, v: Value) -> ExecResult<Vec<Value>> {
    match v {
        Value::Stream(ts) | Value::Rel(ts) => Ok(ts),
        Value::Cursor(c) => {
            let mut guard = c.lock();
            if let Some(res) = crate::parallel::try_par_drain(ctx.engine, &mut guard) {
                return res;
            }
            if let Some(res) = crate::parallel::try_par_search_join(ctx, &mut guard) {
                return res;
            }
            guard.drain(ctx)
        }
        Value::Undefined => Ok(Vec::new()),
        other => Err(ExecError::TypeMismatch {
            op: "stream".into(),
            expected: "stream".into(),
            found: other.kind_name().into(),
        }),
    }
}

/// Extract a cursor from a stream-like value (wrapping materialized
/// streams), for operators that stay pipelined.
pub fn into_cursor(v: Value) -> ExecResult<Cursor> {
    match v {
        Value::Cursor(c) => {
            // Take the cursor out if uniquely held; otherwise drain lazily
            // through the shared handle by wrapping.
            match Arc::try_unwrap(c) {
                Ok(m) => Ok(m.into_inner()),
                Err(shared) => Ok(Cursor::Shared(shared)),
            }
        }
        Value::Stream(ts) | Value::Rel(ts) => Ok(Cursor::materialized(ts)),
        Value::Undefined => Ok(Cursor::materialized(Vec::new())),
        other => Err(ExecError::TypeMismatch {
            op: "stream".into(),
            expected: "stream".into(),
            found: other.kind_name().into(),
        }),
    }
}
