//! Intra-operator parallelism: data-parallel drains of heap-backed
//! cursor pipelines and chunked evaluation over in-memory relations.
//!
//! The serial engine stays the source of truth: a pipeline is only
//! parallelized when every function it applies is *pure* (built from the
//! context-free operators of [`crate::ops::basic`] plus attribute
//! access), and the parallel path then evaluates the exact same operator
//! implementations over page partitions, reducing per-worker results in
//! page order. The outcome is extensionally equal to the serial drain by
//! construction — `tests/par_vs_serial.rs` checks this differentially.
//!
//! `workers == 1` (the default on single-core machines) never spawns and
//! never takes any code path here, preserving exact legacy behavior.

use crate::engine::ExecEngine;
use crate::error::{ExecError, ExecResult};
use crate::ops::basic;
use crate::stream::Cursor;
use crate::value::{Closure, Value};
use sos_core::typed::{TypedExpr, TypedNode};
use sos_storage::heap::HeapFile;
use sos_storage::PageId;
use std::sync::Arc;

/// Minimum heap pages before a scan is worth partitioning.
pub const PAR_MIN_PAGES: usize = 2;
/// Minimum in-memory tuples before chunked evaluation is worth spawning.
pub const PAR_MIN_TUPLES: usize = 64;

// ---------------------------------------------------------------------
// Pure functions: closures safe to evaluate on worker threads.
// ---------------------------------------------------------------------

/// A closure verified to be context-free: its body touches no database
/// object, applies only atomic operators and attribute access, and
/// contains no nested function values. Such a closure can be evaluated
/// on any thread without an [`crate::engine::EvalCtx`].
///
/// When the engine's expression compiler is on, a `PureFun` also carries
/// the closure lowered to bytecode ([`crate::compile`]) and workers run
/// that instead of the tree walker — the pure subset is a superset of
/// the compilable one except for unbound variables, and the bytecode is
/// extensionally equal where it exists, so the parallel result is
/// unchanged either way.
pub struct PureFun {
    closure: Arc<Closure>,
    compiled: Option<Arc<crate::compile::CompiledFun>>,
}

impl PureFun {
    /// Verify purity; `None` means the closure needs the serial engine.
    /// Lowers to bytecode as a side benefit (without touching the
    /// engine's compile counters — these are transient per-call
    /// programs, not plan construction).
    pub fn compile(engine: &ExecEngine, closure: &Arc<Closure>) -> Option<PureFun> {
        Self::with_program(engine, closure, None)
    }

    /// Like [`PureFun::compile`], but reuses an already-lowered program
    /// (e.g. the one attached to the cursor being parallelized) instead
    /// of lowering the closure again.
    pub fn with_program(
        engine: &ExecEngine,
        closure: &Arc<Closure>,
        program: Option<Arc<crate::compile::CompiledFun>>,
    ) -> Option<PureFun> {
        if !is_pure_expr(engine, &closure.body) {
            return None;
        }
        let compiled = program.or_else(|| crate::compile::compile_silent(engine, closure));
        Some(PureFun {
            closure: closure.clone(),
            compiled,
        })
    }

    /// Apply to argument values. Mirrors `EvalCtx::call` exactly
    /// (environment layout, arity errors) for the pure subset.
    pub fn call(&self, engine: &ExecEngine, args: &[Value]) -> ExecResult<Value> {
        if let Some(cf) = &self.compiled {
            return cf.call(args);
        }
        if self.closure.params.len() != args.len() {
            return Err(ExecError::Other(format!(
                "function expects {} argument(s), got {}",
                self.closure.params.len(),
                args.len()
            )));
        }
        let mut env = self.closure.captured.clone();
        for ((name, _), v) in self.closure.params.iter().zip(args) {
            env.push((name.clone(), v.clone()));
        }
        eval_pure(engine, &self.closure.body, &env)
    }
}

fn is_pure_expr(engine: &ExecEngine, te: &TypedExpr) -> bool {
    match &te.node {
        TypedNode::Const(_) | TypedNode::Var(_) => true,
        // Objects read the store; function values re-enter the
        // interpreter. Both stay on the serial path.
        TypedNode::Object(_) | TypedNode::Lambda { .. } | TypedNode::ApplyFun { .. } => false,
        TypedNode::List(items) | TypedNode::Tuple(items) => {
            items.iter().all(|i| is_pure_expr(engine, i))
        }
        TypedNode::Apply { op, args, .. } => {
            let op_ok = engine.is_atomic_op(op)
                || (!engine.has_op(op)
                    && args.len() == 1
                    && crate::handles::attr_index(&args[0].ty, op).is_some());
            op_ok && args.iter().all(|a| is_pure_expr(engine, a))
        }
    }
}

/// Evaluate a pure term: the context-free subset of `EvalCtx::eval`,
/// with identical dispatch order (registered atomic operator first, then
/// attribute access) and identical errors.
fn eval_pure(
    engine: &ExecEngine,
    te: &TypedExpr,
    env: &[(sos_core::Symbol, Value)],
) -> ExecResult<Value> {
    match &te.node {
        TypedNode::Const(c) => Ok(Value::from_const(c)),
        TypedNode::Var(name) => env
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.clone())
            .ok_or_else(|| ExecError::Other(format!("unbound variable `{name}`"))),
        TypedNode::List(items) => Ok(Value::List(
            items
                .iter()
                .map(|i| eval_pure(engine, i, env))
                .collect::<ExecResult<_>>()?,
        )),
        TypedNode::Tuple(items) => Ok(Value::Pair(
            items
                .iter()
                .map(|i| eval_pure(engine, i, env))
                .collect::<ExecResult<_>>()?,
        )),
        TypedNode::Apply { op, args, .. } => {
            let argv = args
                .iter()
                .map(|a| eval_pure(engine, a, env))
                .collect::<ExecResult<Vec<_>>>()?;
            if engine.is_atomic_op(op) {
                return basic::eval_atomic(op.as_str(), &argv)
                    .unwrap_or_else(|| Err(ExecError::NoImpl(op.clone())));
            }
            if let [arg_node] = &args[..] {
                if let Some(idx) = crate::handles::attr_index(&arg_node.ty, op) {
                    let tuple = argv[0].as_tuple(op.as_str())?;
                    return tuple.get(idx).cloned().ok_or_else(|| {
                        ExecError::Other(format!("tuple too short for attribute `{op}`"))
                    });
                }
            }
            Err(ExecError::NoImpl(op.clone()))
        }
        TypedNode::Object(_) | TypedNode::Lambda { .. } | TypedNode::ApplyFun { .. } => Err(
            ExecError::Other("impure term reached the pure evaluator".into()),
        ),
    }
}

// ---------------------------------------------------------------------
// Heap plans: a cursor spine rewritten as scan + pure pipeline steps.
// ---------------------------------------------------------------------

enum Step {
    Filter(PureFun),
    Project(Vec<PureFun>),
    Replace { idx: usize, fun: PureFun },
}

/// An undrained heap scan plus the pure pipeline steps stacked on it —
/// the fragment of a cursor spine that can run data-parallel.
pub struct HeapPlan {
    heap: Arc<HeapFile>,
    pages: Vec<PageId>,
    /// Applied innermost-first, exactly as the serial cursor would.
    steps: Vec<Step>,
}

impl HeapPlan {
    /// Extract a plan from a cursor spine. `None` whenever any part of
    /// the spine must stay serial: a partially drained or non-heap
    /// source, an impure function, a `head` (early termination is the
    /// point of pipelining), or a shared link another value still holds.
    fn from_cursor(engine: &ExecEngine, cursor: &Cursor) -> Option<HeapPlan> {
        match cursor {
            Cursor::Heap {
                heap,
                pages,
                page_idx,
                buf,
            } => {
                if *page_idx != 0 || !buf.is_empty() {
                    return None;
                }
                Some(HeapPlan {
                    heap: heap.clone(),
                    pages: pages.clone(),
                    steps: Vec::new(),
                })
            }
            Cursor::Filter {
                input,
                pred,
                compiled,
            } => {
                let mut plan = Self::from_cursor(engine, input)?;
                plan.steps.push(Step::Filter(PureFun::with_program(
                    engine,
                    pred,
                    compiled.clone(),
                )?));
                Some(plan)
            }
            Cursor::Project {
                input,
                funs,
                compiled,
            } => {
                let mut plan = Self::from_cursor(engine, input)?;
                let pure = funs
                    .iter()
                    .zip(compiled)
                    .map(|(f, c)| PureFun::with_program(engine, f, c.clone()))
                    .collect::<Option<Vec<_>>>()?;
                plan.steps.push(Step::Project(pure));
                Some(plan)
            }
            Cursor::Replace {
                input,
                idx,
                fun,
                compiled,
            } => {
                let mut plan = Self::from_cursor(engine, input)?;
                plan.steps.push(Step::Replace {
                    idx: *idx,
                    fun: PureFun::with_program(engine, fun, compiled.clone())?,
                });
                Some(plan)
            }
            // A shared link inside a spine is parallel-safe only when the
            // spine is its sole owner (a clone elsewhere could observe a
            // partial drain).
            Cursor::Shared(arc) => {
                if Arc::strong_count(arc) != 1 {
                    return None;
                }
                let guard = arc.lock();
                Self::from_cursor(engine, &guard)
            }
            Cursor::Mat(_)
            | Cursor::BTreeRange { .. }
            | Cursor::Head { .. }
            | Cursor::SearchJoin { .. } => None,
        }
    }

    /// Run `fold` over every record of a contiguous page chunk on each
    /// worker: one accumulator per chunk (no per-record allocation or
    /// reduce), records decoded in place via `HeapFile::visit_page`.
    /// Chunk results come back in page order, so concatenation matches
    /// the serial scan; the first error in page order wins.
    fn fold_page_chunks<T, F>(&self, workers: usize, fold: F) -> ExecResult<Vec<(T, usize)>>
    where
        T: Default + Send,
        F: Fn(&mut T, Value) -> ExecResult<()> + Sync,
    {
        let chunks = par_chunks(&self.pages, workers, |_, part| -> ExecResult<(T, usize)> {
            let mut acc = T::default();
            let mut read = 0usize;
            for &pid in part {
                self.heap.visit_page::<ExecError, _>(pid, |_, rec| {
                    read += 1;
                    fold(&mut acc, Value::decode_tuple(rec)?)
                })?;
            }
            Ok((acc, read))
        });
        chunks.into_iter().collect()
    }

    fn collect(&self, engine: &ExecEngine, workers: usize) -> ExecResult<Vec<Value>> {
        let chunks = self.fold_page_chunks(workers, |rows: &mut Vec<Value>, t| {
            if let Some(t) = apply_steps(engine, &self.steps, t)? {
                rows.push(t);
            }
            Ok(())
        })?;
        let mut read = 0;
        let mut out = Vec::new();
        for (mut rows, r) in chunks {
            read += r;
            out.append(&mut rows);
        }
        engine
            .stats
            .record("feed", workers, read, out.len(), self.pages.len());
        engine
            .stats
            .record_batches("feed", self.pages.len() as u64, read as u64);
        Ok(out)
    }

    fn count(&self, engine: &ExecEngine, workers: usize) -> ExecResult<i64> {
        let chunks = self.fold_page_chunks(workers, |n: &mut i64, t| {
            if apply_steps(engine, &self.steps, t)?.is_some() {
                *n += 1;
            }
            Ok(())
        })?;
        let mut read = 0;
        let mut total = 0i64;
        for (n, r) in chunks {
            read += r;
            total += n;
        }
        // `count` emits one value; tuples_out = 1 matches the serial path.
        engine
            .stats
            .record("count", workers, read, 1, self.pages.len());
        engine
            .stats
            .record_batches("count", self.pages.len() as u64, read as u64);
        Ok(total)
    }
}

fn apply_steps(engine: &ExecEngine, steps: &[Step], mut t: Value) -> ExecResult<Option<Value>> {
    for step in steps {
        match step {
            Step::Filter(pred) => {
                if !pred
                    .call(engine, std::slice::from_ref(&t))?
                    .as_bool("filter")?
                {
                    return Ok(None);
                }
            }
            Step::Project(funs) => {
                let mut fields = Vec::with_capacity(funs.len());
                for f in funs {
                    fields.push(f.call(engine, std::slice::from_ref(&t))?);
                }
                t = Value::tuple(fields);
            }
            Step::Replace { idx, fun } => {
                let mut fields = t.as_tuple("replace")?.to_vec();
                fields[*idx] = fun.call(engine, std::slice::from_ref(&t))?;
                t = Value::tuple(fields);
            }
        }
    }
    Ok(Some(t))
}

// ---------------------------------------------------------------------
// Drain hooks: entry points called by the serial operators.
// ---------------------------------------------------------------------

/// Try to drain a cursor in parallel. `None` falls back to the serial
/// drain; `Some` returns the tuples in serial page order and leaves the
/// cursor consumed (as a serial drain would).
pub fn try_par_drain(engine: &ExecEngine, cursor: &mut Cursor) -> Option<ExecResult<Vec<Value>>> {
    if let Cursor::Shared(arc) = cursor {
        let arc = arc.clone();
        let mut guard = arc.lock();
        return try_par_drain(engine, &mut guard);
    }
    let workers = engine.workers();
    if workers <= 1 {
        return None;
    }
    let plan = HeapPlan::from_cursor(engine, cursor)?;
    if plan.pages.len() < PAR_MIN_PAGES {
        return None;
    }
    let result = plan.collect(engine, workers);
    if result.is_ok() {
        *cursor = Cursor::Mat(Default::default());
    }
    Some(result)
}

/// Try to count a cursor's tuples in parallel without materializing them
/// (the filter + count pushdown). Same contract as [`try_par_drain`].
pub fn try_par_count(engine: &ExecEngine, cursor: &mut Cursor) -> Option<ExecResult<i64>> {
    if let Cursor::Shared(arc) = cursor {
        let arc = arc.clone();
        let mut guard = arc.lock();
        return try_par_count(engine, &mut guard);
    }
    let workers = engine.workers();
    if workers <= 1 {
        return None;
    }
    let plan = HeapPlan::from_cursor(engine, cursor)?;
    if plan.pages.len() < PAR_MIN_PAGES {
        return None;
    }
    let result = plan.count(engine, workers);
    if result.is_ok() {
        *cursor = Cursor::Mat(Default::default());
    }
    Some(result)
}

// ---------------------------------------------------------------------
// Chunked evaluation over in-memory tuple slices.
// ---------------------------------------------------------------------

/// Run `f` over contiguous chunks of `items` on scoped worker threads,
/// returning per-chunk results in chunk order (so concatenation
/// reproduces serial order and the first error in chunk order is the
/// first error in item order). `f` receives each chunk's base index.
pub fn par_chunks<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    let workers = workers.max(1).min(items.len());
    if workers <= 1 {
        return vec![f(0, items)];
    }
    let chunk = items.len().div_ceil(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(i, part)| {
                let f = &f;
                scope.spawn(move || f(i * chunk, part))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

/// Flatten chunk results, surfacing the first error in chunk order.
fn merge_chunks(chunks: Vec<ExecResult<Vec<Value>>>) -> ExecResult<Vec<Value>> {
    let mut out = Vec::new();
    for c in chunks {
        out.append(&mut c?);
    }
    Ok(out)
}

/// Parallel `select`/`filter` over an in-memory relation. `None` when
/// the predicate is impure or the input is too small to bother.
pub fn try_par_filter(
    engine: &ExecEngine,
    tuples: &[Value],
    pred: &Value,
    op: &'static str,
) -> Option<ExecResult<Vec<Value>>> {
    let workers = engine.workers();
    if workers <= 1 || tuples.len() < PAR_MIN_TUPLES {
        return None;
    }
    let fun = PureFun::compile(engine, pred.as_closure(op).ok()?)?;
    let chunks = par_chunks(tuples, workers, |_, part| -> ExecResult<Vec<Value>> {
        let mut keep = Vec::new();
        for t in part {
            if fun.call(engine, std::slice::from_ref(t))?.as_bool(op)? {
                keep.push(t.clone());
            }
        }
        Ok(keep)
    });
    let out = merge_chunks(chunks);
    if let Ok(kept) = &out {
        engine
            .stats
            .record(op, workers, tuples.len(), kept.len(), 0);
    }
    Some(out)
}

/// Parallel nested-loop `join`: partitions the left side, each worker
/// joins its chunk against the whole right side.
pub fn try_par_join(
    engine: &ExecEngine,
    left: &[Value],
    right: &[Value],
    pred: &Value,
) -> Option<ExecResult<Vec<Value>>> {
    let workers = engine.workers();
    if workers <= 1 || left.len().saturating_mul(right.len()) < PAR_MIN_TUPLES {
        return None;
    }
    let fun = PureFun::compile(engine, pred.as_closure("join").ok()?)?;
    let chunks = par_chunks(left, workers, |_, part| -> ExecResult<Vec<Value>> {
        let mut out = Vec::new();
        for l in part {
            for r in right {
                if fun.call(engine, &[l.clone(), r.clone()])?.as_bool("join")? {
                    out.push(crate::ops::relational::concat_tuples(l, r, "join")?);
                }
            }
        }
        Ok(out)
    });
    let out = merge_chunks(chunks);
    if let Ok(joined) = &out {
        engine
            .stats
            .record("join", workers, left.len() + right.len(), joined.len(), 0);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sos_core::{Const, DataType, Symbol};

    fn int_ty() -> DataType {
        DataType::Cons(Symbol::new("int"), vec![])
    }

    fn closure_of(body: TypedExpr) -> Arc<Closure> {
        Arc::new(Closure {
            params: vec![(Symbol::new("x"), int_ty())],
            body,
            captured: vec![],
        })
    }

    fn engine() -> ExecEngine {
        ExecEngine::new(sos_storage::mem_pool(16))
    }

    #[test]
    fn identity_and_arithmetic_closures_are_pure() {
        let e = engine();
        let var = TypedExpr::new(TypedNode::Var(Symbol::new("x")), int_ty());
        let body = TypedExpr::new(
            TypedNode::Apply {
                op: Symbol::new("+"),
                spec: 0,
                args: vec![
                    var.clone(),
                    TypedExpr::new(TypedNode::Const(Const::Int(1)), int_ty()),
                ],
            },
            int_ty(),
        );
        let f = PureFun::compile(&e, &closure_of(body)).expect("x + 1 is pure");
        assert_eq!(f.call(&e, &[Value::Int(41)]).unwrap(), Value::Int(42));
        assert!(PureFun::compile(&e, &closure_of(var)).is_some());
    }

    #[test]
    fn object_references_are_impure() {
        let e = engine();
        let body = TypedExpr::new(TypedNode::Object(Symbol::new("cities")), int_ty());
        assert!(PureFun::compile(&e, &closure_of(body)).is_none());
    }

    #[test]
    fn overriding_an_atomic_op_revokes_purity() {
        let mut e = engine();
        let body = TypedExpr::new(
            TypedNode::Apply {
                op: Symbol::new("+"),
                spec: 0,
                args: vec![
                    TypedExpr::new(TypedNode::Var(Symbol::new("x")), int_ty()),
                    TypedExpr::new(TypedNode::Const(Const::Int(1)), int_ty()),
                ],
            },
            int_ty(),
        );
        assert!(PureFun::compile(&e, &closure_of(body.clone())).is_some());
        // A user override of `+` may do anything; the pure evaluator must
        // no longer claim it.
        e.add_op("+", |_, _, _| Ok(Value::Int(0)));
        assert!(PureFun::compile(&e, &closure_of(body)).is_none());
    }

    #[test]
    fn par_chunks_preserves_order_and_offsets() {
        let items: Vec<i64> = (0..100).collect();
        for workers in [1, 3, 8, 200] {
            let chunks = par_chunks(&items, workers, |base, part| {
                part.iter()
                    .enumerate()
                    .map(|(i, v)| {
                        assert_eq!((base + i) as i64, *v, "base offsets line up");
                        v * 2
                    })
                    .collect::<Vec<_>>()
            });
            let flat: Vec<i64> = chunks.into_iter().flatten().collect();
            assert_eq!(flat, items.iter().map(|v| v * 2).collect::<Vec<_>>());
        }
    }
}
