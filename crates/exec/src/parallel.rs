//! Intra-operator parallelism: data-parallel drains of heap-backed
//! cursor pipelines and chunked evaluation over in-memory relations.
//!
//! The serial engine stays the source of truth: a pipeline is only
//! parallelized when every function it applies is *pure* (built from the
//! context-free operators of [`crate::ops::basic`] plus attribute
//! access), and the parallel path then evaluates the exact same operator
//! implementations over page partitions, reducing per-worker results in
//! page order. The outcome is extensionally equal to the serial drain by
//! construction — `tests/par_vs_serial.rs` checks this differentially.
//!
//! `workers == 1` (the default on single-core machines) never spawns and
//! never takes any code path here, preserving exact legacy behavior.

use crate::engine::ExecEngine;
use crate::error::{ExecError, ExecResult};
use crate::ops::basic;
use crate::stream::Cursor;
use crate::value::{Closure, Value};
use sos_core::typed::{TypedExpr, TypedNode};
use sos_storage::heap::HeapFile;
use sos_storage::keys::KeyBytes;
use sos_storage::PageId;
use std::sync::Arc;

/// Minimum heap pages before a scan is worth partitioning.
pub const PAR_MIN_PAGES: usize = 2;
/// Minimum in-memory tuples before chunked evaluation is worth spawning.
pub const PAR_MIN_TUPLES: usize = 64;

// ---------------------------------------------------------------------
// Pure functions: closures safe to evaluate on worker threads.
// ---------------------------------------------------------------------

/// A closure verified to be context-free: its body touches no database
/// object, applies only atomic operators and attribute access, and
/// contains no nested function values. Such a closure can be evaluated
/// on any thread without an [`crate::engine::EvalCtx`].
///
/// When the engine's expression compiler is on, a `PureFun` also carries
/// the closure lowered to bytecode ([`crate::compile`]) and workers run
/// that instead of the tree walker — the pure subset is a superset of
/// the compilable one except for unbound variables, and the bytecode is
/// extensionally equal where it exists, so the parallel result is
/// unchanged either way.
pub struct PureFun {
    closure: Arc<Closure>,
    compiled: Option<Arc<crate::compile::CompiledFun>>,
}

impl PureFun {
    /// Verify purity; `None` means the closure needs the serial engine.
    /// Lowers to bytecode as a side benefit (without touching the
    /// engine's compile counters — these are transient per-call
    /// programs, not plan construction).
    pub fn compile(engine: &ExecEngine, closure: &Arc<Closure>) -> Option<PureFun> {
        Self::with_program(engine, closure, None)
    }

    /// Like [`PureFun::compile`], but reuses an already-lowered program
    /// (e.g. the one attached to the cursor being parallelized) instead
    /// of lowering the closure again.
    pub fn with_program(
        engine: &ExecEngine,
        closure: &Arc<Closure>,
        program: Option<Arc<crate::compile::CompiledFun>>,
    ) -> Option<PureFun> {
        if !is_pure_expr(engine, &closure.body) {
            return None;
        }
        let compiled = program.or_else(|| crate::compile::compile_silent(engine, closure));
        Some(PureFun {
            closure: closure.clone(),
            compiled,
        })
    }

    /// Apply to argument values. Mirrors `EvalCtx::call` exactly
    /// (environment layout, arity errors) for the pure subset.
    pub fn call(&self, engine: &ExecEngine, args: &[Value]) -> ExecResult<Value> {
        if let Some(cf) = &self.compiled {
            return cf.call(args);
        }
        if self.closure.params.len() != args.len() {
            return Err(ExecError::Other(format!(
                "function expects {} argument(s), got {}",
                self.closure.params.len(),
                args.len()
            )));
        }
        let mut env = self.closure.captured.clone();
        for ((name, _), v) in self.closure.params.iter().zip(args) {
            env.push((name.clone(), v.clone()));
        }
        eval_pure(engine, &self.closure.body, &env)
    }

    /// Evaluate as a predicate over a whole batch: the columnar kernel
    /// when the program has one, else per-row calls. Mirrors
    /// `CompiledFun::eval_mask` so batched parallel chunks keep the
    /// serial vectorized path's evaluation strategy.
    fn eval_mask(
        &self,
        engine: &ExecEngine,
        batch: &[Value],
        op: &'static str,
    ) -> ExecResult<Vec<bool>> {
        if let Some(cf) = &self.compiled {
            return cf.eval_mask(batch, op);
        }
        let mut mask = Vec::with_capacity(batch.len());
        for t in batch {
            mask.push(self.call(engine, std::slice::from_ref(t))?.as_bool(op)?);
        }
        Ok(mask)
    }

    /// Evaluate as a column over a whole batch (see [`PureFun::eval_mask`]).
    fn eval_column(&self, engine: &ExecEngine, batch: &[Value]) -> ExecResult<Vec<Value>> {
        if let Some(cf) = &self.compiled {
            return cf.eval_column(batch);
        }
        batch
            .iter()
            .map(|t| self.call(engine, std::slice::from_ref(t)))
            .collect()
    }

    /// Columnar evaluation if the whole batch runs clean, else `None`.
    fn try_columnar(&self, batch: &[Value]) -> Option<Vec<Value>> {
        self.compiled.as_ref()?.try_columnar(batch)
    }
}

fn is_pure_expr(engine: &ExecEngine, te: &TypedExpr) -> bool {
    match &te.node {
        TypedNode::Const(_) | TypedNode::Var(_) => true,
        // Objects read the store; function values re-enter the
        // interpreter. Both stay on the serial path.
        TypedNode::Object(_) | TypedNode::Lambda { .. } | TypedNode::ApplyFun { .. } => false,
        TypedNode::List(items) | TypedNode::Tuple(items) => {
            items.iter().all(|i| is_pure_expr(engine, i))
        }
        TypedNode::Apply { op, args, .. } => {
            let op_ok = engine.is_atomic_op(op)
                || (!engine.has_op(op)
                    && args.len() == 1
                    && crate::handles::attr_index(&args[0].ty, op).is_some());
            op_ok && args.iter().all(|a| is_pure_expr(engine, a))
        }
    }
}

/// Evaluate a pure term: the context-free subset of `EvalCtx::eval`,
/// with identical dispatch order (registered atomic operator first, then
/// attribute access) and identical errors.
fn eval_pure(
    engine: &ExecEngine,
    te: &TypedExpr,
    env: &[(sos_core::Symbol, Value)],
) -> ExecResult<Value> {
    match &te.node {
        TypedNode::Const(c) => Ok(Value::from_const(c)),
        TypedNode::Var(name) => env
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.clone())
            .ok_or_else(|| ExecError::Other(format!("unbound variable `{name}`"))),
        TypedNode::List(items) => Ok(Value::List(
            items
                .iter()
                .map(|i| eval_pure(engine, i, env))
                .collect::<ExecResult<_>>()?,
        )),
        TypedNode::Tuple(items) => Ok(Value::Pair(
            items
                .iter()
                .map(|i| eval_pure(engine, i, env))
                .collect::<ExecResult<_>>()?,
        )),
        TypedNode::Apply { op, args, .. } => {
            let argv = args
                .iter()
                .map(|a| eval_pure(engine, a, env))
                .collect::<ExecResult<Vec<_>>>()?;
            if engine.is_atomic_op(op) {
                return basic::eval_atomic(op.as_str(), &argv)
                    .unwrap_or_else(|| Err(ExecError::NoImpl(op.clone())));
            }
            if let [arg_node] = &args[..] {
                if let Some(idx) = crate::handles::attr_index(&arg_node.ty, op) {
                    let tuple = argv[0].as_tuple(op.as_str())?;
                    return tuple.get(idx).cloned().ok_or_else(|| {
                        ExecError::Other(format!("tuple too short for attribute `{op}`"))
                    });
                }
            }
            Err(ExecError::NoImpl(op.clone()))
        }
        TypedNode::Object(_) | TypedNode::Lambda { .. } | TypedNode::ApplyFun { .. } => Err(
            ExecError::Other("impure term reached the pure evaluator".into()),
        ),
    }
}

// ---------------------------------------------------------------------
// Scan plans: a cursor spine rewritten as scan units + pure steps.
// ---------------------------------------------------------------------

enum Step {
    Filter(PureFun),
    Project(Vec<PureFun>),
    Replace { idx: usize, fun: PureFun },
}

/// One independently scannable fragment of a source: a single heap page,
/// a B-tree leaf-chain range (one partition of a partitioned B-tree), or
/// an already-materialized partition (LSD-trees materialize on scan).
/// Units are listed in serial scan order, so concatenating per-unit
/// results reproduces the serial drain.
enum ScanUnit {
    HeapPage(Arc<HeapFile>, PageId),
    BTreeRange(Arc<crate::handles::BTreeHandle>, KeyBytes, KeyBytes),
    Mem(Vec<Value>),
}

/// An undrained scan plus the pure pipeline steps stacked on it — the
/// fragment of a cursor spine that can run data-parallel. Sources are a
/// plain heap scan (one unit per page, as in the original heap plan) or
/// a partition scan (heap partitions contribute per-page units, B-tree
/// partitions one leaf-walk unit each, LSD partitions their
/// materialized tuples).
pub struct HeapPlan {
    units: Vec<ScanUnit>,
    /// Applied innermost-first, exactly as the serial cursor would.
    steps: Vec<Step>,
}

impl HeapPlan {
    /// Extract a plan from a cursor spine. `None` whenever any part of
    /// the spine must stay serial: a partially drained or non-scannable
    /// source, an impure function, a `head` (early termination is the
    /// point of pipelining), or a shared link another value still holds.
    fn from_cursor(engine: &ExecEngine, cursor: &Cursor) -> Option<HeapPlan> {
        match cursor {
            Cursor::Heap {
                heap,
                pages,
                page_idx,
                buf,
            } => {
                if *page_idx != 0 || !buf.is_empty() {
                    return None;
                }
                Some(HeapPlan {
                    units: pages
                        .iter()
                        .map(|p| ScanUnit::HeapPage(heap.clone(), *p))
                        .collect(),
                    steps: Vec::new(),
                })
            }
            Cursor::PartScan { cursors, idx, .. } => {
                if *idx != 0 {
                    return None;
                }
                let mut units = Vec::new();
                for c in cursors {
                    match c {
                        Cursor::Heap {
                            heap,
                            pages,
                            page_idx,
                            buf,
                        } => {
                            if *page_idx != 0 || !buf.is_empty() {
                                return None;
                            }
                            units
                                .extend(pages.iter().map(|p| ScanUnit::HeapPage(heap.clone(), *p)));
                        }
                        Cursor::BTreeRange {
                            handle,
                            lo,
                            hi,
                            primed,
                            done,
                            buf,
                            ..
                        } => {
                            if *primed || *done || !buf.is_empty() {
                                return None;
                            }
                            units.push(ScanUnit::BTreeRange(
                                handle.clone(),
                                lo.clone(),
                                hi.clone(),
                            ));
                        }
                        Cursor::Mat(buf) => {
                            units.push(ScanUnit::Mem(buf.iter().cloned().collect()));
                        }
                        _ => return None,
                    }
                }
                Some(HeapPlan {
                    units,
                    steps: Vec::new(),
                })
            }
            Cursor::Filter {
                input,
                pred,
                compiled,
            } => {
                let mut plan = Self::from_cursor(engine, input)?;
                plan.steps.push(Step::Filter(PureFun::with_program(
                    engine,
                    pred,
                    compiled.clone(),
                )?));
                Some(plan)
            }
            Cursor::Project {
                input,
                funs,
                compiled,
            } => {
                let mut plan = Self::from_cursor(engine, input)?;
                let pure = funs
                    .iter()
                    .zip(compiled)
                    .map(|(f, c)| PureFun::with_program(engine, f, c.clone()))
                    .collect::<Option<Vec<_>>>()?;
                plan.steps.push(Step::Project(pure));
                Some(plan)
            }
            Cursor::Replace {
                input,
                idx,
                fun,
                compiled,
            } => {
                let mut plan = Self::from_cursor(engine, input)?;
                plan.steps.push(Step::Replace {
                    idx: *idx,
                    fun: PureFun::with_program(engine, fun, compiled.clone())?,
                });
                Some(plan)
            }
            // A shared link inside a spine is parallel-safe only when the
            // spine is its sole owner (a clone elsewhere could observe a
            // partial drain).
            Cursor::Shared(arc) => {
                if Arc::strong_count(arc) != 1 {
                    return None;
                }
                let guard = arc.lock();
                Self::from_cursor(engine, &guard)
            }
            Cursor::Mat(_)
            | Cursor::BTreeRange { .. }
            | Cursor::Head { .. }
            | Cursor::SearchJoin { .. } => None,
        }
    }

    /// Run the plan's steps over every record of a contiguous unit chunk
    /// on each worker: one accumulator per chunk (no per-record
    /// allocation or reduce), records decoded in place via the storage
    /// `visit_page`/`visit_leaf` helpers. When the engine's batch width
    /// is above 1, decoded rows are accumulated into width-sized batches
    /// and pushed through the steps batch-at-a-time — the same
    /// mask/column evaluation the serial vectorized path uses (columnar
    /// kernels included) — instead of tuple-at-a-time. Chunk results
    /// come back in unit order, so concatenation matches the serial
    /// scan; the first error in unit order wins.
    fn scan_chunks<T, F>(
        &self,
        engine: &ExecEngine,
        workers: usize,
        emit: F,
    ) -> ExecResult<Vec<(T, ChunkStats)>>
    where
        T: Default + Send,
        F: Fn(&mut T, Vec<Value>) + Sync,
    {
        let width = engine.batch_size().max(1);
        let chunks = par_chunks(
            &self.units,
            workers,
            |_, part| -> ExecResult<(T, ChunkStats)> {
                let mut acc = T::default();
                let mut cs = ChunkStats::default();
                let mut batch: Vec<Value> = Vec::with_capacity(width.min(4096));
                let flush =
                    |rows: Vec<Value>, acc: &mut T, cs: &mut ChunkStats| -> ExecResult<()> {
                        if rows.is_empty() {
                            return Ok(());
                        }
                        let kept = if width > 1 {
                            cs.batches += 1;
                            cs.batched_rows += rows.len() as u64;
                            apply_steps_batch(engine, &self.steps, rows)?
                        } else {
                            let mut out = Vec::with_capacity(rows.len());
                            for t in rows {
                                if let Some(t) = apply_steps(engine, &self.steps, t)? {
                                    out.push(t);
                                }
                            }
                            out
                        };
                        emit(acc, kept);
                        Ok(())
                    };
                for unit in part {
                    match unit {
                        ScanUnit::HeapPage(heap, pid) => {
                            cs.pages += 1;
                            heap.visit_page::<ExecError, _>(*pid, |_, rec| {
                                cs.read += 1;
                                batch.push(Value::decode_tuple(rec)?);
                                Ok(())
                            })?;
                        }
                        ScanUnit::BTreeRange(handle, lo, hi) => {
                            let mut pid = Some(handle.tree.find_leaf(lo)?);
                            let mut past_hi = false;
                            while let Some(p) = pid {
                                if past_hi {
                                    break;
                                }
                                cs.pages += 1;
                                let next =
                                    handle.tree.visit_leaf::<ExecError, _>(p, |k, bytes| {
                                        if past_hi || k < lo.as_slice() {
                                            return Ok(());
                                        }
                                        if k > hi.as_slice() {
                                            past_hi = true;
                                            return Ok(());
                                        }
                                        cs.read += 1;
                                        batch.push(Value::decode_tuple(bytes)?);
                                        Ok(())
                                    })?;
                                pid = next;
                                while batch.len() >= width {
                                    let rest = batch.split_off(width);
                                    flush(std::mem::replace(&mut batch, rest), &mut acc, &mut cs)?;
                                }
                            }
                        }
                        ScanUnit::Mem(rows) => {
                            cs.read += rows.len();
                            batch.extend(rows.iter().cloned());
                        }
                    }
                    while batch.len() >= width {
                        let rest = batch.split_off(width);
                        flush(std::mem::replace(&mut batch, rest), &mut acc, &mut cs)?;
                    }
                }
                flush(batch, &mut acc, &mut cs)?;
                Ok((acc, cs))
            },
        );
        chunks.into_iter().collect()
    }

    fn collect(&self, engine: &ExecEngine, workers: usize) -> ExecResult<Vec<Value>> {
        let chunks = self.scan_chunks(engine, workers, |rows: &mut Vec<Value>, kept| {
            rows.extend(kept);
        })?;
        let mut cs = ChunkStats::default();
        let mut out = Vec::new();
        for (mut rows, c) in chunks {
            cs.merge(&c);
            out.append(&mut rows);
        }
        engine
            .stats
            .record("feed", workers, cs.read, out.len(), cs.pages);
        engine.stats.record_batches(
            "feed",
            cs.pages.max(cs.batches as usize) as u64,
            cs.read as u64,
        );
        Ok(out)
    }

    fn count(&self, engine: &ExecEngine, workers: usize) -> ExecResult<i64> {
        let chunks = self.scan_chunks(engine, workers, |n: &mut i64, kept| {
            *n += kept.len() as i64;
        })?;
        let mut cs = ChunkStats::default();
        let mut total = 0i64;
        for (n, c) in chunks {
            cs.merge(&c);
            total += n;
        }
        // `count` emits one value; tuples_out = 1 matches the serial path.
        engine.stats.record("count", workers, cs.read, 1, cs.pages);
        engine.stats.record_batches(
            "count",
            cs.pages.max(cs.batches as usize) as u64,
            cs.read as u64,
        );
        Ok(total)
    }
}

/// Per-chunk scan accounting, merged in unit order.
#[derive(Default)]
struct ChunkStats {
    read: usize,
    pages: usize,
    batches: u64,
    batched_rows: u64,
}

impl ChunkStats {
    fn merge(&mut self, other: &ChunkStats) {
        self.read += other.read;
        self.pages += other.pages;
        self.batches += other.batches;
        self.batched_rows += other.batched_rows;
    }
}

fn apply_steps(engine: &ExecEngine, steps: &[Step], mut t: Value) -> ExecResult<Option<Value>> {
    for step in steps {
        match step {
            Step::Filter(pred) => {
                if !pred
                    .call(engine, std::slice::from_ref(&t))?
                    .as_bool("filter")?
                {
                    return Ok(None);
                }
            }
            Step::Project(funs) => {
                let mut fields = Vec::with_capacity(funs.len());
                for f in funs {
                    fields.push(f.call(engine, std::slice::from_ref(&t))?);
                }
                t = Value::tuple(fields);
            }
            Step::Replace { idx, fun } => {
                let mut fields = t.as_tuple("replace")?.to_vec();
                fields[*idx] = fun.call(engine, std::slice::from_ref(&t))?;
                t = Value::tuple(fields);
            }
        }
    }
    Ok(Some(t))
}

/// Batched counterpart of [`apply_steps`]: each step consumes the whole
/// batch via mask/column evaluation — the identical strategy (columnar
/// kernels first, per-row bytecode otherwise) the serial vectorized
/// cursor path uses in `Cursor::next_batch_into`.
fn apply_steps_batch(
    engine: &ExecEngine,
    steps: &[Step],
    mut batch: Vec<Value>,
) -> ExecResult<Vec<Value>> {
    for step in steps {
        if batch.is_empty() {
            break;
        }
        match step {
            Step::Filter(pred) => {
                let mask = pred.eval_mask(engine, &batch, "filter")?;
                let mut kept = Vec::with_capacity(batch.len());
                for (t, keep) in batch.into_iter().zip(mask) {
                    if keep {
                        kept.push(t);
                    }
                }
                batch = kept;
            }
            Step::Project(funs) => {
                let rows = batch.len();
                let mut cols = Vec::with_capacity(funs.len());
                for f in funs {
                    cols.push(f.eval_column(engine, &batch)?);
                }
                let mut iters: Vec<_> = cols.into_iter().map(|c| c.into_iter()).collect();
                batch = (0..rows)
                    .map(|_| {
                        Value::tuple(
                            iters
                                .iter_mut()
                                .map(|it| it.next().expect("column length matches batch"))
                                .collect(),
                        )
                    })
                    .collect();
            }
            Step::Replace { idx, fun } => {
                let vals = fun.try_columnar(&batch);
                let mut out = Vec::with_capacity(batch.len());
                for (r, t) in batch.iter().enumerate() {
                    let v = match &vals {
                        Some(vs) => vs[r].clone(),
                        None => fun.call(engine, std::slice::from_ref(t))?,
                    };
                    let mut fields = t.as_tuple("replace")?.to_vec();
                    fields[*idx] = v;
                    out.push(Value::tuple(fields));
                }
                batch = out;
            }
        }
    }
    Ok(batch)
}

// ---------------------------------------------------------------------
// Drain hooks: entry points called by the serial operators.
// ---------------------------------------------------------------------

/// Try to drain a cursor in parallel. `None` falls back to the serial
/// drain; `Some` returns the tuples in serial page order and leaves the
/// cursor consumed (as a serial drain would).
pub fn try_par_drain(engine: &ExecEngine, cursor: &mut Cursor) -> Option<ExecResult<Vec<Value>>> {
    if let Cursor::Shared(arc) = cursor {
        let arc = arc.clone();
        let mut guard = arc.lock();
        return try_par_drain(engine, &mut guard);
    }
    let workers = engine.workers();
    if workers <= 1 {
        return None;
    }
    let plan = HeapPlan::from_cursor(engine, cursor)?;
    if plan.units.len() < PAR_MIN_PAGES {
        return None;
    }
    let result = plan.collect(engine, workers);
    if result.is_ok() {
        *cursor = Cursor::Mat(Default::default());
    }
    Some(result)
}

/// Try to count a cursor's tuples in parallel without materializing them
/// (the filter + count pushdown). Same contract as [`try_par_drain`].
pub fn try_par_count(engine: &ExecEngine, cursor: &mut Cursor) -> Option<ExecResult<i64>> {
    if let Cursor::Shared(arc) = cursor {
        let arc = arc.clone();
        let mut guard = arc.lock();
        return try_par_count(engine, &mut guard);
    }
    let workers = engine.workers();
    if workers <= 1 {
        return None;
    }
    let plan = HeapPlan::from_cursor(engine, cursor)?;
    if plan.units.len() < PAR_MIN_PAGES {
        return None;
    }
    let result = plan.count(engine, workers);
    if result.is_ok() {
        *cursor = Cursor::Mat(Default::default());
    }
    Some(result)
}

// ---------------------------------------------------------------------
// Parallel search join.
// ---------------------------------------------------------------------

/// The recognized shapes of a `search_join` parameter function whose
/// inner side is *outer-invariant* (references no outer-tuple variable):
///
/// * `fun (o) SRC filter[fun (d) PRED]` — the inner source evaluates
///   once, `PRED(o, d)` must be pure; workers then join outer chunks
///   against the materialized inner side.
/// * `fun (o) SRC exactmatch[K] / point_search[K] / overlap_search[K]`
///   — the index handle evaluates once, the key expression `K(o)` must
///   be pure; workers probe the index (partition-pruned for partitioned
///   indexes) per outer tuple.
enum SjInner {
    FilterMat { pred: PureFun },
    Probe { op: ProbeOp, key: PureFun },
}

#[derive(Clone, Copy, PartialEq)]
enum ProbeOp {
    Exact,
    Point,
    Overlap,
}

impl ProbeOp {
    fn name(self) -> &'static str {
        match self {
            ProbeOp::Exact => "exactmatch",
            ProbeOp::Point => "point_search",
            ProbeOp::Overlap => "overlap_search",
        }
    }
}

/// Whether `attr` occurs as a variable anywhere in `te`. Conservative:
/// shadowing is ignored, so a shadowed occurrence still counts as a use
/// (which only ever disables the rewrite).
fn expr_refs_var(te: &TypedExpr, name: &sos_core::Symbol) -> bool {
    match &te.node {
        TypedNode::Var(v) => v == name,
        TypedNode::Const(_) | TypedNode::Object(_) => false,
        TypedNode::Lambda { body, .. } => expr_refs_var(body, name),
        TypedNode::List(items) | TypedNode::Tuple(items) => {
            items.iter().any(|i| expr_refs_var(i, name))
        }
        TypedNode::Apply { args, .. } => args.iter().any(|a| expr_refs_var(a, name)),
        TypedNode::ApplyFun { fun, args } => {
            expr_refs_var(fun, name) || args.iter().any(|a| expr_refs_var(a, name))
        }
    }
}

/// Try to run a `search_join` cursor data-parallel. `None` falls back to
/// the serial nested-loop drain; `Some` returns the joined tuples in
/// serial order and leaves the cursor consumed.
///
/// The rewrite applies when the parameter function's inner source is
/// outer-invariant (see [`SjInner`]): the source is evaluated *once*
/// under the closure's captured environment instead of once per outer
/// tuple, and the per-tuple work (pure predicate or pure key + index
/// probe) runs on worker threads over outer chunks. Per-tuple probe
/// results keep the serial operator's order, so concatenation in chunk
/// order reproduces the serial join exactly.
pub fn try_par_search_join(
    ctx: &mut crate::engine::EvalCtx,
    cursor: &mut Cursor,
) -> Option<ExecResult<Vec<Value>>> {
    if let Cursor::Shared(arc) = cursor {
        let arc = arc.clone();
        let mut guard = arc.lock();
        return try_par_search_join(ctx, &mut guard);
    }
    let engine = ctx.engine;
    let workers = engine.workers();
    if workers <= 1 {
        return None;
    }
    let Cursor::SearchJoin {
        outer,
        fun,
        current_outer: None,
        inner,
    } = cursor
    else {
        return None;
    };
    if !inner.is_empty() {
        return None;
    }
    let [(outer_param, outer_ty)] = fun.params.as_slice() else {
        return None;
    };
    let TypedNode::Apply { op, args, .. } = &fun.body.node else {
        return None;
    };
    let [src, second] = args.as_slice() else {
        return None;
    };
    if expr_refs_var(src, outer_param) {
        return None;
    }
    let plan = match op.as_str() {
        "filter" => {
            let TypedNode::Lambda { params, body } = &second.node else {
                return None;
            };
            let [inner_param] = params.as_slice() else {
                return None;
            };
            let pred = Arc::new(Closure {
                params: vec![(outer_param.clone(), outer_ty.clone()), inner_param.clone()],
                body: (**body).clone(),
                captured: fun.captured.clone(),
            });
            SjInner::FilterMat {
                pred: PureFun::compile(engine, &pred)?,
            }
        }
        probe @ ("exactmatch" | "point_search" | "overlap_search") => {
            let op = match probe {
                "exactmatch" => ProbeOp::Exact,
                "point_search" => ProbeOp::Point,
                _ => ProbeOp::Overlap,
            };
            let key = Arc::new(Closure {
                params: vec![(outer_param.clone(), outer_ty.clone())],
                body: second.clone(),
                captured: fun.captured.clone(),
            });
            SjInner::Probe {
                op,
                key: PureFun::compile(engine, &key)?,
            }
        }
        _ => return None,
    };
    // Evaluate the outer-invariant inner source once, under the closure's
    // captured environment (exactly the environment the serial per-tuple
    // evaluation would see, minus the unused outer binding).
    let src_closure = Closure {
        params: Vec::new(),
        body: src.clone(),
        captured: fun.captured.clone(),
    };
    let mut run = || -> ExecResult<Vec<Value>> {
        let src_value = ctx.call(&src_closure, Vec::new())?;
        let outer_tuples = match try_par_drain(engine, outer) {
            Some(r) => r?,
            None => outer.drain(ctx)?,
        };
        let (out, inner_len) = match &plan {
            SjInner::FilterMat { pred } => {
                let inner_tuples = crate::stream::materialize(ctx, src_value)?;
                let chunks = par_chunks(
                    &outer_tuples,
                    workers,
                    |_, part| -> ExecResult<Vec<Value>> {
                        let mut out = Vec::new();
                        for o in part {
                            for i in &inner_tuples {
                                if pred
                                    .call(engine, &[o.clone(), i.clone()])?
                                    .as_bool("filter")?
                                {
                                    out.push(crate::ops::relational::concat_tuples(
                                        o,
                                        i,
                                        "search_join",
                                    )?);
                                }
                            }
                        }
                        Ok(out)
                    },
                );
                (merge_chunks(chunks)?, inner_tuples.len())
            }
            SjInner::Probe { op, key } => {
                let chunks = par_chunks(
                    &outer_tuples,
                    workers,
                    |_, part| -> ExecResult<(Vec<Value>, u64, u64)> {
                        let mut out = Vec::new();
                        let (mut total, mut pruned) = (0u64, 0u64);
                        for o in part {
                            let k = key.call(engine, std::slice::from_ref(o))?;
                            let matches =
                                probe_index(&src_value, *op, &k, &mut total, &mut pruned)?;
                            for m in &matches {
                                out.push(crate::ops::relational::concat_tuples(
                                    o,
                                    m,
                                    "search_join",
                                )?);
                            }
                        }
                        Ok((out, total, pruned))
                    },
                );
                let mut out = Vec::new();
                let (mut total, mut pruned) = (0u64, 0u64);
                for c in chunks {
                    let (mut rows, t, p) = c?;
                    out.append(&mut rows);
                    total += t;
                    pruned += p;
                }
                engine.stats.record_partitions("search_join", total, pruned);
                (out, 0)
            }
        };
        engine.stats.record(
            "search_join",
            workers,
            outer_tuples.len() + inner_len,
            out.len(),
            0,
        );
        Ok(out)
    };
    let result = run();
    if result.is_ok() {
        *cursor = Cursor::Mat(Default::default());
    }
    Some(result)
}

/// Probe one index value with a key — the operator semantics of
/// `exactmatch`/`point_search`/`overlap_search` evaluated directly
/// against storage (safe on worker threads: no engine context). For
/// partitioned indexes the probe is pruned to candidate partitions
/// (equality routing for B-trees, cover intersection for LSD-trees) and
/// surviving partitions are probed in partition order.
fn probe_index(
    target: &Value,
    op: ProbeOp,
    key: &Value,
    total: &mut u64,
    pruned: &mut u64,
) -> ExecResult<Vec<Value>> {
    match (target, op) {
        (Value::BTree(h), ProbeOp::Exact) => {
            let k = crate::handles::encode_key("exactmatch", key)?;
            btree_range_collect(h, &k, &k)
        }
        (Value::LsdTree(h), ProbeOp::Point) => {
            let Value::Point(p) = key else {
                return Err(ExecError::TypeMismatch {
                    op: "point_search".into(),
                    expected: "point".into(),
                    found: key.kind_name().into(),
                });
            };
            let mut out = Vec::new();
            for e in h.tree.point_search(*p)? {
                out.push(Value::decode_tuple(&e.payload)?);
            }
            Ok(out)
        }
        (Value::LsdTree(h), ProbeOp::Overlap) => {
            let Value::Rect(r) = key else {
                return Err(ExecError::TypeMismatch {
                    op: "overlap_search".into(),
                    expected: "rect".into(),
                    found: key.kind_name().into(),
                });
            };
            let mut out = Vec::new();
            for e in h.tree.overlap_search(*r)? {
                out.push(Value::decode_tuple(&e.payload)?);
            }
            Ok(out)
        }
        (Value::Part(h), _) => {
            *total += h.part_count() as u64;
            let mask = match (op, key) {
                (ProbeOp::Exact, _) => {
                    h.candidate_mask(&[crate::partition::KeyCond::Eq(key.clone())])
                }
                (ProbeOp::Point, Value::Point(p)) => h.cover_mask(|c| c.contains_point(p)),
                (ProbeOp::Overlap, Value::Rect(r)) => h.cover_mask(|c| c.intersects(r)),
                _ => vec![true; h.part_count()],
            };
            let mut out = Vec::new();
            for (p, keep) in h.parts.iter().zip(&mask) {
                if !keep {
                    *pruned += 1;
                    continue;
                }
                out.extend(probe_index(p, op, key, total, pruned)?);
            }
            Ok(out)
        }
        (other, op) => Err(ExecError::TypeMismatch {
            op: op.name().into(),
            expected: "index representation".into(),
            found: other.kind_name().into(),
        }),
    }
}

/// Collect a B-tree's `[lo, hi]` leaf range without an engine context
/// (the worker-thread counterpart of the `BTreeRange` cursor).
fn btree_range_collect(
    h: &Arc<crate::handles::BTreeHandle>,
    lo: &[u8],
    hi: &[u8],
) -> ExecResult<Vec<Value>> {
    let mut out = Vec::new();
    let mut pid = Some(h.tree.find_leaf(lo)?);
    let mut past_hi = false;
    while let Some(p) = pid {
        if past_hi {
            break;
        }
        let next = h.tree.visit_leaf::<ExecError, _>(p, |k, bytes| {
            if past_hi || k < lo {
                return Ok(());
            }
            if k > hi {
                past_hi = true;
                return Ok(());
            }
            out.push(Value::decode_tuple(bytes)?);
            Ok(())
        })?;
        pid = next;
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Chunked evaluation over in-memory tuple slices.
// ---------------------------------------------------------------------

/// Run `f` over contiguous chunks of `items` on scoped worker threads,
/// returning per-chunk results in chunk order (so concatenation
/// reproduces serial order and the first error in chunk order is the
/// first error in item order). `f` receives each chunk's base index.
pub fn par_chunks<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    let workers = workers.max(1).min(items.len());
    if workers <= 1 {
        return vec![f(0, items)];
    }
    let chunk = items.len().div_ceil(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(i, part)| {
                let f = &f;
                scope.spawn(move || f(i * chunk, part))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

/// Flatten chunk results, surfacing the first error in chunk order.
fn merge_chunks(chunks: Vec<ExecResult<Vec<Value>>>) -> ExecResult<Vec<Value>> {
    let mut out = Vec::new();
    for c in chunks {
        out.append(&mut c?);
    }
    Ok(out)
}

/// Parallel `select`/`filter` over an in-memory relation. `None` when
/// the predicate is impure or the input is too small to bother.
pub fn try_par_filter(
    engine: &ExecEngine,
    tuples: &[Value],
    pred: &Value,
    op: &'static str,
) -> Option<ExecResult<Vec<Value>>> {
    let workers = engine.workers();
    if workers <= 1 || tuples.len() < PAR_MIN_TUPLES {
        return None;
    }
    let fun = PureFun::compile(engine, pred.as_closure(op).ok()?)?;
    let chunks = par_chunks(tuples, workers, |_, part| -> ExecResult<Vec<Value>> {
        let mut keep = Vec::new();
        for t in part {
            if fun.call(engine, std::slice::from_ref(t))?.as_bool(op)? {
                keep.push(t.clone());
            }
        }
        Ok(keep)
    });
    let out = merge_chunks(chunks);
    if let Ok(kept) = &out {
        engine
            .stats
            .record(op, workers, tuples.len(), kept.len(), 0);
    }
    Some(out)
}

/// Parallel nested-loop `join`: partitions the left side, each worker
/// joins its chunk against the whole right side.
pub fn try_par_join(
    engine: &ExecEngine,
    left: &[Value],
    right: &[Value],
    pred: &Value,
) -> Option<ExecResult<Vec<Value>>> {
    let workers = engine.workers();
    if workers <= 1 || left.len().saturating_mul(right.len()) < PAR_MIN_TUPLES {
        return None;
    }
    let fun = PureFun::compile(engine, pred.as_closure("join").ok()?)?;
    let chunks = par_chunks(left, workers, |_, part| -> ExecResult<Vec<Value>> {
        let mut out = Vec::new();
        for l in part {
            for r in right {
                if fun.call(engine, &[l.clone(), r.clone()])?.as_bool("join")? {
                    out.push(crate::ops::relational::concat_tuples(l, r, "join")?);
                }
            }
        }
        Ok(out)
    });
    let out = merge_chunks(chunks);
    if let Ok(joined) = &out {
        engine
            .stats
            .record("join", workers, left.len() + right.len(), joined.len(), 0);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sos_core::{Const, DataType, Symbol};

    fn int_ty() -> DataType {
        DataType::Cons(Symbol::new("int"), vec![])
    }

    fn closure_of(body: TypedExpr) -> Arc<Closure> {
        Arc::new(Closure {
            params: vec![(Symbol::new("x"), int_ty())],
            body,
            captured: vec![],
        })
    }

    fn engine() -> ExecEngine {
        ExecEngine::new(sos_storage::mem_pool(16))
    }

    #[test]
    fn identity_and_arithmetic_closures_are_pure() {
        let e = engine();
        let var = TypedExpr::new(TypedNode::Var(Symbol::new("x")), int_ty());
        let body = TypedExpr::new(
            TypedNode::Apply {
                op: Symbol::new("+"),
                spec: 0,
                args: vec![
                    var.clone(),
                    TypedExpr::new(TypedNode::Const(Const::Int(1)), int_ty()),
                ],
            },
            int_ty(),
        );
        let f = PureFun::compile(&e, &closure_of(body)).expect("x + 1 is pure");
        assert_eq!(f.call(&e, &[Value::Int(41)]).unwrap(), Value::Int(42));
        assert!(PureFun::compile(&e, &closure_of(var)).is_some());
    }

    #[test]
    fn object_references_are_impure() {
        let e = engine();
        let body = TypedExpr::new(TypedNode::Object(Symbol::new("cities")), int_ty());
        assert!(PureFun::compile(&e, &closure_of(body)).is_none());
    }

    #[test]
    fn overriding_an_atomic_op_revokes_purity() {
        let mut e = engine();
        let body = TypedExpr::new(
            TypedNode::Apply {
                op: Symbol::new("+"),
                spec: 0,
                args: vec![
                    TypedExpr::new(TypedNode::Var(Symbol::new("x")), int_ty()),
                    TypedExpr::new(TypedNode::Const(Const::Int(1)), int_ty()),
                ],
            },
            int_ty(),
        );
        assert!(PureFun::compile(&e, &closure_of(body.clone())).is_some());
        // A user override of `+` may do anything; the pure evaluator must
        // no longer claim it.
        e.add_op("+", |_, _, _| Ok(Value::Int(0)));
        assert!(PureFun::compile(&e, &closure_of(body)).is_none());
    }

    #[test]
    fn par_chunks_preserves_order_and_offsets() {
        let items: Vec<i64> = (0..100).collect();
        for workers in [1, 3, 8, 200] {
            let chunks = par_chunks(&items, workers, |base, part| {
                part.iter()
                    .enumerate()
                    .map(|(i, v)| {
                        assert_eq!((base + i) as i64, *v, "base offsets line up");
                        v * 2
                    })
                    .collect::<Vec<_>>()
            });
            let flat: Vec<i64> = chunks.into_iter().flatten().collect();
            assert_eq!(flat, items.iter().map(|v| v * 2).collect::<Vec<_>>());
        }
    }
}
