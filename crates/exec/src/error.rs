use sos_core::Symbol;

/// Errors raised during evaluation.
#[derive(Debug)]
pub enum ExecError {
    /// Underlying storage failure.
    Storage(sos_storage::StorageError),
    /// A checker error while preparing embedded expressions (key
    /// functions inside types).
    Check(sos_core::CheckError),
    /// An object was used before a value was assigned to it.
    UndefinedObject(Symbol),
    /// No implementation registered for an operator.
    NoImpl(Symbol),
    /// A value of an unexpected shape reached an operator.
    TypeMismatch {
        op: String,
        expected: String,
        found: String,
    },
    /// Arithmetic failure (division by zero, overflow).
    Arithmetic(String),
    /// Anything else.
    Other(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Storage(e) => write!(f, "storage error: {e}"),
            ExecError::Check(e) => write!(f, "check error: {e}"),
            ExecError::UndefinedObject(n) => write!(f, "object `{n}` has no value"),
            ExecError::NoImpl(n) => write!(f, "no implementation for operator `{n}`"),
            ExecError::TypeMismatch {
                op,
                expected,
                found,
            } => write!(f, "`{op}` expected {expected}, found {found}"),
            ExecError::Arithmetic(m) => write!(f, "arithmetic error: {m}"),
            ExecError::Other(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<sos_storage::StorageError> for ExecError {
    fn from(e: sos_storage::StorageError) -> Self {
        ExecError::Storage(e)
    }
}

impl From<sos_core::CheckError> for ExecError {
    fn from(e: sos_core::CheckError) -> Self {
        ExecError::Check(e)
    }
}

pub type ExecResult<T> = Result<T, ExecError>;

/// Shorthand constructor for mismatch errors.
pub fn mismatch(op: &str, expected: &str, found: &impl std::fmt::Debug) -> ExecError {
    ExecError::TypeMismatch {
        op: op.to_string(),
        expected: expected.to_string(),
        found: format!("{found:?}"),
    }
}
