//! The evaluator: a second-order algebra for the typed terms produced by
//! the checker.
//!
//! The engine maps operator names to Rust implementations (the Ω_A
//! functions of Section 3.3); the buffer pool beneath provides the
//! representation structures. Evaluation is a straightforward
//! environment-passing interpreter: lambdas close over the current
//! variable bindings, operator applications evaluate their arguments and
//! dispatch by name, and tuple-attribute operators (whose names are data)
//! fall back to positional field access.

use crate::error::{ExecError, ExecResult};
use crate::handles::{attr_index, BTreeHandle, KeyExtractor, LsdHandle};
use crate::value::{Closure, Value};
use sos_catalog::Catalog;
use sos_core::check::Checker;
use sos_core::typed::{TypedExpr, TypedNode};
use sos_core::{DataType, Signature, Symbol, TypeArg};
use sos_storage::btree::BTree;
use sos_storage::heap::HeapFile;
use sos_storage::lsdtree::LsdTree;
use sos_storage::BufferPool;
use std::collections::HashMap;
use std::sync::Arc;

/// An operator implementation: receives the (typed) application node for
/// schema information and the already-evaluated argument values.
pub type OpImpl =
    Arc<dyn Fn(&mut EvalCtx, &TypedExpr, Vec<Value>) -> ExecResult<Value> + Send + Sync>;

/// The execution engine: operator implementations over a buffer pool.
pub struct ExecEngine {
    pub pool: Arc<BufferPool>,
    ops: HashMap<Symbol, OpImpl>,
    /// Operators known to be context-free (evaluable on worker threads
    /// by [`crate::parallel`]). An override via [`ExecEngine::add_op`]
    /// clears the mark — a replaced implementation may do anything.
    atomic: std::collections::HashSet<Symbol>,
    /// Worker threads for intra-operator parallelism; `1` disables it.
    workers: usize,
    /// Tuples pulled per `next_batch` call; `1` selects the exact legacy
    /// tuple-at-a-time drains (see [`crate::stream::Cursor::next_batch`]).
    batch: usize,
    /// Whether closures are lowered to bytecode where possible (see
    /// [`crate::compile`]); `false` keeps the interpreter everywhere.
    compile: bool,
    /// Per-operator execution counters.
    pub stats: Arc<crate::stats::ExecStats>,
}

/// Default vectorized batch width: enough rows to amortize closure-call
/// setup, small enough that a batch of tuples stays cache-resident.
pub const DEFAULT_BATCH: usize = 1024;

impl ExecEngine {
    /// An engine with every built-in operator registered. Starts with
    /// one worker per available core (`1` on single-core machines, i.e.
    /// exact serial behavior).
    pub fn new(pool: Arc<BufferPool>) -> ExecEngine {
        let mut e = ExecEngine {
            pool,
            ops: HashMap::new(),
            atomic: std::collections::HashSet::new(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            batch: DEFAULT_BATCH,
            compile: true,
            stats: Arc::new(crate::stats::ExecStats::default()),
        };
        crate::ops::register_builtins(&mut e);
        e
    }

    /// Register (or override) an operator implementation — the paper's
    /// extensibility story: new algebra operators plug in here.
    pub fn add_op<F>(&mut self, name: &str, f: F)
    where
        F: Fn(&mut EvalCtx, &TypedExpr, Vec<Value>) -> ExecResult<Value> + Send + Sync + 'static,
    {
        let name = Symbol::new(name);
        self.atomic.remove(&name);
        self.ops.insert(name, Arc::new(f));
    }

    pub fn has_op(&self, name: &Symbol) -> bool {
        self.ops.contains_key(name)
    }

    /// Mark a registered operator as context-free. Only the built-in
    /// atomic operators qualify (see [`crate::ops::basic`]).
    pub(crate) fn mark_atomic(&mut self, name: &str) {
        self.atomic.insert(Symbol::new(name));
    }

    /// Whether `name` currently resolves to a context-free built-in.
    pub fn is_atomic_op(&self, name: &Symbol) -> bool {
        self.atomic.contains(name)
    }

    /// Set the worker count for intra-operator parallelism (min 1).
    pub fn set_workers(&mut self, n: usize) {
        self.workers = n.max(1);
    }

    /// The current worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Set the vectorized batch width (min 1). `1` restores the exact
    /// tuple-at-a-time legacy behavior in every consumer.
    pub fn set_batch_size(&mut self, n: usize) {
        self.batch = n.max(1);
    }

    /// The current vectorized batch width.
    pub fn batch_size(&self) -> usize {
        self.batch
    }

    /// Enable or disable expression compilation. `false` keeps the
    /// interpreter on every path (the A/B switch for the differential
    /// compiled-vs-interpreted harness).
    pub fn set_compile_exprs(&mut self, on: bool) {
        self.compile = on;
    }

    /// Whether closures are currently lowered to bytecode.
    pub fn compile_exprs_enabled(&self) -> bool {
        self.compile
    }

    /// Create the initial value for a freshly created object of `ty`
    /// (the `create` statement): representation structures are
    /// materialized immediately; model relations start empty; everything
    /// else starts `Undefined` until the first update.
    pub fn init_value(
        &self,
        sig: &Signature,
        env: &dyn sos_core::check::ObjectEnv,
        ty: &DataType,
    ) -> ExecResult<Value> {
        let DataType::Cons(name, args) = ty else {
            return Ok(Value::Undefined);
        };
        match name.as_str() {
            "rel" => Ok(Value::Rel(Vec::new())),
            "srel" => Ok(Value::SRel(Arc::new(HeapFile::create(self.pool.clone())?))),
            "tidrel" => Ok(Value::TidRel(Arc::new(HeapFile::create(
                self.pool.clone(),
            )?))),
            "btree" => {
                let (tuple_type, attr) = match args.as_slice() {
                    [TypeArg::Type(t), TypeArg::Expr(sos_core::Expr::Const(sos_core::Const::Ident(a))), _] => {
                        (t.clone(), a.clone())
                    }
                    _ => return Err(ExecError::Other(format!("malformed btree type {ty}"))),
                };
                let idx = attr_index(&tuple_type, &attr).ok_or_else(|| {
                    ExecError::Other(format!("attribute `{attr}` not in {tuple_type}"))
                })?;
                Ok(Value::BTree(Arc::new(BTreeHandle {
                    tree: BTree::create(self.pool.clone())?,
                    tuple_type,
                    key: KeyExtractor::Attr(idx),
                })))
            }
            "mbtree" => {
                let (tuple_type, attr_args) = match args.as_slice() {
                    [TypeArg::Type(t), TypeArg::List(items)] => (t.clone(), items.clone()),
                    _ => return Err(ExecError::Other(format!("malformed mbtree type {ty}"))),
                };
                let mut idxs = Vec::with_capacity(attr_args.len());
                for a in &attr_args {
                    let TypeArg::Expr(sos_core::Expr::Const(sos_core::Const::Ident(name))) = a
                    else {
                        return Err(ExecError::Other(format!(
                            "mbtree attribute list must hold attribute names, got {a}"
                        )));
                    };
                    let idx = attr_index(&tuple_type, name).ok_or_else(|| {
                        ExecError::Other(format!("attribute `{name}` not in {tuple_type}"))
                    })?;
                    idxs.push(idx);
                }
                Ok(Value::BTree(Arc::new(BTreeHandle {
                    tree: BTree::create(self.pool.clone())?,
                    tuple_type,
                    key: KeyExtractor::Attrs(idxs),
                })))
            }
            "kbtree" => {
                let (tuple_type, keyfun) = match args.as_slice() {
                    [TypeArg::Type(t), TypeArg::Expr(e)] => (t.clone(), e.clone()),
                    _ => return Err(ExecError::Other(format!("malformed kbtree type {ty}"))),
                };
                let checked = check_keyfun(sig, env, &keyfun, &tuple_type)?;
                Ok(Value::BTree(Arc::new(BTreeHandle {
                    tree: BTree::create(self.pool.clone())?,
                    tuple_type,
                    key: KeyExtractor::Fun(checked),
                })))
            }
            "lsdtree" => {
                let (tuple_type, keyfun) = match args.as_slice() {
                    [TypeArg::Type(t), TypeArg::Expr(e)] => (t.clone(), e.clone()),
                    _ => return Err(ExecError::Other(format!("malformed lsdtree type {ty}"))),
                };
                let checked = check_keyfun(sig, env, &keyfun, &tuple_type)?;
                Ok(Value::LsdTree(Arc::new(LsdHandle {
                    tree: LsdTree::create(self.pool.clone())?,
                    tuple_type,
                    keyfun: checked,
                })))
            }
            _ => Ok(Value::Undefined),
        }
    }
}

/// Type-check a key function expression embedded in a type (`kbtree` /
/// `lsdtree` key expressions). An attribute name is accepted as a unary
/// function per the paper's shorthand.
fn check_keyfun(
    sig: &Signature,
    env: &dyn sos_core::check::ObjectEnv,
    e: &sos_core::Expr,
    tuple_type: &DataType,
) -> ExecResult<TypedExpr> {
    let checker = Checker::new(sig, env);
    // Wrap a bare attribute name as a lambda.
    let expr = match e {
        sos_core::Expr::Lambda { .. } => e.clone(),
        sos_core::Expr::Name(n) | sos_core::Expr::Const(sos_core::Const::Ident(n)) => {
            sos_core::Expr::Lambda {
                params: vec![(Symbol::new("%k"), tuple_type.clone())],
                body: Box::new(sos_core::Expr::Apply {
                    op: n.clone(),
                    args: vec![sos_core::Expr::Name(Symbol::new("%k"))],
                }),
            }
        }
        other => other.clone(),
    };
    Ok(checker.check_expr(&expr)?)
}

/// A saved variable environment plus the length of the installed
/// captured prefix — the bookkeeping for one amortized batch of closure
/// calls (see [`EvalCtx::begin_call`]).
pub struct CallFrame {
    saved: Vec<(Symbol, Value)>,
    base: usize,
}

/// Per-evaluation context: the mutable object store, the catalog, and
/// the lambda-variable environment.
pub struct EvalCtx<'a> {
    pub engine: &'a ExecEngine,
    pub store: &'a mut HashMap<Symbol, Value>,
    pub catalog: &'a mut Catalog,
    vars: Vec<(Symbol, Value)>,
}

impl<'a> EvalCtx<'a> {
    pub fn new(
        engine: &'a ExecEngine,
        store: &'a mut HashMap<Symbol, Value>,
        catalog: &'a mut Catalog,
    ) -> EvalCtx<'a> {
        EvalCtx {
            engine,
            store,
            catalog,
            vars: Vec::new(),
        }
    }

    /// Evaluate a typed term to a value.
    pub fn eval(&mut self, te: &TypedExpr) -> ExecResult<Value> {
        match &te.node {
            TypedNode::Const(c) => Ok(Value::from_const(c)),
            TypedNode::Object(name) => match self.store.get(name) {
                Some(Value::Undefined) | None => {
                    // "create" gives an object an undefined value
                    // (Section 2.4). A freshly created relation reads as
                    // empty; other objects read as Undefined and the
                    // operator that receives one reports the error.
                    if matches!(&te.ty, DataType::Cons(n, _) if n.as_str() == "rel") {
                        Ok(Value::Rel(Vec::new()))
                    } else {
                        Ok(Value::Undefined)
                    }
                }
                Some(v) => Ok(v.clone()),
            },
            TypedNode::Var(name) => self
                .vars
                .iter()
                .rev()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v.clone())
                .ok_or_else(|| ExecError::Other(format!("unbound variable `{name}`"))),
            TypedNode::Lambda { params, body } => Ok(Value::Closure(Arc::new(Closure {
                params: params.clone(),
                body: (**body).clone(),
                captured: self.vars.clone(),
            }))),
            TypedNode::List(items) => Ok(Value::List(
                items
                    .iter()
                    .map(|i| self.eval(i))
                    .collect::<ExecResult<_>>()?,
            )),
            TypedNode::Tuple(items) => Ok(Value::Pair(
                items
                    .iter()
                    .map(|i| self.eval(i))
                    .collect::<ExecResult<_>>()?,
            )),
            TypedNode::ApplyFun { fun, args } => {
                let f = self.eval(fun)?;
                let argv = args
                    .iter()
                    .map(|a| self.eval(a))
                    .collect::<ExecResult<Vec<_>>>()?;
                let closure = f.as_closure("function application")?.clone();
                self.call(&closure, argv)
            }
            TypedNode::Apply { op, args, .. } => {
                let argv = args
                    .iter()
                    .map(|a| self.eval(a))
                    .collect::<ExecResult<Vec<_>>>()?;
                if let Some(imp) = self.engine.ops.get(op).cloned() {
                    return imp(self, te, argv);
                }
                // Attribute access: `pop(t)` selects the field at the
                // attribute's position in the operand tuple type.
                if let [arg_node] = &args[..] {
                    if let Some(idx) = attr_index(&arg_node.ty, op) {
                        let tuple = argv[0].as_tuple(op.as_str())?;
                        return tuple.get(idx).cloned().ok_or_else(|| {
                            ExecError::Other(format!("tuple too short for attribute `{op}`"))
                        });
                    }
                }
                Err(ExecError::NoImpl(op.clone()))
            }
        }
    }

    /// Apply a closure to argument values.
    pub fn call(&mut self, closure: &Closure, args: Vec<Value>) -> ExecResult<Value> {
        let frame = self.begin_call(closure);
        let out = self.call_bound(closure, &frame, args);
        self.end_call(frame);
        out
    }

    /// Install `closure`'s captured environment once, so a batch of
    /// [`EvalCtx::call_bound`] invocations pays the environment clone a
    /// single time instead of per tuple. Must be balanced by
    /// [`EvalCtx::end_call`] with the returned frame.
    pub fn begin_call(&mut self, closure: &Closure) -> CallFrame {
        let saved = std::mem::take(&mut self.vars);
        self.vars = closure.captured.clone();
        CallFrame {
            saved,
            base: self.vars.len(),
        }
    }

    /// Apply `closure` to `args` inside an installed frame: rebinds only
    /// the parameters (the captured prefix stays in place). Semantically
    /// identical to [`EvalCtx::call`] for the same closure.
    pub fn call_bound(
        &mut self,
        closure: &Closure,
        frame: &CallFrame,
        args: Vec<Value>,
    ) -> ExecResult<Value> {
        if closure.params.len() != args.len() {
            return Err(ExecError::Other(format!(
                "function expects {} argument(s), got {}",
                closure.params.len(),
                args.len()
            )));
        }
        self.vars.truncate(frame.base);
        for ((name, _), v) in closure.params.iter().zip(args) {
            self.vars.push((name.clone(), v));
        }
        self.eval(&closure.body)
    }

    /// Single-argument [`EvalCtx::call_bound`] without the argument
    /// vector: the per-tuple shape of batched `filter`/`project`/`replace`.
    pub fn call_bound1(
        &mut self,
        closure: &Closure,
        frame: &CallFrame,
        arg: Value,
    ) -> ExecResult<Value> {
        if closure.params.len() != 1 {
            return Err(ExecError::Other(format!(
                "function expects {} argument(s), got 1",
                closure.params.len()
            )));
        }
        self.vars.truncate(frame.base);
        self.vars.push((closure.params[0].0.clone(), arg));
        self.eval(&closure.body)
    }

    /// Restore the variable environment saved by [`EvalCtx::begin_call`].
    pub fn end_call(&mut self, frame: CallFrame) {
        self.vars = frame.saved;
    }

    /// Derive the B-tree key value for a tuple.
    pub fn key_value(&mut self, handle: &BTreeHandle, tuple: &Value) -> ExecResult<Value> {
        match &handle.key {
            KeyExtractor::Attr(idx) => {
                let fields = tuple.as_tuple("btree key")?;
                fields.get(*idx).cloned().ok_or_else(|| {
                    ExecError::Other("tuple too short for btree key attribute".into())
                })
            }
            KeyExtractor::Attrs(idxs) => {
                let fields = tuple.as_tuple("mbtree key")?;
                let mut comps = Vec::with_capacity(idxs.len());
                for idx in idxs {
                    comps.push(fields.get(*idx).cloned().ok_or_else(|| {
                        ExecError::Other("tuple too short for mbtree key attribute".into())
                    })?);
                }
                Ok(Value::Pair(comps))
            }
            KeyExtractor::Fun(f) => {
                let v = self.eval(f)?;
                let closure = v.as_closure("btree key function")?.clone();
                self.call(&closure, vec![tuple.clone()])
            }
        }
    }

    /// Derive the indexed rectangle for an LSD-tree entry.
    pub fn rect_value(&mut self, handle: &LsdHandle, tuple: &Value) -> ExecResult<sos_geom::Rect> {
        let v = self.eval(&handle.keyfun.clone())?;
        let closure = v.as_closure("lsdtree key function")?.clone();
        match self.call(&closure, vec![tuple.clone()])? {
            Value::Rect(r) => Ok(r),
            other => Err(crate::error::mismatch(
                "lsdtree key",
                "rect",
                &other.kind_name(),
            )),
        }
    }
}
