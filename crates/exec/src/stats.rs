//! Per-operator execution accounting.
//!
//! The buffer pool's [`sos_storage::PoolStats`] measures page traffic
//! for the whole engine; `ExecStats` adds an operator-level view: how
//! many tuples flowed into and out of each operator, how many heap pages
//! its scans touched, and how many workers the parallel executor
//! actually used. Tests and the `sos` shell's `.stats` command read this
//! to observe whether the parallel path ran.

use parking_lot::Mutex;
use std::collections::HashMap;

/// Cumulative counters for one operator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Times the operator ran (serial or parallel).
    pub invocations: u64,
    /// Times the operator took a parallel path (workers > 1).
    pub parallel_invocations: u64,
    /// Tuples consumed (for scans: records read before filtering).
    pub tuples_in: u64,
    /// Tuples produced.
    pub tuples_out: u64,
    /// Heap pages scanned (parallel paths only; serial cursors account
    /// their page traffic through `PoolStats`).
    pub pages_scanned: u64,
    /// The largest worker count any invocation actually used.
    pub max_workers: u64,
    /// Batches emitted by the vectorized path (0 = tuple-at-a-time).
    pub batches: u64,
    /// Tuples carried by those batches; `batched_rows / batches` is the
    /// observed rows-per-batch.
    pub batched_rows: u64,
    /// Partitions of partitioned inputs this operator considered.
    pub partitions: u64,
    /// Of those, partitions pruned away before being touched (equality /
    /// range / spatial-cover pruning on the routing attribute).
    pub partitions_pruned: u64,
}

impl OpStats {
    /// Observed average batch width, or 0 if the operator never batched.
    pub fn rows_per_batch(&self) -> u64 {
        self.batched_rows.checked_div(self.batches).unwrap_or(0)
    }
}

impl OpStats {
    fn absorb(&mut self, workers: usize, tuples_in: usize, tuples_out: usize, pages: usize) {
        self.invocations += 1;
        if workers > 1 {
            self.parallel_invocations += 1;
        }
        self.tuples_in += tuples_in as u64;
        self.tuples_out += tuples_out as u64;
        self.pages_scanned += pages as u64;
        self.max_workers = self.max_workers.max(workers as u64);
    }
}

/// Expression-compiler counters: how many closures were lowered to
/// bytecode and how many fell back to the interpreter, keyed by the
/// fallback reason (see [`crate::compile::Fallback`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompileStats {
    /// Closures lowered to bytecode (one per compilation event; a
    /// `search_join` whose inner predicate recompiles per outer tuple
    /// counts each instance).
    pub compiled: u64,
    /// Interpreter fallbacks as `(reason, count)`, sorted by reason.
    pub fallbacks: Vec<(String, u64)>,
}

impl CompileStats {
    /// Total fallbacks across every reason.
    pub fn total_fallbacks(&self) -> u64 {
        self.fallbacks.iter().map(|(_, n)| n).sum()
    }

    /// The count for one fallback reason (0 if it never occurred).
    pub fn fallback(&self, reason: &str) -> u64 {
        self.fallbacks
            .iter()
            .find_map(|(r, n)| (r == reason).then_some(*n))
            .unwrap_or(0)
    }

    /// Whether nothing was compiled and nothing fell back.
    pub fn is_empty(&self) -> bool {
        self.compiled == 0 && self.fallbacks.is_empty()
    }

    /// Counter difference `self - before`: the compilation events
    /// attributable to one run.
    pub fn delta(&self, before: &CompileStats) -> CompileStats {
        let fallbacks = self
            .fallbacks
            .iter()
            .filter_map(|(r, n)| {
                let d = n - before.fallback(r);
                (d > 0).then(|| (r.clone(), d))
            })
            .collect();
        CompileStats {
            compiled: self.compiled - before.compiled,
            fallbacks,
        }
    }
}

/// Engine-wide per-operator counters, shared behind the engine.
#[derive(Default)]
pub struct ExecStats {
    ops: Mutex<HashMap<&'static str, OpStats>>,
    compile: Mutex<(u64, HashMap<&'static str, u64>)>,
}

impl ExecStats {
    /// Record one operator invocation.
    pub fn record(
        &self,
        op: &'static str,
        workers: usize,
        tuples_in: usize,
        tuples_out: usize,
        pages: usize,
    ) {
        self.ops
            .lock()
            .entry(op)
            .or_default()
            .absorb(workers, tuples_in, tuples_out, pages);
    }

    /// Record batch traffic for an operator that drained its input
    /// through the vectorized path (complements [`ExecStats::record`],
    /// which counts the invocation itself).
    pub fn record_batches(&self, op: &'static str, batches: u64, rows: u64) {
        if batches == 0 {
            return;
        }
        let mut ops = self.ops.lock();
        let s = ops.entry(op).or_default();
        s.batches += batches;
        s.batched_rows += rows;
    }

    /// Record a partitioned input: how many partitions the object has
    /// and how many this invocation pruned without touching.
    pub fn record_partitions(&self, op: &'static str, partitions: u64, pruned: u64) {
        if partitions == 0 {
            return;
        }
        let mut ops = self.ops.lock();
        let s = ops.entry(op).or_default();
        s.partitions += partitions;
        s.partitions_pruned += pruned;
    }

    /// Counters for one operator (zeros if it never ran). Prefer
    /// [`ExecStats::get`], which distinguishes "never ran" from zeros.
    pub fn op(&self, op: &str) -> OpStats {
        self.get(op).unwrap_or_default()
    }

    /// Counters for one operator, or `None` if it never ran.
    pub fn get(&self, op: &str) -> Option<OpStats> {
        self.ops.lock().get(op).copied()
    }

    /// All per-operator counters, sorted by operator name.
    pub fn snapshot(&self) -> Vec<(String, OpStats)> {
        let mut out: Vec<(String, OpStats)> = self
            .ops
            .lock()
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Record one closure lowered to bytecode.
    pub fn record_compiled(&self) {
        self.compile.lock().0 += 1;
    }

    /// Record one interpreter fallback under `reason`.
    pub fn record_fallback(&self, reason: &'static str) {
        *self.compile.lock().1.entry(reason).or_default() += 1;
    }

    /// The expression-compiler counters, fallbacks sorted by reason.
    pub fn compile_snapshot(&self) -> CompileStats {
        let guard = self.compile.lock();
        let mut fallbacks: Vec<(String, u64)> =
            guard.1.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        fallbacks.sort_by(|a, b| a.0.cmp(&b.0));
        CompileStats {
            compiled: guard.0,
            fallbacks,
        }
    }

    /// Reset every counter (e.g. between benchmark phases).
    pub fn reset(&self) {
        self.ops.lock().clear();
        let mut c = self.compile.lock();
        c.0 = 0;
        c.1.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_and_tracks_parallelism() {
        let s = ExecStats::default();
        s.record("count", 1, 100, 1, 0);
        s.record("count", 4, 200, 1, 7);
        let c = s.op("count");
        assert_eq!(c.invocations, 2);
        assert_eq!(c.parallel_invocations, 1);
        assert_eq!(c.tuples_in, 300);
        assert_eq!(c.tuples_out, 2);
        assert_eq!(c.pages_scanned, 7);
        assert_eq!(c.max_workers, 4);
        assert_eq!(s.op("feed"), OpStats::default());
        assert_eq!(s.get("feed"), None);
        assert_eq!(s.get("count"), Some(c));
        assert_eq!(s.snapshot().len(), 1);
        s.reset();
        assert_eq!(s.op("count"), OpStats::default());
    }

    #[test]
    fn compile_counters_accumulate_delta_and_reset() {
        let s = ExecStats::default();
        assert!(s.compile_snapshot().is_empty());
        s.record_compiled();
        s.record_compiled();
        s.record_fallback("object-ref");
        s.record_fallback("impure-op");
        s.record_fallback("impure-op");
        let snap = s.compile_snapshot();
        assert_eq!(snap.compiled, 2);
        assert_eq!(snap.total_fallbacks(), 3);
        assert_eq!(snap.fallback("impure-op"), 2);
        assert_eq!(snap.fallback("object-ref"), 1);
        assert_eq!(snap.fallback("never"), 0);
        // Fallbacks come back sorted by reason for stable rendering.
        assert_eq!(snap.fallbacks[0].0, "impure-op");
        s.record_compiled();
        s.record_fallback("object-ref");
        let d = s.compile_snapshot().delta(&snap);
        assert_eq!(d.compiled, 1);
        assert_eq!(d.fallbacks, vec![("object-ref".to_string(), 1)]);
        s.reset();
        assert!(s.compile_snapshot().is_empty());
    }
}
