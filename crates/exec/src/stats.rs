//! Per-operator execution accounting.
//!
//! The buffer pool's [`sos_storage::PoolStats`] measures page traffic
//! for the whole engine; `ExecStats` adds an operator-level view: how
//! many tuples flowed into and out of each operator, how many heap pages
//! its scans touched, and how many workers the parallel executor
//! actually used. Tests and the `sos` shell's `.stats` command read this
//! to observe whether the parallel path ran.

use parking_lot::Mutex;
use std::collections::HashMap;

/// Cumulative counters for one operator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Times the operator ran (serial or parallel).
    pub invocations: u64,
    /// Times the operator took a parallel path (workers > 1).
    pub parallel_invocations: u64,
    /// Tuples consumed (for scans: records read before filtering).
    pub tuples_in: u64,
    /// Tuples produced.
    pub tuples_out: u64,
    /// Heap pages scanned (parallel paths only; serial cursors account
    /// their page traffic through `PoolStats`).
    pub pages_scanned: u64,
    /// The largest worker count any invocation actually used.
    pub max_workers: u64,
    /// Batches emitted by the vectorized path (0 = tuple-at-a-time).
    pub batches: u64,
    /// Tuples carried by those batches; `batched_rows / batches` is the
    /// observed rows-per-batch.
    pub batched_rows: u64,
}

impl OpStats {
    /// Observed average batch width, or 0 if the operator never batched.
    pub fn rows_per_batch(&self) -> u64 {
        self.batched_rows.checked_div(self.batches).unwrap_or(0)
    }
}

impl OpStats {
    fn absorb(&mut self, workers: usize, tuples_in: usize, tuples_out: usize, pages: usize) {
        self.invocations += 1;
        if workers > 1 {
            self.parallel_invocations += 1;
        }
        self.tuples_in += tuples_in as u64;
        self.tuples_out += tuples_out as u64;
        self.pages_scanned += pages as u64;
        self.max_workers = self.max_workers.max(workers as u64);
    }
}

/// Engine-wide per-operator counters, shared behind the engine.
#[derive(Default)]
pub struct ExecStats {
    ops: Mutex<HashMap<&'static str, OpStats>>,
}

impl ExecStats {
    /// Record one operator invocation.
    pub fn record(
        &self,
        op: &'static str,
        workers: usize,
        tuples_in: usize,
        tuples_out: usize,
        pages: usize,
    ) {
        self.ops
            .lock()
            .entry(op)
            .or_default()
            .absorb(workers, tuples_in, tuples_out, pages);
    }

    /// Record batch traffic for an operator that drained its input
    /// through the vectorized path (complements [`ExecStats::record`],
    /// which counts the invocation itself).
    pub fn record_batches(&self, op: &'static str, batches: u64, rows: u64) {
        if batches == 0 {
            return;
        }
        let mut ops = self.ops.lock();
        let s = ops.entry(op).or_default();
        s.batches += batches;
        s.batched_rows += rows;
    }

    /// Counters for one operator (zeros if it never ran). Prefer
    /// [`ExecStats::get`], which distinguishes "never ran" from zeros.
    pub fn op(&self, op: &str) -> OpStats {
        self.get(op).unwrap_or_default()
    }

    /// Counters for one operator, or `None` if it never ran.
    pub fn get(&self, op: &str) -> Option<OpStats> {
        self.ops.lock().get(op).copied()
    }

    /// All per-operator counters, sorted by operator name.
    pub fn snapshot(&self) -> Vec<(String, OpStats)> {
        let mut out: Vec<(String, OpStats)> = self
            .ops
            .lock()
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Reset every counter (e.g. between benchmark phases).
    pub fn reset(&self) {
        self.ops.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_and_tracks_parallelism() {
        let s = ExecStats::default();
        s.record("count", 1, 100, 1, 0);
        s.record("count", 4, 200, 1, 7);
        let c = s.op("count");
        assert_eq!(c.invocations, 2);
        assert_eq!(c.parallel_invocations, 1);
        assert_eq!(c.tuples_in, 300);
        assert_eq!(c.tuples_out, 2);
        assert_eq!(c.pages_scanned, 7);
        assert_eq!(c.max_workers, 4);
        assert_eq!(s.op("feed"), OpStats::default());
        assert_eq!(s.get("feed"), None);
        assert_eq!(s.get("count"), Some(c));
        assert_eq!(s.snapshot().len(), 1);
        s.reset();
        assert_eq!(s.op("count"), OpStats::default());
    }
}
