//! The lexer shared by the specification language and the program
//! language.
//!
//! Comment syntax follows the paper: `{ ... }` braces enclose comments
//! (as in the example programs of Section 2.4); `--` starts a line
//! comment.

use crate::ParseError;

/// A lexical token with its source position (byte offset).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub pos: usize,
}

#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    Ident(String),
    /// `$name` — a specification variable reference (variable-named
    /// operators such as `$attrname`).
    DollarIdent(String),
    Int(i64),
    Real(f64),
    Str(String),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Lt,
    Gt,
    Le,
    Ge,
    Eq,
    Neq,
    Comma,
    Colon,
    Assign, // :=
    Dot,
    Semicolon,
    Arrow, // ->
    Plus,
    Minus,
    Star,
    Slash,
    Bar, // | (union sorts)
    Eof,
}

impl TokenKind {
    /// The operator name this token denotes when used as an infix
    /// operator in expressions.
    pub fn infix_name(&self) -> Option<&str> {
        match self {
            TokenKind::Lt => Some("<"),
            TokenKind::Gt => Some(">"),
            TokenKind::Le => Some("<="),
            TokenKind::Ge => Some(">="),
            TokenKind::Eq => Some("="),
            TokenKind::Neq => Some("!="),
            TokenKind::Plus => Some("+"),
            TokenKind::Minus => Some("-"),
            TokenKind::Star => Some("*"),
            TokenKind::Slash => Some("/"),
            TokenKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }
}

impl std::fmt::Display for TokenKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::DollarIdent(s) => write!(f, "${s}"),
            TokenKind::Int(v) => write!(f, "{v}"),
            TokenKind::Real(v) => write!(f, "{v}"),
            TokenKind::Str(s) => write!(f, "{s:?}"),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::LBracket => write!(f, "["),
            TokenKind::RBracket => write!(f, "]"),
            TokenKind::Lt => write!(f, "<"),
            TokenKind::Gt => write!(f, ">"),
            TokenKind::Le => write!(f, "<="),
            TokenKind::Ge => write!(f, ">="),
            TokenKind::Eq => write!(f, "="),
            TokenKind::Neq => write!(f, "!="),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Colon => write!(f, ":"),
            TokenKind::Assign => write!(f, ":="),
            TokenKind::Dot => write!(f, "."),
            TokenKind::Semicolon => write!(f, ";"),
            TokenKind::Arrow => write!(f, "->"),
            TokenKind::Plus => write!(f, "+"),
            TokenKind::Minus => write!(f, "-"),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Slash => write!(f, "/"),
            TokenKind::Bar => write!(f, "|"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

/// Tokenize a complete source string.
pub fn tokenize(src: &str) -> Result<Vec<Token>, ParseError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let pos = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '{' => {
                // Brace comment, nestable.
                let mut depth = 1;
                i += 1;
                while i < bytes.len() && depth > 0 {
                    match bytes[i] as char {
                        '{' => depth += 1,
                        '}' => depth -= 1,
                        _ => {}
                    }
                    i += 1;
                }
                if depth > 0 {
                    return Err(ParseError::at(pos, "unterminated comment"));
                }
            }
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'>' => {
                toks.push(Token {
                    kind: TokenKind::Arrow,
                    pos,
                });
                i += 2;
            }
            '"' => {
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(ParseError::at(pos, "unterminated string"));
                    }
                    match bytes[i] as char {
                        '"' => {
                            i += 1;
                            break;
                        }
                        '\\' if i + 1 < bytes.len() => {
                            let esc = bytes[i + 1] as char;
                            s.push(match esc {
                                'n' => '\n',
                                't' => '\t',
                                other => other,
                            });
                            i += 2;
                        }
                        ch => {
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                toks.push(Token {
                    kind: TokenKind::Str(s),
                    pos,
                });
            }
            '$' => {
                i += 1;
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                if start == i {
                    return Err(ParseError::at(pos, "expected identifier after `$`"));
                }
                toks.push(Token {
                    kind: TokenKind::DollarIdent(src[start..i].to_string()),
                    pos,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let is_real =
                    i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit();
                if is_real {
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let v: f64 = src[start..i]
                        .parse()
                        .map_err(|_| ParseError::at(pos, "bad real literal"))?;
                    toks.push(Token {
                        kind: TokenKind::Real(v),
                        pos,
                    });
                } else {
                    let v: i64 = src[start..i]
                        .parse()
                        .map_err(|_| ParseError::at(pos, "bad integer literal"))?;
                    toks.push(Token {
                        kind: TokenKind::Int(v),
                        pos,
                    });
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                toks.push(Token {
                    kind: TokenKind::Ident(src[start..i].to_string()),
                    pos,
                });
            }
            _ => {
                let (kind, len) = match (c, bytes.get(i + 1).map(|&b| b as char)) {
                    (':', Some('=')) => (TokenKind::Assign, 2),
                    ('<', Some('=')) => (TokenKind::Le, 2),
                    ('>', Some('=')) => (TokenKind::Ge, 2),
                    ('!', Some('=')) => (TokenKind::Neq, 2),
                    ('#', _) => (TokenKind::Neq, 1), // `#` also means ≠ in some texts; unused
                    ('(', _) => (TokenKind::LParen, 1),
                    (')', _) => (TokenKind::RParen, 1),
                    ('[', _) => (TokenKind::LBracket, 1),
                    (']', _) => (TokenKind::RBracket, 1),
                    ('<', _) => (TokenKind::Lt, 1),
                    ('>', _) => (TokenKind::Gt, 1),
                    ('=', _) => (TokenKind::Eq, 1),
                    (',', _) => (TokenKind::Comma, 1),
                    (':', _) => (TokenKind::Colon, 1),
                    ('.', _) => (TokenKind::Dot, 1),
                    (';', _) => (TokenKind::Semicolon, 1),
                    ('+', _) => (TokenKind::Plus, 1),
                    ('-', _) => (TokenKind::Minus, 1),
                    ('*', _) => (TokenKind::Star, 1),
                    ('/', _) => (TokenKind::Slash, 1),
                    ('|', _) => (TokenKind::Bar, 1),
                    _ => return Err(ParseError::at(pos, &format!("unexpected character `{c}`"))),
                };
                toks.push(Token { kind, pos });
                i += len;
            }
        }
    }
    toks.push(Token {
        kind: TokenKind::Eof,
        pos: src.len(),
    });
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .filter(|k| *k != TokenKind::Eof)
            .collect()
    }

    #[test]
    fn lexes_program_statement() {
        let ks = kinds("query cities select[pop > 100000]");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("query".into()),
                TokenKind::Ident("cities".into()),
                TokenKind::Ident("select".into()),
                TokenKind::LBracket,
                TokenKind::Ident("pop".into()),
                TokenKind::Gt,
                TokenKind::Int(100000),
                TokenKind::RBracket,
            ]
        );
    }

    #[test]
    fn lexes_type_with_list() {
        let ks = kinds("tuple(<(name, string), (pop, int)>)");
        assert!(ks.contains(&TokenKind::Lt));
        assert!(ks.contains(&TokenKind::Gt));
        assert_eq!(ks.iter().filter(|k| **k == TokenKind::Comma).count(), 3);
    }

    #[test]
    fn lexes_operators_and_arrow() {
        let ks = kinds("a := b -> c <= d >= e != f");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Assign,
                TokenKind::Ident("b".into()),
                TokenKind::Arrow,
                TokenKind::Ident("c".into()),
                TokenKind::Le,
                TokenKind::Ident("d".into()),
                TokenKind::Ge,
                TokenKind::Ident("e".into()),
                TokenKind::Neq,
                TokenKind::Ident("f".into()),
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("a { fill the { nested } relation } b -- rest\nc");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Ident("c".into()),
            ]
        );
    }

    #[test]
    fn strings_and_numbers() {
        let ks = kinds(r#""France" 3.5 42 "esc\"aped""#);
        assert_eq!(
            ks,
            vec![
                TokenKind::Str("France".into()),
                TokenKind::Real(3.5),
                TokenKind::Int(42),
                TokenKind::Str("esc\"aped".into()),
            ]
        );
    }

    #[test]
    fn dollar_idents() {
        assert_eq!(
            kinds("$attrname"),
            vec![TokenKind::DollarIdent("attrname".into())]
        );
        assert!(tokenize("$ ").is_err());
    }

    #[test]
    fn unterminated_comment_is_error() {
        assert!(tokenize("{ never closed").is_err());
    }
}
