//! Type expressions, value expressions (concrete syntax), and the
//! five-statement program language of Section 2.4.

use crate::cursor::Cursor;
use crate::lexer::{tokenize, TokenKind};
use crate::ParseError;
use sos_core::{sym, Const, DataType, Expr, SeqAtom, Signature, Symbol, TypeArg};

/// One statement of the generic data definition and manipulation
/// language (Section 2.4).
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `type <identifier> = <type expression>`
    TypeDef(Symbol, DataType),
    /// `create <identifier> : <type expression>`
    Create(Symbol, DataType),
    /// `update <identifier> := <value expression>`
    Update(Symbol, Expr),
    /// `delete <identifier>`
    Delete(Symbol),
    /// `query <value expression>`
    Query(Expr),
}

/// Parse a program: a sequence of `;`-terminated statements.
pub fn parse_program(src: &str, sig: &Signature) -> Result<Vec<Statement>, ParseError> {
    let mut cur = Cursor::new(tokenize(src)?);
    let mut out = Vec::new();
    while !cur.at_eof() {
        let stmt = if cur.eat_keyword("type") {
            let name = cur.ident()?;
            cur.expect(&TokenKind::Eq)?;
            let ty = parse_type(&mut cur, sig)?;
            Statement::TypeDef(sym(&name), ty)
        } else if cur.eat_keyword("create") {
            let name = cur.ident()?;
            cur.expect(&TokenKind::Colon)?;
            let ty = parse_type(&mut cur, sig)?;
            Statement::Create(sym(&name), ty)
        } else if cur.eat_keyword("update") {
            let name = cur.ident()?;
            cur.expect(&TokenKind::Assign)?;
            let e = parse_expr(&mut cur, sig, 0, 0)?;
            Statement::Update(sym(&name), e)
        } else if cur.eat_keyword("delete") {
            let name = cur.ident()?;
            Statement::Delete(sym(&name))
        } else if cur.eat_keyword("query") {
            let e = parse_expr(&mut cur, sig, 0, 0)?;
            Statement::Query(e)
        } else {
            return Err(cur.error(&format!(
                "expected a statement keyword (type/create/update/delete/query), found `{}`",
                cur.peek()
            )));
        };
        out.push(stmt);
        cur.eat(&TokenKind::Semicolon);
    }
    Ok(out)
}

/// Parse a single value expression (convenience for tests and the
/// optimizer's rule templates).
pub fn parse_expr_str(src: &str, sig: &Signature) -> Result<Expr, ParseError> {
    let mut cur = Cursor::new(tokenize(src)?);
    let e = parse_expr(&mut cur, sig, 0, 0)?;
    if !cur.at_eof() {
        return Err(cur.error(&format!("trailing input `{}`", cur.peek())));
    }
    Ok(e)
}

/// Parse a single type expression with no signature context (infix
/// operators inside embedded lambdas will not resolve; use
/// [`parse_program`] for full programs).
pub fn parse_type_str(src: &str) -> Result<DataType, ParseError> {
    let sig = Signature::new();
    let mut cur = Cursor::new(tokenize(src)?);
    let t = parse_type(&mut cur, &sig)?;
    if !cur.at_eof() {
        return Err(cur.error(&format!("trailing input `{}`", cur.peek())));
    }
    Ok(t)
}

// =========================================================================
// Types
// =========================================================================

fn parse_type(cur: &mut Cursor, sig: &Signature) -> Result<DataType, ParseError> {
    if cur.eat(&TokenKind::LParen) {
        // `( -> t )` or `(t1 x t2 -> t)` or a grouped type.
        if cur.eat(&TokenKind::Arrow) {
            let res = parse_type(cur, sig)?;
            cur.expect(&TokenKind::RParen)?;
            return Ok(DataType::Fun(Vec::new(), Box::new(res)));
        }
        let first = parse_type(cur, sig)?;
        if cur.at_keyword("x") || *cur.peek() == TokenKind::Arrow {
            let mut params = vec![first];
            while cur.eat_keyword("x") {
                params.push(parse_type(cur, sig)?);
            }
            cur.expect(&TokenKind::Arrow)?;
            let res = parse_type(cur, sig)?;
            cur.expect(&TokenKind::RParen)?;
            return Ok(DataType::Fun(params, Box::new(res)));
        }
        cur.expect(&TokenKind::RParen)?;
        return Ok(first);
    }
    let name = cur.ident()?;
    if cur.eat(&TokenKind::LParen) {
        let mut args = vec![parse_type_arg(cur, sig)?];
        while cur.eat(&TokenKind::Comma) {
            args.push(parse_type_arg(cur, sig)?);
        }
        cur.expect(&TokenKind::RParen)?;
        return Ok(DataType::Cons(sym(&name), args));
    }
    Ok(DataType::Cons(sym(&name), Vec::new()))
}

fn parse_type_arg(cur: &mut Cursor, sig: &Signature) -> Result<TypeArg, ParseError> {
    match cur.peek().clone() {
        TokenKind::Lt => {
            cur.next();
            let mut items = vec![parse_type_arg(cur, sig)?];
            while cur.eat(&TokenKind::Comma) {
                items.push(parse_type_arg(cur, sig)?);
            }
            cur.expect(&TokenKind::Gt)?;
            Ok(TypeArg::List(items))
        }
        TokenKind::LParen => {
            cur.next();
            if cur.eat(&TokenKind::Arrow) {
                let res = parse_type(cur, sig)?;
                cur.expect(&TokenKind::RParen)?;
                return Ok(TypeArg::Type(DataType::Fun(Vec::new(), Box::new(res))));
            }
            let first = parse_type_arg(cur, sig)?;
            if cur.at_keyword("x") || *cur.peek() == TokenKind::Arrow {
                // A function type: the components must be types.
                let TypeArg::Type(t0) = first else {
                    return Err(cur.error("function parameter must be a type"));
                };
                let mut params = vec![t0];
                while cur.eat_keyword("x") {
                    params.push(parse_type(cur, sig)?);
                }
                cur.expect(&TokenKind::Arrow)?;
                let res = parse_type(cur, sig)?;
                cur.expect(&TokenKind::RParen)?;
                return Ok(TypeArg::Type(DataType::Fun(params, Box::new(res))));
            }
            if cur.eat(&TokenKind::Comma) {
                let mut items = vec![first, parse_type_arg(cur, sig)?];
                while cur.eat(&TokenKind::Comma) {
                    items.push(parse_type_arg(cur, sig)?);
                }
                cur.expect(&TokenKind::RParen)?;
                return Ok(TypeArg::Pair(items));
            }
            cur.expect(&TokenKind::RParen)?;
            Ok(first)
        }
        TokenKind::Int(v) => {
            cur.next();
            Ok(TypeArg::Expr(Expr::Const(Const::Int(v))))
        }
        TokenKind::Real(v) => {
            cur.next();
            Ok(TypeArg::Expr(Expr::Const(Const::Real(v))))
        }
        TokenKind::Str(s) => {
            cur.next();
            Ok(TypeArg::Expr(Expr::Const(Const::Str(s))))
        }
        TokenKind::Ident(ref s) if s == "fun" => {
            cur.next();
            Ok(TypeArg::Expr(parse_lambda(cur, sig)?))
        }
        TokenKind::Ident(_) => {
            let t = parse_type(cur, sig)?;
            Ok(TypeArg::Type(t))
        }
        other => Err(cur.error(&format!("expected a type argument, found `{other}`"))),
    }
}

// =========================================================================
// Expressions (concrete syntax)
// =========================================================================

/// Precedence-climbing over infix operators (those whose syntax pattern
/// is `_ # _`), with operand/operator sequences beneath.
/// `angle_depth` > 0 means we are inside a `<...>` list literal and `>`
/// terminates rather than comparing.
fn parse_expr(
    cur: &mut Cursor,
    sig: &Signature,
    min_prec: u8,
    angle_depth: usize,
) -> Result<Expr, ParseError> {
    let mut left = parse_seq(cur, sig, angle_depth)?;
    loop {
        let tok = cur.peek().clone();
        if angle_depth > 0 && tok == TokenKind::Gt {
            break;
        }
        let Some(name) = tok.infix_name() else { break };
        let Some(prec) = infix_prec(sig, name) else {
            break;
        };
        if prec < min_prec {
            break;
        }
        let name = name.to_string();
        cur.next();
        let right = parse_expr(cur, sig, prec + 1, angle_depth)?;
        left = Expr::Apply {
            op: sym(&name),
            args: vec![left, right],
        };
    }
    Ok(left)
}

fn infix_prec(sig: &Signature, name: &str) -> Option<u8> {
    let s = sig.syntax_of(&sym(name))?;
    s.infix.then_some(s.precedence)
}

/// Tokens that end an operand/operator sequence.
fn ends_seq(tok: &TokenKind, angle_depth: usize) -> bool {
    matches!(
        tok,
        TokenKind::RParen
            | TokenKind::RBracket
            | TokenKind::Comma
            | TokenKind::Semicolon
            | TokenKind::Assign
            | TokenKind::Eof
    ) || (angle_depth > 0 && *tok == TokenKind::Gt)
}

fn parse_seq(cur: &mut Cursor, sig: &Signature, angle_depth: usize) -> Result<Expr, ParseError> {
    let mut atoms: Vec<SeqAtom> = Vec::new();
    loop {
        let tok = cur.peek().clone();
        if ends_seq(&tok, angle_depth) {
            break;
        }
        // An infix operator ends the sequence (handled by the caller) —
        // but only once at least one operand exists; at the start of a
        // sequence `<` opens a list literal and `-` negates a literal.
        if !atoms.is_empty() {
            if let Some(name) = tok.infix_name() {
                if infix_prec(sig, name).is_some() {
                    break;
                }
            }
        }
        match tok {
            TokenKind::Int(v) => {
                cur.next();
                atoms.push(SeqAtom::Operand(Expr::Const(Const::Int(v))));
            }
            TokenKind::Real(v) => {
                cur.next();
                atoms.push(SeqAtom::Operand(Expr::Const(Const::Real(v))));
            }
            TokenKind::Str(s) => {
                cur.next();
                atoms.push(SeqAtom::Operand(Expr::Const(Const::Str(s))));
            }
            TokenKind::Minus => {
                // Unary minus on a numeric literal at operand position.
                cur.next();
                match cur.next() {
                    TokenKind::Int(v) => atoms.push(SeqAtom::Operand(Expr::Const(Const::Int(-v)))),
                    TokenKind::Real(v) => {
                        atoms.push(SeqAtom::Operand(Expr::Const(Const::Real(-v))))
                    }
                    _ => return Err(cur.error("expected a number after unary `-`")),
                }
            }
            TokenKind::Lt => {
                cur.next();
                let mut items = vec![parse_expr(cur, sig, 0, angle_depth + 1)?];
                while cur.eat(&TokenKind::Comma) {
                    items.push(parse_expr(cur, sig, 0, angle_depth + 1)?);
                }
                cur.expect(&TokenKind::Gt)?;
                atoms.push(SeqAtom::Operand(Expr::List(items)));
            }
            TokenKind::LParen => {
                cur.next();
                let mut items = vec![parse_expr(cur, sig, 0, 0)?];
                while cur.eat(&TokenKind::Comma) {
                    items.push(parse_expr(cur, sig, 0, 0)?);
                }
                cur.expect(&TokenKind::RParen)?;
                if items.len() == 1 {
                    atoms.push(SeqAtom::Operand(items.into_iter().next().expect("one")));
                } else {
                    atoms.push(SeqAtom::Operand(Expr::Tuple(items)));
                }
            }
            TokenKind::Ident(ref s) if s == "fun" => {
                cur.next();
                atoms.push(SeqAtom::Operand(parse_lambda(cur, sig)?));
            }
            TokenKind::Ident(ref s) if s == "true" || s == "false" => {
                cur.next();
                atoms.push(SeqAtom::Operand(Expr::Const(Const::Bool(s == "true"))));
            }
            TokenKind::Ident(name) => {
                cur.next();
                let brackets = if cur.eat(&TokenKind::LBracket) {
                    let mut args = vec![parse_expr(cur, sig, 0, 0)?];
                    while cur.eat(&TokenKind::Comma) {
                        args.push(parse_expr(cur, sig, 0, 0)?);
                    }
                    cur.expect(&TokenKind::RBracket)?;
                    Some(args)
                } else {
                    None
                };
                let parens = if cur.eat(&TokenKind::LParen) {
                    let mut args = Vec::new();
                    if *cur.peek() != TokenKind::RParen {
                        args.push(parse_expr(cur, sig, 0, 0)?);
                        while cur.eat(&TokenKind::Comma) {
                            args.push(parse_expr(cur, sig, 0, 0)?);
                        }
                    }
                    cur.expect(&TokenKind::RParen)?;
                    Some(args)
                } else {
                    None
                };
                atoms.push(SeqAtom::Word {
                    name: sym(&name),
                    brackets,
                    parens,
                });
            }
            other => {
                return Err(cur.error(&format!("unexpected token `{other}` in expression")));
            }
        }
    }
    match atoms.len() {
        0 => Err(cur.error("expected an expression")),
        1 => Ok(match atoms.into_iter().next().expect("one atom") {
            SeqAtom::Operand(e) => e,
            SeqAtom::Word {
                name,
                brackets: None,
                parens: None,
            } => Expr::Name(name),
            w => Expr::Seq(vec![w]),
        }),
        _ => Ok(Expr::Seq(atoms)),
    }
}

/// `fun ( x1: t1, ..., xn: tn ) body` — the `fun` keyword is consumed.
fn parse_lambda(cur: &mut Cursor, sig: &Signature) -> Result<Expr, ParseError> {
    cur.expect(&TokenKind::LParen)?;
    let mut params = Vec::new();
    if *cur.peek() != TokenKind::RParen {
        loop {
            let name = cur.ident()?;
            cur.expect(&TokenKind::Colon)?;
            let ty = parse_type(cur, sig)?;
            params.push((sym(&name), ty));
            if !cur.eat(&TokenKind::Comma) {
                break;
            }
        }
    }
    cur.expect(&TokenKind::RParen)?;
    let body = parse_expr(cur, sig, 0, 0)?;
    Ok(Expr::Lambda {
        params,
        body: Box::new(body),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_spec;

    fn sig() -> Signature {
        let mut s = Signature::new();
        parse_spec(
            r#"kinds DATA, TUPLE, REL, STREAM
            cons int, real, string, bool, ident : -> DATA
            cons tuple : -> TUPLE
            model cons rel : TUPLE -> REL
            op =, !=, <, <=, >, >= : forall d in DATA . d x d -> bool syntax infix 3
            op +, - : forall d in DATA . d x d -> d syntax infix 5
            op *, /, div, mod : forall d in DATA . d x d -> d syntax infix 6
            op inside : forall d in DATA . d x d -> bool syntax infix 3
            op select : forall r in REL . r x (tuple -> bool) -> r syntax "_ #[ _ ]"
            op join : forall r1 in REL . forall r2 in REL . r1 x r2 -> r : REL syntax "_ _ #[ _ ]"
            op feed : forall r in REL . r -> r syntax "_ #"
            "#,
            &mut s,
        )
        .unwrap();
        s
    }

    #[test]
    fn parses_city_type_like_the_paper() {
        let t = parse_type_str("tuple(<(name, string), (pop, int), (country, string)>)").unwrap();
        assert_eq!(
            t.to_string(),
            "tuple(<(name, string), (pop, int), (country, string)>)"
        );
    }

    #[test]
    fn parses_function_types() {
        assert_eq!(
            parse_type_str("( -> city_rel)").unwrap(),
            DataType::Fun(vec![], Box::new(DataType::atom("city_rel")))
        );
        assert_eq!(
            parse_type_str("(string -> city_rel)").unwrap(),
            DataType::Fun(
                vec![DataType::atom("string")],
                Box::new(DataType::atom("city_rel"))
            )
        );
    }

    #[test]
    fn parses_btree_type_with_value_and_lambda_args() {
        let t = parse_type_str("btree(city, pop, int)").unwrap();
        let DataType::Cons(n, args) = &t else {
            panic!()
        };
        assert_eq!(n.as_str(), "btree");
        assert_eq!(args.len(), 3);
        // `pop` parses as a bare type name; the system layer resolves it
        // to an ident value (it is not a named type).
        assert!(
            matches!(&args[1], TypeArg::Type(DataType::Cons(p, a)) if p.as_str() == "pop" && a.is_empty())
        );

        let t2 = parse_type_str("lsdtree(state, fun (s: state) bbox(s region))");
        assert!(t2.is_ok());
    }

    #[test]
    fn infix_precedence_builds_correct_tree() {
        let s = sig();
        let e = parse_expr_str("1 + 2 * 3 = 7", &s).unwrap();
        assert_eq!(e.to_string(), "=(+(1, *(2, 3)), 7)");
    }

    #[test]
    fn select_bracket_syntax() {
        let s = sig();
        let e = parse_expr_str("cities select[pop > 100000]", &s).unwrap();
        let Expr::Seq(atoms) = &e else {
            panic!("expected seq, got {e}")
        };
        assert_eq!(atoms.len(), 2);
        let SeqAtom::Word { name, brackets, .. } = &atoms[1] else {
            panic!()
        };
        assert_eq!(name.as_str(), "select");
        assert_eq!(brackets.as_ref().unwrap().len(), 1);
        assert_eq!(brackets.as_ref().unwrap()[0].to_string(), ">(pop, 100000)");
    }

    #[test]
    fn join_consumes_two_operands_textually() {
        let s = sig();
        let e = parse_expr_str("cities states join[center inside region]", &s).unwrap();
        let Expr::Seq(atoms) = &e else { panic!() };
        assert_eq!(atoms.len(), 3);
    }

    #[test]
    fn lambda_with_attribute_access_sequence() {
        let s = sig();
        let e = parse_expr_str("fun (p: person) p age > 30", &s).unwrap();
        let Expr::Lambda { params, body } = &e else {
            panic!()
        };
        assert_eq!(params[0].0.as_str(), "p");
        assert_eq!(body.to_string(), ">(p age, 30)");
    }

    #[test]
    fn parenthesized_lambda_in_sequence() {
        let s = sig();
        let e = parse_expr_str(
            "cities_rep feed (fun (c: city) states_rep feed) search_join",
            &s,
        )
        .unwrap();
        // The parenthesized lambda attaches to `feed` as a paren group;
        // the checker's sequence resolver re-associates it as a following
        // operand (postfix operator + juxtaposed operand).
        let Expr::Seq(atoms) = &e else { panic!() };
        assert_eq!(atoms.len(), 3);
        let SeqAtom::Word { name, parens, .. } = &atoms[1] else {
            panic!()
        };
        assert_eq!(name.as_str(), "feed");
        assert!(matches!(parens.as_deref(), Some([Expr::Lambda { .. }])));
    }

    #[test]
    fn list_literal_and_comparison_disambiguation() {
        let s = sig();
        let e = parse_expr_str("<cities1, cities2> union", &s).unwrap();
        let Expr::Seq(atoms) = &e else { panic!() };
        assert!(matches!(&atoms[0], SeqAtom::Operand(Expr::List(items)) if items.len() == 2));
        // `>` as comparison still works outside angles.
        let e2 = parse_expr_str("pop > 30", &s).unwrap();
        assert_eq!(e2.to_string(), ">(pop, 30)");
    }

    #[test]
    fn prefix_and_juxtaposed_parens() {
        let s = sig();
        // Prefix call with several args.
        let e = parse_expr_str("insert (cities, c)", &s).unwrap();
        let Expr::Seq(atoms) = &e else {
            panic!("got {e}")
        };
        let SeqAtom::Word { name, parens, .. } = &atoms[0] else {
            panic!()
        };
        assert_eq!(name.as_str(), "insert");
        assert_eq!(parens.as_ref().unwrap().len(), 2);
        // Juxtaposed operand: word then parenthesized expression.
        let e2 = parse_expr_str("states_rep (c center) point_search", &s).unwrap();
        let Expr::Seq(atoms2) = &e2 else { panic!() };
        assert_eq!(atoms2.len(), 2);
    }

    #[test]
    fn unary_minus_literals() {
        let s = sig();
        assert_eq!(parse_expr_str("-5", &s).unwrap(), Expr::int(-5));
        assert_eq!(parse_expr_str("1 - 2", &s).unwrap().to_string(), "-(1, 2)");
    }

    #[test]
    fn full_program_parses() {
        let s = sig();
        let prog = r#"
            type city = tuple(<(name, string), (pop, int), (country, string)>);
            type city_rel = rel(city);
            create cities : city_rel;
            update cities := cities select[pop > 0];
            query cities select[pop > 100000];
            delete cities;
        "#;
        let stmts = parse_program(prog, &s).unwrap();
        assert_eq!(stmts.len(), 6);
        assert!(matches!(&stmts[0], Statement::TypeDef(n, _) if n.as_str() == "city"));
        assert!(matches!(&stmts[2], Statement::Create(n, _) if n.as_str() == "cities"));
        assert!(matches!(&stmts[3], Statement::Update(..)));
        assert!(matches!(&stmts[4], Statement::Query(_)));
        assert!(matches!(&stmts[5], Statement::Delete(_)));
    }

    #[test]
    fn view_definition_with_nullary_lambda() {
        let s = sig();
        let stmts = parse_program(
            r#"update french_cities := fun () cities select[country = "France"];"#,
            &s,
        )
        .unwrap();
        let Statement::Update(_, Expr::Lambda { params, .. }) = &stmts[0] else {
            panic!()
        };
        assert!(params.is_empty());
    }

    #[test]
    fn errors_are_reported_with_position() {
        let s = sig();
        let err = parse_program("query cities select[", &s).unwrap_err();
        assert!(err.pos > 0);
        assert!(parse_program("banana split", &s).is_err());
        assert!(parse_expr_str("", &s).is_err());
    }
}
