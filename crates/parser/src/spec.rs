//! The specification-language parser.
//!
//! A specification populates a [`Signature`] and has the structure of the
//! paper's examples (Sections 2 and 4):
//!
//! ```text
//! kinds IDENT, DATA, TUPLE, REL
//!
//! constructors
//!   hybrid cons ident : -> IDENT
//!   hybrid cons int, real, string, bool : -> DATA
//!   hybrid cons tuple : (ident x DATA)+ -> TUPLE
//!   model  cons rel   : TUPLE -> REL
//!   rep    cons btree : forall tuple: tuple(list) in TUPLE .
//!                       forall (attrname, dtype) in list .
//!                       tuple x attrname x dtype -> BTREE
//!
//! subtypes
//!   subtype btree(tuple, attrname, dtype) < relrep(tuple)
//!
//! operators
//!   op =, <, > : forall data in DATA . data x data -> bool  syntax infix 3
//!   op select  : forall rel: rel(tuple) in REL .
//!                rel x (tuple -> bool) -> rel  syntax "_ #[ _ ]"
//!   op join    : ... -> rel : REL  syntax "_ _ #[ _ ]"
//!   op $attrname : forall tuple: tuple(list) in TUPLE .
//!                  forall (attrname, dtype) in list .
//!                  tuple -> dtype  syntax "_ #"
//! ```
//!
//! Notes: `x` separates product/argument sorts and is reserved inside
//! sort expressions; `|` builds union sorts; `+` is the list-sort suffix;
//! a variable ending in `_i` is elementwise (the paper's subscript i);
//! `-> v : KIND` declares a type-operator result; `$name` declares a
//! variable-named operator (attribute access); `update` marks update
//! functions; `model` / `rep` / `hybrid` set the level (default hybrid).

use crate::cursor::Cursor;
use crate::lexer::{tokenize, TokenKind};
use crate::ParseError;
use sos_core::pattern::{PatternNode, SortPattern, TypePattern};
use sos_core::spec::{
    ArgCount, Level, OpName, OperatorSpec, Quantifier, ResultSpec, SubtypeRule, SyntaxPattern,
    TypeConstructorDef,
};
use sos_core::{sym, Signature, Symbol};
use std::collections::HashSet;

/// Byte offsets of a parsed specification's declarations — a side
/// table diagnostics can map back to source lines (`sos lint` attaches
/// line numbers through this; the core IR stays span-free).
#[derive(Debug, Default, Clone)]
pub struct SpecSpans {
    /// `(spec index in the signature, byte offset of the `op` keyword)`.
    /// Multi-name declarations (`op =, != : ...`) share one offset.
    pub specs: Vec<(usize, usize)>,
    /// `(constructor name, byte offset of the `cons` keyword)`.
    pub constructors: Vec<(Symbol, usize)>,
    /// `(subtype index in the signature, byte offset)`.
    pub subtypes: Vec<(usize, usize)>,
}

impl SpecSpans {
    pub fn spec_offset(&self, idx: usize) -> Option<usize> {
        self.specs.iter().find(|(i, _)| *i == idx).map(|&(_, p)| p)
    }

    pub fn constructor_offset(&self, name: &Symbol) -> Option<usize> {
        self.constructors
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, p)| p)
    }

    pub fn subtype_offset(&self, idx: usize) -> Option<usize> {
        self.subtypes
            .iter()
            .find(|(i, _)| *i == idx)
            .map(|&(_, p)| p)
    }
}

/// 1-based line number of a byte offset in `src`.
pub fn line_of(src: &str, offset: usize) -> usize {
    src.as_bytes()[..offset.min(src.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
        + 1
}

/// Parse a specification, adding its declarations to `sig`.
pub fn parse_spec(src: &str, sig: &mut Signature) -> Result<(), ParseError> {
    parse_spec_impl(src, sig, &mut SpecSpans::default())
}

/// Like [`parse_spec`], also returning where each declaration starts.
pub fn parse_spec_with_spans(src: &str, sig: &mut Signature) -> Result<SpecSpans, ParseError> {
    let mut spans = SpecSpans::default();
    parse_spec_impl(src, sig, &mut spans)?;
    Ok(spans)
}

fn parse_spec_impl(
    src: &str,
    sig: &mut Signature,
    spans: &mut SpecSpans,
) -> Result<(), ParseError> {
    let mut cur = Cursor::new(tokenize(src)?);
    while !cur.at_eof() {
        if cur.eat_keyword("kinds") {
            loop {
                let k = cur.ident()?;
                sig.add_kind(&k);
                if !cur.eat(&TokenKind::Comma) {
                    break;
                }
            }
            cur.eat(&TokenKind::Semicolon);
        } else if cur.at_keyword("kind") {
            cur.next();
            let kind = cur.ident()?;
            if !sig.has_kind(&sym(&kind)) {
                return Err(cur.error(&format!("unknown kind `{kind}`")));
            }
            cur.expect_keyword("contains")?;
            loop {
                let c = cur.ident()?;
                sig.add_kind_member(&kind, &c);
                if !cur.eat(&TokenKind::Comma) {
                    break;
                }
            }
            cur.eat(&TokenKind::Semicolon);
        } else if cur.eat_keyword("constructors")
            || cur.eat_keyword("subtypes")
            || cur.eat_keyword("operators")
        {
            // Section headers are optional grouping; declarations are
            // self-describing (`cons`, `subtype`, `op`).
        } else if cur.at_keyword("cons") || at_level_before(&cur, "cons") {
            let pos = cur.pos();
            for name in parse_cons(&mut cur, sig)? {
                spans.constructors.push((name, pos));
            }
        } else if cur.at_keyword("subtype") {
            let pos = cur.pos();
            let idx = sig.subtypes().len();
            parse_subtype(&mut cur, sig)?;
            spans.subtypes.push((idx, pos));
        } else if cur.at_keyword("op") || at_level_before(&cur, "op") {
            let pos = cur.pos();
            for idx in parse_op(&mut cur, sig)? {
                spans.specs.push((idx, pos));
            }
        } else {
            return Err(cur.error(&format!(
                "expected a declaration (`kinds`, `cons`, `subtype`, `op`), found `{}`",
                cur.peek()
            )));
        }
    }
    Ok(())
}

fn at_level_before(cur: &Cursor, kw: &str) -> bool {
    let lvl =
        matches!(cur.peek(), TokenKind::Ident(s) if s == "model" || s == "rep" || s == "hybrid");
    lvl && matches!(cur.peek_at(1), TokenKind::Ident(s) if s == kw)
}

fn parse_level(cur: &mut Cursor) -> Level {
    if cur.eat_keyword("model") {
        Level::Model
    } else if cur.eat_keyword("rep") {
        Level::Representation
    } else {
        cur.eat_keyword("hybrid");
        Level::Hybrid
    }
}

struct Env {
    vars: HashSet<Symbol>,
}

impl Env {
    fn from_quantifiers(quants: &[Quantifier]) -> Env {
        let mut vars = HashSet::new();
        for q in quants {
            match q {
                Quantifier::Kind { var, pattern, .. } => {
                    vars.insert(var.clone());
                    if let Some(p) = pattern {
                        let mut vs = Vec::new();
                        p.vars(&mut vs);
                        vars.extend(vs);
                    }
                }
                Quantifier::InList { vars: vs, list } => {
                    vars.extend(vs.iter().cloned());
                    vars.insert(list.clone());
                }
            }
        }
        Env { vars }
    }
}

fn parse_cons(cur: &mut Cursor, sig: &mut Signature) -> Result<Vec<Symbol>, ParseError> {
    let level = parse_level(cur);
    cur.expect_keyword("cons")?;
    let mut names = vec![cur.ident()?];
    while cur.eat(&TokenKind::Comma) {
        names.push(cur.ident()?);
    }
    cur.expect(&TokenKind::Colon)?;
    let quants = parse_quantifiers(cur, sig)?;
    let env = Env::from_quantifiers(&quants);
    let args = if cur.eat(&TokenKind::Arrow) {
        Vec::new()
    } else {
        let args = parse_sort_list(cur, sig, &env)?;
        cur.expect(&TokenKind::Arrow)?;
        args
    };
    let kind = cur.ident()?;
    if !sig.has_kind(&sym(&kind)) {
        return Err(cur.error(&format!("unknown kind `{kind}`")));
    }
    cur.eat(&TokenKind::Semicolon);
    let added: Vec<Symbol> = names.iter().map(|n| sym(n)).collect();
    for name in &added {
        sig.add_constructor(TypeConstructorDef {
            name: name.clone(),
            quantifiers: quants.clone(),
            args: args.clone(),
            kind: sym(&kind),
            level,
        });
    }
    Ok(added)
}

fn parse_subtype(cur: &mut Cursor, sig: &mut Signature) -> Result<(), ParseError> {
    cur.expect_keyword("subtype")?;
    let sub = parse_type_pattern(cur)?;
    cur.expect(&TokenKind::Lt)?;
    // The supertype side mentions only variables from the left side.
    let mut vars = Vec::new();
    sub.vars(&mut vars);
    let env = Env {
        vars: vars.into_iter().collect(),
    };
    let sup = parse_sort(cur, sig, &env)?;
    cur.eat(&TokenKind::Semicolon);
    sig.add_subtype(SubtypeRule { sub, sup });
    Ok(())
}

fn parse_op(cur: &mut Cursor, sig: &mut Signature) -> Result<Vec<usize>, ParseError> {
    let level = parse_level(cur);
    cur.expect_keyword("op")?;
    let mut names = vec![parse_op_name(cur)?];
    while cur.eat(&TokenKind::Comma) {
        names.push(parse_op_name(cur)?);
    }
    cur.expect(&TokenKind::Colon)?;
    let quants = parse_quantifiers(cur, sig)?;
    let env = Env::from_quantifiers(&quants);
    let args = if cur.eat(&TokenKind::Arrow) {
        Vec::new()
    } else {
        let args = parse_sort_list(cur, sig, &env)?;
        cur.expect(&TokenKind::Arrow)?;
        args
    };
    // Result: `var : KIND` (type operator) or a sort pattern.
    let result = if matches!(cur.peek(), TokenKind::Ident(_))
        && *cur.peek_at(1) == TokenKind::Colon
        && matches!(cur.peek_at(2), TokenKind::Ident(_))
    {
        let var = cur.ident()?;
        cur.expect(&TokenKind::Colon)?;
        let kind = cur.ident()?;
        if !sig.has_kind(&sym(&kind)) {
            return Err(cur.error(&format!("unknown kind `{kind}` in type-operator result")));
        }
        ResultSpec::TypeOperator {
            var: sym(&var),
            kind: sym(&kind),
        }
    } else {
        ResultSpec::Pattern(parse_sort(cur, sig, &env)?)
    };
    // Extras: syntax, update.
    let mut syntax = SyntaxPattern::prefix();
    let mut is_update = false;
    loop {
        if cur.eat_keyword("syntax") {
            if cur.eat_keyword("infix") {
                let prec = match cur.next() {
                    TokenKind::Int(v) if (0..=9).contains(&v) => v as u8,
                    _ => return Err(cur.error("expected precedence 0..9 after `infix`")),
                };
                syntax = SyntaxPattern::infix(prec);
            } else {
                match cur.next() {
                    TokenKind::Str(s) => {
                        syntax = parse_syntax_string(&s).map_err(|m| cur.error(&m))?;
                    }
                    _ => return Err(cur.error("expected a syntax pattern string or `infix N`")),
                }
            }
        } else if cur.eat_keyword("update") {
            is_update = true;
        } else {
            break;
        }
    }
    cur.eat(&TokenKind::Semicolon);
    let mut added = Vec::with_capacity(names.len());
    for name in names {
        added.push(sig.add_spec(OperatorSpec {
            name: name.clone(),
            quantifiers: quants.clone(),
            args: args.clone(),
            result: result.clone(),
            syntax: syntax.clone(),
            is_update,
            level,
        }));
    }
    Ok(added)
}

fn parse_op_name(cur: &mut Cursor) -> Result<OpName, ParseError> {
    let name = match cur.peek().clone() {
        TokenKind::Ident(s) => {
            cur.next();
            OpName::Fixed(sym(&s))
        }
        TokenKind::DollarIdent(s) => {
            cur.next();
            OpName::Var(sym(&s))
        }
        other => {
            let s = other
                .infix_name()
                .ok_or_else(|| cur.error("expected an operator name"))?
                .to_string();
            cur.next();
            OpName::Fixed(sym(&s))
        }
    };
    Ok(name)
}

fn parse_quantifiers(cur: &mut Cursor, sig: &Signature) -> Result<Vec<Quantifier>, ParseError> {
    let mut out = Vec::new();
    while cur.eat_keyword("forall") {
        if cur.eat(&TokenKind::LParen) {
            let mut vars = vec![sym(&cur.ident()?)];
            while cur.eat(&TokenKind::Comma) {
                vars.push(sym(&cur.ident()?));
            }
            cur.expect(&TokenKind::RParen)?;
            cur.expect_keyword("in")?;
            let list = cur.ident()?;
            cur.expect(&TokenKind::Dot)?;
            out.push(Quantifier::InList {
                vars,
                list: sym(&list),
            });
        } else {
            let var = cur.ident()?;
            let pattern = if cur.eat(&TokenKind::Colon) {
                let p = parse_type_pattern(cur)?;
                if matches!(p.node, PatternNode::Any) {
                    return Err(cur.error("quantifier pattern must be a constructor pattern"));
                }
                Some(p)
            } else {
                None
            };
            cur.expect_keyword("in")?;
            let kind = cur.ident()?;
            if !sig.has_kind(&sym(&kind)) {
                return Err(cur.error(&format!("unknown kind `{kind}` in quantifier")));
            }
            cur.expect(&TokenKind::Dot)?;
            let elementwise = var.ends_with("_i");
            out.push(Quantifier::Kind {
                var: sym(&var),
                pattern,
                kind: sym(&kind),
                elementwise,
            });
        }
    }
    Ok(out)
}

/// `tpat := IDENT | IDENT "(" tpat, ... ")" | IDENT ":" IDENT "(" ... ")"`
fn parse_type_pattern(cur: &mut Cursor) -> Result<TypePattern, ParseError> {
    let first = cur.ident()?;
    if cur.eat(&TokenKind::Colon) {
        let cons = cur.ident()?;
        let args = parse_type_pattern_args(cur)?;
        Ok(TypePattern {
            binder: Some(sym(&first)),
            node: PatternNode::Cons(sym(&cons), args),
        })
    } else if *cur.peek() == TokenKind::LParen {
        let args = parse_type_pattern_args(cur)?;
        Ok(TypePattern {
            binder: None,
            node: PatternNode::Cons(sym(&first), args),
        })
    } else {
        Ok(TypePattern {
            binder: Some(sym(&first)),
            node: PatternNode::Any,
        })
    }
}

fn parse_type_pattern_args(cur: &mut Cursor) -> Result<Vec<TypePattern>, ParseError> {
    cur.expect(&TokenKind::LParen)?;
    let mut args = vec![parse_type_pattern(cur)?];
    while cur.eat(&TokenKind::Comma) {
        args.push(parse_type_pattern(cur)?);
    }
    cur.expect(&TokenKind::RParen)?;
    Ok(args)
}

/// `sorts := sort ("x" sort)*` — `x` is the reserved product separator.
fn parse_sort_list(
    cur: &mut Cursor,
    sig: &Signature,
    env: &Env,
) -> Result<Vec<SortPattern>, ParseError> {
    let mut out = vec![parse_sort(cur, sig, env)?];
    while cur.eat_keyword("x") {
        out.push(parse_sort(cur, sig, env)?);
    }
    Ok(out)
}

fn parse_sort(cur: &mut Cursor, sig: &Signature, env: &Env) -> Result<SortPattern, ParseError> {
    let mut s = parse_prim_sort(cur, sig, env)?;
    while cur.eat(&TokenKind::Plus) {
        s = SortPattern::List(Box::new(s));
    }
    Ok(s)
}

fn parse_prim_sort(
    cur: &mut Cursor,
    sig: &Signature,
    env: &Env,
) -> Result<SortPattern, ParseError> {
    if cur.eat(&TokenKind::LParen) {
        // 0-ary function sort `( -> s )`.
        if cur.eat(&TokenKind::Arrow) {
            let res = parse_sort(cur, sig, env)?;
            cur.expect(&TokenKind::RParen)?;
            return Ok(SortPattern::Fun(Vec::new(), Box::new(res)));
        }
        let mut items = vec![parse_sort(cur, sig, env)?];
        let mut sep: Option<&str> = None;
        loop {
            if cur.eat_keyword("x") {
                if sep == Some("|") {
                    return Err(cur.error("cannot mix `x` and `|` in one sort group"));
                }
                sep = Some("x");
                items.push(parse_sort(cur, sig, env)?);
            } else if cur.eat(&TokenKind::Bar) {
                if sep == Some("x") {
                    return Err(cur.error("cannot mix `x` and `|` in one sort group"));
                }
                sep = Some("|");
                items.push(parse_sort(cur, sig, env)?);
            } else {
                break;
            }
        }
        if cur.eat(&TokenKind::Arrow) {
            if sep == Some("|") {
                return Err(cur.error("union sorts cannot be function parameters directly"));
            }
            let res = parse_sort(cur, sig, env)?;
            cur.expect(&TokenKind::RParen)?;
            return Ok(SortPattern::Fun(items, Box::new(res)));
        }
        cur.expect(&TokenKind::RParen)?;
        return Ok(match (items.len(), sep) {
            (1, _) => items.into_iter().next().expect("one item"),
            (_, Some("|")) => SortPattern::Union(items),
            _ => SortPattern::Product(items),
        });
    }
    let name = cur.ident()?;
    let name_sym = sym(&name);
    if *cur.peek() == TokenKind::LParen {
        if env.vars.contains(&name_sym) {
            return Err(cur.error(&format!(
                "quantified variable `{name}` cannot take sort arguments"
            )));
        }
        cur.expect(&TokenKind::LParen)?;
        let mut args = vec![parse_sort(cur, sig, env)?];
        while cur.eat(&TokenKind::Comma) {
            args.push(parse_sort(cur, sig, env)?);
        }
        cur.expect(&TokenKind::RParen)?;
        return Ok(SortPattern::Cons(name_sym, args));
    }
    if env.vars.contains(&name_sym) {
        Ok(SortPattern::Var(name_sym))
    } else if sig.has_kind(&name_sym) {
        Ok(SortPattern::Kind(name_sym))
    } else {
        Ok(SortPattern::Cons(name_sym, Vec::new()))
    }
}

/// Parse a syntax pattern string: `_ #`, `_ #[ _ ]`, `_ _ #[ _ ]`,
/// `_ #[ _ , _ ]`, `_ #[ ... ]`, `_ # _` (infix), `#` (prefix).
fn parse_syntax_string(s: &str) -> Result<SyntaxPattern, String> {
    let mut before = 0usize;
    let mut seen_hash = false;
    let mut brackets: Option<ArgCount> = None;
    let mut after_plain = 0usize;
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            ' ' | '\t' => {}
            '_' if !seen_hash => before += 1,
            '_' if seen_hash => after_plain += 1,
            '#' => {
                if seen_hash {
                    return Err("multiple `#` in syntax pattern".into());
                }
                seen_hash = true;
            }
            '[' => {
                if !seen_hash {
                    return Err("`[` before `#` in syntax pattern".into());
                }
                let mut count = 0usize;
                let mut variadic = false;
                for c2 in chars.by_ref() {
                    match c2 {
                        '_' => count += 1,
                        '.' => variadic = true,
                        ']' => break,
                        ' ' | ',' | '\t' => {}
                        other => return Err(format!("bad character `{other}` in brackets")),
                    }
                }
                brackets = Some(if variadic {
                    ArgCount::Variadic
                } else {
                    ArgCount::Exact(count)
                });
            }
            other => return Err(format!("bad character `{other}` in syntax pattern")),
        }
    }
    if !seen_hash {
        return Err("syntax pattern must contain `#`".into());
    }
    if after_plain > 0 {
        if before != 1 || after_plain != 1 || brackets.is_some() {
            return Err("only binary `_ # _` infix patterns are supported".into());
        }
        return Ok(SyntaxPattern::infix(3));
    }
    Ok(match brackets {
        Some(b) => SyntaxPattern::postfix_brackets(before, b),
        None => {
            if before == 0 {
                SyntaxPattern::prefix()
            } else {
                SyntaxPattern::postfix(before)
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn syntax_string_forms() {
        assert_eq!(
            parse_syntax_string("_ #").unwrap(),
            SyntaxPattern::postfix(1)
        );
        assert_eq!(
            parse_syntax_string("_ #[ _ ]").unwrap(),
            SyntaxPattern::postfix_brackets(1, ArgCount::Exact(1))
        );
        assert_eq!(
            parse_syntax_string("_ _ #[ _ ]").unwrap(),
            SyntaxPattern::postfix_brackets(2, ArgCount::Exact(1))
        );
        assert_eq!(
            parse_syntax_string("_ #[ _ , _ ]").unwrap(),
            SyntaxPattern::postfix_brackets(1, ArgCount::Exact(2))
        );
        assert_eq!(
            parse_syntax_string("_ #[ ... ]").unwrap(),
            SyntaxPattern::postfix_brackets(1, ArgCount::Variadic)
        );
        assert!(parse_syntax_string("_ # _").unwrap().infix);
        assert_eq!(parse_syntax_string("#").unwrap(), SyntaxPattern::prefix());
        assert!(parse_syntax_string("no hash").is_err());
        assert!(parse_syntax_string("_ # _ _").is_err());
    }

    #[test]
    fn parses_kinds_and_atomic_constructors() {
        let mut sig = Signature::new();
        parse_spec(
            "kinds IDENT, DATA\nconstructors\n cons ident : -> IDENT\n cons int, real : -> DATA",
            &mut sig,
        )
        .unwrap();
        assert!(sig.has_kind(&sym("DATA")));
        assert!(sig.constructor(&sym("int")).is_some());
        assert!(sig.constructor(&sym("real")).is_some());
        assert_eq!(sig.constructor(&sym("ident")).unwrap().kind, sym("IDENT"));
    }

    #[test]
    fn parses_tuple_constructor_with_product_list_sort() {
        let mut sig = Signature::new();
        parse_spec(
            "kinds IDENT, DATA, TUPLE
             cons ident : -> IDENT
             cons int : -> DATA
             cons tuple : (ident x DATA)+ -> TUPLE",
            &mut sig,
        )
        .unwrap();
        let def = sig.constructor(&sym("tuple")).unwrap();
        assert_eq!(def.args.len(), 1);
        match &def.args[0] {
            SortPattern::List(el) => match el.as_ref() {
                SortPattern::Product(items) => {
                    assert_eq!(items.len(), 2);
                    assert_eq!(items[0], SortPattern::atom("ident"));
                    assert_eq!(items[1], SortPattern::kind("DATA"));
                }
                other => panic!("expected product, got {other}"),
            },
            other => panic!("expected list, got {other}"),
        }
    }

    #[test]
    fn parses_operator_with_quantifier_and_syntax() {
        let mut sig = Signature::new();
        parse_spec(
            "kinds TUPLE, REL
             cons tuple : -> TUPLE
             model cons rel : TUPLE -> REL
             model op select : forall rel: rel(tuple) in REL .
               rel x (tuple -> bool) -> rel  syntax \"_ #[ _ ]\"",
            &mut sig,
        )
        .unwrap();
        let specs = sig.candidates(&sym("select"));
        assert_eq!(specs.len(), 1);
        let spec = sig.spec(specs[0]);
        assert_eq!(spec.args.len(), 2);
        assert_eq!(spec.quantifiers.len(), 1);
        assert_eq!(
            spec.syntax,
            SyntaxPattern::postfix_brackets(1, ArgCount::Exact(1))
        );
        assert_eq!(spec.level, Level::Model);
    }

    #[test]
    fn parses_type_operator_result_and_update_flag() {
        let mut sig = Signature::new();
        parse_spec(
            "kinds REL
             model cons rel : -> REL
             op join : forall r1 in REL . forall r2 in REL .
               r1 x r2 -> r : REL  syntax \"_ _ #[ _ ]\"
             op insert : forall r1 in REL . r1 x r1 -> r1 update",
            &mut sig,
        )
        .unwrap();
        let j = sig.spec(sig.candidates(&sym("join"))[0]).clone();
        assert!(matches!(j.result, ResultSpec::TypeOperator { .. }));
        let i = sig.spec(sig.candidates(&sym("insert"))[0]).clone();
        assert!(i.is_update);
    }

    #[test]
    fn parses_var_named_operator() {
        let mut sig = Signature::new();
        parse_spec(
            "kinds TUPLE, DATA
             cons tuple : -> TUPLE
             op $attrname : forall tuple: tuple(list) in TUPLE .
               forall (attrname, dtype) in list .
               tuple -> dtype  syntax \"_ #\"",
            &mut sig,
        )
        .unwrap();
        // Any unknown name resolves to the variable-named spec.
        assert_eq!(sig.candidates(&sym("anything")).len(), 1);
    }

    #[test]
    fn parses_subtype_rule() {
        let mut sig = Signature::new();
        parse_spec(
            "kinds TUPLE, BTREE, RELREP
             cons tuple : -> TUPLE
             rep cons relrep : TUPLE -> RELREP
             rep cons btree : TUPLE -> BTREE
             subtype btree(tuple) < relrep(tuple)",
            &mut sig,
        )
        .unwrap();
        assert_eq!(sig.subtypes().len(), 1);
        assert_eq!(
            sig.subtypes()[0].sup,
            SortPattern::cons("relrep", vec![SortPattern::var("tuple")])
        );
    }

    #[test]
    fn elementwise_variables_marked_by_suffix() {
        let mut sig = Signature::new();
        parse_spec(
            "kinds DATA, STREAM
             cons int : -> DATA
             cons stream : -> STREAM
             op project : forall s in STREAM . forall data_i in DATA .
               s x (ident x (s -> data_i))+ -> r : STREAM  syntax \"_ #[ ... ]\"",
            &mut sig,
        )
        .unwrap();
        let spec = sig.spec(sig.candidates(&sym("project"))[0]).clone();
        let ew = spec.quantifiers.iter().any(|q| {
            matches!(q, Quantifier::Kind { elementwise: true, var, .. } if var.as_str() == "data_i")
        });
        assert!(ew);
    }

    #[test]
    fn union_sorts_parse() {
        let mut sig = Signature::new();
        parse_spec(
            "kinds DATA, REL
             cons int : -> DATA
             cons nrel : (ident x (DATA | REL))+ -> REL",
            &mut sig,
        )
        .unwrap();
        let def = sig.constructor(&sym("nrel")).unwrap();
        let SortPattern::List(el) = &def.args[0] else {
            panic!()
        };
        let SortPattern::Product(items) = el.as_ref() else {
            panic!()
        };
        assert!(matches!(&items[1], SortPattern::Union(alts) if alts.len() == 2));
    }

    #[test]
    fn bad_inputs_are_rejected() {
        let mut sig = Signature::new();
        assert!(parse_spec("cons x :", &mut sig).is_err());
        assert!(parse_spec("kinds A\ncons c : -> B", &mut sig).is_err()); // unknown kind
        assert!(parse_spec("op f : forall v in NOKIND . v -> v", &mut sig).is_err());
        assert!(parse_spec("banana", &mut sig).is_err());
    }
}
