//! A token cursor with the small lookahead helpers both parsers need.

use crate::lexer::{Token, TokenKind};
use crate::ParseError;

pub struct Cursor {
    toks: Vec<Token>,
    i: usize,
}

impl Cursor {
    pub fn new(toks: Vec<Token>) -> Cursor {
        Cursor { toks, i: 0 }
    }

    pub fn peek(&self) -> &TokenKind {
        &self.toks[self.i].kind
    }

    pub fn peek_at(&self, n: usize) -> &TokenKind {
        let idx = (self.i + n).min(self.toks.len() - 1);
        &self.toks[idx].kind
    }

    pub fn pos(&self) -> usize {
        self.toks[self.i].pos
    }

    #[allow(clippy::should_implement_trait)] // a cursor, not an iterator
    pub fn next(&mut self) -> TokenKind {
        let t = self.toks[self.i].kind.clone();
        if self.i + 1 < self.toks.len() {
            self.i += 1;
        }
        t
    }

    pub fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.next();
            true
        } else {
            false
        }
    }

    pub fn expect(&mut self, kind: &TokenKind) -> Result<(), ParseError> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(ParseError::at(
                self.pos(),
                &format!("expected `{kind}`, found `{}`", self.peek()),
            ))
        }
    }

    /// Consume an identifier token.
    pub fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.next();
                Ok(s)
            }
            other => Err(ParseError::at(
                self.pos(),
                &format!("expected identifier, found `{other}`"),
            )),
        }
    }

    /// Is the current token the given keyword identifier?
    pub fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s == kw)
    }

    /// Consume the given keyword identifier if present.
    pub fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.next();
            true
        } else {
            false
        }
    }

    pub fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(ParseError::at(
                self.pos(),
                &format!("expected `{kw}`, found `{}`", self.peek()),
            ))
        }
    }

    pub fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    pub fn error(&self, msg: &str) -> ParseError {
        ParseError::at(self.pos(), msg)
    }
}
