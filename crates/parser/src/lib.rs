//! Parsers for the SOS framework.
//!
//! Two languages are parsed here:
//!
//! 1. The **specification language** ([`parse_spec`]) — the textual form
//!    of Sections 2 and 4: `kinds`, `constructors` (with constructor
//!    specs), `subtypes` and `operators` sections, with quantifiers,
//!    extended sorts and syntax patterns. Parsing a specification
//!    populates a [`Signature`].
//! 2. The **program language** ([`parse_program`]) — the five statement
//!    forms of Section 2.4 (`type`, `create`, `update`, `delete`,
//!    `query`) whose expressions use the *concrete syntax* driven by the
//!    operators' syntax patterns (`cities select[pop > 100000]`).
//!
//! Concrete-syntax notes (deviations from the paper's prose, documented
//! in DESIGN.md):
//! * statements are terminated with `;` (the paper implicitly relies on
//!   line layout),
//! * product sorts are written `(a x b)`, union sorts `(a | b)` — the
//!   paper uses juxtaposition and `∪`,
//! * a lambda embedded in a larger operand sequence must be
//!   parenthesized (`... feed (fun (c: city) ...) search_join`), since
//!   without full type information a bare `fun` body would swallow the
//!   trailing operator.

pub mod cursor;
mod expr;
mod lexer;
mod spec;

pub use expr::{parse_expr_str, parse_program, parse_type_str, Statement};
pub use lexer::{tokenize, Token, TokenKind};
pub use spec::{line_of, parse_spec, parse_spec_with_spans, SpecSpans};

use sos_core::Signature;

/// A parse error with a byte position into the source.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub pos: usize,
    pub message: String,
}

impl ParseError {
    pub fn at(pos: usize, message: &str) -> ParseError {
        ParseError {
            pos,
            message: message.to_string(),
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a specification and a program in one call (convenience for
/// tests and examples).
pub fn parse_spec_and_program(
    spec_src: &str,
    program_src: &str,
) -> Result<(Signature, Vec<Statement>), ParseError> {
    let mut sig = Signature::new();
    parse_spec(spec_src, &mut sig)?;
    let stmts = parse_program(program_src, &sig)?;
    Ok((sig, stmts))
}
