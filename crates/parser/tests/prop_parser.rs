//! Parser robustness: arbitrary input never panics (errors are returned,
//! not thrown), and structured generators round-trip through parse.

use proptest::prelude::*;
use sos_parser::{parse_program, parse_spec, parse_type_str, tokenize, Statement};

fn demo_sig() -> sos_core::Signature {
    let mut sig = sos_core::Signature::new();
    parse_spec(
        r##"kinds DATA, TUPLE, REL
        cons int, real, string, bool, ident : -> DATA
        cons tuple : (ident x DATA)+ -> TUPLE
        model cons rel : TUPLE -> REL
        op =, <, > : forall d in DATA . d x d -> bool syntax infix 3
        op select : forall r: rel(t) in REL . r x (t -> bool) -> r syntax "_ #[ _ ]"
        "##,
        &mut sig,
    )
    .unwrap();
    sig
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The lexer handles any byte soup: returns Ok or Err, never panics.
    #[test]
    fn lexer_never_panics(src in ".*") {
        let _ = tokenize(&src);
    }

    /// The program parser handles any token soup without panicking.
    #[test]
    fn program_parser_never_panics(src in ".{0,200}") {
        let sig = demo_sig();
        let _ = parse_program(&src, &sig);
    }

    /// The spec parser handles any input without panicking.
    #[test]
    fn spec_parser_never_panics(src in ".{0,200}") {
        let mut sig = sos_core::Signature::new();
        let _ = parse_spec(&src, &mut sig);
    }

    /// The type parser handles any input without panicking.
    #[test]
    fn type_parser_never_panics(src in ".{0,120}") {
        let _ = parse_type_str(&src);
    }

    /// Structured near-valid programs (random identifiers in a fixed
    /// statement frame) parse or fail cleanly, and valid ones parse to
    /// the right statement kind.
    #[test]
    fn statement_frames_parse(name in "[a-z][a-z0-9_]{0,10}", n in 0i64..1000) {
        let sig = demo_sig();
        let src = format!(
            "type {name} = tuple(<(a, int)>);\ncreate {name}2 : rel({name});\nquery {name}2 select[a > {n}];"
        );
        let stmts = parse_program(&src, &sig).unwrap();
        prop_assert_eq!(stmts.len(), 3);
        prop_assert!(matches!(&stmts[0], Statement::TypeDef(..)));
        prop_assert!(matches!(&stmts[2], Statement::Query(_)));
    }

    /// Integer and string literals round-trip through expressions.
    #[test]
    fn literals_roundtrip(n in any::<i32>(), s in "[a-zA-Z0-9 ]{0,20}") {
        let sig = demo_sig();
        let e = sos_parser::parse_expr_str(&format!("{n} = {n}"), &sig).unwrap();
        prop_assert_eq!(e.to_string(), format!("=({n}, {n})"));
        let e2 = sos_parser::parse_expr_str(&format!("\"{s}\" = \"{s}\""), &sig).unwrap();
        prop_assert_eq!(e2.to_string(), format!("=({s:?}, {s:?})"));
    }
}

#[test]
fn error_positions_point_into_the_source() {
    let sig = demo_sig();
    let cases = [
        "query r select[",
        "type = tuple(<(a, int)>);",
        "create x : ;",
        "update := 1;",
        "query <a, b;",
    ];
    for src in cases {
        let err = parse_program(src, &sig).unwrap_err();
        assert!(
            err.pos <= src.len(),
            "error position {} beyond source length {} for {src:?}",
            err.pos,
            src.len()
        );
    }
}

#[test]
fn deeply_nested_expressions_parse() {
    let sig = demo_sig();
    // 64 nested parens around a literal.
    let src = format!("{}1{}", "(".repeat(64), ")".repeat(64));
    let e = sos_parser::parse_expr_str(&src, &sig).unwrap();
    assert_eq!(e.to_string(), "1");
}
