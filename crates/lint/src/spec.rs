//! Signature analyses: L001 (pattern overlap), L002 (unreachable
//! operators, dead constructors), and the spec side of L003
//! (unbound/unused type variables).

use crate::{Anchor, Diagnostic, Severity};
use sos_core::pattern::{PatternNode, SortPattern, TypePattern};
use sos_core::spec::{OpName, OperatorSpec, Quantifier, ResultSpec, TypeConstructorDef};
use sos_core::{Signature, Symbol};
use std::collections::{HashMap, HashSet};

pub(crate) fn lint_signature(sig: &Signature) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    lint_overlap(sig, &mut out);
    lint_reachability(sig, &mut out);
    lint_type_vars(sig, &mut out);
    out
}

fn spec_name(spec: &OperatorSpec) -> String {
    match &spec.name {
        OpName::Fixed(n) => n.to_string(),
        OpName::Var(v) => format!("${v}"),
    }
}

fn spec_loc(idx: usize, spec: &OperatorSpec) -> String {
    format!("op `{}` (spec #{idx})", spec_name(spec))
}

fn cons_loc(def: &TypeConstructorDef) -> String {
    format!("type constructor `{}`", def.name)
}

/// Sorted-by-name view of the constructors, for deterministic reports.
fn sorted_constructors(sig: &Signature) -> Vec<&TypeConstructorDef> {
    let mut defs: Vec<&TypeConstructorDef> = sig.constructors().collect();
    defs.sort_by(|a, b| a.name.cmp(&b.name));
    defs
}

// ---------------------------------------------------------------- L001

/// What a quantifier tells us about a type variable: the kind it ranges
/// over and/or the constructor root its pattern requires.
#[derive(Default, Clone)]
struct VarInfo {
    kind: Option<Symbol>,
    root: Option<Symbol>,
}

type VarMap = HashMap<Symbol, VarInfo>;

fn pattern_root(p: &TypePattern) -> Option<Symbol> {
    match &p.node {
        PatternNode::Cons(n, _) => Some(n.clone()),
        PatternNode::Any => None,
    }
}

fn collect_binder_infos(p: &TypePattern, kind: Option<&Symbol>, m: &mut VarMap) {
    if let Some(b) = &p.binder {
        m.insert(
            b.clone(),
            VarInfo {
                kind: kind.cloned(),
                root: pattern_root(p),
            },
        );
    }
    if let PatternNode::Cons(_, args) = &p.node {
        for a in args {
            collect_binder_infos(a, None, m);
        }
    }
}

fn var_infos(quants: &[Quantifier]) -> VarMap {
    let mut m = VarMap::new();
    for q in quants {
        match q {
            Quantifier::Kind {
                var, pattern, kind, ..
            } => {
                m.insert(
                    var.clone(),
                    VarInfo {
                        kind: Some(kind.clone()),
                        root: pattern.as_ref().and_then(pattern_root),
                    },
                );
                if let Some(p) = pattern {
                    collect_binder_infos(p, Some(kind), &mut m);
                }
            }
            Quantifier::InList { vars, .. } => {
                for v in vars {
                    m.insert(v.clone(), VarInfo::default());
                }
            }
        }
    }
    m
}

fn kinds_intersect(k1: &Symbol, k2: &Symbol, sig: &Signature) -> bool {
    k1 == k2
        || sig
            .constructors()
            .any(|c| sig.constructor_in_kind(&c.name, k1) && sig.constructor_in_kind(&c.name, k2))
}

fn cons_fits(info: &VarInfo, cons: &Symbol, sig: &Signature) -> bool {
    if let Some(r) = &info.root {
        return r == cons;
    }
    if let Some(k) = &info.kind {
        return sig.constructor_in_kind(cons, k);
    }
    true
}

fn vars_compatible(a: &VarInfo, b: &VarInfo, sig: &Signature) -> bool {
    match (&a.root, &b.root) {
        (Some(r1), Some(r2)) => r1 == r2,
        (Some(r), None) => b
            .kind
            .as_ref()
            .is_none_or(|k| sig.constructor_in_kind(r, k)),
        (None, Some(r)) => a
            .kind
            .as_ref()
            .is_none_or(|k| sig.constructor_in_kind(r, k)),
        (None, None) => match (&a.kind, &b.kind) {
            (Some(k1), Some(k2)) => kinds_intersect(k1, k2, sig),
            _ => true,
        },
    }
}

fn var_overlaps(info: Option<&VarInfo>, other: &SortPattern, vo: &VarMap, sig: &Signature) -> bool {
    let Some(info) = info else {
        // Nothing known about the variable: it may match anything.
        return true;
    };
    match other {
        SortPattern::Var(y) => match vo.get(y) {
            Some(o) => vars_compatible(info, o, sig),
            None => true,
        },
        SortPattern::Cons(n, _) => cons_fits(info, n, sig),
        SortPattern::Kind(k) => {
            if let Some(r) = &info.root {
                return sig.constructor_in_kind(r, k);
            }
            if let Some(ik) = &info.kind {
                return kinds_intersect(ik, k, sig);
            }
            true
        }
        SortPattern::Union(items) => items.iter().any(|i| var_overlaps(Some(info), i, vo, sig)),
        // A kind-quantified variable ranges over proper types; the
        // extended sorts (lists, products, functions) are not members of
        // any kind, so a constrained variable cannot match them.
        SortPattern::List(_) | SortPattern::Product(_) | SortPattern::Fun(..) => {
            info.kind.is_none() && info.root.is_none()
        }
    }
}

/// Conservative unification: can some ground type satisfy both patterns?
/// `true` means "may overlap" — false positives are possible for exotic
/// cross-variable constraints, false negatives are not.
fn may_overlap(
    a: &SortPattern,
    b: &SortPattern,
    va: &VarMap,
    vb: &VarMap,
    sig: &Signature,
) -> bool {
    match (a, b) {
        (SortPattern::Union(items), _) => items.iter().any(|i| may_overlap(i, b, va, vb, sig)),
        (_, SortPattern::Union(items)) => items.iter().any(|i| may_overlap(a, i, va, vb, sig)),
        (SortPattern::Var(x), _) => var_overlaps(va.get(x), b, vb, sig),
        (_, SortPattern::Var(y)) => var_overlaps(vb.get(y), a, va, sig),
        (SortPattern::Kind(k), SortPattern::Cons(n, _)) => sig.constructor_in_kind(n, k),
        (SortPattern::Cons(n, _), SortPattern::Kind(k)) => sig.constructor_in_kind(n, k),
        (SortPattern::Kind(k1), SortPattern::Kind(k2)) => kinds_intersect(k1, k2, sig),
        (SortPattern::Kind(_), _) | (_, SortPattern::Kind(_)) => false,
        (SortPattern::Cons(n1, a1), SortPattern::Cons(n2, a2)) => {
            n1 == n2
                && a1.len() == a2.len()
                && a1
                    .iter()
                    .zip(a2)
                    .all(|(x, y)| may_overlap(x, y, va, vb, sig))
        }
        (SortPattern::List(x), SortPattern::List(y)) => may_overlap(x, y, va, vb, sig),
        (SortPattern::Product(xs), SortPattern::Product(ys)) => {
            xs.len() == ys.len()
                && xs
                    .iter()
                    .zip(ys)
                    .all(|(x, y)| may_overlap(x, y, va, vb, sig))
        }
        (SortPattern::Fun(p1, r1), SortPattern::Fun(p2, r2)) => {
            p1.len() == p2.len()
                && p1
                    .iter()
                    .zip(p2)
                    .all(|(x, y)| may_overlap(x, y, va, vb, sig))
                && may_overlap(r1, r2, va, vb, sig)
        }
        _ => false,
    }
}

fn args_str(spec: &OperatorSpec) -> String {
    if spec.args.is_empty() {
        return "()".to_string();
    }
    spec.args
        .iter()
        .map(|a| a.to_string())
        .collect::<Vec<_>>()
        .join(" x ")
}

fn lint_overlap(sig: &Signature, out: &mut Vec<Diagnostic>) {
    for name in sig.op_names() {
        let idxs: Vec<usize> = sig
            .candidates(&name)
            .into_iter()
            .filter(|&i| matches!(&sig.spec(i).name, OpName::Fixed(n) if n == &name))
            .collect();
        for (pos, &i) in idxs.iter().enumerate() {
            for &j in &idxs[pos + 1..] {
                let (si, sj) = (sig.spec(i), sig.spec(j));
                if si.args.len() != sj.args.len() {
                    continue;
                }
                let va = var_infos(&si.quantifiers);
                let vb = var_infos(&sj.quantifiers);
                let overlap = si
                    .args
                    .iter()
                    .zip(&sj.args)
                    .all(|(x, y)| may_overlap(x, y, &va, &vb, sig));
                if overlap {
                    out.push(
                        Diagnostic::new(
                            "L001",
                            Severity::Warning,
                            Anchor::Spec(j),
                            format!("op `{name}`"),
                            format!(
                                "specs #{i} and #{j} have unifiable argument patterns \
                                 (`{}` vs `{}`); dispatch resolves the ambiguity by \
                                 declaration order",
                                args_str(si),
                                args_str(sj)
                            ),
                        )
                        .suggest(
                            "make the argument sorts disjoint (different constructors \
                             or disjoint kinds) or merge the alternatives",
                        ),
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------- L002

#[derive(Default)]
struct Unknowns {
    cons: Vec<Symbol>,
    kinds: Vec<Symbol>,
}

fn scan_sort(p: &SortPattern, sig: &Signature, u: &mut Unknowns) {
    match p {
        SortPattern::Var(_) => {}
        SortPattern::Cons(n, args) => {
            if sig.constructor(n).is_none() {
                u.cons.push(n.clone());
            }
            for a in args {
                scan_sort(a, sig, u);
            }
        }
        SortPattern::Kind(k) => {
            if !sig.has_kind(k) {
                u.kinds.push(k.clone());
            }
        }
        SortPattern::List(el) => scan_sort(el, sig, u),
        SortPattern::Product(items) | SortPattern::Union(items) => {
            for a in items {
                scan_sort(a, sig, u);
            }
        }
        SortPattern::Fun(params, res) => {
            for a in params {
                scan_sort(a, sig, u);
            }
            scan_sort(res, sig, u);
        }
    }
}

fn scan_type_pattern(p: &TypePattern, sig: &Signature, u: &mut Unknowns) {
    if let PatternNode::Cons(n, args) = &p.node {
        if sig.constructor(n).is_none() {
            u.cons.push(n.clone());
        }
        for a in args {
            scan_type_pattern(a, sig, u);
        }
    }
}

/// A kind is inhabited if a declared constructor lives in it, or if some
/// operator's type-operator result (`-> s : KIND`) mints types into it —
/// partition-wise plans, for example, pass streams of a kind no
/// constructor produces directly (partscan's per-partition output).
fn kind_inhabited(kind: &Symbol, sig: &Signature) -> bool {
    sig.constructors()
        .any(|c| sig.constructor_in_kind(&c.name, kind))
        || sig
            .specs()
            .iter()
            .any(|s| matches!(&s.result, ResultSpec::TypeOperator { kind: k, .. } if k == kind))
}

/// Emit the L002 findings for one declaration's collected unknowns and
/// quantifiers.
fn report_decl_reachability(
    sig: &Signature,
    anchor: &Anchor,
    loc: &str,
    quants: &[Quantifier],
    mut u: Unknowns,
    out: &mut Vec<Diagnostic>,
) {
    for q in quants {
        if let Quantifier::Kind { kind, .. } = q {
            if !sig.has_kind(kind) {
                out.push(
                    Diagnostic::new(
                        "L002",
                        Severity::Error,
                        anchor.clone(),
                        loc.to_string(),
                        format!("quantifies over undeclared kind `{kind}`"),
                    )
                    .suggest(format!(
                        "declare `{kind}` in a kinds section or fix the spelling"
                    )),
                );
            } else if !kind_inhabited(kind, sig) {
                out.push(
                    Diagnostic::new(
                        "L002",
                        Severity::Error,
                        anchor.clone(),
                        loc.to_string(),
                        format!(
                            "quantifies over kind `{kind}`, which no declared constructor \
                             or type-operator result inhabits; no ground type can ever \
                             instantiate it"
                        ),
                    )
                    .suggest(format!(
                        "declare a constructor of kind `{kind}` or remove the declaration"
                    )),
                );
            }
        }
    }
    u.cons.sort();
    u.cons.dedup();
    for c in u.cons {
        out.push(
            Diagnostic::new(
                "L002",
                Severity::Error,
                anchor.clone(),
                loc.to_string(),
                format!("references undeclared type constructor `{c}`; no ground type can match"),
            )
            .suggest(format!(
                "declare `{c}` in a type constructors section or fix the spelling"
            )),
        );
    }
    u.kinds.sort();
    u.kinds.dedup();
    for k in u.kinds {
        out.push(
            Diagnostic::new(
                "L002",
                Severity::Error,
                anchor.clone(),
                loc.to_string(),
                format!("references undeclared kind `{k}`"),
            )
            .suggest(format!(
                "declare `{k}` in a kinds section or fix the spelling"
            )),
        );
    }
}

fn lint_reachability(sig: &Signature, out: &mut Vec<Diagnostic>) {
    // (a) per-declaration: undeclared constructors/kinds, uninhabited
    // quantifier kinds — each makes the declaration unmatchable.
    for (idx, spec) in sig.specs().iter().enumerate() {
        let mut u = Unknowns::default();
        for a in &spec.args {
            scan_sort(a, sig, &mut u);
        }
        match &spec.result {
            ResultSpec::Pattern(p) => scan_sort(p, sig, &mut u),
            ResultSpec::TypeOperator { kind, .. } => {
                if !sig.has_kind(kind) {
                    u.kinds.push(kind.clone());
                }
            }
        }
        for q in &spec.quantifiers {
            if let Quantifier::Kind {
                pattern: Some(p), ..
            } = q
            {
                scan_type_pattern(p, sig, &mut u);
            }
        }
        report_decl_reachability(
            sig,
            &Anchor::Spec(idx),
            &spec_loc(idx, spec),
            &spec.quantifiers,
            u,
            out,
        );
    }
    for def in sorted_constructors(sig) {
        let mut u = Unknowns::default();
        for a in &def.args {
            scan_sort(a, sig, &mut u);
        }
        for q in &def.quantifiers {
            if let Quantifier::Kind {
                pattern: Some(p), ..
            } = q
            {
                scan_type_pattern(p, sig, &mut u);
            }
        }
        if !sig.has_kind(&def.kind) {
            u.kinds.push(def.kind.clone());
        }
        report_decl_reachability(
            sig,
            &Anchor::Constructor(def.name.clone()),
            &cons_loc(def),
            &def.quantifiers,
            u,
            out,
        );
    }
    for (idx, st) in sig.subtypes().iter().enumerate() {
        let mut u = Unknowns::default();
        scan_type_pattern(&st.sub, sig, &mut u);
        scan_sort(&st.sup, sig, &mut u);
        report_decl_reachability(
            sig,
            &Anchor::Subtype(idx),
            &format!("subtype rule #{idx} (`{} < {}`)", st.sub, st.sup),
            &[],
            u,
            out,
        );
    }

    // (b) dead constructors: reachable from no operator signature,
    // constructor argument, subtype rule, or quantified kind.
    let mut used_cons: HashSet<Symbol> = HashSet::new();
    let mut used_kinds: HashSet<Symbol> = HashSet::new();
    let use_sort = |p: &SortPattern, uc: &mut HashSet<Symbol>, uk: &mut HashSet<Symbol>| {
        let mut stack = vec![p];
        while let Some(p) = stack.pop() {
            match p {
                SortPattern::Var(_) => {}
                SortPattern::Cons(n, args) => {
                    uc.insert(n.clone());
                    stack.extend(args.iter());
                }
                SortPattern::Kind(k) => {
                    uk.insert(k.clone());
                }
                SortPattern::List(el) => stack.push(el),
                SortPattern::Product(items) | SortPattern::Union(items) => {
                    stack.extend(items.iter())
                }
                SortPattern::Fun(params, res) => {
                    stack.extend(params.iter());
                    stack.push(res);
                }
            }
        }
    };
    fn use_type_pattern(p: &TypePattern, uc: &mut HashSet<Symbol>) {
        if let PatternNode::Cons(n, args) = &p.node {
            uc.insert(n.clone());
            for a in args {
                use_type_pattern(a, uc);
            }
        }
    }
    let use_quants = |qs: &[Quantifier], uc: &mut HashSet<Symbol>, uk: &mut HashSet<Symbol>| {
        for q in qs {
            if let Quantifier::Kind { pattern, kind, .. } = q {
                uk.insert(kind.clone());
                if let Some(p) = pattern {
                    use_type_pattern(p, uc);
                }
            }
        }
    };
    for spec in sig.specs() {
        for a in &spec.args {
            use_sort(a, &mut used_cons, &mut used_kinds);
        }
        match &spec.result {
            ResultSpec::Pattern(p) => use_sort(p, &mut used_cons, &mut used_kinds),
            ResultSpec::TypeOperator { kind, .. } => {
                used_kinds.insert(kind.clone());
            }
        }
        use_quants(&spec.quantifiers, &mut used_cons, &mut used_kinds);
    }
    for def in sig.constructors() {
        for a in &def.args {
            use_sort(a, &mut used_cons, &mut used_kinds);
        }
        use_quants(&def.quantifiers, &mut used_cons, &mut used_kinds);
    }
    for st in sig.subtypes() {
        use_type_pattern(&st.sub, &mut used_cons);
        use_sort(&st.sup, &mut used_cons, &mut used_kinds);
    }
    for def in sorted_constructors(sig) {
        if used_cons.contains(&def.name) {
            continue;
        }
        if used_kinds
            .iter()
            .any(|k| sig.constructor_in_kind(&def.name, k))
        {
            continue;
        }
        out.push(
            Diagnostic::new(
                "L002",
                Severity::Warning,
                Anchor::Constructor(def.name.clone()),
                cons_loc(def),
                "is dead: no operator signature, constructor argument, subtype rule, \
                 or quantified kind can ever reach it"
                    .to_string(),
            )
            .suggest("remove it, or add an operator that produces or consumes it"),
        );
    }
}

// ----------------------------------------------------------- L003/spec

/// Variables a quantifier binds.
fn quant_bound(q: &Quantifier) -> Vec<Symbol> {
    match q {
        Quantifier::Kind { var, pattern, .. } => {
            let mut vs = vec![var.clone()];
            if let Some(p) = pattern {
                p.vars(&mut vs);
            }
            vs
        }
        Quantifier::InList { vars, .. } => vars.clone(),
    }
}

/// Shared L003 logic for operator specs and constructor definitions:
/// `args`/`result_vars` are the referenced variables, `skip_unused`
/// suppresses the unused-quantifier warning (type-operator results may
/// consume any binding from inside their Δ function).
#[allow(clippy::too_many_arguments)]
fn check_decl_vars(
    anchor: &Anchor,
    loc: &str,
    quants: &[Quantifier],
    refs: &[Symbol],
    extra_used: &[Symbol],
    skip_unused: bool,
    out: &mut Vec<Diagnostic>,
) {
    let mut bound: HashSet<Symbol> = HashSet::new();
    for q in quants {
        bound.extend(quant_bound(q));
    }
    let list_refs: Vec<Symbol> = quants
        .iter()
        .filter_map(|q| match q {
            Quantifier::InList { list, .. } => Some(list.clone()),
            _ => None,
        })
        .collect();

    let mut unbound: Vec<&Symbol> = refs.iter().filter(|v| !bound.contains(*v)).collect();
    unbound.sort();
    unbound.dedup();
    for v in unbound {
        out.push(
            Diagnostic::new(
                "L003",
                Severity::Error,
                anchor.clone(),
                loc.to_string(),
                format!("type variable `{v}` is not bound by any quantifier"),
            )
            .suggest(format!("add `forall {v} in <KIND>` or fix the name")),
        );
    }
    for l in &list_refs {
        if !bound.contains(l) {
            out.push(
                Diagnostic::new(
                    "L003",
                    Severity::Error,
                    anchor.clone(),
                    loc.to_string(),
                    format!("list quantifier ranges over `{l}`, which no pattern binds"),
                )
                .suggest(format!(
                    "bind `{l}` in an earlier quantifier pattern (e.g. `tuple: tuple({l})`)"
                )),
            );
        }
    }

    if skip_unused {
        return;
    }
    let mut used: HashSet<Symbol> = refs.iter().cloned().collect();
    used.extend(list_refs);
    used.extend(extra_used.iter().cloned());
    // A variable bound by two quantifiers is a cross-quantifier
    // constraint (`forall dtype in NUM . forall (a, dtype) in list`
    // restricts the attribute's type to NUM), not an unused binding.
    let mut seen: HashSet<Symbol> = HashSet::new();
    for q in quants {
        for v in quant_bound(q) {
            if !seen.insert(v.clone()) {
                used.insert(v);
            }
        }
    }
    for q in quants {
        let qb = quant_bound(q);
        if qb.iter().all(|v| !used.contains(v)) {
            out.push(
                Diagnostic::new(
                    "L003",
                    Severity::Warning,
                    anchor.clone(),
                    loc.to_string(),
                    format!("quantifier `{q:?}` binds no variable the declaration uses"),
                )
                .suggest("remove the quantifier, or use one of its variables"),
            );
        }
    }
}

fn lint_type_vars(sig: &Signature, out: &mut Vec<Diagnostic>) {
    for (idx, spec) in sig.specs().iter().enumerate() {
        let mut refs = Vec::new();
        for a in &spec.args {
            a.vars(&mut refs);
        }
        let skip_unused = match &spec.result {
            ResultSpec::Pattern(p) => {
                p.vars(&mut refs);
                false
            }
            ResultSpec::TypeOperator { .. } => true,
        };
        let extra_used: Vec<Symbol> = match &spec.name {
            OpName::Var(v) => vec![v.clone()],
            OpName::Fixed(_) => vec![],
        };
        check_decl_vars(
            &Anchor::Spec(idx),
            &spec_loc(idx, spec),
            &spec.quantifiers,
            &refs,
            &extra_used,
            skip_unused,
            out,
        );
    }
    for def in sorted_constructors(sig) {
        let mut refs = Vec::new();
        for a in &def.args {
            a.vars(&mut refs);
        }
        check_decl_vars(
            &Anchor::Constructor(def.name.clone()),
            &cons_loc(def),
            &def.quantifiers,
            &refs,
            &[],
            false,
            out,
        );
    }
    for (idx, st) in sig.subtypes().iter().enumerate() {
        let mut sub_binders = Vec::new();
        st.sub.vars(&mut sub_binders);
        let mut sup_vars = Vec::new();
        st.sup.vars(&mut sup_vars);
        sup_vars.sort();
        sup_vars.dedup();
        for v in sup_vars {
            if !sub_binders.contains(&v) {
                out.push(
                    Diagnostic::new(
                        "L003",
                        Severity::Error,
                        Anchor::Subtype(idx),
                        format!("subtype rule #{idx} (`{} < {}`)", st.sub, st.sup),
                        format!(
                            "supertype side references `{v}`, which the subtype pattern \
                             does not bind"
                        ),
                    )
                    .suggest(format!("bind `{v}` in the subtype pattern")),
                );
            }
        }
    }
}
