//! Rule-set analyses: the rule side of L003 (RHS references the LHS
//! cannot bind), L004 (rewrite-termination heuristic), L005 (condition
//! sanity), L006 (type preservation on synthesized witnesses) and L007
//! (unsuppliable conditions).

use crate::{Anchor, Diagnostic, Severity};
use sos_core::{DataType, Expr, SeqAtom, Signature, Symbol, TypeArg};
use sos_optimizer::{Condition, OpPat, Optimizer, Rule, RuleStep, TermPattern};
use std::collections::{HashMap, HashSet};

pub(crate) fn lint_optimizer(opt: &Optimizer, sig: &Signature) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for step in &opt.steps {
        for rule in &step.rules {
            lint_rule(step, rule, sig, &mut out);
        }
        lint_termination(step, &mut out);
    }
    lint_soundness(opt, sig, &mut out);
    out
}

fn rule_anchor(step: &RuleStep, rule: &Rule) -> Anchor {
    Anchor::Rule {
        step: step.name.clone(),
        rule: rule.name.clone(),
    }
}

fn rule_loc(step: &RuleStep, rule: &Rule) -> String {
    format!("rule `{}/{}`", step.name, rule.name)
}

// ------------------------------------------------------- LHS bindings

/// What the LHS pattern (and, later, the conditions) can bind: term
/// variables (including function variables), operator variables, and
/// lambda-parameter names (resolvable as `$v` in RHS parameter types).
#[derive(Default)]
struct RuleBound {
    terms: HashSet<Symbol>,
    ops: HashSet<Symbol>,
    params: HashSet<Symbol>,
}

fn collect_lhs(p: &TermPattern, b: &mut RuleBound) {
    match p {
        TermPattern::Var(v) | TermPattern::ConstVar(v) | TermPattern::ObjectVar(v) => {
            b.terms.insert(v.clone());
        }
        TermPattern::Apply { op, args } => {
            if let OpPat::Var(v) = op {
                b.ops.insert(v.clone());
            }
            for a in args {
                collect_lhs(a, b);
            }
        }
        TermPattern::Lambda { params, body } => {
            b.params.extend(params.iter().cloned());
            collect_lhs(body, b);
        }
        TermPattern::FunApp { fvar, .. } => {
            b.terms.insert(fvar.clone());
        }
        TermPattern::AsFun { fvar, inner, .. } => {
            b.terms.insert(fvar.clone());
            collect_lhs(inner, b);
        }
        TermPattern::As(v, inner) => {
            b.terms.insert(v.clone());
            collect_lhs(inner, b);
        }
        TermPattern::Param(_) | TermPattern::Const(_) => {}
    }
}

// --------------------------------------------------------------- L005

/// Check one condition's references against the current bound set,
/// reporting under the rendering of `shown` (so `not ...` shows whole).
fn check_condition_refs(
    cond: &Condition,
    shown: &Condition,
    b: &RuleBound,
    anchor: &Anchor,
    loc: &str,
    out: &mut Vec<Diagnostic>,
) {
    let require_term = |v: &Symbol, out: &mut Vec<Diagnostic>| {
        if !b.terms.contains(v) {
            out.push(
                Diagnostic::new(
                    "L005",
                    Severity::Error,
                    anchor.clone(),
                    loc.to_string(),
                    format!(
                        "condition `{shown}` references `{v}`, which no pattern variable binds"
                    ),
                )
                .suggest(format!(
                    "bind `{v}` in the LHS pattern or in an earlier condition"
                )),
            );
        }
    };
    match cond {
        Condition::CatalogLink { model, .. } => require_term(model, out),
        Condition::TypeIs { var, .. } => require_term(var, out),
        Condition::IsConst(v) => require_term(v, out),
        Condition::BTreeKeyIs { rep, attr } => {
            require_term(rep, out);
            if !b.terms.contains(attr) && !b.ops.contains(attr) {
                out.push(
                    Diagnostic::new(
                        "L005",
                        Severity::Error,
                        anchor.clone(),
                        loc.to_string(),
                        format!(
                            "condition `{shown}` compares the key against `{attr}`, which \
                             no pattern variable (term or operator) binds"
                        ),
                    )
                    .suggest(format!("bind `{attr}` in the LHS pattern")),
                );
            }
        }
        Condition::Not(inner) => check_condition_refs(inner, shown, b, anchor, loc, out),
        Condition::LsdIndexesBBoxOf { lsd, fvar } => {
            require_term(lsd, out);
            require_term(fvar, out);
        }
    }
}

// --------------------------------------------------------------- L007

/// Capability bits: what kind of term a pattern position can bind.
/// Matching is structural, so an `ObjectVar` can only ever hold an
/// object node, a `ConstVar` a constant, a `FunApp` a lambda
/// abstraction — and a condition that needs a different kind from its
/// binding can never be satisfied.
const CAP_OBJ: u8 = 1;
const CAP_CONST: u8 = 2;
const CAP_FUN: u8 = 4;
const CAP_OTHER: u8 = 8;
const CAP_ANY: u8 = CAP_OBJ | CAP_CONST | CAP_FUN | CAP_OTHER;

/// What kind of node a pattern shape can match.
fn shape_cap(p: &TermPattern) -> u8 {
    match p {
        TermPattern::Var(_) => CAP_ANY,
        TermPattern::ObjectVar(_) => CAP_OBJ,
        TermPattern::Const(_) | TermPattern::ConstVar(_) => CAP_CONST,
        TermPattern::Lambda { .. } | TermPattern::FunApp { .. } | TermPattern::AsFun { .. } => {
            CAP_FUN
        }
        TermPattern::Apply { .. } | TermPattern::Param(_) => CAP_OTHER,
        TermPattern::As(_, inner) => shape_cap(inner),
    }
}

/// Capabilities of every term variable the LHS binds. Bindings at
/// several positions are merged optimistically (union): the condition
/// is only flagged when *no* binding position could ever supply it.
fn collect_caps(p: &TermPattern, caps: &mut HashMap<Symbol, u8>) {
    let add = |v: &Symbol, c: u8, caps: &mut HashMap<Symbol, u8>| {
        *caps.entry(v.clone()).or_insert(0) |= c;
    };
    match p {
        TermPattern::Var(v) => add(v, CAP_ANY, caps),
        TermPattern::ObjectVar(v) => add(v, CAP_OBJ, caps),
        TermPattern::ConstVar(v) => add(v, CAP_CONST, caps),
        TermPattern::FunApp { fvar, .. } => add(fvar, CAP_FUN, caps),
        TermPattern::AsFun { fvar, inner, .. } => {
            add(fvar, CAP_FUN, caps);
            collect_caps(inner, caps);
        }
        TermPattern::As(v, inner) => {
            add(v, shape_cap(inner), caps);
            collect_caps(inner, caps);
        }
        TermPattern::Apply { args, .. } => {
            for a in args {
                collect_caps(a, caps);
            }
        }
        TermPattern::Lambda { body, .. } => collect_caps(body, caps),
        TermPattern::Param(_) | TermPattern::Const(_) => {}
    }
}

/// L007: a condition that references a binding whose pattern position
/// can never produce the kind of value the condition inspects. Unbound
/// variables are L005's business and are skipped here; negated
/// conditions are skipped because an unsatisfiable inner condition
/// makes the negation vacuously true, which may be intended.
fn check_condition_caps(
    cond: &Condition,
    caps: &HashMap<Symbol, u8>,
    bound: &RuleBound,
    anchor: &Anchor,
    loc: &str,
    out: &mut Vec<Diagnostic>,
) {
    let need = |v: &Symbol, mask: u8, what: &str, hint: &str, out: &mut Vec<Diagnostic>| {
        if let Some(&c) = caps.get(v) {
            if c & mask == 0 {
                out.push(
                    Diagnostic::new(
                        "L007",
                        Severity::Warning,
                        anchor.clone(),
                        loc.to_string(),
                        format!(
                            "condition `{cond}` can never hold: the pattern binds `{v}` in \
                             a position that can never be {what}"
                        ),
                    )
                    .suggest(format!("{hint}, or drop the condition")),
                );
            }
        }
    };
    match cond {
        Condition::CatalogLink { model, .. } => need(
            model,
            CAP_OBJ,
            "a database object",
            &format!("bind `{model}` as an object variable (`vars {model} obj`)"),
            out,
        ),
        Condition::IsConst(v) => need(
            v,
            CAP_CONST,
            "a constant",
            &format!("bind `{v}` as a constant variable (`vars {v} const`)"),
            out,
        ),
        Condition::BTreeKeyIs { rep, attr } => {
            need(
                rep,
                CAP_OBJ,
                "a database object",
                &format!("bind `{rep}` as an object variable or via `rep(model, {rep})`"),
                out,
            );
            if !bound.ops.contains(attr) {
                need(
                    attr,
                    CAP_CONST,
                    "an attribute name",
                    &format!("bind `{attr}` as an operator variable or constant"),
                    out,
                );
            }
        }
        Condition::LsdIndexesBBoxOf { lsd, fvar } => {
            need(
                lsd,
                CAP_OBJ,
                "a database object",
                &format!("bind `{lsd}` as an object variable or via `rep(model, {lsd})`"),
                out,
            );
            need(
                fvar,
                CAP_FUN,
                "a function",
                &format!("bind `{fvar}` as a function variable (`funvars {fvar}(...)`)"),
                out,
            );
        }
        Condition::TypeIs { .. } | Condition::Not(_) => {}
    }
}

// --------------------------------------------------------------- L006

/// L006: rule type preservation, checked semantically — synthesize
/// well-typed plans matching each rule's LHS against the canonical
/// scenario, fire the rule, and require the rewritten plan to re-check
/// at a representation-equivalent type (`sos_optimizer::synth`).
fn lint_soundness(opt: &Optimizer, sig: &Signature, out: &mut Vec<Diagnostic>) {
    // A rule with unbindable RHS names or conditions (L003/L005) fails
    // every witness for that root cause; repeating it as L006 is noise.
    let already_broken: HashSet<String> = out
        .iter()
        .filter(|d| d.code == "L003" || d.code == "L005")
        .map(|d| d.location.clone())
        .collect();
    for report in sos_optimizer::synth::verify_optimizer(sig, opt) {
        if already_broken.contains(&format!("rule `{}/{}`", report.step, report.rule)) {
            continue;
        }
        let message = match &report.verdict {
            sos_optimizer::synth::Verdict::IllTyped { witness, error } => format!(
                "rule rewrites the well-typed plan `{witness}` to an ill-typed term: {error}"
            ),
            sos_optimizer::synth::Verdict::TypeChanged { witness, detail } => {
                format!("rule does not preserve plan types: on `{witness}`, {detail}")
            }
            _ => continue,
        };
        out.push(
            Diagnostic::new(
                "L006",
                Severity::Error,
                Anchor::Rule {
                    step: report.step.clone(),
                    rule: report.rule.clone(),
                },
                format!("rule `{}/{}`", report.step, report.rule),
                message,
            )
            .suggest(
                "make the RHS produce the same (representation-equivalent) result type \
                 as the LHS",
            ),
        );
    }
}

// ----------------------------------------------------------- L003/rhs

/// `$v` placeholders in a lambda-parameter type.
fn dollar_vars(ty: &DataType, out: &mut Vec<Symbol>) {
    match ty {
        DataType::Cons(n, args) => {
            if let Some(rest) = n.as_str().strip_prefix('$') {
                out.push(Symbol::new(rest));
            }
            for a in args {
                dollar_vars_arg(a, out);
            }
        }
        DataType::Fun(params, res) => {
            for p in params {
                dollar_vars(p, out);
            }
            dollar_vars(res, out);
        }
    }
}

fn dollar_vars_arg(a: &TypeArg, out: &mut Vec<Symbol>) {
    match a {
        TypeArg::Type(t) => dollar_vars(t, out),
        TypeArg::List(items) | TypeArg::Pair(items) => {
            for i in items {
                dollar_vars_arg(i, out);
            }
        }
        TypeArg::Expr(_) => {}
    }
}

#[allow(clippy::too_many_arguments)]
fn check_rhs(
    e: &Expr,
    b: &RuleBound,
    type_binders: &HashSet<Symbol>,
    sig: &Signature,
    scope: &mut Vec<Symbol>,
    anchor: &Anchor,
    loc: &str,
    out: &mut Vec<Diagnostic>,
) {
    match e {
        Expr::Name(v) => {
            if !(b.terms.contains(v) || b.ops.contains(v) || scope.contains(v)) {
                out.push(
                    Diagnostic::new(
                        "L003",
                        Severity::Error,
                        anchor.clone(),
                        loc.to_string(),
                        format!(
                            "RHS references `{v}`, which the LHS pattern and conditions \
                             cannot bind"
                        ),
                    )
                    .suggest(format!(
                        "bind `{v}` on the LHS, or in a condition such as `rep(model, {v})`"
                    )),
                );
            }
        }
        Expr::Apply { op, args } => {
            let known = b.terms.contains(op)
                || b.ops.contains(op)
                || scope.contains(op)
                || op.as_str() == "%call"
                || sig.is_fixed_op(op);
            if !known {
                if sig.candidates(op).is_empty() {
                    out.push(
                        Diagnostic::new(
                            "L003",
                            Severity::Error,
                            anchor.clone(),
                            loc.to_string(),
                            format!(
                                "RHS applies `{op}`, which is neither an operator in the \
                                 signature nor an operator/function variable the LHS binds"
                            ),
                        )
                        .suggest(format!(
                            "bind `{op}` as an operator variable on the LHS or use a \
                             declared operator"
                        )),
                    );
                } else {
                    out.push(
                        Diagnostic::new(
                            "L003",
                            Severity::Warning,
                            anchor.clone(),
                            loc.to_string(),
                            format!(
                                "RHS applies `{op}`, which the LHS does not bind and which \
                                 is not a fixed operator; it only resolves if `{op}` is an \
                                 attribute of the argument's tuple type"
                            ),
                        )
                        .suggest(format!(
                            "bind `{op}` as an operator variable if the attribute should \
                             come from the matched term"
                        )),
                    );
                }
            }
            for a in args {
                check_rhs(a, b, type_binders, sig, scope, anchor, loc, out);
            }
        }
        Expr::Lambda { params, body } => {
            for (_, ty) in params {
                let mut dv = Vec::new();
                dollar_vars(ty, &mut dv);
                dv.sort();
                dv.dedup();
                for v in dv {
                    if !(b.params.contains(&v) || type_binders.contains(&v)) {
                        out.push(
                            Diagnostic::new(
                                "L003",
                                Severity::Error,
                                anchor.clone(),
                                loc.to_string(),
                                format!(
                                    "RHS lambda parameter type references `${v}`, which no \
                                     LHS lambda parameter or type condition binds"
                                ),
                            )
                            .suggest(format!(
                                "add a condition `term : pattern` binding `{v}`, or reuse \
                                 an LHS parameter's type variable"
                            )),
                        );
                    }
                }
            }
            let depth = scope.len();
            scope.extend(params.iter().map(|(p, _)| p.clone()));
            check_rhs(body, b, type_binders, sig, scope, anchor, loc, out);
            scope.truncate(depth);
        }
        Expr::Const(_) => {}
        Expr::List(items) | Expr::Tuple(items) => {
            for i in items {
                check_rhs(i, b, type_binders, sig, scope, anchor, loc, out);
            }
        }
        Expr::Seq(atoms) => {
            // Rule templates are abstract syntax; a Seq only appears in
            // hand-built rules. Check embedded expressions, leave the
            // word heads to the checker.
            for a in atoms {
                match a {
                    SeqAtom::Operand(e) => {
                        check_rhs(e, b, type_binders, sig, scope, anchor, loc, out)
                    }
                    SeqAtom::Word {
                        brackets, parens, ..
                    } => {
                        for e in brackets.iter().chain(parens.iter()).flatten() {
                            check_rhs(e, b, type_binders, sig, scope, anchor, loc, out);
                        }
                    }
                }
            }
        }
    }
}

fn lint_rule(step: &RuleStep, rule: &Rule, sig: &Signature, out: &mut Vec<Diagnostic>) {
    let anchor = rule_anchor(step, rule);
    let loc = rule_loc(step, rule);
    let mut bound = RuleBound::default();
    collect_lhs(&rule.lhs, &mut bound);

    // Conditions run in declared order, each seeing what the previous
    // ones bound (L005), and may bind new variables the RHS uses.
    let mut caps: HashMap<Symbol, u8> = HashMap::new();
    collect_caps(&rule.lhs, &mut caps);
    let mut type_binders: HashSet<Symbol> = HashSet::new();
    for cond in &rule.conditions {
        check_condition_refs(cond, cond, &bound, &anchor, &loc, out);
        check_condition_caps(cond, &caps, &bound, &anchor, &loc, out);
        match cond {
            Condition::CatalogLink { rep, .. } => {
                bound.terms.insert(rep.clone());
                caps.insert(rep.clone(), CAP_OBJ);
            }
            Condition::TypeIs { pattern, .. } => {
                let mut vs = Vec::new();
                pattern.vars(&mut vs);
                type_binders.extend(vs);
            }
            _ => {}
        }
    }

    let mut scope = Vec::new();
    check_rhs(
        &rule.rhs,
        &bound,
        &type_binders,
        sig,
        &mut scope,
        &anchor,
        &loc,
        out,
    );
}

// --------------------------------------------------------------- L004

/// Operator symbols an RHS template introduces as applications,
/// excluding spliced variables (`%call`, bound op/function variables).
fn introduced_ops(e: &Expr, bound: &RuleBound, out: &mut HashSet<Symbol>) {
    match e {
        Expr::Apply { op, args } => {
            if op.as_str() != "%call" && !bound.terms.contains(op) && !bound.ops.contains(op) {
                out.insert(op.clone());
            }
            for a in args {
                introduced_ops(a, bound, out);
            }
        }
        Expr::Lambda { body, .. } => introduced_ops(body, bound, out),
        Expr::List(items) | Expr::Tuple(items) => {
            for i in items {
                introduced_ops(i, bound, out);
            }
        }
        Expr::Seq(atoms) => {
            for a in atoms {
                if let SeqAtom::Operand(e) = a {
                    introduced_ops(e, bound, out);
                }
            }
        }
        Expr::Name(_) | Expr::Const(_) => {}
    }
}

/// The operator a rule's LHS matches at its root.
enum LhsRoot {
    /// A specific operator application.
    Exact(Symbol),
    /// Matches any application (op variable or bare term variable).
    AnyApply,
    /// Cannot match an application node (constant, lambda, ...).
    NotApply,
}

fn lhs_root(p: &TermPattern) -> LhsRoot {
    match p {
        TermPattern::Apply { op, .. } => match op {
            OpPat::Exact(n) => LhsRoot::Exact(n.clone()),
            OpPat::Var(_) => LhsRoot::AnyApply,
        },
        TermPattern::As(_, inner) | TermPattern::AsFun { inner, .. } => lhs_root(inner),
        TermPattern::Var(_) | TermPattern::FunApp { .. } => LhsRoot::AnyApply,
        TermPattern::Lambda { .. }
        | TermPattern::Param(_)
        | TermPattern::Const(_)
        | TermPattern::ConstVar(_)
        | TermPattern::ObjectVar(_) => LhsRoot::NotApply,
    }
}

/// Number of application nodes — the decreasing measure the heuristic
/// accepts.
fn pattern_size(p: &TermPattern) -> usize {
    match p {
        TermPattern::Apply { args, .. } => 1 + args.iter().map(pattern_size).sum::<usize>(),
        TermPattern::Lambda { body, .. } => pattern_size(body),
        TermPattern::As(_, inner) | TermPattern::AsFun { inner, .. } => pattern_size(inner),
        _ => 0,
    }
}

fn expr_size(e: &Expr) -> usize {
    match e {
        Expr::Apply { op, args } => {
            let this = usize::from(op.as_str() != "%call");
            this + args.iter().map(expr_size).sum::<usize>()
        }
        Expr::Lambda { body, .. } => expr_size(body),
        Expr::List(items) | Expr::Tuple(items) => items.iter().map(expr_size).sum(),
        Expr::Seq(atoms) => atoms
            .iter()
            .map(|a| match a {
                SeqAtom::Operand(e) => expr_size(e),
                SeqAtom::Word { .. } => 1,
            })
            .sum(),
        Expr::Name(_) | Expr::Const(_) => 0,
    }
}

/// Strongly connected components, smallest-index-first (Kosaraju).
fn sccs(edges: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = edges.len();
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for start in 0..n {
        if seen[start] {
            continue;
        }
        // Iterative post-order.
        let mut stack = vec![(start, 0usize)];
        seen[start] = true;
        while let Some(&mut (v, ref mut i)) = stack.last_mut() {
            if *i < edges[v].len() {
                let w = edges[v][*i];
                *i += 1;
                if !seen[w] {
                    seen[w] = true;
                    stack.push((w, 0));
                }
            } else {
                order.push(v);
                stack.pop();
            }
        }
    }
    let mut redges: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (v, outs) in edges.iter().enumerate() {
        for &w in outs {
            redges[w].push(v);
        }
    }
    let mut comp = vec![usize::MAX; n];
    let mut comps: Vec<Vec<usize>> = Vec::new();
    for &start in order.iter().rev() {
        if comp[start] != usize::MAX {
            continue;
        }
        let id = comps.len();
        let mut members = vec![start];
        comp[start] = id;
        let mut stack = vec![start];
        while let Some(v) = stack.pop() {
            for &w in &redges[v] {
                if comp[w] == usize::MAX {
                    comp[w] = id;
                    members.push(w);
                    stack.push(w);
                }
            }
        }
        members.sort_unstable();
        comps.push(members);
    }
    comps
}

fn lint_termination(step: &RuleStep, out: &mut Vec<Diagnostic>) {
    let n = step.rules.len();
    let mut intro: Vec<HashSet<Symbol>> = Vec::with_capacity(n);
    for rule in &step.rules {
        let mut bound = RuleBound::default();
        collect_lhs(&rule.lhs, &mut bound);
        let mut ops = HashSet::new();
        introduced_ops(&rule.rhs, &bound, &mut ops);
        intro.push(ops);
    }
    let roots: Vec<LhsRoot> = step.rules.iter().map(|r| lhs_root(&r.lhs)).collect();
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        if intro[i].is_empty() {
            continue;
        }
        for (j, root) in roots.iter().enumerate() {
            let hit = match root {
                LhsRoot::Exact(op) => intro[i].contains(op),
                LhsRoot::AnyApply => true,
                LhsRoot::NotApply => false,
            };
            if hit {
                edges[i].push(j);
            }
        }
    }
    for comp in sccs(&edges) {
        let cyclic = comp.len() > 1 || edges[comp[0]].contains(&comp[0]);
        if !cyclic {
            continue;
        }
        // A catalog/type condition gates re-application; a strictly
        // decreasing application count bounds the chain. Either excuses
        // the cycle (heuristic — see DESIGN.md §7 for what it misses).
        if comp.iter().any(|&i| !step.rules[i].conditions.is_empty()) {
            continue;
        }
        let sizes: Vec<(usize, usize)> = comp
            .iter()
            .map(|&i| {
                (
                    pattern_size(&step.rules[i].lhs),
                    expr_size(&step.rules[i].rhs),
                )
            })
            .collect();
        let non_increasing = sizes.iter().all(|&(l, r)| r <= l);
        let some_decreasing = sizes.iter().any(|&(l, r)| r < l);
        if non_increasing && some_decreasing && comp.len() > 1 {
            continue;
        }
        if comp.len() == 1 {
            let i = comp[0];
            let (l, r) = sizes[0];
            if r < l {
                continue;
            }
            let rule = &step.rules[i];
            out.push(
                Diagnostic::new(
                    "L004",
                    Severity::Error,
                    rule_anchor(step, rule),
                    rule_loc(step, rule),
                    format!(
                        "RHS re-matches the rule's own LHS with no condition and no \
                         decreasing term measure (LHS has {l} application(s), RHS {r}); \
                         the step can only stop by exhausting its budget ({})",
                        step.budget
                    ),
                )
                .suggest(
                    "add a guarding condition (catalog or type), or make the RHS \
                     strictly smaller than the LHS",
                ),
            );
        } else {
            let names: Vec<String> = comp
                .iter()
                .map(|&i| format!("`{}`", step.rules[i].name))
                .collect();
            let first = &step.rules[comp[0]];
            out.push(
                Diagnostic::new(
                    "L004",
                    Severity::Error,
                    rule_anchor(step, first),
                    format!("step `{}`", step.name),
                    format!(
                        "rules {} form a rewrite cycle with no condition and no strictly \
                         decreasing term measure; the step can only stop by exhausting \
                         its budget ({})",
                        names.join(", "),
                        step.budget
                    ),
                )
                .suggest(
                    "add a guarding condition to a rule in the cycle, or make the cycle \
                     strictly shrink the term",
                ),
            );
        }
    }
}
