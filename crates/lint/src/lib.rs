//! `sos-lint`: static analysis for second-order signatures and
//! optimizer rule sets.
//!
//! The paper treats an SOS specification as a formal object — kinds,
//! type constructors, kind-quantified operator patterns, and
//! optimization rules as typed term rewrites. That makes whole classes
//! of spec bugs statically decidable before anything executes. This
//! crate implements seven analyses (see DESIGN.md §7 and §12):
//!
//! * **L001** — pattern overlap: two alternatives of the same operator
//!   whose argument patterns unify, so dispatch order silently decides.
//! * **L002** — unreachable operators (argument pattern mentions an
//!   undeclared constructor, or quantifies over an uninhabited kind)
//!   and dead type constructors (reachable from no operator signature).
//! * **L003** — unbound/unused type variables in specs, and rule RHS
//!   references the LHS and conditions cannot bind.
//! * **L004** — rewrite-termination heuristic: cycles in the rule
//!   dependency graph not broken by a catalog condition or a strictly
//!   decreasing term measure.
//! * **L005** — condition sanity: conditions referencing variables no
//!   pattern variable binds.
//! * **L006** — rule type-preservation: synthesized well-typed plans
//!   matching the rule's LHS rewrite to an ill-typed term, or to a type
//!   that is not representation-equivalent to the original plan's.
//! * **L007** — unsuppliable conditions: a condition references a
//!   binding whose pattern position (constant, function, ...) can never
//!   produce the kind of value the condition needs, so it never holds.
//!
//! Entry points are [`lint_spec`] (over a [`Signature`]) and
//! [`lint_rules`] (over an [`Optimizer`] against a signature).
//! Diagnostics carry a stable code, a severity, a human location, and
//! an optional suggestion; they render both human-readable
//! ([`render_human`]) and as JSON ([`render_json`]) through `sos-obs`'s
//! writer.

use sos_core::Signature;
use sos_core::Symbol;
use sos_optimizer::Optimizer;

mod rules;
mod spec;

/// How bad a finding is. `Error` diagnostics are the ones
/// `DatabaseBuilder::strict_lint(true)` rejects registration on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Error,
    Warning,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
        }
    }
}

/// What a diagnostic is about, so callers with source maps (the `sos
/// lint` CLI keeps byte offsets per declaration) can attach lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Anchor {
    /// Operator spec by index into `Signature::specs()`.
    Spec(usize),
    /// Type constructor by name.
    Constructor(Symbol),
    /// Subtype rule by index into `Signature::subtypes()`.
    Subtype(usize),
    /// Optimizer rule by step and rule name.
    Rule { step: String, rule: String },
    /// Whole-signature findings (nothing to point at).
    Global,
}

/// One finding. The code (`L001`..`L007`) and rendered text are stable:
/// golden tests pin them byte-for-byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub code: &'static str,
    pub severity: Severity,
    pub anchor: Anchor,
    /// Human-readable place, e.g. "op `count` (spec #12)" or
    /// "rule `index-access/select-btree-=`".
    pub location: String,
    /// 1-based source line, when the caller has a span table.
    pub line: Option<usize>,
    pub message: String,
    pub suggestion: Option<String>,
}

impl Diagnostic {
    pub(crate) fn new(
        code: &'static str,
        severity: Severity,
        anchor: Anchor,
        location: String,
        message: String,
    ) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            anchor,
            location,
            line: None,
            message,
            suggestion: None,
        }
    }

    pub(crate) fn suggest(mut self, s: impl Into<String>) -> Diagnostic {
        self.suggestion = Some(s.into());
        self
    }

    /// JSON encoding via the `sos-obs` writer (deterministic key
    /// order; parses with the vendored `serde_json`).
    pub fn to_json(&self) -> String {
        let mut o = sos_obs::json::Obj::new();
        o.str("code", self.code)
            .str("severity", &self.severity.to_string())
            .str("location", &self.location);
        if let Some(line) = self.line {
            o.u64("line", line as u64);
        }
        o.str("message", &self.message);
        if let Some(s) = &self.suggestion {
            o.str("suggestion", s);
        }
        o.finish()
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[{}]", self.severity, self.code)?;
        if let Some(line) = self.line {
            write!(f, " line {line}")?;
        }
        write!(f, " {}: {}", self.location, self.message)?;
        if let Some(s) = &self.suggestion {
            write!(f, "\n    help: {s}")?;
        }
        Ok(())
    }
}

/// Lint a signature: analyses L001, L002, and the spec side of L003.
/// Output is sorted (code, then location, then message) so reports are
/// deterministic regardless of hash-map iteration order.
pub fn lint_spec(sig: &Signature) -> Vec<Diagnostic> {
    let mut diags = spec::lint_signature(sig);
    sort(&mut diags);
    diags
}

/// Lint a rule set against the signature its terms are written over:
/// the rule side of L003, plus L004, L005, L006 (type preservation on
/// synthesized witnesses) and L007 (unsuppliable conditions).
pub fn lint_rules(opt: &Optimizer, sig: &Signature) -> Vec<Diagnostic> {
    let mut diags = rules::lint_optimizer(opt, sig);
    sort(&mut diags);
    diags
}

/// Both passes, concatenated.
pub fn lint_all(sig: &Signature, opt: &Optimizer) -> Vec<Diagnostic> {
    let mut diags = lint_spec(sig);
    diags.extend(lint_rules(opt, sig));
    diags
}

fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| (a.code, &a.location, &a.message).cmp(&(b.code, &b.location, &b.message)));
}

/// Any error-severity findings?
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Render a report the way `rustc` renders lints: one finding per
/// paragraph, then a summary line.
pub fn render_human(diags: &[Diagnostic]) -> String {
    if diags.is_empty() {
        return "no diagnostics\n".to_string();
    }
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    out.push_str(&format!("{errors} error(s), {warnings} warning(s)\n"));
    out
}

/// Render the findings as a JSON array.
pub fn render_json(diags: &[Diagnostic]) -> String {
    sos_obs::json::array(diags.iter().map(|d| d.to_json()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostic_renders_human_and_json() {
        let d = Diagnostic::new(
            "L001",
            Severity::Warning,
            Anchor::Spec(3),
            "op `widen`".to_string(),
            "patterns overlap".to_string(),
        )
        .suggest("make the argument sorts disjoint");
        assert_eq!(
            d.to_string(),
            "warning[L001] op `widen`: patterns overlap\n    help: make the argument sorts disjoint"
        );
        assert_eq!(
            d.to_json(),
            r#"{"code":"L001","severity":"warning","location":"op `widen`","message":"patterns overlap","suggestion":"make the argument sorts disjoint"}"#
        );
    }

    #[test]
    fn empty_report_and_summary_line() {
        assert_eq!(render_human(&[]), "no diagnostics\n");
        let d = Diagnostic::new(
            "L005",
            Severity::Error,
            Anchor::Global,
            "rule `s/r`".to_string(),
            "m".to_string(),
        );
        let report = render_human(&[d]);
        assert!(report.ends_with("1 error(s), 0 warning(s)\n"));
        assert_eq!(render_json(&[]), "[]");
    }
}
