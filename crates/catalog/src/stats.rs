//! Per-object statistics for cost-based optimization.
//!
//! Collected by `Database::analyze`, stored in the catalog (so they ride
//! the same snapshot/WAL machinery as object types and partition specs),
//! and consumed by the optimizer's page-touch cost model. The shapes are
//! deliberately simple: a row count, a page count, and an equi-width
//! histogram over the numeric key domain (B-tree key attribute, or the
//! center-x of indexed rectangles for `lsdtree` objects).

use sos_core::Symbol;

/// Number of buckets an equi-width histogram is built with.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// An equi-width histogram over a numeric domain `[lo, hi]`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Histogram {
    pub lo: f64,
    pub hi: f64,
    pub buckets: Vec<u64>,
}

impl Histogram {
    /// Build an equi-width histogram from a sample of values. Returns
    /// `None` when there is nothing to summarize.
    pub fn build(values: &[f64], nbuckets: usize) -> Option<Histogram> {
        if values.is_empty() || nbuckets == 0 {
            return None;
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in values {
            if !v.is_finite() {
                continue;
            }
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if !lo.is_finite() || !hi.is_finite() {
            return None;
        }
        let mut h = Histogram {
            lo,
            hi,
            buckets: vec![0; nbuckets],
        };
        let width = (hi - lo).max(f64::EPSILON);
        for &v in values {
            if !v.is_finite() {
                continue;
            }
            let idx = (((v - lo) / width) * nbuckets as f64) as usize;
            h.buckets[idx.min(nbuckets - 1)] += 1;
        }
        Some(h)
    }

    /// Total count across buckets.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    fn bucket_width(&self) -> f64 {
        ((self.hi - self.lo) / self.buckets.len() as f64).max(f64::EPSILON)
    }

    /// Estimated fraction of rows with value exactly `v`: the containing
    /// bucket's share divided by the estimated distinct values per
    /// bucket (bounded by the bucket's own count).
    pub fn fraction_eq(&self, v: f64) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        if v < self.lo || v > self.hi {
            return 0.0;
        }
        let idx = (((v - self.lo) / (self.hi - self.lo).max(f64::EPSILON))
            * self.buckets.len() as f64) as usize;
        let count = self.buckets[idx.min(self.buckets.len() - 1)] as f64;
        // Distinct values per bucket: at most the bucket count, at most
        // one per integer step of the bucket's width.
        let distinct = count.min(self.bucket_width().ceil().max(1.0));
        (count / distinct.max(1.0)) / total as f64
    }

    /// Estimated fraction of rows with value `<= v` (linear
    /// interpolation inside the containing bucket).
    pub fn fraction_le(&self, v: f64) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        if v < self.lo {
            return 0.0;
        }
        if v >= self.hi {
            return 1.0;
        }
        let width = self.bucket_width();
        let pos = (v - self.lo) / width;
        let idx = (pos as usize).min(self.buckets.len() - 1);
        let frac_in_bucket = (pos - idx as f64).clamp(0.0, 1.0);
        let below: u64 = self.buckets[..idx].iter().sum();
        (below as f64 + self.buckets[idx] as f64 * frac_in_bucket) / total as f64
    }

    /// Estimated fraction of rows with value `>= v`.
    pub fn fraction_ge(&self, v: f64) -> f64 {
        (1.0 - self.fraction_le(v) + self.fraction_eq(v)).clamp(0.0, 1.0)
    }

    /// Estimated fraction of rows with `lo <= value <= hi`.
    pub fn fraction_range(&self, lo: f64, hi: f64) -> f64 {
        if hi < lo {
            return 0.0;
        }
        (self.fraction_le(hi) - self.fraction_le(lo) + self.fraction_eq(lo)).clamp(0.0, 1.0)
    }
}

/// Bounding box of the rectangles indexed by an `lsdtree` object.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BBox {
    pub x0: f64,
    pub y0: f64,
    pub x1: f64,
    pub y1: f64,
}

/// Statistics for one named storage object.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ObjectStats {
    /// Row (entry) count at analyze time.
    pub rows: u64,
    /// Pages the object occupies (heap pages, B-tree pages, or an
    /// estimate for in-memory representations).
    pub pages: u64,
    /// For B-tree objects: the key attribute the histogram is over.
    pub key_attr: Option<Symbol>,
    /// Equi-width histogram over the numeric key attribute.
    pub key_histogram: Option<Histogram>,
    /// For lsdtree objects: histogram over indexed-rect center x.
    pub rect_histogram: Option<Histogram>,
    /// For lsdtree objects: bounding box of all indexed rects.
    pub bbox: Option<BBox>,
    /// For partitioned objects: per-partition row counts.
    pub partition_rows: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_build_and_fractions() {
        let values: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let h = Histogram::build(&values, 32).unwrap();
        assert_eq!(h.total(), 1000);
        assert!((h.fraction_le(499.0) - 0.5).abs() < 0.05);
        assert!((h.fraction_ge(900.0) - 0.1).abs() < 0.05);
        assert!((h.fraction_range(100.0, 199.0) - 0.1).abs() < 0.05);
        // Point equality on a dense integer domain: ~1/1000.
        let eq = h.fraction_eq(500.0);
        assert!(eq > 0.0 && eq < 0.01, "eq fraction {eq}");
        // Out-of-range probes estimate zero.
        assert_eq!(h.fraction_eq(-5.0), 0.0);
        assert_eq!(h.fraction_le(-5.0), 0.0);
        assert_eq!(h.fraction_le(5000.0), 1.0);
    }

    #[test]
    fn histogram_skew_reflects_distribution() {
        // 90% of mass at low values.
        let mut values = vec![1.0; 900];
        values.extend((0..100).map(|i| 100.0 + i as f64));
        let h = Histogram::build(&values, 32).unwrap();
        assert!(h.fraction_le(50.0) > 0.8);
        assert!(h.fraction_ge(150.0) < 0.1);
    }

    #[test]
    fn histogram_degenerate_inputs() {
        assert!(Histogram::build(&[], 32).is_none());
        assert!(Histogram::build(&[1.0], 0).is_none());
        let h = Histogram::build(&[7.0, 7.0, 7.0], 32).unwrap();
        assert_eq!(h.total(), 3);
        assert!(h.fraction_eq(7.0) > 0.9);
        assert_eq!(h.fraction_le(7.0), 1.0);
    }
}
