//! The database catalog, itself modeled as an algebraic structure
//! (Section 6 of the paper).
//!
//! Because both the data model and the representation model vary, the
//! catalog cannot be hard-wired: it is a collection of
//!
//! * **named types** — introduced by `type <name> = <type expression>`;
//!   named types are *aliases*, expanded structurally before checking,
//! * **named objects** — introduced by `create <name> : <type>`, each
//!   tagged with the level (model / representation / hybrid) derived from
//!   its type's constructors, and
//! * **catalog relations** — objects of the special `catalog(...)` type
//!   constructor, n-ary relations over identifiers and data values whose
//!   membership tests can be used like PROLOG predicates inside
//!   optimization rules. The `rep` catalog connecting each model object
//!   to its representation objects is the canonical instance.

use sos_core::check::ObjectEnv;
use sos_core::spec::Level;
use sos_core::{Const, DataType, Signature, Symbol, TypeArg};
use std::collections::HashMap;

pub mod stats;
pub use stats::{BBox, Histogram, ObjectStats, HISTOGRAM_BUCKETS};

/// Errors raised by catalog operations.
#[derive(Debug, Clone, PartialEq)]
pub enum CatalogError {
    DuplicateType(Symbol),
    DuplicateObject(Symbol),
    UnknownObject(Symbol),
    NotACatalog(Symbol),
    ArityMismatch {
        name: Symbol,
        expected: usize,
        got: usize,
    },
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::DuplicateType(n) => write!(f, "type `{n}` already defined"),
            CatalogError::DuplicateObject(n) => write!(f, "object `{n}` already exists"),
            CatalogError::UnknownObject(n) => write!(f, "no object named `{n}`"),
            CatalogError::NotACatalog(n) => write!(f, "object `{n}` is not a catalog"),
            CatalogError::ArityMismatch {
                name,
                expected,
                got,
            } => write!(f, "catalog `{name}` has arity {expected}, tuple has {got}"),
        }
    }
}

impl std::error::Error for CatalogError {}

/// Metadata for one named object.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ObjectEntry {
    pub name: Symbol,
    pub ty: DataType,
    pub level: Level,
}

/// One catalog relation: rows of constants (identifiers, ints, ...).
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CatalogRelation {
    pub columns: usize,
    pub rows: Vec<Vec<Const>>,
}

impl CatalogRelation {
    /// Insert a row (idempotent: an identical row is not duplicated —
    /// the `rep` catalog is a set of links).
    pub fn insert(&mut self, row: Vec<Const>) {
        if !self.rows.contains(&row) {
            self.rows.push(row);
        }
    }

    /// Remove all rows matching a partial pattern (`None` = wildcard).
    pub fn delete(&mut self, pattern: &[Option<Const>]) -> usize {
        let before = self.rows.len();
        self.rows.retain(|row| !matches_row(row, pattern));
        before - self.rows.len()
    }

    /// All rows matching a partial pattern.
    pub fn lookup(&self, pattern: &[Option<Const>]) -> Vec<&Vec<Const>> {
        self.rows
            .iter()
            .filter(|r| matches_row(r, pattern))
            .collect()
    }
}

fn matches_row(row: &[Const], pattern: &[Option<Const>]) -> bool {
    row.len() == pattern.len()
        && row
            .iter()
            .zip(pattern)
            .all(|(c, p)| p.as_ref().map(|p| p == c).unwrap_or(true))
}

/// How a partitioned object distributes tuples across its partitions.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum PartMethod {
    /// Hash of the key attribute's encoded bytes, modulo `parts`.
    Hash { parts: usize },
    /// Range partitioning: `bounds` holds the `n-1` inclusive upper
    /// bounds of the first `n-1` partitions (sorted ascending); keys
    /// above every bound go to the last partition. For spatially keyed
    /// objects (lsdtree) the bounds are reals compared against the
    /// indexed rectangle's center x.
    Range { bounds: Vec<Const> },
}

impl PartMethod {
    /// Number of partitions the method produces.
    pub fn parts(&self) -> usize {
        match self {
            PartMethod::Hash { parts } => *parts,
            PartMethod::Range { bounds } => bounds.len() + 1,
        }
    }
}

/// The partitioning spec of one storage object, recorded in the catalog
/// so it survives save/open and WAL recovery.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PartSpec {
    /// The key attribute tuples are routed by (for lsdtree objects this
    /// names the indexed rect attribute only informationally; routing
    /// uses the tree's key function).
    pub attr: Symbol,
    pub method: PartMethod,
}

/// The catalog: named types, named objects, catalog relations.
#[derive(Debug, Clone, Default, serde::Serialize)]
pub struct Catalog {
    types: HashMap<Symbol, DataType>,
    objects: HashMap<Symbol, ObjectEntry>,
    relations: HashMap<Symbol, CatalogRelation>,
    /// Partitioning specs by object name.
    partitions: HashMap<Symbol, PartSpec>,
    /// Per-object statistics collected by `analyze`.
    stats: HashMap<Symbol, ObjectStats>,
}

// Hand-written so `partitions` and `stats` default to empty when absent:
// snapshots written before partitioning / statistics existed stay
// loadable (the vendored serde derive has no `#[serde(default)]`).
impl<'de> serde::Deserialize<'de> for Catalog {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let json = deserializer.take_json()?;
        let obj = serde::expect_obj::<D::Error>(&json, "Catalog")?;
        Ok(Catalog {
            types: serde::field_of(obj, "types", "Catalog")?,
            objects: serde::field_of(obj, "objects", "Catalog")?,
            relations: serde::field_of(obj, "relations", "Catalog")?,
            partitions: match obj.iter().find(|(k, _)| k == "partitions") {
                Some((_, v)) => serde::value_of::<_, D::Error>(v)?,
                None => HashMap::new(),
            },
            stats: match obj.iter().find(|(k, _)| k == "stats") {
                Some((_, v)) => serde::value_of::<_, D::Error>(v)?,
                None => HashMap::new(),
            },
        })
    }
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog::default()
    }

    // ---- named types ----

    /// Define a named type (after expansion of previously named types).
    pub fn define_type(&mut self, name: Symbol, ty: DataType) -> Result<(), CatalogError> {
        if self.types.contains_key(&name) {
            return Err(CatalogError::DuplicateType(name));
        }
        let expanded = self.expand_type(&ty);
        self.types.insert(name, expanded);
        Ok(())
    }

    pub fn named_type(&self, name: &Symbol) -> Option<&DataType> {
        self.types.get(name)
    }

    /// Structurally replace named types by their definitions. A name used
    /// as a 0-ary constructor (`rel(city)`) is an alias reference.
    pub fn expand_type(&self, ty: &DataType) -> DataType {
        match ty {
            DataType::Cons(name, args) if args.is_empty() => match self.types.get(name) {
                Some(t) => t.clone(),
                None => ty.clone(),
            },
            DataType::Cons(name, args) => DataType::Cons(
                name.clone(),
                args.iter().map(|a| self.expand_arg(a)).collect(),
            ),
            DataType::Fun(params, res) => DataType::Fun(
                params.iter().map(|p| self.expand_type(p)).collect(),
                Box::new(self.expand_type(res)),
            ),
        }
    }

    fn expand_arg(&self, arg: &TypeArg) -> TypeArg {
        match arg {
            TypeArg::Type(t) => TypeArg::Type(self.expand_type(t)),
            TypeArg::List(items) => {
                TypeArg::List(items.iter().map(|a| self.expand_arg(a)).collect())
            }
            TypeArg::Pair(items) => {
                TypeArg::Pair(items.iter().map(|a| self.expand_arg(a)).collect())
            }
            TypeArg::Expr(e) => TypeArg::Expr(e.clone()),
        }
    }

    // ---- named objects ----

    /// Create an object of an (expanded, checked) type. The level is
    /// derived from the signature's constructor levels.
    pub fn create_object(
        &mut self,
        sig: &Signature,
        name: Symbol,
        ty: DataType,
    ) -> Result<&ObjectEntry, CatalogError> {
        if self.objects.contains_key(&name) {
            return Err(CatalogError::DuplicateObject(name));
        }
        let level = level_of(sig, &ty);
        // Objects of catalog type get an empty catalog relation.
        if let DataType::Cons(c, args) = &ty {
            if c.as_str() == "catalog" {
                let cols = match args.first() {
                    Some(TypeArg::List(items)) => items.len(),
                    _ => args.len(),
                };
                self.relations.insert(
                    name.clone(),
                    CatalogRelation {
                        columns: cols,
                        rows: Vec::new(),
                    },
                );
            }
        }
        let entry = ObjectEntry {
            name: name.clone(),
            ty,
            level,
        };
        self.objects.insert(name.clone(), entry);
        Ok(&self.objects[&name])
    }

    pub fn object(&self, name: &Symbol) -> Option<&ObjectEntry> {
        self.objects.get(name)
    }

    pub fn objects(&self) -> impl Iterator<Item = &ObjectEntry> {
        self.objects.values()
    }

    /// Delete an object (the `delete <identifier>` statement).
    pub fn delete_object(&mut self, name: &Symbol) -> Result<ObjectEntry, CatalogError> {
        self.relations.remove(name);
        self.partitions.remove(name);
        self.stats.remove(name);
        self.objects
            .remove(name)
            .ok_or_else(|| CatalogError::UnknownObject(name.clone()))
    }

    // ---- partitioning specs ----

    /// Record how object `name` is partitioned.
    pub fn set_partition_spec(&mut self, name: Symbol, spec: PartSpec) {
        self.partitions.insert(name, spec);
    }

    pub fn partition_spec(&self, name: &Symbol) -> Option<&PartSpec> {
        self.partitions.get(name)
    }

    pub fn remove_partition_spec(&mut self, name: &Symbol) -> Option<PartSpec> {
        self.partitions.remove(name)
    }

    // ---- per-object statistics ----

    /// Record statistics for object `name` (collected by `analyze`).
    pub fn set_stats(&mut self, name: Symbol, stats: ObjectStats) {
        self.stats.insert(name, stats);
    }

    pub fn stats(&self, name: &Symbol) -> Option<&ObjectStats> {
        self.stats.get(name)
    }

    pub fn remove_stats(&mut self, name: &Symbol) -> Option<ObjectStats> {
        self.stats.remove(name)
    }

    /// Names of objects with recorded statistics (sorted for
    /// deterministic reporting).
    pub fn analyzed_objects(&self) -> Vec<Symbol> {
        let mut names: Vec<Symbol> = self.stats.keys().cloned().collect();
        names.sort();
        names
    }

    // ---- catalog relations ----

    pub fn relation(&self, name: &Symbol) -> Option<&CatalogRelation> {
        self.relations.get(name)
    }

    pub fn relation_mut(&mut self, name: &Symbol) -> Result<&mut CatalogRelation, CatalogError> {
        self.relations
            .get_mut(name)
            .ok_or_else(|| CatalogError::NotACatalog(name.clone()))
    }

    /// Insert a row into a catalog relation (the special `insert`
    /// operation defined for catalog types in Section 6).
    pub fn catalog_insert(&mut self, name: &Symbol, row: Vec<Const>) -> Result<(), CatalogError> {
        let rel = self.relation_mut(name)?;
        if rel.columns != row.len() {
            return Err(CatalogError::ArityMismatch {
                name: name.clone(),
                expected: rel.columns,
                got: row.len(),
            });
        }
        rel.insert(row);
        Ok(())
    }

    /// The optimizer's `rep(model_object, rep_object)` predicate: all
    /// representation objects linked to `model` in catalog `name`.
    pub fn linked(&self, name: &Symbol, model: &Symbol) -> Vec<Symbol> {
        let Some(rel) = self.relations.get(name) else {
            return Vec::new();
        };
        rel.rows
            .iter()
            .filter_map(|row| match row.as_slice() {
                [Const::Ident(m), Const::Ident(r)] if m == model => Some(r.clone()),
                _ => None,
            })
            .collect()
    }
}

impl ObjectEnv for Catalog {
    fn object_type(&self, name: &Symbol) -> Option<DataType> {
        self.objects.get(name).map(|e| e.ty.clone())
    }
}

/// The level of a type: its outermost constructor's level; function types
/// take the level of their result.
pub fn level_of(sig: &Signature, ty: &DataType) -> Level {
    match ty {
        DataType::Cons(name, _) => sig
            .constructor(name)
            .map(|d| d.level)
            .unwrap_or(Level::Hybrid),
        DataType::Fun(_, res) => level_of(sig, res),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sos_core::pattern::SortPattern;
    use sos_core::spec::TypeConstructorDef;
    use sos_core::sym;

    fn sig() -> Signature {
        let mut s = Signature::new();
        s.add_kind("DATA");
        s.add_kind("REL");
        s.add_kind("BTREE");
        s.add_constructor(TypeConstructorDef::atom("int", "DATA", Level::Hybrid));
        s.add_constructor(TypeConstructorDef {
            name: sym("rel"),
            quantifiers: vec![],
            args: vec![SortPattern::kind("TUPLE")],
            kind: sym("REL"),
            level: Level::Model,
        });
        s.add_constructor(TypeConstructorDef::atom(
            "btree0",
            "BTREE",
            Level::Representation,
        ));
        s
    }

    fn city() -> DataType {
        DataType::tuple(vec![(sym("pop"), DataType::atom("int"))])
    }

    #[test]
    fn named_types_expand_transitively() {
        let mut cat = Catalog::new();
        cat.define_type(sym("city"), city()).unwrap();
        cat.define_type(sym("city_rel"), DataType::rel(DataType::atom("city")))
            .unwrap();
        let t = cat.named_type(&sym("city_rel")).unwrap();
        assert_eq!(*t, DataType::rel(city()));
        assert_eq!(
            cat.expand_type(&DataType::atom("int")),
            DataType::atom("int")
        );
    }

    #[test]
    fn duplicate_definitions_rejected() {
        let mut cat = Catalog::new();
        cat.define_type(sym("t"), city()).unwrap();
        assert!(matches!(
            cat.define_type(sym("t"), city()),
            Err(CatalogError::DuplicateType(_))
        ));
        let s = sig();
        cat.create_object(&s, sym("o"), city()).unwrap();
        assert!(matches!(
            cat.create_object(&s, sym("o"), city()),
            Err(CatalogError::DuplicateObject(_))
        ));
    }

    #[test]
    fn levels_derived_from_constructors() {
        let s = sig();
        assert_eq!(level_of(&s, &DataType::rel(city())), Level::Model);
        assert_eq!(
            level_of(&s, &DataType::atom("btree0")),
            Level::Representation
        );
        assert_eq!(level_of(&s, &DataType::atom("int")), Level::Hybrid);
        let view = DataType::Fun(vec![], Box::new(DataType::rel(city())));
        assert_eq!(level_of(&s, &view), Level::Model);
    }

    #[test]
    fn catalog_relation_insert_lookup_delete() {
        let mut cat = Catalog::new();
        let s = sig();
        let cat_ty = DataType::Cons(
            sym("catalog"),
            vec![TypeArg::List(vec![
                TypeArg::Type(DataType::atom("ident")),
                TypeArg::Type(DataType::atom("ident")),
            ])],
        );
        cat.create_object(&s, sym("rep"), cat_ty).unwrap();
        cat.catalog_insert(
            &sym("rep"),
            vec![Const::Ident(sym("cities")), Const::Ident(sym("cities_rep"))],
        )
        .unwrap();
        cat.catalog_insert(
            &sym("rep"),
            vec![Const::Ident(sym("cities")), Const::Ident(sym("cities_rep"))],
        )
        .unwrap();
        assert_eq!(cat.relation(&sym("rep")).unwrap().rows.len(), 1);
        assert_eq!(
            cat.linked(&sym("rep"), &sym("cities")),
            vec![sym("cities_rep")]
        );
        assert!(cat.linked(&sym("rep"), &sym("states")).is_empty());
        assert!(matches!(
            cat.catalog_insert(&sym("rep"), vec![Const::Int(1)]),
            Err(CatalogError::ArityMismatch { .. })
        ));
        let n = cat
            .relation_mut(&sym("rep"))
            .unwrap()
            .delete(&[Some(Const::Ident(sym("cities"))), None]);
        assert_eq!(n, 1);
    }

    #[test]
    fn delete_object_removes_relation_too() {
        let mut cat = Catalog::new();
        let s = sig();
        let cat_ty = DataType::Cons(
            sym("catalog"),
            vec![TypeArg::List(vec![TypeArg::Type(DataType::atom("ident"))])],
        );
        cat.create_object(&s, sym("c"), cat_ty).unwrap();
        assert!(cat.relation(&sym("c")).is_some());
        cat.delete_object(&sym("c")).unwrap();
        assert!(cat.relation(&sym("c")).is_none());
        assert!(matches!(
            cat.delete_object(&sym("c")),
            Err(CatalogError::UnknownObject(_))
        ));
    }

    #[test]
    fn object_env_resolves_types() {
        let mut cat = Catalog::new();
        let s = sig();
        cat.create_object(&s, sym("cities"), DataType::rel(city()))
            .unwrap();
        assert_eq!(cat.object_type(&sym("cities")), Some(DataType::rel(city())));
        assert_eq!(cat.object_type(&sym("missing")), None);
    }

    #[test]
    fn partition_specs_recorded_and_removed_with_object() {
        let mut cat = Catalog::new();
        let s = sig();
        cat.create_object(&s, sym("cities"), DataType::rel(city()))
            .unwrap();
        cat.set_partition_spec(
            sym("cities"),
            PartSpec {
                attr: sym("pop"),
                method: PartMethod::Hash { parts: 4 },
            },
        );
        assert_eq!(
            cat.partition_spec(&sym("cities")).unwrap().method.parts(),
            4
        );
        assert_eq!(
            PartMethod::Range {
                bounds: vec![Const::Int(10), Const::Int(20)]
            }
            .parts(),
            3
        );
        cat.delete_object(&sym("cities")).unwrap();
        assert!(cat.partition_spec(&sym("cities")).is_none());
    }

    #[test]
    fn stats_recorded_and_removed_with_object() {
        let mut cat = Catalog::new();
        let s = sig();
        cat.create_object(&s, sym("cities"), DataType::rel(city()))
            .unwrap();
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        cat.set_stats(
            sym("cities"),
            ObjectStats {
                rows: 100,
                pages: 4,
                key_attr: Some(sym("pop")),
                key_histogram: Histogram::build(&values, HISTOGRAM_BUCKETS),
                partition_rows: vec![50, 50],
                ..ObjectStats::default()
            },
        );
        assert_eq!(cat.stats(&sym("cities")).unwrap().rows, 100);
        assert_eq!(cat.analyzed_objects(), vec![sym("cities")]);
        // Stats survive a serde round-trip (the snapshot path).
        let json = serde_json::to_string(&cat).unwrap();
        let back: Catalog = serde_json::from_str(&json).unwrap();
        assert_eq!(back.stats(&sym("cities")), cat.stats(&sym("cities")));
        // And deleting the object drops them.
        cat.delete_object(&sym("cities")).unwrap();
        assert!(cat.stats(&sym("cities")).is_none());
        assert!(cat.analyzed_objects().is_empty());
    }

    #[test]
    fn snapshots_without_stats_field_still_load() {
        let mut cat = Catalog::new();
        let s = sig();
        cat.create_object(&s, sym("cities"), DataType::rel(city()))
            .unwrap();
        let json = serde_json::to_string(&cat).unwrap();
        // Simulate a pre-stats snapshot by stripping the field.
        let stripped = json
            .replace(",\"stats\":{}", "")
            .replace("\"stats\":{},", "");
        assert_ne!(json, stripped, "expected to strip a stats field");
        let back: Catalog = serde_json::from_str(&stripped).unwrap();
        assert!(back.object(&sym("cities")).is_some());
        assert!(back.stats(&sym("cities")).is_none());
    }

    #[test]
    fn lookup_with_wildcards() {
        let mut rel = CatalogRelation {
            columns: 2,
            rows: vec![
                vec![Const::Ident(sym("a")), Const::Ident(sym("x"))],
                vec![Const::Ident(sym("a")), Const::Ident(sym("y"))],
                vec![Const::Ident(sym("b")), Const::Ident(sym("z"))],
            ],
        };
        assert_eq!(rel.lookup(&[Some(Const::Ident(sym("a"))), None]).len(), 2);
        assert_eq!(rel.lookup(&[None, None]).len(), 3);
        assert_eq!(rel.delete(&[None, Some(Const::Ident(sym("z")))]), 1);
        assert_eq!(rel.rows.len(), 2);
    }
}
