//! Property-based tests for the geometric substrate — in particular the
//! bbox-superset property the Section 5 optimization rule relies on:
//! a point inside a polygon is always inside the polygon's bounding box.

use proptest::prelude::*;
use sos_geom::{Point, Polygon, Rect};

fn arb_point(range: f64) -> impl Strategy<Value = Point> {
    (-range..range, -range..range).prop_map(|(x, y)| Point::new(x, y))
}

/// A random simple polygon: a star-shaped polygon around a center,
/// sorted by angle (always non-self-intersecting).
fn arb_polygon() -> impl Strategy<Value = Polygon> {
    (
        arb_point(50.0),
        prop::collection::vec((0.0f64..std::f64::consts::TAU, 1.0f64..30.0), 3..12),
    )
        .prop_map(|(c, polar)| {
            let mut polar = polar;
            polar.sort_by(|a, b| a.0.total_cmp(&b.0));
            polar.dedup_by(|a, b| (a.0 - b.0).abs() < 1e-9);
            while polar.len() < 3 {
                let last = polar.last().copied().unwrap_or((0.0, 1.0));
                polar.push((last.0 + 0.5, last.1 + 1.0));
            }
            Polygon::new(
                polar
                    .into_iter()
                    .map(|(a, r)| Point::new(c.x + r * a.cos(), c.y + r * a.sin()))
                    .collect(),
            )
        })
}

proptest! {
    /// The bbox-superset property (soundness of the LSD-tree plan):
    /// contains_point(poly, p) implies contains_point(bbox(poly), p).
    #[test]
    fn bbox_is_a_superset_filter(poly in arb_polygon(), p in arb_point(100.0)) {
        if poly.contains_point(&p) {
            prop_assert!(poly.bbox().contains_point(&p));
        }
    }

    /// Every vertex of a polygon is inside the polygon (boundary counts)
    /// and inside its bbox.
    #[test]
    fn vertices_are_inside(poly in arb_polygon()) {
        for v in poly.vertices() {
            prop_assert!(poly.contains_point(v), "vertex {v} not inside");
            prop_assert!(poly.bbox().contains_point(v));
        }
    }

    /// The polygon's area never exceeds its bounding box's area.
    #[test]
    fn area_bounded_by_bbox(poly in arb_polygon()) {
        prop_assert!(poly.area() <= poly.bbox().area() + 1e-9);
    }

    /// Rect intersection is symmetric and consistent with union: two
    /// rects intersect iff the sum of extents covers the union's extent.
    #[test]
    fn rect_intersection_symmetry(
        a in (any::<i16>(), any::<i16>(), 1u8..100, 1u8..100),
        b in (any::<i16>(), any::<i16>(), 1u8..100, 1u8..100),
    ) {
        let ra = Rect::new(a.0 as f64, a.1 as f64, a.0 as f64 + a.2 as f64, a.1 as f64 + a.3 as f64);
        let rb = Rect::new(b.0 as f64, b.1 as f64, b.0 as f64 + b.2 as f64, b.1 as f64 + b.3 as f64);
        prop_assert_eq!(ra.intersects(&rb), rb.intersects(&ra));
        let u = ra.union(&rb);
        let covers = ra.width() + rb.width() >= u.width() && ra.height() + rb.height() >= u.height();
        prop_assert_eq!(ra.intersects(&rb), covers);
    }

    /// Containment is antisymmetric up to equality and transitively
    /// consistent with union.
    #[test]
    fn rect_containment_laws(
        a in (any::<i16>(), any::<i16>(), 1u8..100, 1u8..100),
        b in (any::<i16>(), any::<i16>(), 1u8..100, 1u8..100),
    ) {
        let ra = Rect::new(a.0 as f64, a.1 as f64, a.0 as f64 + a.2 as f64, a.1 as f64 + a.3 as f64);
        let rb = Rect::new(b.0 as f64, b.1 as f64, b.0 as f64 + b.2 as f64, b.1 as f64 + b.3 as f64);
        let u = ra.union(&rb);
        prop_assert!(u.contains_rect(&ra) && u.contains_rect(&rb));
        if ra.contains_rect(&rb) && rb.contains_rect(&ra) {
            prop_assert_eq!(ra, rb);
        }
        if ra.contains_rect(&rb) {
            prop_assert!(ra.intersects(&rb));
        }
    }

    /// Point distance is a metric (symmetry, identity, triangle
    /// inequality) within floating-point tolerance.
    #[test]
    fn distance_is_a_metric(p in arb_point(100.0), q in arb_point(100.0), r in arb_point(100.0)) {
        prop_assert!((p.distance(&q) - q.distance(&p)).abs() < 1e-9);
        prop_assert!(p.distance(&p) == 0.0);
        prop_assert!(p.distance(&r) <= p.distance(&q) + q.distance(&r) + 1e-9);
    }
}
