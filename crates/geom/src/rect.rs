use crate::Point;
use serde::{Deserialize, Serialize};

/// An axis-aligned rectangle, closed on all sides.
///
/// Rectangles are the native entries of the LSD-tree (Section 4): polygons
/// are indexed by their bounding boxes, and the two search operators of the
/// paper are point containment (`point_search`) and rectangle overlap
/// (`overlap_search`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    pub min_x: f64,
    pub min_y: f64,
    pub max_x: f64,
    pub max_y: f64,
}

impl Rect {
    /// Construct from two corner coordinates; the corners may be given in
    /// any order.
    pub fn new(x1: f64, y1: f64, x2: f64, y2: f64) -> Self {
        Rect {
            min_x: x1.min(x2),
            min_y: y1.min(y2),
            max_x: x1.max(x2),
            max_y: y1.max(y2),
        }
    }

    /// The degenerate rectangle covering exactly one point.
    pub fn from_point(p: Point) -> Self {
        Rect::new(p.x, p.y, p.x, p.y)
    }

    /// The smallest rectangle covering both operands.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min_x: self.min_x.min(other.min_x),
            min_y: self.min_y.min(other.min_y),
            max_x: self.max_x.max(other.max_x),
            max_y: self.max_y.max(other.max_y),
        }
    }

    /// Closed containment of a point.
    pub fn contains_point(&self, p: &Point) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }

    /// Closed containment of another rectangle.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.min_x >= self.min_x
            && other.max_x <= self.max_x
            && other.min_y >= self.min_y
            && other.max_y <= self.max_y
    }

    /// Closed intersection test (touching rectangles intersect).
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }

    pub fn width(&self) -> f64 {
        self.max_x - self.min_x
    }

    pub fn height(&self) -> f64 {
        self.max_y - self.min_y
    }

    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    pub fn center(&self) -> Point {
        Point::new(
            (self.min_x + self.max_x) / 2.0,
            (self.min_y + self.max_y) / 2.0,
        )
    }
}

impl std::fmt::Display for Rect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}, {}] x [{}, {}]",
            self.min_x, self.max_x, self.min_y, self.max_y
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalizes_corners() {
        let r = Rect::new(5.0, 7.0, 1.0, 2.0);
        assert_eq!(r.min_x, 1.0);
        assert_eq!(r.max_y, 7.0);
    }

    #[test]
    fn containment_is_closed() {
        let r = Rect::new(0.0, 0.0, 10.0, 10.0);
        assert!(r.contains_point(&Point::new(0.0, 0.0)));
        assert!(r.contains_point(&Point::new(10.0, 10.0)));
        assert!(!r.contains_point(&Point::new(10.0001, 5.0)));
    }

    #[test]
    fn touching_rects_intersect() {
        let a = Rect::new(0.0, 0.0, 1.0, 1.0);
        let b = Rect::new(1.0, 1.0, 2.0, 2.0);
        let c = Rect::new(1.1, 1.1, 2.0, 2.0);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn union_covers_both() {
        let a = Rect::new(0.0, 0.0, 1.0, 1.0);
        let b = Rect::new(3.0, -2.0, 4.0, 0.5);
        let u = a.union(&b);
        assert!(u.contains_rect(&a));
        assert!(u.contains_rect(&b));
        assert_eq!(u, Rect::new(0.0, -2.0, 4.0, 1.0));
    }

    #[test]
    fn area_and_center() {
        let r = Rect::new(0.0, 0.0, 4.0, 2.0);
        assert_eq!(r.area(), 8.0);
        assert_eq!(r.center(), Point::new(2.0, 1.0));
    }
}
