use serde::{Deserialize, Serialize};

/// A point in the plane.
///
/// Used in the paper as the `center` attribute of a city tuple and as the
/// query argument of the LSD-tree `point_search` operator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Lexicographic (x, then y) comparison with a total order over the
    /// non-NaN doubles. The storage layer relies on this to key points.
    pub fn total_cmp(&self, other: &Point) -> std::cmp::Ordering {
        self.x
            .total_cmp(&other.x)
            .then_with(|| self.y.total_cmp(&other.y))
    }
}

impl std::fmt::Display for Point {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(b.distance(&a), 5.0);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn total_cmp_orders_lexicographically() {
        let a = Point::new(1.0, 9.0);
        let b = Point::new(2.0, 0.0);
        let c = Point::new(1.0, 10.0);
        assert_eq!(a.total_cmp(&b), std::cmp::Ordering::Less);
        assert_eq!(a.total_cmp(&c), std::cmp::Ordering::Less);
        assert_eq!(a.total_cmp(&a), std::cmp::Ordering::Equal);
    }
}
