//! Synthetic spatial workload generators.
//!
//! The paper's running example joins a `cities` relation (points) with a
//! `states` relation (polygons) by the `inside` predicate. We do not have
//! the geographic data, so the benchmark harness generates an equivalent
//! synthetic world: a grid of non-overlapping polygonal "states" covering
//! the unit square scaled to `world`, and cities drawn uniformly (every
//! city therefore lies in exactly one state, the property the paper's
//! `search_join` example relies on).

use crate::{Point, Polygon, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The world rectangle used by all generators.
pub const WORLD: Rect = Rect {
    min_x: 0.0,
    min_y: 0.0,
    max_x: 1000.0,
    max_y: 1000.0,
};

/// Deterministic RNG so experiments are reproducible run to run.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Generate `n` uniformly distributed city points inside `WORLD`.
pub fn uniform_points(n: usize, seed: u64) -> Vec<Point> {
    let mut r = rng(seed);
    (0..n)
        .map(|_| {
            Point::new(
                r.gen_range(WORLD.min_x..WORLD.max_x),
                r.gen_range(WORLD.min_y..WORLD.max_y),
            )
        })
        .collect()
}

/// Generate a `k x k` grid of "state" polygons tiling `WORLD`.
///
/// Each cell is perturbed into a convex octagon-ish shape strictly inside
/// its cell so bounding boxes of neighbouring states do not overlap, which
/// keeps the LSD-tree filter step selective (the interesting regime for
/// experiment E5/B2). Returns `(name, polygon)` pairs.
pub fn state_grid(k: usize, seed: u64) -> Vec<(String, Polygon)> {
    assert!(k >= 1);
    let mut r = rng(seed);
    let cw = WORLD.width() / k as f64;
    let ch = WORLD.height() / k as f64;
    let mut out = Vec::with_capacity(k * k);
    for gy in 0..k {
        for gx in 0..k {
            let x0 = WORLD.min_x + gx as f64 * cw;
            let y0 = WORLD.min_y + gy as f64 * ch;
            // Inset each cell slightly and jitter the corners so states are
            // genuine polygons, not axis-aligned boxes.
            let inset_x = cw * 0.02;
            let inset_y = ch * 0.02;
            let jx = |r: &mut StdRng| r.gen_range(0.0..cw * 0.05);
            let jy = |r: &mut StdRng| r.gen_range(0.0..ch * 0.05);
            let poly = Polygon::new(vec![
                Point::new(x0 + inset_x + jx(&mut r), y0 + inset_y + jy(&mut r)),
                Point::new(x0 + cw / 2.0, y0 + inset_y),
                Point::new(x0 + cw - inset_x - jx(&mut r), y0 + inset_y + jy(&mut r)),
                Point::new(x0 + cw - inset_x, y0 + ch / 2.0),
                Point::new(
                    x0 + cw - inset_x - jx(&mut r),
                    y0 + ch - inset_y - jy(&mut r),
                ),
                Point::new(x0 + cw / 2.0, y0 + ch - inset_y),
                Point::new(x0 + inset_x + jx(&mut r), y0 + ch - inset_y - jy(&mut r)),
                Point::new(x0 + inset_x, y0 + ch / 2.0),
            ]);
            out.push((format!("state_{gx}_{gy}"), poly));
        }
    }
    out
}

/// Generate `n` random query rectangles whose area is `frac` of the world.
pub fn query_rects(n: usize, frac: f64, seed: u64) -> Vec<Rect> {
    let mut r = rng(seed);
    let w = WORLD.width() * frac.sqrt();
    let h = WORLD.height() * frac.sqrt();
    (0..n)
        .map(|_| {
            let x = r.gen_range(WORLD.min_x..(WORLD.max_x - w).max(WORLD.min_x + 1.0));
            let y = r.gen_range(WORLD.min_y..(WORLD.max_y - h).max(WORLD.min_y + 1.0));
            Rect::new(x, y, x + w, y + h)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_are_inside_world_and_deterministic() {
        let a = uniform_points(100, 7);
        let b = uniform_points(100, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|p| WORLD.contains_point(p)));
    }

    #[test]
    fn state_grid_tiles_without_bbox_overlap() {
        let states = state_grid(4, 42);
        assert_eq!(states.len(), 16);
        for (i, (_, a)) in states.iter().enumerate() {
            for (_, b) in states.iter().skip(i + 1) {
                assert!(
                    !a.bbox().intersects(&b.bbox()),
                    "state bboxes must not overlap"
                );
            }
        }
    }

    #[test]
    fn every_uniform_point_is_in_at_most_one_state() {
        let states = state_grid(5, 1);
        let pts = uniform_points(200, 2);
        for p in &pts {
            let n = states.iter().filter(|(_, s)| s.contains_point(p)).count();
            assert!(n <= 1, "point {p} in {n} states");
        }
    }

    #[test]
    fn query_rects_have_requested_area_fraction() {
        let rects = query_rects(10, 0.01, 3);
        for r in rects {
            let frac = r.area() / WORLD.area();
            assert!((frac - 0.01).abs() < 1e-9);
        }
    }
}
