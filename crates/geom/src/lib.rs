//! Geometric data types for the SOS framework.
//!
//! The paper's representation-level examples (Section 4) use three geometric
//! atomic types — `point`, `rect`, and `pgon` — together with the operations
//! `bbox` (bounding box of a polygon), `inside` (point in polygon), and the
//! rectangle predicates needed by the LSD-tree (`contains_point`,
//! `intersects`). This crate provides those types plus synthetic data
//! generators used by the benchmark harness in place of the paper's
//! geographic data (see DESIGN.md, substitution table).
//!
//! Coordinates are `f64`. All types are plain `Copy`/owned data with total
//! ordering helpers where the storage layer needs them.

mod point;
mod polygon;
mod rect;

pub mod gen;

pub use point::Point;
pub use polygon::Polygon;
pub use rect::Rect;

/// Numeric tolerance used by point-on-segment tests.
pub(crate) const EPSILON: f64 = 1e-12;
