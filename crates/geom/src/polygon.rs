use crate::{Point, Rect, EPSILON};
use serde::{Deserialize, Serialize};

/// A simple polygon given by its vertices in order (closed implicitly:
/// the last vertex connects back to the first).
///
/// This is the `pgon` atomic type of Section 4, used as the `region`
/// attribute of the states relation. The two operations the paper needs are
/// `bbox` (the key expression of the LSD-tree) and `inside` (the geometric
/// join predicate of Sections 4 and 5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polygon {
    vertices: Vec<Point>,
}

impl Polygon {
    /// Build a polygon from at least three vertices.
    ///
    /// # Panics
    /// Panics if fewer than three vertices are supplied; a polygon with
    /// fewer vertices has no interior and cannot appear as a `pgon` value.
    pub fn new(vertices: Vec<Point>) -> Self {
        assert!(
            vertices.len() >= 3,
            "a polygon needs at least 3 vertices, got {}",
            vertices.len()
        );
        Polygon { vertices }
    }

    /// An axis-aligned rectangle as a polygon (counterclockwise).
    pub fn from_rect(r: &Rect) -> Self {
        Polygon::new(vec![
            Point::new(r.min_x, r.min_y),
            Point::new(r.max_x, r.min_y),
            Point::new(r.max_x, r.max_y),
            Point::new(r.min_x, r.max_y),
        ])
    }

    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// The paper's `bbox` operator: the minimal axis-aligned bounding
    /// rectangle of the polygon.
    pub fn bbox(&self) -> Rect {
        let mut r = Rect::from_point(self.vertices[0]);
        for v in &self.vertices[1..] {
            r = r.union(&Rect::from_point(*v));
        }
        r
    }

    /// The paper's `inside` predicate: is `p` inside (or on the boundary
    /// of) this polygon? Ray-casting with an explicit boundary test so the
    /// predicate is closed, matching the closed semantics of `Rect`.
    pub fn contains_point(&self, p: &Point) -> bool {
        let n = self.vertices.len();
        // Boundary counts as inside.
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            if point_on_segment(p, &a, &b) {
                return true;
            }
        }
        // Ray casting: count crossings of a ray going in +x direction.
        let mut inside = false;
        let mut j = n - 1;
        for i in 0..n {
            let vi = self.vertices[i];
            let vj = self.vertices[j];
            if (vi.y > p.y) != (vj.y > p.y) {
                let x_cross = vj.x + (p.y - vj.y) / (vi.y - vj.y) * (vi.x - vj.x);
                if p.x < x_cross {
                    inside = !inside;
                }
            }
            j = i;
        }
        inside
    }

    /// Signed area (positive for counterclockwise vertex order).
    pub fn signed_area(&self) -> f64 {
        let n = self.vertices.len();
        let mut acc = 0.0;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            acc += a.x * b.y - b.x * a.y;
        }
        acc / 2.0
    }

    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }
}

/// Is `p` on the closed segment from `a` to `b`?
fn point_on_segment(p: &Point, a: &Point, b: &Point) -> bool {
    let cross = (b.x - a.x) * (p.y - a.y) - (b.y - a.y) * (p.x - a.x);
    if cross.abs() > EPSILON * (1.0 + (b.x - a.x).abs() + (b.y - a.y).abs()) {
        return false;
    }
    let dot = (p.x - a.x) * (b.x - a.x) + (p.y - a.y) * (b.y - a.y);
    let len2 = (b.x - a.x).powi(2) + (b.y - a.y).powi(2);
    dot >= -EPSILON && dot <= len2 + EPSILON
}

impl std::fmt::Display for Polygon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pgon(n={}, bbox={})", self.vertices.len(), self.bbox())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> Polygon {
        Polygon::from_rect(&Rect::new(0.0, 0.0, 10.0, 10.0))
    }

    #[test]
    fn bbox_of_triangle() {
        let t = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 1.0),
            Point::new(2.0, 5.0),
        ]);
        assert_eq!(t.bbox(), Rect::new(0.0, 0.0, 4.0, 5.0));
    }

    #[test]
    fn contains_interior_point() {
        assert!(square().contains_point(&Point::new(5.0, 5.0)));
    }

    #[test]
    fn excludes_exterior_point() {
        assert!(!square().contains_point(&Point::new(15.0, 5.0)));
        assert!(!square().contains_point(&Point::new(5.0, -0.01)));
    }

    #[test]
    fn boundary_counts_as_inside() {
        assert!(square().contains_point(&Point::new(0.0, 5.0)));
        assert!(square().contains_point(&Point::new(10.0, 10.0)));
    }

    #[test]
    fn concave_polygon_containment() {
        // An L-shape: the notch at the top-right is outside.
        let l = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 4.0),
            Point::new(4.0, 4.0),
            Point::new(4.0, 10.0),
            Point::new(0.0, 10.0),
        ]);
        assert!(l.contains_point(&Point::new(2.0, 8.0)));
        assert!(l.contains_point(&Point::new(8.0, 2.0)));
        assert!(!l.contains_point(&Point::new(8.0, 8.0)));
    }

    #[test]
    fn area_of_square_and_orientation() {
        assert_eq!(square().area(), 100.0);
        assert!(square().signed_area() > 0.0); // from_rect is ccw
    }

    #[test]
    #[should_panic(expected = "at least 3 vertices")]
    fn rejects_degenerate_polygon() {
        Polygon::new(vec![Point::ORIGIN, Point::new(1.0, 1.0)]);
    }
}
