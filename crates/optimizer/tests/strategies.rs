//! Rule-engine control strategies ([BeG92]): once vs exhaustive,
//! top-down vs bottom-up; budget enforcement; re-check safety (a broken
//! rule cannot smuggle an ill-typed plan through).

use sos_catalog::Catalog;
use sos_core::check::Checker;
use sos_core::pattern::SortPattern;
use sos_core::spec::{
    Level, OpName, OperatorSpec, Quantifier, ResultSpec, SyntaxPattern, TypeConstructorDef,
};
use sos_core::{sym, DataType, Expr, Signature, Symbol};
use sos_optimizer::{Optimizer, Rule, RuleStep, Strategy, TermPattern};
use std::collections::HashMap;

/// A toy signature with unary operators f, g, h over int.
fn sig() -> Signature {
    let mut s = Signature::new();
    s.add_kind("DATA");
    s.add_constructor(TypeConstructorDef::atom("int", "DATA", Level::Hybrid));
    for op in ["f", "g", "h"] {
        s.add_spec(OperatorSpec {
            name: OpName::Fixed(sym(op)),
            quantifiers: vec![Quantifier::kind("d", "DATA")],
            args: vec![SortPattern::var("d")],
            result: ResultSpec::Pattern(SortPattern::var("d")),
            syntax: SyntaxPattern::prefix(),
            is_update: false,
            level: Level::Hybrid,
        });
    }
    s
}

fn f_of_g_of_one() -> Expr {
    Expr::apply("f", vec![Expr::apply("g", vec![Expr::int(1)])])
}

/// f(x) => g(x): rewrites every f.
fn f_to_g() -> Rule {
    Rule {
        name: "f-to-g".into(),
        lhs: TermPattern::apply("f", vec![TermPattern::var("x")]),
        conditions: vec![],
        rhs: Expr::apply("g", vec![Expr::name("x")]),
        alternatives: Vec::new(),
    }
}

/// g(x) => h(x).
fn g_to_h() -> Rule {
    Rule {
        name: "g-to-h".into(),
        lhs: TermPattern::apply("g", vec![TermPattern::var("x")]),
        conditions: vec![],
        rhs: Expr::apply("h", vec![Expr::name("x")]),
        alternatives: Vec::new(),
    }
}

fn run(strategy: Strategy, rules: Vec<Rule>, term: &Expr) -> (String, usize) {
    let sig = sig();
    let env: HashMap<Symbol, DataType> = HashMap::new();
    let checker = Checker::new(&sig, &env);
    let catalog = Catalog::new();
    let checked = checker.check_expr(term).unwrap();
    let optimizer = Optimizer::new(vec![RuleStep {
        name: "test".into(),
        rules,
        strategy,
        budget: 50,
    }]);
    let (out, stats) = optimizer.optimize(&checked, &checker, &catalog).unwrap();
    (out.to_string(), stats.rewrites)
}

#[test]
fn once_applies_a_single_rewrite() {
    let (out, n) = run(Strategy::OnceTopDown, vec![f_to_g()], &f_of_g_of_one());
    assert_eq!(out, "g(g(1))");
    assert_eq!(n, 1);
}

#[test]
fn exhaustive_reaches_the_fixpoint() {
    let (out, n) = run(
        Strategy::ExhaustiveTopDown,
        vec![f_to_g(), g_to_h()],
        &f_of_g_of_one(),
    );
    assert_eq!(out, "h(h(1))");
    assert!(n >= 3); // f->g, then two g->h
}

#[test]
fn bottom_up_rewrites_leaves_first() {
    // With once-per-pass semantics the first bottom-up redex is the
    // inner g, not the outer f.
    let sig = sig();
    let env: HashMap<Symbol, DataType> = HashMap::new();
    let checker = Checker::new(&sig, &env);
    let catalog = Catalog::new();
    let checked = checker.check_expr(&f_of_g_of_one()).unwrap();
    // One bottom-up pass with a rule set where both f and g match: count
    // which one fired first by rewriting g to h only.
    let optimizer = Optimizer::new(vec![RuleStep {
        name: "bu".into(),
        rules: vec![g_to_h(), f_to_g()],
        strategy: Strategy::ExhaustiveBottomUp,
        budget: 50,
    }]);
    let (out, _) = optimizer.optimize(&checked, &checker, &catalog).unwrap();
    // Fixpoint is the same; the strategy test is that it terminates and
    // agrees with top-down.
    assert_eq!(out.to_string(), "h(h(1))");
}

#[test]
fn diverging_rule_sets_hit_the_budget() {
    // f(x) => f(f(x)) grows forever: the step must stop with NoFixpoint.
    let diverge = Rule {
        name: "diverge".into(),
        lhs: TermPattern::apply("f", vec![TermPattern::var("x")]),
        conditions: vec![],
        rhs: Expr::apply("f", vec![Expr::apply("f", vec![Expr::name("x")])]),
        alternatives: Vec::new(),
    };
    let sig = sig();
    let env: HashMap<Symbol, DataType> = HashMap::new();
    let checker = Checker::new(&sig, &env);
    let catalog = Catalog::new();
    let checked = checker.check_expr(&f_of_g_of_one()).unwrap();
    let optimizer = Optimizer::new(vec![RuleStep {
        name: "diverging".into(),
        rules: vec![diverge],
        strategy: Strategy::ExhaustiveTopDown,
        budget: 10,
    }]);
    let err = optimizer
        .optimize(&checked, &checker, &catalog)
        .unwrap_err();
    assert!(err.to_string().contains("fixpoint"));
}

#[test]
fn broken_rules_are_caught_by_recheck() {
    // f(x) => bogus_operator(x): the rewritten term cannot type-check,
    // and the optimizer reports the offending rule.
    let broken = Rule {
        name: "broken".into(),
        lhs: TermPattern::apply("f", vec![TermPattern::var("x")]),
        conditions: vec![],
        rhs: Expr::apply("bogus_operator", vec![Expr::name("x")]),
        alternatives: Vec::new(),
    };
    let sig = sig();
    let env: HashMap<Symbol, DataType> = HashMap::new();
    let checker = Checker::new(&sig, &env);
    let catalog = Catalog::new();
    let checked = checker.check_expr(&f_of_g_of_one()).unwrap();
    let optimizer = Optimizer::new(vec![RuleStep::exhaustive("broken", vec![broken])]);
    let err = optimizer
        .optimize(&checked, &checker, &catalog)
        .unwrap_err();
    let shown = err.to_string();
    assert!(shown.contains("broken"), "{shown}");
    assert!(shown.contains("ill-typed"), "{shown}");
}

#[test]
fn steps_apply_in_order() {
    // Step 1 rewrites f->g; step 2 rewrites g->h. Both must run.
    let sig = sig();
    let env: HashMap<Symbol, DataType> = HashMap::new();
    let checker = Checker::new(&sig, &env);
    let catalog = Catalog::new();
    let checked = checker.check_expr(&f_of_g_of_one()).unwrap();
    let optimizer = Optimizer::new(vec![
        RuleStep::exhaustive("first", vec![f_to_g()]),
        RuleStep::exhaustive("second", vec![g_to_h()]),
    ]);
    let (out, _) = optimizer.optimize(&checked, &checker, &catalog).unwrap();
    assert_eq!(out.to_string(), "h(h(1))");
}
