//! Term patterns for optimization rules and matching against typed terms.
//!
//! The paper's Section 5 rule declares variables of several sorts:
//! relation variables (`rel1: rel(tuple1) in REL`), *function variables*
//! (`point: (tuple1 -> point)`) that stand for arbitrary parameter
//! expressions, and the catalog-bound representation objects (`rep1`,
//! `lsd2`). A [`TermPattern`] covers all of these.

use sos_core::typed::{TypedExpr, TypedNode};
use sos_core::{Const, DataType, Symbol, TypeArg};
use std::collections::HashMap;

/// An operator position in a pattern: a fixed name or a variable (for
/// attribute operators, whose names are data).
#[derive(Debug, Clone, PartialEq)]
pub enum OpPat {
    Exact(Symbol),
    Var(Symbol),
}

/// A pattern over typed terms.
#[derive(Debug, Clone, PartialEq)]
pub enum TermPattern {
    /// Bind any subterm to a variable.
    Var(Symbol),
    /// An operator application.
    Apply { op: OpPat, args: Vec<TermPattern> },
    /// A lambda; the pattern's parameter names are pattern-scoped
    /// variables matched positionally against the actual parameters.
    Lambda {
        params: Vec<Symbol>,
        body: Box<TermPattern>,
    },
    /// A function variable applied to lambda parameters — the paper's
    /// `(t1 point)`: matches *any* subterm whose free variables are among
    /// the listed parameters, binding `fvar` to its lambda abstraction.
    FunApp { fvar: Symbol, args: Vec<Symbol> },
    /// Like [`TermPattern::FunApp`], but additionally requires the
    /// subterm to match an inner structural pattern — bind the lambda
    /// abstraction of a *specific* shape of subterm.
    AsFun {
        fvar: Symbol,
        args: Vec<Symbol>,
        inner: Box<TermPattern>,
    },
    /// A specific lambda-parameter occurrence (the pattern parameter must
    /// have been bound by an enclosing [`TermPattern::Lambda`]).
    Param(Symbol),
    /// Bind the whole subterm to a variable *and* match a pattern
    /// against it.
    As(Symbol, Box<TermPattern>),
    /// An exact constant.
    Const(Const),
    /// Any constant, bound to a variable.
    ConstVar(Symbol),
    /// A named object, bound to a variable.
    ObjectVar(Symbol),
}

impl TermPattern {
    pub fn var(name: &str) -> TermPattern {
        TermPattern::Var(Symbol::new(name))
    }

    pub fn apply(op: &str, args: Vec<TermPattern>) -> TermPattern {
        TermPattern::Apply {
            op: OpPat::Exact(Symbol::new(op)),
            args,
        }
    }

    pub fn apply_var(op: &str, args: Vec<TermPattern>) -> TermPattern {
        TermPattern::Apply {
            op: OpPat::Var(Symbol::new(op)),
            args,
        }
    }

    pub fn lambda(params: &[&str], body: TermPattern) -> TermPattern {
        TermPattern::Lambda {
            params: params.iter().map(|p| Symbol::new(p)).collect(),
            body: Box::new(body),
        }
    }

    pub fn param(name: &str) -> TermPattern {
        TermPattern::Param(Symbol::new(name))
    }

    pub fn bind_as(name: &str, inner: TermPattern) -> TermPattern {
        TermPattern::As(Symbol::new(name), Box::new(inner))
    }

    pub fn fun_app(fvar: &str, args: &[&str]) -> TermPattern {
        TermPattern::FunApp {
            fvar: Symbol::new(fvar),
            args: args.iter().map(|a| Symbol::new(a)).collect(),
        }
    }

    pub fn as_fun(fvar: &str, args: &[&str], inner: TermPattern) -> TermPattern {
        TermPattern::AsFun {
            fvar: Symbol::new(fvar),
            args: args.iter().map(|a| Symbol::new(a)).collect(),
            inner: Box::new(inner),
        }
    }
}

/// Bindings accumulated by matching a rule.
#[derive(Debug, Clone, Default)]
pub struct RuleBindings {
    /// Term variables (including the lambda abstractions bound by
    /// [`TermPattern::FunApp`]).
    pub terms: HashMap<Symbol, TypedExpr>,
    /// Operator-name variables.
    pub ops: HashMap<Symbol, Symbol>,
    /// Pattern lambda parameters: pattern name -> (actual name, type).
    pub params: HashMap<Symbol, (Symbol, DataType)>,
    /// Type variables bound by `TypeIs` conditions.
    pub types: HashMap<Symbol, TypeArg>,
}

/// Match a pattern against a typed term, extending `b` on success.
pub fn match_term(pat: &TermPattern, node: &TypedExpr, b: &mut RuleBindings) -> bool {
    match pat {
        TermPattern::Var(v) => bind_term(b, v, node),
        TermPattern::Param(p) => {
            let Some((actual, _)) = b.params.get(p) else {
                return false;
            };
            matches!(&node.node, TypedNode::Var(v) if v == actual)
        }
        TermPattern::As(v, inner) => bind_term(b, v, node) && match_term(inner, node, b),
        TermPattern::Const(c) => matches!(&node.node, TypedNode::Const(c2) if c2 == c),
        TermPattern::ConstVar(v) => match &node.node {
            TypedNode::Const(_) => bind_term(b, v, node),
            _ => false,
        },
        TermPattern::ObjectVar(v) => match &node.node {
            TypedNode::Object(_) => bind_term(b, v, node),
            _ => false,
        },
        TermPattern::Apply { op, args } => {
            let TypedNode::Apply {
                op: actual_op,
                args: actual_args,
                ..
            } = &node.node
            else {
                return false;
            };
            if actual_args.len() != args.len() {
                return false;
            }
            match op {
                OpPat::Exact(n) => {
                    if n != actual_op {
                        return false;
                    }
                }
                OpPat::Var(v) => {
                    if let Some(prev) = b.ops.get(v) {
                        if prev != actual_op {
                            return false;
                        }
                    } else {
                        b.ops.insert(v.clone(), actual_op.clone());
                    }
                }
            }
            args.iter()
                .zip(actual_args)
                .all(|(p, a)| match_term(p, a, b))
        }
        TermPattern::Lambda { params, body } => {
            let TypedNode::Lambda {
                params: actual_params,
                body: actual_body,
            } = &node.node
            else {
                return false;
            };
            if actual_params.len() != params.len() {
                return false;
            }
            for (p, (an, at)) in params.iter().zip(actual_params) {
                b.params.insert(p.clone(), (an.clone(), at.clone()));
            }
            match_term(body, actual_body, b)
        }
        TermPattern::AsFun { fvar, args, inner } => {
            let fa = TermPattern::FunApp {
                fvar: fvar.clone(),
                args: args.clone(),
            };
            match_term(&fa, node, b) && match_term(inner, node, b)
        }
        TermPattern::FunApp { fvar, args } => {
            // The subterm's free variables must all be actual parameters
            // corresponding to the listed pattern parameters.
            let mut allowed = Vec::new();
            let mut lam_params = Vec::new();
            for a in args {
                let Some((actual, ty)) = b.params.get(a) else {
                    return false;
                };
                allowed.push(actual.clone());
                lam_params.push((actual.clone(), ty.clone()));
            }
            let mut free = Vec::new();
            free_vars(node, &mut Vec::new(), &mut free);
            if !free.iter().all(|f| allowed.contains(f)) {
                return false;
            }
            let abstraction = TypedExpr::new(
                TypedNode::Lambda {
                    params: lam_params.clone(),
                    body: Box::new(node.clone()),
                },
                DataType::Fun(
                    lam_params.iter().map(|(_, t)| t.clone()).collect(),
                    Box::new(node.ty.clone()),
                ),
            );
            bind_term(b, fvar, &abstraction)
        }
    }
}

fn bind_term(b: &mut RuleBindings, v: &Symbol, node: &TypedExpr) -> bool {
    if let Some(prev) = b.terms.get(v) {
        return prev == node;
    }
    b.terms.insert(v.clone(), node.clone());
    true
}

/// Collect the free lambda variables of a term.
pub fn free_vars(node: &TypedExpr, bound: &mut Vec<Symbol>, out: &mut Vec<Symbol>) {
    match &node.node {
        TypedNode::Var(v) => {
            if !bound.contains(v) && !out.contains(v) {
                out.push(v.clone());
            }
        }
        TypedNode::Lambda { params, body } => {
            let base = bound.len();
            bound.extend(params.iter().map(|(n, _)| n.clone()));
            free_vars(body, bound, out);
            bound.truncate(base);
        }
        TypedNode::Apply { args, .. } | TypedNode::List(args) | TypedNode::Tuple(args) => {
            for a in args {
                free_vars(a, bound, out);
            }
        }
        TypedNode::ApplyFun { fun, args } => {
            free_vars(fun, bound, out);
            for a in args {
                free_vars(a, bound, out);
            }
        }
        TypedNode::Const(_) | TypedNode::Object(_) => {}
    }
}
