//! The rewrite engine: rules, steps with control strategies, and the
//! optimizer driver.

use crate::condition::Condition;
use crate::cost::CostModel;
use crate::pattern::{match_term, RuleBindings, TermPattern};
use crate::validate::{types_equivalent, Validation};
use crate::OptError;
use sos_catalog::Catalog;
use sos_core::check::Checker;
use sos_core::typed::{TypedExpr, TypedNode};
use sos_core::{Const, DataType, Expr, Symbol, TypeArg};
use std::time::Instant;

/// One optimization rule: pattern, conditions, template.
#[derive(Debug, Clone)]
pub struct Rule {
    pub name: String,
    pub lhs: TermPattern,
    pub conditions: Vec<Condition>,
    /// Template in abstract syntax. `Name(v)` splices the term bound to
    /// `v`; `Apply{op: f}` where `f` is a bound function variable becomes
    /// an application of the bound lambda; a type written `$v` inside a
    /// lambda parameter splices the type bound to `v`.
    pub rhs: Expr,
    /// Alternative templates considered only under cost-based
    /// optimization: when the rule fires, each alternative whose extra
    /// conditions hold is instantiated alongside the primary template and
    /// the cheapest (by estimated page touches) well-typed candidate
    /// wins. With cost-based optimization off, alternatives are ignored
    /// and the primary template applies unconditionally — the historical
    /// behavior.
    pub alternatives: Vec<RuleAlt>,
}

/// One cost-competitive alternative template of a [`Rule`] (same LHS,
/// extra conditions, different RHS).
#[derive(Debug, Clone)]
pub struct RuleAlt {
    /// Name recorded in the rewrite trace when this alternative wins
    /// (e.g. `select-btree-=-scan`).
    pub name: String,
    /// Conditions evaluated as extensions of the primary rule's
    /// solutions (they may bind additional variables).
    pub conditions: Vec<Condition>,
    pub rhs: Expr,
}

/// Knobs for one optimization run.
#[derive(Debug, Clone, Default)]
pub struct OptimizeOpts {
    pub validation: Validation,
    /// Consider rule alternatives and pick the candidate with the lowest
    /// estimated page cost (see [`CostModel`]).
    pub cost_based: bool,
    /// Constants whose values must not be trusted by the cost model
    /// (plan-cache sentinels standing in for stripped literals).
    pub unknown_consts: Vec<Const>,
}

/// Upper bound on instantiated candidates per redex under cost-based
/// optimization (frontier solutions × alternatives can multiply).
const MAX_CANDIDATES: usize = 16;

/// How a step scans for redexes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Apply at most one rewrite, scanning top-down.
    OnceTopDown,
    /// Rewrite until no rule applies, scanning top-down each pass.
    ExhaustiveTopDown,
    /// Rewrite until no rule applies, scanning bottom-up each pass.
    ExhaustiveBottomUp,
}

/// A step: a rule collection with a control strategy (the architecture
/// of \[BeG92\]).
#[derive(Debug, Clone)]
pub struct RuleStep {
    pub name: String,
    pub rules: Vec<Rule>,
    pub strategy: Strategy,
    /// Upper bound on rewrites before the step reports divergence.
    pub budget: usize,
}

impl RuleStep {
    pub fn exhaustive(name: &str, rules: Vec<Rule>) -> RuleStep {
        RuleStep {
            name: name.to_string(),
            rules,
            strategy: Strategy::ExhaustiveTopDown,
            budget: 200,
        }
    }
}

/// Counters reported after optimization.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptimizerStats {
    pub rewrites: usize,
    pub rule_attempts: usize,
    /// Rewrites whose result type was not equivalent to the type before
    /// the rewrite (counted under [`Validation::Count`]; under
    /// [`Validation::Strict`] the first violation aborts instead).
    pub plan_validation_failures: usize,
    /// Wall time of the whole optimize call, in nanoseconds.
    pub optimize_ns: u64,
    /// Portion of `optimize_ns` spent matching and rewriting rules.
    pub rewrite_ns: u64,
    /// Portion of `optimize_ns` spent checking and costing candidate
    /// plans (zero when cost-based optimization is off).
    pub cost_ns: u64,
    /// Time spent probing the plan cache before the rewriter ran (set by
    /// the system layer; zero when the cache is off).
    pub cache_lookup_ns: u64,
}

impl OptimizerStats {
    /// Fold another run's counters into this one (the metrics registry
    /// keeps cumulative totals across statements).
    pub fn absorb(&mut self, other: OptimizerStats) {
        self.rewrites += other.rewrites;
        self.rule_attempts += other.rule_attempts;
        self.plan_validation_failures += other.plan_validation_failures;
        self.optimize_ns += other.optimize_ns;
        self.rewrite_ns += other.rewrite_ns;
        self.cost_ns += other.cost_ns;
        self.cache_lookup_ns += other.cache_lookup_ns;
    }
}

/// One applied rewrite, recorded in application order when optimization
/// runs traced: which step and rule fired, the conditions the rule
/// checked, and the whole term before and after the rewrite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleApplication {
    /// The rule step (e.g. `index-access`) the rule belongs to.
    pub step: String,
    /// The rule's name (e.g. `join-inside-lsdtree`).
    pub rule: String,
    /// The conditions that held for this application, rendered in the
    /// rule language (`rep(rel1, rep1)`, ...).
    pub conditions: Vec<String>,
    /// The whole (re-checked) term before the rewrite.
    pub before: String,
    /// The whole (re-checked) term after the rewrite.
    pub after: String,
    /// `Some(reason)` when plan validation found the rewrite changed
    /// the term's result type (recorded under [`Validation::Count`];
    /// `EXPLAIN` marks the step with it).
    pub validation_failure: Option<String>,
}

/// A sequence of rule steps.
#[derive(Debug, Clone, Default)]
pub struct Optimizer {
    pub steps: Vec<RuleStep>,
}

impl Optimizer {
    pub fn new(steps: Vec<RuleStep>) -> Optimizer {
        Optimizer { steps }
    }

    /// Optimize a closed, checked term. Every rewrite is re-checked.
    /// No plan validation (see [`Optimizer::optimize_with`]).
    pub fn optimize(
        &self,
        term: &TypedExpr,
        checker: &Checker,
        catalog: &Catalog,
    ) -> Result<(TypedExpr, OptimizerStats), OptError> {
        self.drive(term, checker, catalog, &opts_for(Validation::Off), None)
            .map(|(t, s, _)| (t, s))
    }

    /// Optimize and additionally record every applied rewrite in
    /// application order — the trace behind `EXPLAIN`'s rewrite section.
    /// No plan validation (see [`Optimizer::optimize_traced_with`]).
    pub fn optimize_traced(
        &self,
        term: &TypedExpr,
        checker: &Checker,
        catalog: &Catalog,
    ) -> Result<(TypedExpr, OptimizerStats, Vec<RuleApplication>), OptError> {
        self.drive(
            term,
            checker,
            catalog,
            &opts_for(Validation::Off),
            Some(Vec::new()),
        )
        .map(|(t, s, trace)| (t, s, trace.unwrap_or_default()))
    }

    /// Optimize under a plan-validation mode: every rewrite's result
    /// type is compared (modulo representation) with the type before
    /// the rewrite. [`Validation::Count`] records violations in the
    /// stats; [`Validation::Strict`] rejects the plan on the first one.
    pub fn optimize_with(
        &self,
        term: &TypedExpr,
        checker: &Checker,
        catalog: &Catalog,
        validation: Validation,
    ) -> Result<(TypedExpr, OptimizerStats), OptError> {
        self.drive(term, checker, catalog, &opts_for(validation), None)
            .map(|(t, s, _)| (t, s))
    }

    /// [`Optimizer::optimize_with`] plus the rewrite trace; violating
    /// applications carry [`RuleApplication::validation_failure`].
    pub fn optimize_traced_with(
        &self,
        term: &TypedExpr,
        checker: &Checker,
        catalog: &Catalog,
        validation: Validation,
    ) -> Result<(TypedExpr, OptimizerStats, Vec<RuleApplication>), OptError> {
        self.drive(
            term,
            checker,
            catalog,
            &opts_for(validation),
            Some(Vec::new()),
        )
        .map(|(t, s, trace)| (t, s, trace.unwrap_or_default()))
    }

    /// The general entry point: optimize under explicit
    /// [`OptimizeOpts`], optionally recording the rewrite trace.
    pub fn optimize_opts(
        &self,
        term: &TypedExpr,
        checker: &Checker,
        catalog: &Catalog,
        opts: &OptimizeOpts,
        traced: bool,
    ) -> Result<(TypedExpr, OptimizerStats, Option<Vec<RuleApplication>>), OptError> {
        self.drive(term, checker, catalog, opts, traced.then(Vec::new))
    }

    /// The rewrite loop. `trace` is `Some` only for traced runs, so the
    /// untraced hot path renders no term strings.
    fn drive(
        &self,
        term: &TypedExpr,
        checker: &Checker,
        catalog: &Catalog,
        opts: &OptimizeOpts,
        mut trace: Option<Vec<RuleApplication>>,
    ) -> Result<(TypedExpr, OptimizerStats, Option<Vec<RuleApplication>>), OptError> {
        let started = Instant::now();
        let validation = opts.validation;
        let mut stats = OptimizerStats::default();
        let mut cost_ns: u64 = 0;
        let mut current = term.clone();
        for (step_idx, step) in self.steps.iter().enumerate() {
            let mut rewrites_in_step = 0;
            loop {
                let search = Search {
                    rules: &step.rules,
                    catalog,
                    top_down: step.strategy != Strategy::ExhaustiveBottomUp,
                    cost_based: opts.cost_based,
                    render: trace.is_some(),
                };
                let Some(candidates) = walk(&current, &search, &mut stats) else {
                    break;
                };
                let before = trace.is_some().then(|| current.to_string());
                let prev_ty = current.ty.clone();
                let chosen = choose(candidates, checker, catalog, opts, &mut cost_ns)?;
                current = chosen.term;
                let validation_failure = (validation != Validation::Off
                    && !types_equivalent(checker.sig, &prev_ty, &current.ty))
                .then(|| format!("result type changed from {prev_ty} to {}", current.ty));
                if validation_failure.is_some() {
                    if validation == Validation::Strict {
                        return Err(OptError::PlanTypeChanged {
                            rule: chosen.label.clone(),
                            before: prev_ty.to_string(),
                            after: current.ty.to_string(),
                        });
                    }
                    stats.plan_validation_failures += 1;
                }
                if let (Some(trace), Some(before)) = (trace.as_mut(), before) {
                    trace.push(RuleApplication {
                        step: step.name.clone(),
                        rule: chosen.label,
                        conditions: chosen.conditions,
                        before,
                        after: current.to_string(),
                        validation_failure,
                    });
                }
                stats.rewrites += 1;
                rewrites_in_step += 1;
                if step.strategy == Strategy::OnceTopDown {
                    break;
                }
                if rewrites_in_step > step.budget {
                    return Err(OptError::NoFixpoint {
                        step: step_idx,
                        budget: step.budget,
                    });
                }
            }
        }
        stats.cost_ns = cost_ns;
        stats.optimize_ns = started.elapsed().as_nanos() as u64;
        stats.rewrite_ns = stats.optimize_ns.saturating_sub(cost_ns);
        Ok((current, stats, trace))
    }
}

fn opts_for(validation: Validation) -> OptimizeOpts {
    OptimizeOpts {
        validation,
        ..OptimizeOpts::default()
    }
}

/// The chosen rewrite at one redex: the re-checked whole term plus the
/// winning rule (or alternative) label and its rendered conditions.
struct Chosen {
    label: String,
    conditions: Vec<String>,
    term: TypedExpr,
}

/// Re-check every candidate and pick the cheapest well-typed one by
/// estimated page cost. A single candidate (the cost-off path) is
/// checked without costing, preserving the historical behavior exactly.
fn choose(
    mut candidates: Vec<Candidate>,
    checker: &Checker,
    catalog: &Catalog,
    opts: &OptimizeOpts,
    cost_ns: &mut u64,
) -> Result<Chosen, OptError> {
    if candidates.len() == 1 {
        let c = candidates.remove(0);
        let term = checker.check_expr(&c.raw).map_err(|e| OptError::Recheck {
            rule: c.label.clone(),
            error: e,
            term: format!("{}", c.raw),
        })?;
        return Ok(Chosen {
            label: c.label,
            conditions: c.conditions,
            term,
        });
    }
    let started = Instant::now();
    let model = CostModel::with_unknown(catalog, opts.unknown_consts.clone());
    let mut best: Option<(f64, usize, TypedExpr)> = None;
    let mut primary_err = None;
    for (i, c) in candidates.iter().enumerate() {
        match checker.check_expr(&c.raw) {
            Ok(t) => {
                let cost = model.page_cost(&t);
                // Strict `<`: ties go to the earliest candidate (the
                // primary template first, then alternatives in order).
                if best.as_ref().map(|(b, _, _)| cost < *b).unwrap_or(true) {
                    best = Some((cost, i, t));
                }
            }
            // An ill-typed alternative just loses the competition; an
            // ill-typed primary is only an error when nothing survives.
            Err(e) => {
                if i == 0 {
                    primary_err = Some(e);
                }
            }
        }
    }
    *cost_ns += started.elapsed().as_nanos() as u64;
    match best {
        Some((_, i, term)) => {
            let c = candidates.swap_remove(i);
            Ok(Chosen {
                label: c.label,
                conditions: c.conditions,
                term,
            })
        }
        None => {
            let c = candidates.remove(0);
            Err(OptError::Recheck {
                rule: c.label.clone(),
                error: primary_err.expect("no candidate checked, primary error recorded"),
                term: format!("{}", c.raw),
            })
        }
    }
}

/// Search parameters threaded through the redex walk.
struct Search<'a> {
    rules: &'a [Rule],
    catalog: &'a Catalog,
    top_down: bool,
    cost_based: bool,
    /// Render candidate conditions in the rule language (traced runs).
    render: bool,
}

/// One instantiated rewrite candidate at a redex: the whole term in
/// abstract syntax with the template spliced in.
struct Candidate {
    label: String,
    conditions: Vec<String>,
    raw: Expr,
}

/// Find the first redex (by strategy order) and return the instantiated
/// candidates there — exactly one with cost-based optimization off, the
/// primary plus surviving alternatives with it on.
fn walk(node: &TypedExpr, search: &Search, stats: &mut OptimizerStats) -> Option<Vec<Candidate>> {
    if search.top_down {
        if let Some(r) = try_rules(node, search, stats) {
            return Some(r);
        }
    }
    if let Some((i, children)) = walk_children(node, search, stats) {
        return Some(
            children
                .into_iter()
                .map(|mut c| {
                    c.raw = rebuild(node, i, c.raw);
                    c
                })
                .collect(),
        );
    }
    if !search.top_down {
        if let Some(r) = try_rules(node, search, stats) {
            return Some(r);
        }
    }
    None
}

fn walk_children(
    node: &TypedExpr,
    search: &Search,
    stats: &mut OptimizerStats,
) -> Option<(usize, Vec<Candidate>)> {
    let children: Vec<&TypedExpr> = match &node.node {
        TypedNode::Apply { args, .. } | TypedNode::List(args) | TypedNode::Tuple(args) => {
            args.iter().collect()
        }
        TypedNode::ApplyFun { fun, args } => std::iter::once(&**fun).chain(args.iter()).collect(),
        TypedNode::Lambda { body, .. } => vec![body],
        _ => Vec::new(),
    };
    for (i, c) in children.into_iter().enumerate() {
        if let Some(cands) = walk(c, search, stats) {
            return Some((i, cands));
        }
    }
    None
}

fn try_rules(
    node: &TypedExpr,
    search: &Search,
    stats: &mut OptimizerStats,
) -> Option<Vec<Candidate>> {
    for rule in search.rules {
        stats.rule_attempts += 1;
        let mut b = RuleBindings::default();
        if !match_term(&rule.lhs, node, &mut b) {
            continue;
        }
        // Pattern lambda parameters also bind their types, so templates
        // can type their own lambdas with `$param` placeholders.
        for (p, (_, ty)) in b.params.clone() {
            b.types.insert(p, TypeArg::Type(ty));
        }
        // Conditions: a frontier of alternative binding sets.
        let frontier = eval_conditions(&rule.conditions, vec![b], search.catalog);
        if frontier.is_empty() {
            continue;
        }
        if !search.cost_based {
            // Historical behavior: first solution, primary template.
            let solution = &frontier[0];
            return Some(vec![Candidate {
                label: rule.name.clone(),
                conditions: rendered(search, &rule.conditions, &[]),
                raw: instantiate(&rule.rhs, solution),
            }]);
        }
        let mut candidates = Vec::new();
        'solutions: for solution in &frontier {
            candidates.push(Candidate {
                label: rule.name.clone(),
                conditions: rendered(search, &rule.conditions, &[]),
                raw: instantiate(&rule.rhs, solution),
            });
            if candidates.len() >= MAX_CANDIDATES {
                break;
            }
            for alt in &rule.alternatives {
                let ext = eval_conditions(&alt.conditions, vec![solution.clone()], search.catalog);
                for asol in &ext {
                    candidates.push(Candidate {
                        label: alt.name.clone(),
                        conditions: rendered(search, &rule.conditions, &alt.conditions),
                        raw: instantiate(&alt.rhs, asol),
                    });
                    if candidates.len() >= MAX_CANDIDATES {
                        break 'solutions;
                    }
                }
            }
        }
        return Some(candidates);
    }
    None
}

/// Evaluate a condition list over a frontier of binding sets.
fn eval_conditions(
    conditions: &[Condition],
    mut frontier: Vec<RuleBindings>,
    catalog: &Catalog,
) -> Vec<RuleBindings> {
    for cond in conditions {
        let mut next = Vec::new();
        for fb in &frontier {
            next.extend(cond.eval(fb, catalog));
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    frontier
}

/// Render conditions in the rule language for the rewrite trace (only on
/// traced runs — the hot path allocates nothing here).
fn rendered(search: &Search, primary: &[Condition], extra: &[Condition]) -> Vec<String> {
    if !search.render {
        return Vec::new();
    }
    primary
        .iter()
        .chain(extra.iter())
        .map(|c| c.to_string())
        .collect()
}

/// Rebuild a node in abstract syntax with child `i` replaced.
fn rebuild(node: &TypedExpr, i: usize, child: Expr) -> Expr {
    match &node.node {
        TypedNode::Apply { op, args, .. } => Expr::Apply {
            op: op.clone(),
            args: replace_at(args, i, child),
        },
        TypedNode::List(args) => Expr::List(replace_at(args, i, child)),
        TypedNode::Tuple(args) => Expr::Tuple(replace_at(args, i, child)),
        TypedNode::ApplyFun { fun, args } => {
            let mut all: Vec<Expr> = std::iter::once(fun.to_expr())
                .chain(args.iter().map(|a| a.to_expr()))
                .collect();
            all[i] = child;
            Expr::Apply {
                op: Symbol::new("%call"),
                args: all,
            }
        }
        TypedNode::Lambda { params, .. } => Expr::Lambda {
            params: params.clone(),
            body: Box::new(child),
        },
        _ => node.to_expr(),
    }
}

fn replace_at(args: &[TypedExpr], i: usize, child: Expr) -> Vec<Expr> {
    args.iter()
        .enumerate()
        .map(|(j, a)| if j == i { child.clone() } else { a.to_expr() })
        .collect()
}

/// Instantiate a template from the rule bindings.
pub fn instantiate(template: &Expr, b: &RuleBindings) -> Expr {
    match template {
        Expr::Name(v) => {
            if let Some(t) = b.terms.get(v) {
                t.to_expr()
            } else if let Some(op) = b.ops.get(v) {
                // An operator-name variable used as an argument becomes
                // the identifier value (attribute-name arguments).
                Expr::Const(sos_core::Const::Ident(op.clone()))
            } else {
                template.clone()
            }
        }
        Expr::Const(_) => template.clone(),
        Expr::Apply { op, args } => {
            let new_args: Vec<Expr> = args.iter().map(|a| instantiate(a, b)).collect();
            // A bound function variable in operator position becomes an
            // application of the bound lambda.
            if let Some(f) = b.terms.get(op) {
                if matches!(f.node, TypedNode::Lambda { .. } | TypedNode::Object(_)) {
                    return Expr::Apply {
                        op: Symbol::new("%call"),
                        args: std::iter::once(f.to_expr()).chain(new_args).collect(),
                    };
                }
            }
            // A bound operator-name variable renames the application.
            if let Some(n) = b.ops.get(op) {
                return Expr::Apply {
                    op: n.clone(),
                    args: new_args,
                };
            }
            Expr::Apply {
                op: op.clone(),
                args: new_args,
            }
        }
        Expr::Lambda { params, body } => Expr::Lambda {
            params: params
                .iter()
                .map(|(n, t)| (n.clone(), instantiate_type(t, b)))
                .collect(),
            body: Box::new(instantiate(body, b)),
        },
        Expr::List(items) => Expr::List(items.iter().map(|e| instantiate(e, b)).collect()),
        Expr::Tuple(items) => Expr::Tuple(items.iter().map(|e| instantiate(e, b)).collect()),
        Expr::Seq(_) => template.clone(),
    }
}

/// Replace `$v` type placeholders by bound types.
fn instantiate_type(t: &DataType, b: &RuleBindings) -> DataType {
    match t {
        DataType::Cons(name, args) => {
            if let Some(stripped) = name.as_str().strip_prefix('$') {
                if let Some(TypeArg::Type(bound)) = b.types.get(&Symbol::new(stripped)) {
                    return bound.clone();
                }
            }
            DataType::Cons(
                name.clone(),
                args.iter()
                    .map(|a| match a {
                        TypeArg::Type(x) => TypeArg::Type(instantiate_type(x, b)),
                        other => other.clone(),
                    })
                    .collect(),
            )
        }
        DataType::Fun(params, res) => DataType::Fun(
            params.iter().map(|p| instantiate_type(p, b)).collect(),
            Box::new(instantiate_type(res, b)),
        ),
    }
}
