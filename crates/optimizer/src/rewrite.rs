//! The rewrite engine: rules, steps with control strategies, and the
//! optimizer driver.

use crate::condition::Condition;
use crate::pattern::{match_term, RuleBindings, TermPattern};
use crate::validate::{types_equivalent, Validation};
use crate::OptError;
use sos_catalog::Catalog;
use sos_core::check::Checker;
use sos_core::typed::{TypedExpr, TypedNode};
use sos_core::{DataType, Expr, Symbol, TypeArg};

/// One optimization rule: pattern, conditions, template.
#[derive(Debug, Clone)]
pub struct Rule {
    pub name: String,
    pub lhs: TermPattern,
    pub conditions: Vec<Condition>,
    /// Template in abstract syntax. `Name(v)` splices the term bound to
    /// `v`; `Apply{op: f}` where `f` is a bound function variable becomes
    /// an application of the bound lambda; a type written `$v` inside a
    /// lambda parameter splices the type bound to `v`.
    pub rhs: Expr,
}

/// How a step scans for redexes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Apply at most one rewrite, scanning top-down.
    OnceTopDown,
    /// Rewrite until no rule applies, scanning top-down each pass.
    ExhaustiveTopDown,
    /// Rewrite until no rule applies, scanning bottom-up each pass.
    ExhaustiveBottomUp,
}

/// A step: a rule collection with a control strategy (the architecture
/// of \[BeG92\]).
#[derive(Debug, Clone)]
pub struct RuleStep {
    pub name: String,
    pub rules: Vec<Rule>,
    pub strategy: Strategy,
    /// Upper bound on rewrites before the step reports divergence.
    pub budget: usize,
}

impl RuleStep {
    pub fn exhaustive(name: &str, rules: Vec<Rule>) -> RuleStep {
        RuleStep {
            name: name.to_string(),
            rules,
            strategy: Strategy::ExhaustiveTopDown,
            budget: 200,
        }
    }
}

/// Counters reported after optimization.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptimizerStats {
    pub rewrites: usize,
    pub rule_attempts: usize,
    /// Rewrites whose result type was not equivalent to the type before
    /// the rewrite (counted under [`Validation::Count`]; under
    /// [`Validation::Strict`] the first violation aborts instead).
    pub plan_validation_failures: usize,
}

impl OptimizerStats {
    /// Fold another run's counters into this one (the metrics registry
    /// keeps cumulative totals across statements).
    pub fn absorb(&mut self, other: OptimizerStats) {
        self.rewrites += other.rewrites;
        self.rule_attempts += other.rule_attempts;
        self.plan_validation_failures += other.plan_validation_failures;
    }
}

/// One applied rewrite, recorded in application order when optimization
/// runs traced: which step and rule fired, the conditions the rule
/// checked, and the whole term before and after the rewrite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleApplication {
    /// The rule step (e.g. `index-access`) the rule belongs to.
    pub step: String,
    /// The rule's name (e.g. `join-inside-lsdtree`).
    pub rule: String,
    /// The conditions that held for this application, rendered in the
    /// rule language (`rep(rel1, rep1)`, ...).
    pub conditions: Vec<String>,
    /// The whole (re-checked) term before the rewrite.
    pub before: String,
    /// The whole (re-checked) term after the rewrite.
    pub after: String,
    /// `Some(reason)` when plan validation found the rewrite changed
    /// the term's result type (recorded under [`Validation::Count`];
    /// `EXPLAIN` marks the step with it).
    pub validation_failure: Option<String>,
}

/// A sequence of rule steps.
#[derive(Debug, Clone, Default)]
pub struct Optimizer {
    pub steps: Vec<RuleStep>,
}

impl Optimizer {
    pub fn new(steps: Vec<RuleStep>) -> Optimizer {
        Optimizer { steps }
    }

    /// Optimize a closed, checked term. Every rewrite is re-checked.
    /// No plan validation (see [`Optimizer::optimize_with`]).
    pub fn optimize(
        &self,
        term: &TypedExpr,
        checker: &Checker,
        catalog: &Catalog,
    ) -> Result<(TypedExpr, OptimizerStats), OptError> {
        self.drive(term, checker, catalog, Validation::Off, None)
            .map(|(t, s, _)| (t, s))
    }

    /// Optimize and additionally record every applied rewrite in
    /// application order — the trace behind `EXPLAIN`'s rewrite section.
    /// No plan validation (see [`Optimizer::optimize_traced_with`]).
    pub fn optimize_traced(
        &self,
        term: &TypedExpr,
        checker: &Checker,
        catalog: &Catalog,
    ) -> Result<(TypedExpr, OptimizerStats, Vec<RuleApplication>), OptError> {
        self.drive(term, checker, catalog, Validation::Off, Some(Vec::new()))
            .map(|(t, s, trace)| (t, s, trace.unwrap_or_default()))
    }

    /// Optimize under a plan-validation mode: every rewrite's result
    /// type is compared (modulo representation) with the type before
    /// the rewrite. [`Validation::Count`] records violations in the
    /// stats; [`Validation::Strict`] rejects the plan on the first one.
    pub fn optimize_with(
        &self,
        term: &TypedExpr,
        checker: &Checker,
        catalog: &Catalog,
        validation: Validation,
    ) -> Result<(TypedExpr, OptimizerStats), OptError> {
        self.drive(term, checker, catalog, validation, None)
            .map(|(t, s, _)| (t, s))
    }

    /// [`Optimizer::optimize_with`] plus the rewrite trace; violating
    /// applications carry [`RuleApplication::validation_failure`].
    pub fn optimize_traced_with(
        &self,
        term: &TypedExpr,
        checker: &Checker,
        catalog: &Catalog,
        validation: Validation,
    ) -> Result<(TypedExpr, OptimizerStats, Vec<RuleApplication>), OptError> {
        self.drive(term, checker, catalog, validation, Some(Vec::new()))
            .map(|(t, s, trace)| (t, s, trace.unwrap_or_default()))
    }

    /// The rewrite loop. `trace` is `Some` only for traced runs, so the
    /// untraced hot path renders no term strings.
    fn drive(
        &self,
        term: &TypedExpr,
        checker: &Checker,
        catalog: &Catalog,
        validation: Validation,
        mut trace: Option<Vec<RuleApplication>>,
    ) -> Result<(TypedExpr, OptimizerStats, Option<Vec<RuleApplication>>), OptError> {
        let mut stats = OptimizerStats::default();
        let mut current = term.clone();
        for (step_idx, step) in self.steps.iter().enumerate() {
            let mut rewrites_in_step = 0;
            loop {
                let top_down = step.strategy != Strategy::ExhaustiveBottomUp;
                let Some((rule, raw)) = walk(&current, &step.rules, catalog, top_down, &mut stats)
                else {
                    break;
                };
                let before = trace.is_some().then(|| current.to_string());
                let prev_ty = current.ty.clone();
                current = checker.check_expr(&raw).map_err(|e| OptError::Recheck {
                    rule: rule.name.clone(),
                    error: e,
                    term: format!("{raw}"),
                })?;
                let validation_failure = (validation != Validation::Off
                    && !types_equivalent(checker.sig, &prev_ty, &current.ty))
                .then(|| format!("result type changed from {prev_ty} to {}", current.ty));
                if validation_failure.is_some() {
                    if validation == Validation::Strict {
                        return Err(OptError::PlanTypeChanged {
                            rule: rule.name.clone(),
                            before: prev_ty.to_string(),
                            after: current.ty.to_string(),
                        });
                    }
                    stats.plan_validation_failures += 1;
                }
                if let (Some(trace), Some(before)) = (trace.as_mut(), before) {
                    trace.push(RuleApplication {
                        step: step.name.clone(),
                        rule: rule.name.clone(),
                        conditions: rule.conditions.iter().map(|c| c.to_string()).collect(),
                        before,
                        after: current.to_string(),
                        validation_failure,
                    });
                }
                stats.rewrites += 1;
                rewrites_in_step += 1;
                if step.strategy == Strategy::OnceTopDown {
                    break;
                }
                if rewrites_in_step > step.budget {
                    return Err(OptError::NoFixpoint {
                        step: step_idx,
                        budget: step.budget,
                    });
                }
            }
        }
        Ok((current, stats, trace))
    }
}

/// Find the first redex (by strategy order) and return the applied rule
/// plus the whole term in abstract syntax with the instantiated template
/// spliced in.
fn walk<'r>(
    node: &TypedExpr,
    rules: &'r [Rule],
    catalog: &Catalog,
    top_down: bool,
    stats: &mut OptimizerStats,
) -> Option<(&'r Rule, Expr)> {
    if top_down {
        if let Some(r) = try_rules(node, rules, catalog, stats) {
            return Some(r);
        }
    }
    if let Some((rule, i, child_raw)) = walk_children(node, rules, catalog, top_down, stats) {
        return Some((rule, rebuild(node, i, child_raw)));
    }
    if !top_down {
        if let Some(r) = try_rules(node, rules, catalog, stats) {
            return Some(r);
        }
    }
    None
}

fn walk_children<'r>(
    node: &TypedExpr,
    rules: &'r [Rule],
    catalog: &Catalog,
    top_down: bool,
    stats: &mut OptimizerStats,
) -> Option<(&'r Rule, usize, Expr)> {
    let children: Vec<&TypedExpr> = match &node.node {
        TypedNode::Apply { args, .. } | TypedNode::List(args) | TypedNode::Tuple(args) => {
            args.iter().collect()
        }
        TypedNode::ApplyFun { fun, args } => std::iter::once(&**fun).chain(args.iter()).collect(),
        TypedNode::Lambda { body, .. } => vec![body],
        _ => Vec::new(),
    };
    for (i, c) in children.into_iter().enumerate() {
        if let Some((rule, raw)) = walk(c, rules, catalog, top_down, stats) {
            return Some((rule, i, raw));
        }
    }
    None
}

fn try_rules<'r>(
    node: &TypedExpr,
    rules: &'r [Rule],
    catalog: &Catalog,
    stats: &mut OptimizerStats,
) -> Option<(&'r Rule, Expr)> {
    for rule in rules {
        stats.rule_attempts += 1;
        let mut b = RuleBindings::default();
        if !match_term(&rule.lhs, node, &mut b) {
            continue;
        }
        // Pattern lambda parameters also bind their types, so templates
        // can type their own lambdas with `$param` placeholders.
        for (p, (_, ty)) in b.params.clone() {
            b.types.insert(p, TypeArg::Type(ty));
        }
        // Conditions: a frontier of alternative binding sets.
        let mut frontier = vec![b];
        for cond in &rule.conditions {
            let mut next = Vec::new();
            for fb in &frontier {
                next.extend(cond.eval(fb, catalog));
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        if let Some(solution) = frontier.first() {
            let raw = instantiate(&rule.rhs, solution);
            return Some((rule, raw));
        }
    }
    None
}

/// Rebuild a node in abstract syntax with child `i` replaced.
fn rebuild(node: &TypedExpr, i: usize, child: Expr) -> Expr {
    match &node.node {
        TypedNode::Apply { op, args, .. } => Expr::Apply {
            op: op.clone(),
            args: replace_at(args, i, child),
        },
        TypedNode::List(args) => Expr::List(replace_at(args, i, child)),
        TypedNode::Tuple(args) => Expr::Tuple(replace_at(args, i, child)),
        TypedNode::ApplyFun { fun, args } => {
            let mut all: Vec<Expr> = std::iter::once(fun.to_expr())
                .chain(args.iter().map(|a| a.to_expr()))
                .collect();
            all[i] = child;
            Expr::Apply {
                op: Symbol::new("%call"),
                args: all,
            }
        }
        TypedNode::Lambda { params, .. } => Expr::Lambda {
            params: params.clone(),
            body: Box::new(child),
        },
        _ => node.to_expr(),
    }
}

fn replace_at(args: &[TypedExpr], i: usize, child: Expr) -> Vec<Expr> {
    args.iter()
        .enumerate()
        .map(|(j, a)| if j == i { child.clone() } else { a.to_expr() })
        .collect()
}

/// Instantiate a template from the rule bindings.
pub fn instantiate(template: &Expr, b: &RuleBindings) -> Expr {
    match template {
        Expr::Name(v) => {
            if let Some(t) = b.terms.get(v) {
                t.to_expr()
            } else if let Some(op) = b.ops.get(v) {
                // An operator-name variable used as an argument becomes
                // the identifier value (attribute-name arguments).
                Expr::Const(sos_core::Const::Ident(op.clone()))
            } else {
                template.clone()
            }
        }
        Expr::Const(_) => template.clone(),
        Expr::Apply { op, args } => {
            let new_args: Vec<Expr> = args.iter().map(|a| instantiate(a, b)).collect();
            // A bound function variable in operator position becomes an
            // application of the bound lambda.
            if let Some(f) = b.terms.get(op) {
                if matches!(f.node, TypedNode::Lambda { .. } | TypedNode::Object(_)) {
                    return Expr::Apply {
                        op: Symbol::new("%call"),
                        args: std::iter::once(f.to_expr()).chain(new_args).collect(),
                    };
                }
            }
            // A bound operator-name variable renames the application.
            if let Some(n) = b.ops.get(op) {
                return Expr::Apply {
                    op: n.clone(),
                    args: new_args,
                };
            }
            Expr::Apply {
                op: op.clone(),
                args: new_args,
            }
        }
        Expr::Lambda { params, body } => Expr::Lambda {
            params: params
                .iter()
                .map(|(n, t)| (n.clone(), instantiate_type(t, b)))
                .collect(),
            body: Box::new(instantiate(body, b)),
        },
        Expr::List(items) => Expr::List(items.iter().map(|e| instantiate(e, b)).collect()),
        Expr::Tuple(items) => Expr::Tuple(items.iter().map(|e| instantiate(e, b)).collect()),
        Expr::Seq(_) => template.clone(),
    }
}

/// Replace `$v` type placeholders by bound types.
fn instantiate_type(t: &DataType, b: &RuleBindings) -> DataType {
    match t {
        DataType::Cons(name, args) => {
            if let Some(stripped) = name.as_str().strip_prefix('$') {
                if let Some(TypeArg::Type(bound)) = b.types.get(&Symbol::new(stripped)) {
                    return bound.clone();
                }
            }
            DataType::Cons(
                name.clone(),
                args.iter()
                    .map(|a| match a {
                        TypeArg::Type(x) => TypeArg::Type(instantiate_type(x, b)),
                        other => other.clone(),
                    })
                    .collect(),
            )
        }
        DataType::Fun(params, res) => DataType::Fun(
            params.iter().map(|p| instantiate_type(p, b)).collect(),
            Box::new(instantiate_type(res, b)),
        ),
    }
}
