//! The textual rule language — Section 5's optimization rules as data.
//!
//! The paper writes rules as quantified term patterns with an arrow and
//! catalog conditions. The concrete grammar here keeps that structure
//! with explicit variable declarations (the paper's quantifier prelude):
//!
//! ```text
//! rule join-inside-lsdtree:
//!   vars rel1 obj, rel2 obj;
//!   funvars pointf(t1), regionf(t2);
//!   lhs join(rel1, rel2, fun (t1, t2) inside(pointf(t1), regionf(t2)));
//!   rhs consume(search_join(feed(rep1),
//!         fun (t1: $t1) filter(point_search(lsd2, pointf(t1)),
//!           fun (t2: $t2) inside(pointf(t1), regionf(t2)))));
//!   where rep(rel1, rep1), rep(rel2, lsd2),
//!         lsd2 : lsdtree(tuple2, f), lsdbbox(lsd2, regionf);
//! ```
//!
//! * `vars v obj` declares an object variable (matches a named object),
//!   `vars v const` a constant variable, `vars v op` an operator-name
//!   variable; undeclared names in the LHS are plain term variables
//!   unless they are lambda parameters.
//! * `funvars f(p, ...)` declares the paper's function variables
//!   (`point: (tuple1 -> point)`): `f(p)` in the LHS matches any subterm
//!   whose free variables are within the listed lambda parameters.
//! * LHS and RHS are written in abstract (prefix) syntax. In the RHS a
//!   lambda parameter type `$v` splices the type bound to `v` (lambda
//!   parameters bind their types; `TypeIs` conditions bind more).
//! * `where` conditions: `rep(model, repvar)` (or any catalog via
//!   `link(catalog, model, repvar)`), `v : <type pattern>`, `key(b, a)`,
//!   `not key(b, a)`, `lsdbbox(lsd, funvar)`, `const(v)`.

use crate::condition::Condition;
use crate::pattern::{OpPat, TermPattern};
use crate::rewrite::Rule;
use sos_core::pattern::{PatternNode, TypePattern};
use sos_core::{sym, DataType, Expr, Symbol, TypeArg};
use sos_parser::cursor::Cursor;
use sos_parser::{tokenize, ParseError, TokenKind};
use std::collections::{HashMap, HashSet};

/// Parse a rule file into rules (to wrap in a
/// [`crate::RuleStep`]).
pub fn parse_rules(src: &str) -> Result<Vec<Rule>, ParseError> {
    let mut cur = Cursor::new(tokenize(src)?);
    let mut rules = Vec::new();
    while !cur.at_eof() {
        rules.push(parse_rule(&mut cur)?);
    }
    Ok(rules)
}

#[derive(Default)]
struct Decls {
    objects: HashSet<Symbol>,
    consts: HashSet<Symbol>,
    opvars: HashSet<Symbol>,
    /// funvar -> its lambda-parameter argument names
    funvars: HashMap<Symbol, Vec<Symbol>>,
    /// lambda parameters seen in the LHS
    params: HashSet<Symbol>,
}

fn parse_rule(cur: &mut Cursor) -> Result<Rule, ParseError> {
    cur.expect_keyword("rule")?;
    let mut name = cur.ident()?;
    // Allow dashed rule names (ident - ident ...).
    while cur.eat(&TokenKind::Minus) {
        name.push('-');
        name.push_str(&cur.ident()?);
    }
    cur.expect(&TokenKind::Colon)?;

    let mut decls = Decls::default();
    if cur.eat_keyword("vars") {
        loop {
            let v = sym(&cur.ident()?);
            let kind = cur.ident()?;
            match kind.as_str() {
                "obj" => {
                    decls.objects.insert(v);
                }
                "const" => {
                    decls.consts.insert(v);
                }
                "op" => {
                    decls.opvars.insert(v);
                }
                other => {
                    return Err(cur.error(&format!(
                        "unknown variable sort `{other}` (expected obj/const/op)"
                    )))
                }
            }
            if !cur.eat(&TokenKind::Comma) {
                break;
            }
        }
        cur.expect(&TokenKind::Semicolon)?;
    }
    if cur.eat_keyword("funvars") {
        loop {
            let f = sym(&cur.ident()?);
            cur.expect(&TokenKind::LParen)?;
            let mut params = Vec::new();
            if *cur.peek() != TokenKind::RParen {
                params.push(sym(&cur.ident()?));
                while cur.eat(&TokenKind::Comma) {
                    params.push(sym(&cur.ident()?));
                }
            }
            cur.expect(&TokenKind::RParen)?;
            decls.funvars.insert(f, params);
            if !cur.eat(&TokenKind::Comma) {
                break;
            }
        }
        cur.expect(&TokenKind::Semicolon)?;
    }

    cur.expect_keyword("lhs")?;
    let lhs = parse_lhs(cur, &mut decls)?;
    cur.expect(&TokenKind::Semicolon)?;

    cur.expect_keyword("rhs")?;
    let rhs = parse_rhs(cur)?;
    cur.expect(&TokenKind::Semicolon)?;

    let mut conditions = Vec::new();
    if cur.eat_keyword("where") {
        loop {
            conditions.push(parse_condition(cur)?);
            if !cur.eat(&TokenKind::Comma) {
                break;
            }
        }
        cur.expect(&TokenKind::Semicolon)?;
    }

    Ok(Rule {
        name,
        lhs,
        conditions,
        rhs,
        alternatives: Vec::new(),
    })
}

/// LHS patterns in abstract prefix syntax.
fn parse_lhs(cur: &mut Cursor, decls: &mut Decls) -> Result<TermPattern, ParseError> {
    match cur.peek().clone() {
        TokenKind::Int(v) => {
            cur.next();
            Ok(TermPattern::Const(sos_core::Const::Int(v)))
        }
        TokenKind::Str(s) => {
            cur.next();
            Ok(TermPattern::Const(sos_core::Const::Str(s)))
        }
        TokenKind::Ident(ref s) if s == "fun" => {
            cur.next();
            cur.expect(&TokenKind::LParen)?;
            let mut params = Vec::new();
            if *cur.peek() != TokenKind::RParen {
                params.push(sym(&cur.ident()?));
                while cur.eat(&TokenKind::Comma) {
                    params.push(sym(&cur.ident()?));
                }
            }
            cur.expect(&TokenKind::RParen)?;
            for p in &params {
                decls.params.insert(p.clone());
            }
            let body = parse_lhs(cur, decls)?;
            Ok(TermPattern::Lambda {
                params,
                body: Box::new(body),
            })
        }
        TokenKind::Ident(name) => {
            cur.next();
            let name = sym(&name);
            if cur.eat(&TokenKind::LParen) {
                // funvar application, opvar application, or operator.
                let mut args = Vec::new();
                if *cur.peek() != TokenKind::RParen {
                    args.push(parse_lhs(cur, decls)?);
                    while cur.eat(&TokenKind::Comma) {
                        args.push(parse_lhs(cur, decls)?);
                    }
                }
                cur.expect(&TokenKind::RParen)?;
                if let Some(fparams) = decls.funvars.get(&name) {
                    // Arguments must be exactly the declared parameters.
                    let ok = args.len() == fparams.len()
                        && args.iter().zip(fparams).all(|(a, p)| {
                            matches!(a, TermPattern::Param(q) if q == p)
                                || matches!(a, TermPattern::Var(q) if q == p)
                        });
                    if !ok {
                        return Err(cur.error(&format!(
                            "funvar `{name}` must be applied to its declared parameters"
                        )));
                    }
                    let params: Vec<&str> = fparams.iter().map(|p| p.as_str()).collect();
                    return Ok(TermPattern::fun_app(name.as_str(), &params));
                }
                let op = if decls.opvars.contains(&name) {
                    OpPat::Var(name)
                } else {
                    OpPat::Exact(name)
                };
                return Ok(TermPattern::Apply { op, args });
            }
            // A bare name: lambda parameter, declared variable, or a
            // plain term variable.
            if decls.params.contains(&name) {
                Ok(TermPattern::Param(name))
            } else if decls.objects.contains(&name) {
                Ok(TermPattern::ObjectVar(name))
            } else if decls.consts.contains(&name) {
                Ok(TermPattern::ConstVar(name))
            } else {
                Ok(TermPattern::Var(name))
            }
        }
        other => {
            // Symbol operators (`=`, `<`, ...) as application heads.
            if let Some(opname) = other.infix_name() {
                let opname = opname.to_string();
                cur.next();
                cur.expect(&TokenKind::LParen)?;
                let mut args = vec![parse_lhs(cur, decls)?];
                while cur.eat(&TokenKind::Comma) {
                    args.push(parse_lhs(cur, decls)?);
                }
                cur.expect(&TokenKind::RParen)?;
                return Ok(TermPattern::Apply {
                    op: OpPat::Exact(sym(&opname)),
                    args,
                });
            }
            Err(cur.error(&format!("unexpected token `{other}` in rule pattern")))
        }
    }
}

/// RHS templates in abstract prefix syntax with `$type` placeholders.
fn parse_rhs(cur: &mut Cursor) -> Result<Expr, ParseError> {
    match cur.peek().clone() {
        TokenKind::Int(v) => {
            cur.next();
            Ok(Expr::int(v))
        }
        TokenKind::Str(s) => {
            cur.next();
            Ok(Expr::Const(sos_core::Const::Str(s)))
        }
        TokenKind::Ident(ref s) if s == "fun" => {
            cur.next();
            cur.expect(&TokenKind::LParen)?;
            let mut params = Vec::new();
            if *cur.peek() != TokenKind::RParen {
                loop {
                    let p = sym(&cur.ident()?);
                    cur.expect(&TokenKind::Colon)?;
                    let ty = parse_template_type(cur)?;
                    params.push((p, ty));
                    if !cur.eat(&TokenKind::Comma) {
                        break;
                    }
                }
            }
            cur.expect(&TokenKind::RParen)?;
            let body = parse_rhs(cur)?;
            Ok(Expr::Lambda {
                params,
                body: Box::new(body),
            })
        }
        TokenKind::Ident(name) => {
            cur.next();
            if cur.eat(&TokenKind::LParen) {
                let mut args = Vec::new();
                if *cur.peek() != TokenKind::RParen {
                    args.push(parse_rhs(cur)?);
                    while cur.eat(&TokenKind::Comma) {
                        args.push(parse_rhs(cur)?);
                    }
                }
                cur.expect(&TokenKind::RParen)?;
                Ok(Expr::Apply {
                    op: sym(&name),
                    args,
                })
            } else {
                Ok(Expr::Name(sym(&name)))
            }
        }
        other => {
            if let Some(opname) = other.infix_name() {
                let opname = opname.to_string();
                cur.next();
                cur.expect(&TokenKind::LParen)?;
                let mut args = vec![parse_rhs(cur)?];
                while cur.eat(&TokenKind::Comma) {
                    args.push(parse_rhs(cur)?);
                }
                cur.expect(&TokenKind::RParen)?;
                return Ok(Expr::Apply {
                    op: sym(&opname),
                    args,
                });
            }
            Err(cur.error(&format!("unexpected token `{other}` in rule template")))
        }
    }
}

/// A template type: `$var` placeholder, `stream($var)`, or a plain type
/// name applied to template types.
fn parse_template_type(cur: &mut Cursor) -> Result<DataType, ParseError> {
    if let TokenKind::DollarIdent(v) = cur.peek().clone() {
        cur.next();
        return Ok(DataType::atom(&format!("${v}")));
    }
    let name = cur.ident()?;
    if cur.eat(&TokenKind::LParen) {
        let mut args = Vec::new();
        args.push(TypeArg::Type(parse_template_type(cur)?));
        while cur.eat(&TokenKind::Comma) {
            args.push(TypeArg::Type(parse_template_type(cur)?));
        }
        cur.expect(&TokenKind::RParen)?;
        return Ok(DataType::Cons(sym(&name), args));
    }
    Ok(DataType::Cons(sym(&name), Vec::new()))
}

fn parse_condition(cur: &mut Cursor) -> Result<Condition, ParseError> {
    if cur.eat_keyword("not") {
        let inner = parse_condition(cur)?;
        return Ok(Condition::negated(inner));
    }
    let first = cur.ident()?;
    match first.as_str() {
        "rep" => {
            cur.expect(&TokenKind::LParen)?;
            let model = cur.ident()?;
            cur.expect(&TokenKind::Comma)?;
            let rep = cur.ident()?;
            cur.expect(&TokenKind::RParen)?;
            Ok(Condition::catalog_link("rep", &model, &rep))
        }
        // link(catalog, model, repvar) — like rep(...) for any catalog.
        "link" => {
            cur.expect(&TokenKind::LParen)?;
            let cat = cur.ident()?;
            cur.expect(&TokenKind::Comma)?;
            let model = cur.ident()?;
            cur.expect(&TokenKind::Comma)?;
            let rep = cur.ident()?;
            cur.expect(&TokenKind::RParen)?;
            Ok(Condition::catalog_link(&cat, &model, &rep))
        }
        "key" => {
            cur.expect(&TokenKind::LParen)?;
            let rep = cur.ident()?;
            cur.expect(&TokenKind::Comma)?;
            let attr = cur.ident()?;
            cur.expect(&TokenKind::RParen)?;
            Ok(Condition::btree_key_is(&rep, &attr))
        }
        "lsdbbox" => {
            cur.expect(&TokenKind::LParen)?;
            let lsd = cur.ident()?;
            cur.expect(&TokenKind::Comma)?;
            let f = cur.ident()?;
            cur.expect(&TokenKind::RParen)?;
            Ok(Condition::lsd_indexes_bbox_of(&lsd, &f))
        }
        "const" => {
            cur.expect(&TokenKind::LParen)?;
            let v = cur.ident()?;
            cur.expect(&TokenKind::RParen)?;
            Ok(Condition::IsConst(sym(&v)))
        }
        var => {
            // `v : typepattern`
            cur.expect(&TokenKind::Colon)?;
            let pattern = parse_cond_type_pattern(cur)?;
            Ok(Condition::type_is(var, pattern))
        }
    }
}

/// `tp := IDENT | IDENT ( tp, ... )` — binders-by-name as in quantifier
/// patterns.
fn parse_cond_type_pattern(cur: &mut Cursor) -> Result<TypePattern, ParseError> {
    let name = cur.ident()?;
    if cur.eat(&TokenKind::LParen) {
        let mut args = vec![parse_cond_type_pattern(cur)?];
        while cur.eat(&TokenKind::Comma) {
            args.push(parse_cond_type_pattern(cur)?);
        }
        cur.expect(&TokenKind::RParen)?;
        Ok(TypePattern {
            binder: None,
            node: PatternNode::Cons(sym(&name), args),
        })
    } else {
        Ok(TypePattern {
            binder: Some(sym(&name)),
            node: PatternNode::Any,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_simple_select_rule() {
        let rules = parse_rules(
            "rule select-scan:
               vars rel1 obj;
               lhs select(rel1, pred);
               rhs consume(filter(feed(rep1), pred));
               where rep(rel1, rep1);",
        )
        .unwrap();
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].name, "select-scan");
        assert!(matches!(rules[0].lhs, TermPattern::Apply { .. }));
        assert_eq!(rules[0].conditions.len(), 1);
    }

    #[test]
    fn parses_the_section5_rule() {
        let rules = parse_rules(
            "rule join-inside-lsdtree:
               vars rel1 obj, rel2 obj;
               funvars pointf(t1), regionf(t2);
               lhs join(rel1, rel2, fun (t1, t2) inside(pointf(t1), regionf(t2)));
               rhs consume(search_join(feed(rep1),
                     fun (t1: $t1) filter(point_search(lsd2, pointf(t1)),
                       fun (t2: $t2) inside(pointf(t1), regionf(t2)))));
               where rep(rel1, rep1), rep(rel2, lsd2),
                     lsd2 : lsdtree(tuple2, f), lsdbbox(lsd2, regionf);",
        )
        .unwrap();
        assert_eq!(rules.len(), 1);
        let r = &rules[0];
        assert_eq!(r.conditions.len(), 4);
        // The lambda in the LHS binds t1/t2, and the funvars became
        // FunApp patterns.
        let shown = format!("{:?}", r.lhs);
        assert!(shown.contains("FunApp"), "{shown}");
    }

    #[test]
    fn parses_key_and_negated_conditions() {
        let rules = parse_rules(
            "rule modify-nonkey:
               vars rel1 obj, a const;
               lhs modify(rel1, pred, a, f);
               rhs modify(b1, filter(feed(b1), pred), fun (s: stream($tuple1)) replace(s, a, f));
               where rel1 : rel(tuple1), rep(rel1, b1), not key(b1, a);",
        )
        .unwrap();
        assert!(matches!(rules[0].conditions[2], Condition::Not(_)));
    }

    #[test]
    fn rejects_misapplied_funvars() {
        let err = parse_rules(
            "rule bad:
               funvars f(t1);
               lhs select(r, fun (t1) f(x));
               rhs r;",
        );
        assert!(err.is_err());
    }

    #[test]
    fn multiple_rules_in_one_file() {
        let rules = parse_rules(
            "rule a: lhs f(x); rhs x;
             rule b: lhs g(x); rhs x;",
        )
        .unwrap();
        assert_eq!(rules.len(), 2);
    }
}
