//! Witness synthesis: type-directed enumeration of well-typed plan
//! fragments matching a rule's left-hand side, and the rule
//! type-preservation verifier built on it (the engine behind the `L006`
//! lint and the rule fuzzer).
//!
//! A rewrite rule is checked *semantically*, not by inspecting its
//! template syntax: we build a small canonical [`Scenario`] (model
//! relations with representation objects linked through a `rep`
//! catalog), enumerate candidate terms shaped like the rule's LHS
//! pattern, keep the ones the checker accepts, and run a one-rule
//! optimizer over each witness. A rule is unsound when some witness
//! rewrite fails to re-check (ill-typed RHS) or re-checks at a type
//! that is not representation-equivalent to the witness's type (see
//! [`crate::types_equivalent`]).

use crate::pattern::{OpPat, TermPattern};
use crate::rewrite::{Optimizer, Rule, RuleStep, Strategy};
use crate::validate::Validation;
use crate::OptError;
use sos_catalog::Catalog;
use sos_core::check::Checker;
use sos_core::typed::TypedExpr;
use sos_core::{Const, DataType, Expr, Signature, Symbol, TypeArg};

/// Per-node cap on enumerated candidate terms (the cartesian product of
/// argument candidates is truncated here, earliest combinations first).
const NODE_CAP: usize = 4096;

/// Default number of well-typed witnesses collected per rule.
pub const DEFAULT_WITNESSES: usize = 8;

/// A canonical database the verifier checks rules against: a handful of
/// model relations covering the builtin attribute types (int, string,
/// point, polygon), each linked to representation objects — a clustering
/// B-tree, scannable `srel`s and an LSD-tree — through a catalog named
/// `rep`, the name the paper's Section 5 rules consult.
pub struct Scenario {
    pub catalog: Catalog,
    /// Model (rel-typed) objects, in creation order: `(name, tuple type)`.
    pub models: Vec<(Symbol, DataType)>,
}

/// Object definitions `(name, type)` in creation order.
pub type ObjectDefs = Vec<(Symbol, DataType)>;
/// `rep` catalog links `(model, representation)`.
pub type RepLinks = Vec<(Symbol, Symbol)>;

/// The scenario's object set: `(name, type)` in creation order, plus the
/// `rep` catalog links `(model, representation)`. Exposed so the rule
/// fuzzer can install the same objects into a live database.
pub fn object_defs() -> (ObjectDefs, RepLinks) {
    let t_item = DataType::tuple(vec![
        (Symbol::new("k"), DataType::atom("int")),
        (Symbol::new("name"), DataType::atom("string")),
    ]);
    let t_ord = DataType::tuple(vec![
        (Symbol::new("k2"), DataType::atom("int")),
        (Symbol::new("label"), DataType::atom("string")),
    ]);
    let t_pt = DataType::tuple(vec![
        (Symbol::new("cid"), DataType::atom("int")),
        (Symbol::new("center"), DataType::atom("point")),
    ]);
    let t_st = DataType::tuple(vec![
        (Symbol::new("sname"), DataType::atom("string")),
        (Symbol::new("region"), DataType::atom("pgon")),
    ]);
    let btree_on = |t: &DataType, key: &str| {
        DataType::Cons(
            Symbol::new("btree"),
            vec![
                TypeArg::Type(t.clone()),
                TypeArg::Expr(Expr::Const(Const::Ident(Symbol::new(key)))),
                TypeArg::Type(DataType::atom("int")),
            ],
        )
    };
    let btree_item = btree_on(&t_item, "k");
    // A btree on a *differently-attributed* relation: equi-join witnesses
    // need an indexed inner whose tuple type differs from the outer's
    // (identical attribute sets are rejected by the join checker).
    let btree_ord = btree_on(&t_ord, "k2");
    let srel = |t: &DataType| DataType::Cons(Symbol::new("srel"), vec![TypeArg::Type(t.clone())]);
    // `lsdtree(t_st, fun (s) bbox(region(s)))` — the key function shape
    // the `lsdbbox` condition recognizes.
    let lsd_key = Expr::Lambda {
        params: vec![(Symbol::new("s"), t_st.clone())],
        body: Box::new(Expr::Apply {
            op: Symbol::new("bbox"),
            args: vec![Expr::Apply {
                op: Symbol::new("region"),
                args: vec![Expr::Name(Symbol::new("s"))],
            }],
        }),
    };
    let lsd_st = DataType::Cons(
        Symbol::new("lsdtree"),
        vec![TypeArg::Type(t_st.clone()), TypeArg::Expr(lsd_key)],
    );
    let catalog_ty = DataType::Cons(
        Symbol::new("catalog"),
        vec![TypeArg::List(vec![
            TypeArg::Type(DataType::atom("ident")),
            TypeArg::Type(DataType::atom("ident")),
        ])],
    );
    let objects = vec![
        (Symbol::new("fz_items"), DataType::rel(t_item.clone())),
        (Symbol::new("fz_items_btree"), btree_item),
        (Symbol::new("fz_items_srel"), srel(&t_item)),
        (Symbol::new("fz_items_b"), DataType::rel(t_item.clone())),
        (Symbol::new("fz_items_b_srel"), srel(&t_item)),
        (Symbol::new("fz_orders"), DataType::rel(t_ord.clone())),
        (Symbol::new("fz_orders_srel"), srel(&t_ord)),
        (Symbol::new("fz_orders_btree"), btree_ord),
        (Symbol::new("fz_points"), DataType::rel(t_pt.clone())),
        (Symbol::new("fz_points_srel"), srel(&t_pt)),
        (Symbol::new("fz_regions"), DataType::rel(t_st.clone())),
        (Symbol::new("fz_regions_lsd"), lsd_st),
        (Symbol::new("fz_regions_srel"), srel(&t_st)),
        (Symbol::new("rep"), catalog_ty),
    ];
    let links = vec![
        (Symbol::new("fz_items"), Symbol::new("fz_items_btree")),
        (Symbol::new("fz_items"), Symbol::new("fz_items_srel")),
        (Symbol::new("fz_items_b"), Symbol::new("fz_items_b_srel")),
        (Symbol::new("fz_orders"), Symbol::new("fz_orders_srel")),
        (Symbol::new("fz_orders"), Symbol::new("fz_orders_btree")),
        (Symbol::new("fz_points"), Symbol::new("fz_points_srel")),
        (Symbol::new("fz_regions"), Symbol::new("fz_regions_lsd")),
        (Symbol::new("fz_regions"), Symbol::new("fz_regions_srel")),
    ];
    (objects, links)
}

impl Scenario {
    /// Build the canonical scenario under a signature. Object creation
    /// never fails structurally (types are not validated by the
    /// catalog); under a signature missing the builtin constructors the
    /// witnesses simply fail to check and every rule reports
    /// [`Verdict::NeverFired`].
    pub fn build(sig: &Signature) -> Scenario {
        let mut catalog = Catalog::default();
        let (objects, links) = object_defs();
        let mut models = Vec::new();
        for (name, ty) in objects {
            if let DataType::Cons(c, args) = &ty {
                if c.as_str() == "rel" {
                    if let Some(TypeArg::Type(t)) = args.first() {
                        models.push((name.clone(), t.clone()));
                    }
                }
            }
            let _ = catalog.create_object(sig, name, ty);
        }
        for (model, rep) in links {
            let _ = catalog.catalog_insert(
                &Symbol::new("rep"),
                vec![Const::Ident(model), Const::Ident(rep)],
            );
        }
        Scenario { catalog, models }
    }

    /// The distinct tuple types of the scenario's model objects, in
    /// first-appearance order.
    fn tuple_types(&self) -> Vec<DataType> {
        let mut out: Vec<DataType> = Vec::new();
        for (_, t) in &self.models {
            if !out.contains(t) {
                out.push(t.clone());
            }
        }
        out
    }
}

/// A canonical constant of an attribute type, where one exists.
fn const_of(ty: &DataType) -> Option<Const> {
    match ty.cons_name()?.as_str() {
        "int" => Some(Const::Int(7)),
        "string" => Some(Const::Str("x".into())),
        "bool" => Some(Const::Bool(true)),
        _ => None,
    }
}

fn app(op: &Symbol, args: Vec<Expr>) -> Expr {
    Expr::Apply {
        op: op.clone(),
        args,
    }
}

fn attr_app(attr: &Symbol, var: &Symbol) -> Expr {
    app(attr, vec![Expr::Name(var.clone())])
}

/// Lambda parameters in scope during enumeration: pattern parameter
/// name, the actual parameter symbol used in generated terms, and its
/// (tuple) type.
type Env = Vec<(Symbol, Symbol, DataType)>;

struct Gen<'a> {
    scenario: &'a Scenario,
    checker: Checker<'a>,
    tuple_types: Vec<DataType>,
}

impl Gen<'_> {
    /// Candidate subterms for an unconstrained hole inside a lambda:
    /// the parameters themselves, their attribute projections,
    /// attribute-constant comparisons, `true`, and cross-parameter
    /// equalities — enough to exercise every builtin predicate shape.
    fn fun_universe(&self, env: &Env) -> Vec<Expr> {
        let mut out = Vec::new();
        for (_, actual, ty) in env {
            for (a, _) in ty.tuple_attrs().unwrap_or_default() {
                out.push(attr_app(&a, actual));
            }
        }
        for (_, actual, ty) in env {
            for (a, d) in ty.tuple_attrs().unwrap_or_default() {
                if let Some(c) = const_of(&d) {
                    out.push(app(
                        &Symbol::new("="),
                        vec![attr_app(&a, actual), Expr::Const(c)],
                    ));
                }
            }
        }
        out.push(Expr::Const(Const::Bool(true)));
        for (i, (_, a1, t1)) in env.iter().enumerate() {
            for (_, a2, t2) in env.iter().skip(i + 1) {
                for (x, dx) in t1.tuple_attrs().unwrap_or_default() {
                    for (y, dy) in t2.tuple_attrs().unwrap_or_default() {
                        if dx == dy {
                            out.push(app(
                                &Symbol::new("="),
                                vec![attr_app(&x, a1), attr_app(&y, a2)],
                            ));
                        }
                    }
                }
            }
        }
        for (_, actual, _) in env {
            out.push(Expr::Name(actual.clone()));
        }
        out
    }

    /// Candidate terms for a top-level (closed) hole: predicate
    /// lambdas, attribute-projection lambdas, `mktuple` literals, plain
    /// constants, and the scenario objects.
    fn hole_universe(&self) -> Vec<Expr> {
        let mut out = Vec::new();
        for t in &self.tuple_types {
            for (a, d) in t.tuple_attrs().unwrap_or_default() {
                if let Some(c) = const_of(&d) {
                    out.push(Expr::Lambda {
                        params: vec![(Symbol::new("t"), t.clone())],
                        body: Box::new(app(
                            &Symbol::new("="),
                            vec![attr_app(&a, &Symbol::new("t")), Expr::Const(c)],
                        )),
                    });
                }
            }
        }
        for t in &self.tuple_types {
            for (a, _) in t.tuple_attrs().unwrap_or_default() {
                out.push(Expr::Lambda {
                    params: vec![(Symbol::new("t"), t.clone())],
                    body: Box::new(attr_app(&a, &Symbol::new("t"))),
                });
            }
        }
        for t in &self.tuple_types {
            let attrs = t.tuple_attrs().unwrap_or_default();
            let pairs: Vec<Expr> = attrs
                .iter()
                .filter_map(|(a, d)| {
                    let c = const_of(d)?;
                    Some(Expr::Tuple(vec![
                        Expr::Const(Const::Ident(a.clone())),
                        Expr::Const(c),
                    ]))
                })
                .collect();
            if pairs.len() == attrs.len() {
                out.push(app(&Symbol::new("mktuple"), vec![Expr::List(pairs)]));
            }
        }
        out.push(Expr::Const(Const::Int(7)));
        out.push(Expr::Const(Const::Str("x".into())));
        for (name, _) in &self.scenario.models {
            out.push(Expr::Name(name.clone()));
        }
        out
    }

    /// Constants tried for a `ConstVar`: plain values plus every
    /// attribute name of the scenario (for attrname arguments).
    fn const_universe(&self) -> Vec<Expr> {
        let mut out = vec![
            Expr::Const(Const::Int(7)),
            Expr::Const(Const::Str("x".into())),
        ];
        for t in &self.tuple_types {
            for (a, _) in t.tuple_attrs().unwrap_or_default() {
                out.push(Expr::Const(Const::Ident(a)));
            }
        }
        out
    }

    fn gen(&self, pat: &TermPattern, env: &Env) -> Vec<Expr> {
        match pat {
            TermPattern::Var(_) => {
                if env.is_empty() {
                    self.hole_universe()
                } else {
                    self.fun_universe(env)
                }
            }
            TermPattern::ObjectVar(_) => self
                .scenario
                .models
                .iter()
                .map(|(n, _)| Expr::Name(n.clone()))
                .collect(),
            TermPattern::ConstVar(_) => self.const_universe(),
            TermPattern::Const(c) => vec![Expr::Const(c.clone())],
            TermPattern::Param(p) => env
                .iter()
                .find(|(pn, _, _)| pn == p)
                .map(|(_, actual, _)| vec![Expr::Name(actual.clone())])
                .unwrap_or_default(),
            TermPattern::As(_, inner) => self.gen(inner, env),
            TermPattern::AsFun { inner, .. } => self.gen(inner, env),
            TermPattern::FunApp { .. } => self.fun_universe(env),
            TermPattern::Apply { op, args } => {
                // An operator variable applied to a single lambda
                // parameter is an attribute access: enumerate the
                // parameter's attributes.
                if let (OpPat::Var(_), [TermPattern::Param(p)]) = (op, args.as_slice()) {
                    let Some((_, actual, ty)) = env.iter().find(|(pn, _, _)| pn == p) else {
                        return Vec::new();
                    };
                    return ty
                        .tuple_attrs()
                        .unwrap_or_default()
                        .into_iter()
                        .map(|(a, _)| attr_app(&a, actual))
                        .collect();
                }
                let OpPat::Exact(opname) = op else {
                    return Vec::new();
                };
                let parts: Vec<Vec<Expr>> = args.iter().map(|a| self.gen(a, env)).collect();
                cartesian(&parts)
                    .into_iter()
                    .map(|row| app(opname, row))
                    .collect()
            }
            TermPattern::Lambda { params, body } => {
                let type_choices: Vec<Vec<DataType>> =
                    params.iter().map(|_| self.tuple_types.clone()).collect();
                let mut out = Vec::new();
                for assignment in cartesian(&type_choices) {
                    let mut inner_env = env.clone();
                    for (p, t) in params.iter().zip(&assignment) {
                        inner_env.push((p.clone(), p.clone(), t.clone()));
                    }
                    for b in self.gen(body, &inner_env) {
                        let lam = Expr::Lambda {
                            params: params
                                .iter()
                                .zip(&assignment)
                                .map(|(p, t)| (p.clone(), t.clone()))
                                .collect(),
                            body: Box::new(b),
                        };
                        // A lambda whose parameters are all in scope here
                        // is closed: pre-prune ill-typed bodies so the
                        // enclosing cartesian product stays small.
                        if env.is_empty() && self.checker.check_expr(&lam).is_err() {
                            continue;
                        }
                        out.push(lam);
                        if out.len() >= NODE_CAP {
                            return out;
                        }
                    }
                }
                out
            }
        }
    }
}

/// Truncated cartesian product, earliest combinations (leftmost factor
/// varying slowest) first.
fn cartesian<T: Clone>(parts: &[Vec<T>]) -> Vec<Vec<T>> {
    let mut out: Vec<Vec<T>> = vec![Vec::new()];
    for part in parts {
        let mut next = Vec::new();
        'expand: for prefix in &out {
            for item in part {
                let mut row = prefix.clone();
                row.push(item.clone());
                next.push(row);
                if next.len() >= NODE_CAP {
                    break 'expand;
                }
            }
        }
        out = next;
        if out.is_empty() {
            return out;
        }
    }
    out
}

/// Enumerate up to `max` well-typed witnesses for a rule's LHS against
/// a scenario. Deterministic: candidates are generated in a fixed order
/// and checked in sequence.
pub fn witnesses(sig: &Signature, scenario: &Scenario, rule: &Rule, max: usize) -> Vec<TypedExpr> {
    let checker = Checker {
        sig,
        objects: &scenario.catalog,
    };
    let tuple_types = scenario.tuple_types();
    let g = Gen {
        scenario,
        checker: Checker {
            sig,
            objects: &scenario.catalog,
        },
        tuple_types,
    };
    let mut out = Vec::new();
    for cand in g.gen(&rule.lhs, &Vec::new()) {
        if let Ok(t) = checker.check_expr(&cand) {
            out.push(t);
            if out.len() >= max {
                break;
            }
        }
    }
    out
}

/// The verdict of verifying one rule against the scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The rule fired on `fired` witnesses and preserved the plan type
    /// (modulo representation) on every one.
    Preserves { fired: usize },
    /// No enumerated witness made the rule fire — nothing to judge.
    /// (`witnesses` well-typed LHS instances were tried.)
    NeverFired { witnesses: usize },
    /// Rewriting `witness` produced a term the checker rejects.
    IllTyped { witness: String, error: String },
    /// Rewriting `witness` changed the plan's result type.
    TypeChanged { witness: String, detail: String },
}

/// One rule's verification result.
#[derive(Debug, Clone)]
pub struct RuleReport {
    pub step: String,
    pub rule: String,
    pub verdict: Verdict,
}

/// Verify one rule: run a one-rule optimizer over every witness and
/// report the first violation, if any.
pub fn verify_rule(sig: &Signature, scenario: &Scenario, step_name: &str, rule: &Rule) -> Verdict {
    let ws = witnesses(sig, scenario, rule, DEFAULT_WITNESSES);
    let one = Optimizer::new(vec![RuleStep {
        name: step_name.to_string(),
        rules: vec![rule.clone()],
        strategy: Strategy::OnceTopDown,
        budget: 8,
    }]);
    let checker = Checker {
        sig,
        objects: &scenario.catalog,
    };
    let mut fired = 0;
    for w in &ws {
        match one.optimize_traced_with(w, &checker, &scenario.catalog, Validation::Count) {
            Err(OptError::Recheck { error, .. }) => {
                return Verdict::IllTyped {
                    witness: w.to_string(),
                    error: error.to_string(),
                };
            }
            Err(_) => continue,
            Ok((_, _, trace)) => {
                if trace.is_empty() {
                    continue;
                }
                fired += 1;
                if let Some(reason) = trace.iter().find_map(|a| a.validation_failure.clone()) {
                    return Verdict::TypeChanged {
                        witness: w.to_string(),
                        detail: reason,
                    };
                }
            }
        }
    }
    if fired > 0 {
        Verdict::Preserves { fired }
    } else {
        Verdict::NeverFired {
            witnesses: ws.len(),
        }
    }
}

/// Verify every rule of an optimizer against the canonical scenario.
/// Cost-based alternatives are verified as derived rules: the primary's
/// LHS, the primary's conditions extended by the alternative's, and the
/// alternative's template — so an alternative that could break type
/// preservation is caught exactly like a broken primary rule.
pub fn verify_optimizer(sig: &Signature, opt: &Optimizer) -> Vec<RuleReport> {
    let scenario = Scenario::build(sig);
    let mut out = Vec::new();
    for step in &opt.steps {
        for rule in &step.rules {
            out.push(RuleReport {
                step: step.name.clone(),
                rule: rule.name.clone(),
                verdict: verify_rule(sig, &scenario, &step.name, rule),
            });
            for alt in &rule.alternatives {
                let derived = Rule {
                    name: alt.name.clone(),
                    lhs: rule.lhs.clone(),
                    conditions: rule
                        .conditions
                        .iter()
                        .chain(alt.conditions.iter())
                        .cloned()
                        .collect(),
                    rhs: alt.rhs.clone(),
                    alternatives: Vec::new(),
                };
                out.push(RuleReport {
                    step: step.name.clone(),
                    rule: alt.name.clone(),
                    verdict: verify_rule(sig, &scenario, &step.name, &derived),
                });
            }
        }
    }
    out
}
