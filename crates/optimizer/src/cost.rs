//! A page-touch cost model over typed terms, fed by catalog statistics.
//!
//! The model walks a (typed) plan bottom-up and produces, per node, an
//! estimated output cardinality and an estimated number of page touches.
//! The rewrite driver uses the total page estimate to choose among rule
//! alternatives (index access vs scan, hash join vs index-probe join);
//! `EXPLAIN ANALYZE` renders the per-operator cardinalities next to the
//! measured ones.
//!
//! Estimates are deliberately coarse: equi-width histograms on B-tree
//! key attributes (and rect center-x for `lsdtree`) give selectivities
//! for comparisons against known literals; everything else falls back to
//! the classic System-R default fractions. When a plan comes out of the
//! plan cache its literals are sentinel placeholders — those are passed
//! in as `unknown` constants so the model uses the generic defaults
//! instead of looking sentinels up in histograms.

use sos_catalog::{Catalog, ObjectStats};
use sos_core::typed::{TypedExpr, TypedNode};
use sos_core::{Const, DataType, Symbol, TypeArg};

/// Default row count assumed for objects without statistics.
const DEFAULT_ROWS: f64 = 1000.0;
/// Tuples assumed to fit on one page when the catalog has no page count.
const TUPLES_PER_PAGE: f64 = 64.0;
/// Default selectivity of an equality predicate.
const SEL_EQ: f64 = 0.1;
/// Default selectivity of a range predicate.
const SEL_RANGE: f64 = 1.0 / 3.0;
/// Default selectivity of an unknown predicate.
const SEL_OTHER: f64 = 0.5;
/// Default fraction of an lsdtree touched by a spatial probe.
const SEL_SPATIAL: f64 = 0.1;

/// Estimated cardinality and page touches for one (sub)term.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Estimated number of tuples the node produces.
    pub rows: f64,
    /// Estimated cumulative page touches to produce them.
    pub pages: f64,
}

/// The page-touch cost model: a catalog (for statistics) plus the set of
/// constants whose values must not be trusted (plan-cache sentinels).
pub struct CostModel<'a> {
    catalog: &'a Catalog,
    unknown: Vec<Const>,
}

/// Internal per-node result: the estimate plus the storage object the
/// stream (if any) originates from, so filters above a `feed` can consult
/// that object's histogram.
#[derive(Debug, Clone)]
struct Flow {
    est: Estimate,
    /// The storage object whose tuples flow through this node.
    source: Option<Symbol>,
}

impl<'a> CostModel<'a> {
    pub fn new(catalog: &'a Catalog) -> CostModel<'a> {
        CostModel {
            catalog,
            unknown: Vec::new(),
        }
    }

    /// A model that treats the given constants as unknown parameters
    /// (selectivity defaults instead of histogram lookups).
    pub fn with_unknown(catalog: &'a Catalog, unknown: Vec<Const>) -> CostModel<'a> {
        CostModel { catalog, unknown }
    }

    /// Total estimated page touches for a whole term — the quantity the
    /// rewrite driver minimizes when choosing among rule alternatives.
    pub fn page_cost(&self, term: &TypedExpr) -> f64 {
        self.flow(term).est.pages
    }

    /// Estimated output cardinality of a term.
    pub fn cardinality(&self, term: &TypedExpr) -> f64 {
        self.flow(term).est.rows
    }

    /// Per-operator estimated cardinalities in visit (top-down) order:
    /// `(operator, estimated rows)` for every plan-level `Apply` node.
    /// `EXPLAIN ANALYZE` joins these with the measured `ExecStats` rows.
    /// Lambda bodies are entered only when they produce a collection (a
    /// `search_join`'s inner stream function) — scalar predicate code is
    /// per-tuple arithmetic, not a plan operator.
    pub fn op_estimates(&self, term: &TypedExpr) -> Vec<(Symbol, f64)> {
        let mut out = Vec::new();
        self.collect_estimates(term, &mut out);
        out
    }

    fn collect_estimates(&self, t: &TypedExpr, out: &mut Vec<(Symbol, f64)>) {
        match &t.node {
            TypedNode::Apply { op, args, .. } => {
                out.push((op.clone(), self.flow(t).est.rows));
                for a in args {
                    self.collect_estimates(a, out);
                }
            }
            TypedNode::Lambda { body, .. } => {
                if matches!(&body.ty, DataType::Cons(c, args) if !args.is_empty() && c.as_str() != "tuple")
                {
                    self.collect_estimates(body, out);
                }
            }
            TypedNode::List(items) | TypedNode::Tuple(items) => {
                for i in items {
                    self.collect_estimates(i, out);
                }
            }
            TypedNode::ApplyFun { fun, args } => {
                self.collect_estimates(fun, out);
                for a in args {
                    self.collect_estimates(a, out);
                }
            }
            TypedNode::Object(_) | TypedNode::Const(_) | TypedNode::Var(_) => {}
        }
    }

    fn stats_of(&self, name: &Symbol) -> Option<&ObjectStats> {
        self.catalog.stats(name)
    }

    fn object_flow(&self, name: &Symbol) -> Flow {
        let est = match self.stats_of(name) {
            Some(s) => Estimate {
                rows: s.rows as f64,
                pages: (s.pages as f64).max(1.0),
            },
            None => Estimate {
                rows: DEFAULT_ROWS,
                pages: (DEFAULT_ROWS / TUPLES_PER_PAGE).max(1.0),
            },
        };
        Flow {
            est,
            source: Some(name.clone()),
        }
    }

    /// Is `c` a plan-cache sentinel whose value must not be trusted?
    fn is_unknown(&self, c: &Const) -> bool {
        self.unknown.contains(c)
    }

    fn numeric(&self, t: &TypedExpr) -> Option<f64> {
        match &t.node {
            TypedNode::Const(c) if !self.is_unknown(c) => match c {
                Const::Int(v) => Some(*v as f64),
                Const::Real(v) => Some(*v),
                _ => None,
            },
            _ => None,
        }
    }

    /// Selectivity of comparing the histogrammed key attribute of
    /// `source` with a known literal; `None` when no histogram applies.
    fn histogram_fraction(
        &self,
        source: Option<&Symbol>,
        attr: &Symbol,
        cmp: &str,
        v: f64,
    ) -> Option<f64> {
        let stats = self.stats_of(source?)?;
        if stats.key_attr.as_ref() != Some(attr) {
            return None;
        }
        let h = stats.key_histogram.as_ref()?;
        Some(match cmp {
            "=" => h.fraction_eq(v),
            "<=" => h.fraction_le(v),
            ">=" => h.fraction_ge(v),
            "<" => (h.fraction_le(v) - h.fraction_eq(v)).max(0.0),
            ">" => (h.fraction_ge(v) - h.fraction_eq(v)).max(0.0),
            _ => return None,
        })
    }

    /// Selectivity of a boolean predicate body over tuples of `source`.
    /// `param` is the lambda's tuple parameter.
    fn predicate_selectivity(
        &self,
        body: &TypedExpr,
        param: Option<&Symbol>,
        source: Option<&Symbol>,
    ) -> f64 {
        if let TypedNode::Apply { op, args, .. } = &body.node {
            match op.as_str() {
                "and" if args.len() == 2 => {
                    return self.predicate_selectivity(&args[0], param, source)
                        * self.predicate_selectivity(&args[1], param, source);
                }
                "or" if args.len() == 2 => {
                    let a = self.predicate_selectivity(&args[0], param, source);
                    let b = self.predicate_selectivity(&args[1], param, source);
                    return (a + b - a * b).clamp(0.0, 1.0);
                }
                "not" if args.len() == 1 => {
                    return (1.0 - self.predicate_selectivity(&args[0], param, source))
                        .clamp(0.0, 1.0);
                }
                "=" | "<=" | ">=" | "<" | ">" if args.len() == 2 => {
                    // `a(t) cmp const` (either side) with a histogram on a.
                    for (lhs, rhs, cmp) in [
                        (&args[0], &args[1], op.as_str()),
                        (&args[1], &args[0], flipped(op.as_str())),
                    ] {
                        let (Some(attr), Some(v)) =
                            (attr_projection(lhs, param), self.numeric(rhs))
                        else {
                            continue;
                        };
                        if let Some(fr) = self.histogram_fraction(source, &attr, cmp, v) {
                            return fr.clamp(0.0, 1.0);
                        }
                    }
                    return if op.as_str() == "=" {
                        SEL_EQ
                    } else {
                        SEL_RANGE
                    };
                }
                _ => {}
            }
        }
        SEL_OTHER
    }

    fn flow(&self, term: &TypedExpr) -> Flow {
        match &term.node {
            TypedNode::Object(name) => self.object_flow(name),
            TypedNode::Const(_) | TypedNode::Var(_) => Flow {
                est: Estimate {
                    rows: 1.0,
                    pages: 0.0,
                },
                source: None,
            },
            TypedNode::Lambda { body, .. } => self.flow(body),
            TypedNode::List(items) | TypedNode::Tuple(items) => {
                let pages = items.iter().map(|i| self.flow(i).est.pages).sum();
                Flow {
                    est: Estimate { rows: 1.0, pages },
                    source: None,
                }
            }
            TypedNode::ApplyFun { fun, args } => {
                // A view/lambda call: cost the body plus the arguments.
                let mut f = self.flow(fun);
                for a in args {
                    f.est.pages += self.flow(a).est.pages;
                }
                f
            }
            TypedNode::Apply { op, args, .. } => self.apply_flow(op, args),
        }
    }

    fn apply_flow(&self, op: &Symbol, args: &[TypedExpr]) -> Flow {
        match (op.as_str(), args) {
            // Stream sources.
            ("feed", [rel]) => self.flow(rel),
            // Filter / select keep the source, scale rows by predicate
            // selectivity. Page touches: the input's (plus nothing — the
            // predicate runs over tuples already read).
            ("filter" | "select", [input, pred]) => {
                let inf = self.flow(input);
                let (param, body) = lambda_parts(pred);
                let sel =
                    self.predicate_selectivity(body.unwrap_or(pred), param, inf.source.as_ref());
                Flow {
                    est: Estimate {
                        rows: (inf.est.rows * sel).max(0.0),
                        pages: inf.est.pages,
                    },
                    source: inf.source,
                }
            }
            // B-tree probes: descend the tree (≈ its height) then read
            // the qualifying fraction.
            ("exactmatch", [tree, key]) => self.btree_probe(tree, "=", self.numeric(key)),
            ("range_from", [tree, key]) => self.btree_probe(tree, ">=", self.numeric(key)),
            ("range_to", [tree, key]) => self.btree_probe(tree, "<=", self.numeric(key)),
            ("range", [tree, lo, hi]) => self.btree_range(tree, self.numeric(lo), self.numeric(hi)),
            // Spatial probes.
            ("point_search" | "overlap_search", [tree, _probe]) => {
                let tf = self.flow(tree);
                let rows = (tf.est.rows * SEL_SPATIAL).max(0.0);
                Flow {
                    est: Estimate {
                        rows,
                        pages: probe_pages(tf.est.pages, rows),
                    },
                    source: tf.source,
                }
            }
            // Hash join: read both inputs once; output via the classic
            // containment assumption.
            ("hashjoin", [left, right, _a1, _a2]) => {
                let lf = self.flow(left);
                let rf = self.flow(right);
                let rows = join_rows(lf.est.rows, rf.est.rows);
                Flow {
                    est: Estimate {
                        rows,
                        pages: lf.est.pages + rf.est.pages,
                    },
                    source: None,
                }
            }
            // Search join: the inner stream function runs once per outer
            // tuple.
            ("search_join", [outer, inner]) => {
                let of = self.flow(outer);
                let inner_f = self.flow(inner);
                Flow {
                    est: Estimate {
                        rows: of.est.rows * inner_f.est.rows,
                        pages: of.est.pages + of.est.rows * inner_f.est.pages,
                    },
                    source: None,
                }
            }
            ("product" | "join", [left, right, ..]) => {
                let lf = self.flow(left);
                let rf = self.flow(right);
                let rows = if op.as_str() == "join" {
                    join_rows(lf.est.rows, rf.est.rows)
                } else {
                    lf.est.rows * rf.est.rows
                };
                Flow {
                    est: Estimate {
                        rows,
                        pages: lf.est.pages + rf.est.pages,
                    },
                    source: None,
                }
            }
            // Aggregates collapse to one row.
            ("count" | "sum" | "min" | "max" | "avg", args2) => {
                let pages = args2.iter().map(|a| self.flow(a).est.pages).sum();
                Flow {
                    est: Estimate { rows: 1.0, pages },
                    source: None,
                }
            }
            ("head", [input, n]) => {
                let inf = self.flow(input);
                let rows = match self.numeric(n) {
                    Some(k) => inf.est.rows.min(k.max(0.0)),
                    None => inf.est.rows,
                };
                Flow {
                    est: Estimate {
                        rows,
                        pages: inf.est.pages,
                    },
                    source: inf.source,
                }
            }
            // Materialization: write the output pages too.
            ("consume", [input]) => {
                let inf = self.flow(input);
                Flow {
                    est: Estimate {
                        rows: inf.est.rows,
                        pages: inf.est.pages + (inf.est.rows / TUPLES_PER_PAGE).ceil(),
                    },
                    source: inf.source,
                }
            }
            ("project", [input, ..]) => self.flow(input),
            ("union", all) if !all.is_empty() => {
                let mut rows = 0.0;
                let mut pages = 0.0;
                for a in all {
                    let f = self.flow(a);
                    rows += f.est.rows;
                    pages += f.est.pages;
                }
                Flow {
                    est: Estimate { rows, pages },
                    source: None,
                }
            }
            // Unknown operator: sum children conservatively, keep the
            // widest child cardinality, propagate a single source.
            _ => {
                let mut rows: f64 = 1.0;
                let mut pages = 0.0;
                let mut source = None;
                for a in args {
                    let f = self.flow(a);
                    rows = rows.max(f.est.rows);
                    pages += f.est.pages;
                    if source.is_none() {
                        source = f.source;
                    }
                }
                Flow {
                    est: Estimate { rows, pages },
                    source,
                }
            }
        }
    }

    /// A one-sided B-tree probe (`exactmatch`, `range_from`, `range_to`).
    /// An equality probe with an unknown literal uses the unique-key
    /// assumption (≈ one row) — B-tree probes are keyed access, not a
    /// generic predicate.
    fn btree_probe(&self, tree: &TypedExpr, cmp: &str, v: Option<f64>) -> Flow {
        let tf = self.flow(tree);
        let generic = if cmp == "=" {
            1.0 / tf.est.rows.max(1.0)
        } else {
            SEL_RANGE
        };
        let frac = match (tf.source.as_ref(), v) {
            (Some(src), Some(v)) => self
                .stats_of(src)
                .and_then(|s| {
                    let h = s.key_histogram.as_ref()?;
                    Some(match cmp {
                        "=" => h.fraction_eq(v),
                        ">=" => h.fraction_ge(v),
                        "<=" => h.fraction_le(v),
                        _ => SEL_RANGE,
                    })
                })
                .unwrap_or(generic),
            _ => generic,
        };
        let rows = (tf.est.rows * frac.clamp(0.0, 1.0)).max(0.0);
        Flow {
            est: Estimate {
                rows,
                pages: probe_pages(tf.est.pages, rows),
            },
            source: tf.source,
        }
    }

    /// A two-sided B-tree `range` probe.
    fn btree_range(&self, tree: &TypedExpr, lo: Option<f64>, hi: Option<f64>) -> Flow {
        let tf = self.flow(tree);
        let frac = match (tf.source.as_ref(), lo, hi) {
            (Some(src), Some(lo), Some(hi)) => self
                .stats_of(src)
                .and_then(|s| Some(s.key_histogram.as_ref()?.fraction_range(lo, hi)))
                .unwrap_or(SEL_RANGE),
            _ => SEL_RANGE,
        };
        let rows = (tf.est.rows * frac.clamp(0.0, 1.0)).max(0.0);
        Flow {
            est: Estimate {
                rows,
                pages: probe_pages(tf.est.pages, rows),
            },
            source: tf.source,
        }
    }
}

/// Pages touched by an index probe that returns `rows` tuples out of a
/// structure occupying `total_pages`: a logarithmic descent plus the
/// leaf/data pages actually read.
fn probe_pages(total_pages: f64, rows: f64) -> f64 {
    let descent = total_pages.max(2.0).log2().ceil();
    descent + (rows / TUPLES_PER_PAGE).ceil()
}

/// Join output cardinality under the containment assumption: the join
/// key's distinct count is the larger side's cardinality.
fn join_rows(l: f64, r: f64) -> f64 {
    if l <= 0.0 || r <= 0.0 {
        return 0.0;
    }
    (l * r / l.max(r)).max(1.0)
}

/// Flip a comparison for `const cmp a(t)` written as `a(t) cmp' const`.
fn flipped(cmp: &str) -> &str {
    match cmp {
        "<=" => ">=",
        ">=" => "<=",
        "<" => ">",
        ">" => "<",
        other => other,
    }
}

/// Split a lambda into its first parameter name and body.
fn lambda_parts(t: &TypedExpr) -> (Option<&Symbol>, Option<&TypedExpr>) {
    match &t.node {
        TypedNode::Lambda { params, body } => (params.first().map(|(n, _)| n), Some(body)),
        _ => (None, None),
    }
}

/// `a(t)` for lambda parameter `t` → `Some(a)`.
fn attr_projection(e: &TypedExpr, param: Option<&Symbol>) -> Option<Symbol> {
    let TypedNode::Apply { op, args, .. } = &e.node else {
        return None;
    };
    if args.len() != 1 {
        return None;
    }
    match (&args[0].node, param) {
        (TypedNode::Var(v), Some(p)) if v == p => Some(op.clone()),
        (TypedNode::Var(_), None) => Some(op.clone()),
        _ => None,
    }
}

/// Extract the B-tree key attribute named in a `btree(tuple, attr, dt)`
/// object type — used by `analyze` to know which attribute to histogram.
pub fn btree_key_attr(ty: &DataType) -> Option<Symbol> {
    let DataType::Cons(cons, args) = ty else {
        return None;
    };
    if cons.as_str() != "btree" || args.len() != 3 {
        return None;
    }
    match &args[1] {
        TypeArg::Expr(sos_core::Expr::Const(Const::Ident(a))) => Some(a.clone()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sos_catalog::{Histogram, ObjectStats};
    use sos_core::sym;

    fn obj(name: &str, ty: DataType) -> TypedExpr {
        TypedExpr::new(TypedNode::Object(sym(name)), ty)
    }

    fn rel_ty() -> DataType {
        DataType::rel(DataType::tuple(vec![(sym("k"), DataType::atom("int"))]))
    }

    fn catalog_with_stats(rows: u64, skew_low: bool) -> Catalog {
        let mut cat = Catalog::new();
        let values: Vec<f64> = if skew_low {
            (0..rows)
                .map(|i| if i % 10 == 0 { i as f64 } else { 1.0 })
                .collect()
        } else {
            (0..rows).map(|i| i as f64).collect()
        };
        cat.set_stats(
            sym("items_btree"),
            ObjectStats {
                rows,
                pages: (rows / 64).max(1),
                key_attr: Some(sym("k")),
                key_histogram: Histogram::build(&values, 32),
                ..ObjectStats::default()
            },
        );
        cat
    }

    #[test]
    fn object_estimates_use_stats_and_defaults() {
        let cat = catalog_with_stats(6400, false);
        let m = CostModel::new(&cat);
        assert_eq!(m.cardinality(&obj("items_btree", rel_ty())), 6400.0);
        // No stats → defaults.
        assert_eq!(m.cardinality(&obj("mystery", rel_ty())), DEFAULT_ROWS);
    }

    #[test]
    fn exactmatch_is_cheaper_than_scan() {
        let cat = catalog_with_stats(64000, false);
        let m = CostModel::new(&cat);
        let tree = obj("items_btree", rel_ty());
        let probe = TypedExpr::new(
            TypedNode::Apply {
                op: sym("exactmatch"),
                spec: 0,
                args: vec![
                    tree.clone(),
                    TypedExpr::new(TypedNode::Const(Const::Int(7)), DataType::atom("int")),
                ],
            },
            rel_ty(),
        );
        let scan = TypedExpr::new(
            TypedNode::Apply {
                op: sym("feed"),
                spec: 0,
                args: vec![tree],
            },
            rel_ty(),
        );
        assert!(m.page_cost(&probe) < m.page_cost(&scan) / 10.0);
    }

    #[test]
    fn sentinel_constants_fall_back_to_defaults() {
        let cat = catalog_with_stats(64000, true);
        let probe_const = Const::Int(999_983);
        let tree = obj("items_btree", rel_ty());
        let probe = TypedExpr::new(
            TypedNode::Apply {
                op: sym("exactmatch"),
                spec: 0,
                args: vec![
                    tree,
                    TypedExpr::new(TypedNode::Const(probe_const.clone()), DataType::atom("int")),
                ],
            },
            rel_ty(),
        );
        let informed = CostModel::new(&cat);
        let generic = CostModel::with_unknown(&cat, vec![probe_const]);
        // Out-of-histogram literal → near zero rows when trusted; the
        // generic model must not trust it and falls back to the
        // unique-key assumption (≈ one row).
        assert!(informed.cardinality(&probe) < 1.0);
        assert!((generic.cardinality(&probe) - 1.0).abs() < 0.01);
    }

    #[test]
    fn skewed_eq_probe_estimates_heavy_value_high() {
        // 90% of the keys are the value 1.0: probing it must estimate
        // clearly more rows than the generic unique-key assumption
        // (equi-width buckets cap the resolution well below the true
        // 57600 — detecting heavy hitters exactly would need MCVs).
        let cat = catalog_with_stats(64000, true);
        let tree = obj("items_btree", rel_ty());
        let probe = |c: Const| {
            TypedExpr::new(
                TypedNode::Apply {
                    op: sym("exactmatch"),
                    spec: 0,
                    args: vec![
                        tree.clone(),
                        TypedExpr::new(TypedNode::Const(c), DataType::atom("int")),
                    ],
                },
                rel_ty(),
            )
        };
        let m = CostModel::new(&cat);
        let heavy = m.cardinality(&probe(Const::Int(1)));
        assert!(heavy > 10.0, "heavy value estimate {heavy}");
    }

    #[test]
    fn search_join_scales_with_outer_cardinality() {
        let cat = Catalog::new();
        let m = CostModel::new(&cat);
        let mk = |outer_rows: u64| {
            let mut cat = Catalog::new();
            cat.set_stats(
                sym("outer"),
                ObjectStats {
                    rows: outer_rows,
                    pages: (outer_rows / 64).max(1),
                    ..ObjectStats::default()
                },
            );
            cat
        };
        let term = |_: &CostModel| {
            TypedExpr::new(
                TypedNode::Apply {
                    op: sym("search_join"),
                    spec: 0,
                    args: vec![
                        TypedExpr::new(
                            TypedNode::Apply {
                                op: sym("feed"),
                                spec: 0,
                                args: vec![obj("outer", rel_ty())],
                            },
                            rel_ty(),
                        ),
                        TypedExpr::new(
                            TypedNode::Apply {
                                op: sym("exactmatch"),
                                spec: 0,
                                args: vec![
                                    obj("inner_btree", rel_ty()),
                                    TypedExpr::new(
                                        TypedNode::Const(Const::Int(1)),
                                        DataType::atom("int"),
                                    ),
                                ],
                            },
                            rel_ty(),
                        ),
                    ],
                },
                rel_ty(),
            )
        };
        let small_cat = mk(10);
        let big_cat = mk(100_000);
        let small = CostModel::new(&small_cat).page_cost(&term(&m));
        let big = CostModel::new(&big_cat).page_cost(&term(&m));
        assert!(big > small * 100.0, "big={big} small={small}");
    }

    #[test]
    fn op_estimates_cover_every_apply() {
        let cat = catalog_with_stats(640, false);
        let m = CostModel::new(&cat);
        let term = TypedExpr::new(
            TypedNode::Apply {
                op: sym("count"),
                spec: 0,
                args: vec![TypedExpr::new(
                    TypedNode::Apply {
                        op: sym("feed"),
                        spec: 0,
                        args: vec![obj("items_btree", rel_ty())],
                    },
                    rel_ty(),
                )],
            },
            DataType::atom("int"),
        );
        let ests = m.op_estimates(&term);
        assert_eq!(ests.len(), 2);
        assert_eq!(ests[0].0, sym("count"));
        assert_eq!(ests[0].1, 1.0);
        assert_eq!(ests[1].0, sym("feed"));
        assert_eq!(ests[1].1, 640.0);
    }
}
