//! Rule-based optimization (Section 5).
//!
//! Optimization rules are rewrite rules on terms of the algebras:
//! a *term pattern* with variables on the left, conditions that consult
//! the catalog and the types of bound subterms (the paper's
//! `rep(rel1, rep1) and rep1: relrep(tuple1)`), and a template on the
//! right. An [`Optimizer`] is a sequence of steps, each with its own rule
//! collection and control strategy — the architecture of the Gral
//! optimizer (\[BeG92\]) the paper builds on.
//!
//! Rewriting works at the level of whole (closed) terms: when a rule
//! matches a subterm, the term is reconstructed in abstract syntax with
//! the instantiated template spliced in and the result is re-checked.
//! Type checking after every rewrite guarantees the optimizer can never
//! produce an ill-typed plan — the central safety property the SOS
//! framework gives an extensible optimizer.

mod condition;
pub mod cost;
mod pattern;
mod rewrite;
mod ruleparse;
pub mod synth;
mod validate;

pub use condition::Condition;
pub use cost::{btree_key_attr, CostModel, Estimate};
pub use pattern::{OpPat, TermPattern};
pub use rewrite::{
    OptimizeOpts, Optimizer, OptimizerStats, Rule, RuleAlt, RuleApplication, RuleStep, Strategy,
};
pub use ruleparse::parse_rules;
pub use validate::{types_equivalent, Validation};

/// Errors raised during optimization.
#[derive(Debug)]
pub enum OptError {
    /// A rewritten term failed to re-check (a broken rule).
    Recheck {
        rule: String,
        error: sos_core::CheckError,
        term: String,
    },
    /// The rewrite loop failed to terminate within the step's budget.
    NoFixpoint { step: usize, budget: usize },
    /// A rewrite changed the plan's result type and strict plan
    /// validation is on (see [`Validation::Strict`]).
    PlanTypeChanged {
        rule: String,
        before: String,
        after: String,
    },
}

impl std::fmt::Display for OptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptError::Recheck { rule, error, term } => write!(
                f,
                "rule `{rule}` produced an ill-typed term: {error}\n  term: {term}"
            ),
            OptError::NoFixpoint { step, budget } => write!(
                f,
                "optimization step {step} did not reach a fixpoint within {budget} rewrites"
            ),
            OptError::PlanTypeChanged {
                rule,
                before,
                after,
            } => write!(
                f,
                "rule `{rule}` changed the plan's result type from {before} to {after} \
                 (rejected by strict plan validation)"
            ),
        }
    }
}

impl std::error::Error for OptError {}
