//! Rule conditions: catalog lookups and type tests, evaluated after the
//! structural match. A condition may have several solutions (an object
//! can have several representations), so evaluation maps a binding set
//! to a list of extended binding sets.

use crate::pattern::RuleBindings;
use sos_catalog::Catalog;
use sos_core::pattern::{PatternNode, TypePattern};
use sos_core::typed::{TypedExpr, TypedNode};
use sos_core::{DataType, Symbol, TypeArg};

/// A condition on the bindings of a rule.
#[derive(Debug, Clone)]
pub enum Condition {
    /// `rep(model, r)` — enumerate the representation objects linked to
    /// the object bound to `model` in the named catalog, binding `rep`.
    CatalogLink {
        catalog: Symbol,
        model: Symbol,
        rep: Symbol,
    },
    /// `var : pattern` — the type of the term bound to `var` matches the
    /// type pattern, binding its type variables.
    TypeIs { var: Symbol, pattern: TypePattern },
    /// The term bound to `var` is a literal constant.
    IsConst(Symbol),
    /// The object bound to `rep` is a `btree(t, a, d)` whose key
    /// attribute `a` equals the operator bound to the op-variable `attr`
    /// (or the ident constant bound to the term variable `attr`).
    BTreeKeyIs { rep: Symbol, attr: Symbol },
    /// Negation: holds when the inner condition has no solution. The
    /// inner condition must not bind new variables.
    Not(Box<Condition>),
    /// Soundness condition for the Section 5 spatial rule: the LSD-tree
    /// bound to `lsd` indexes `bbox(a(.))` where `a` is exactly the
    /// attribute the bound region function `fvar` projects — this makes
    /// `point_search` a superset filter for the `inside` predicate.
    LsdIndexesBBoxOf { lsd: Symbol, fvar: Symbol },
}

impl std::fmt::Display for Condition {
    /// The rule-language shape of the condition, as written in the
    /// paper's Section 5 examples (`rep(rel1, rep1)`); rewrite traces
    /// print these so every applied rule shows what it checked.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Condition::CatalogLink {
                catalog,
                model,
                rep,
            } => write!(f, "{catalog}({model}, {rep})"),
            Condition::TypeIs { var, pattern } => write!(f, "{var} : {pattern}"),
            Condition::IsConst(var) => write!(f, "is_const({var})"),
            Condition::BTreeKeyIs { rep, attr } => write!(f, "btree_key({rep}) = {attr}"),
            Condition::Not(inner) => write!(f, "not {inner}"),
            Condition::LsdIndexesBBoxOf { lsd, fvar } => {
                write!(f, "{lsd} indexes bbox of {fvar}")
            }
        }
    }
}

impl Condition {
    pub fn catalog_link(catalog: &str, model: &str, rep: &str) -> Condition {
        Condition::CatalogLink {
            catalog: Symbol::new(catalog),
            model: Symbol::new(model),
            rep: Symbol::new(rep),
        }
    }

    pub fn type_is(var: &str, pattern: TypePattern) -> Condition {
        Condition::TypeIs {
            var: Symbol::new(var),
            pattern,
        }
    }

    pub fn btree_key_is(rep: &str, attr: &str) -> Condition {
        Condition::BTreeKeyIs {
            rep: Symbol::new(rep),
            attr: Symbol::new(attr),
        }
    }

    pub fn negated(inner: Condition) -> Condition {
        Condition::Not(Box::new(inner))
    }

    pub fn lsd_indexes_bbox_of(lsd: &str, fvar: &str) -> Condition {
        Condition::LsdIndexesBBoxOf {
            lsd: Symbol::new(lsd),
            fvar: Symbol::new(fvar),
        }
    }

    /// Evaluate against one binding set, producing all extensions.
    pub fn eval(&self, b: &RuleBindings, catalog: &Catalog) -> Vec<RuleBindings> {
        match self {
            Condition::CatalogLink {
                catalog: cat,
                model,
                rep,
            } => {
                let Some(bound) = b.terms.get(model) else {
                    return Vec::new();
                };
                let TypedNode::Object(model_name) = &bound.node else {
                    return Vec::new();
                };
                catalog
                    .linked(cat, model_name)
                    .into_iter()
                    .filter_map(|rep_name| {
                        let ty = catalog.object(&rep_name)?.ty.clone();
                        let mut nb = b.clone();
                        nb.terms
                            .insert(rep.clone(), TypedExpr::new(TypedNode::Object(rep_name), ty));
                        Some(nb)
                    })
                    .collect()
            }
            Condition::TypeIs { var, pattern } => {
                let Some(bound) = b.terms.get(var) else {
                    return Vec::new();
                };
                let mut nb = b.clone();
                if match_type_pattern(pattern, &TypeArg::Type(bound.ty.clone()), &mut nb) {
                    vec![nb]
                } else {
                    Vec::new()
                }
            }
            Condition::IsConst(var) => match b.terms.get(var) {
                Some(t) if matches!(t.node, TypedNode::Const(_)) => vec![b.clone()],
                _ => Vec::new(),
            },
            Condition::Not(inner) => {
                if inner.eval(b, catalog).is_empty() {
                    vec![b.clone()]
                } else {
                    Vec::new()
                }
            }
            Condition::LsdIndexesBBoxOf { lsd, fvar } => {
                let (Some(lsd_t), Some(region_f)) = (b.terms.get(lsd), b.terms.get(fvar)) else {
                    return Vec::new();
                };
                match (lsd_key_attr(&lsd_t.ty), lambda_attr(region_f)) {
                    (Some(a), Some(c)) if a == c => vec![b.clone()],
                    _ => Vec::new(),
                }
            }
            Condition::BTreeKeyIs { rep, attr } => {
                let Some(bound) = b.terms.get(rep) else {
                    return Vec::new();
                };
                let attr_name = match (b.ops.get(attr), b.terms.get(attr)) {
                    (Some(n), _) => n.clone(),
                    (None, Some(t)) => match &t.node {
                        TypedNode::Const(sos_core::Const::Ident(n)) => n.clone(),
                        _ => return Vec::new(),
                    },
                    _ => return Vec::new(),
                };
                let attr_name = &attr_name;
                let DataType::Cons(cons, args) = &bound.ty else {
                    return Vec::new();
                };
                if cons.as_str() != "btree" || args.len() != 3 {
                    return Vec::new();
                }
                match &args[1] {
                    TypeArg::Expr(sos_core::Expr::Const(sos_core::Const::Ident(a)))
                        if a == attr_name =>
                    {
                        vec![b.clone()]
                    }
                    _ => Vec::new(),
                }
            }
        }
    }
}

/// The attribute `a` such that an `lsdtree` type's key function is
/// `fun (x) bbox(a(x))` (or `fun (x) bbox(x a)` in concrete form).
fn lsd_key_attr(ty: &DataType) -> Option<Symbol> {
    let DataType::Cons(name, args) = ty else {
        return None;
    };
    if name.as_str() != "lsdtree" {
        return None;
    }
    let TypeArg::Expr(sos_core::Expr::Lambda { params, body }) = args.get(1)? else {
        return None;
    };
    let (pname, _) = params.first()?;
    // Body must be `bbox` applied to an attribute of the parameter — in
    // abstract syntax `bbox(a(p))` or in concrete (unresolved) syntax
    // `bbox(p a)` / a one-word sequence with paren argument.
    let (op, barg) = match body.as_ref() {
        sos_core::Expr::Apply { op, args: bargs } if bargs.len() == 1 => (op.clone(), &bargs[0]),
        sos_core::Expr::Seq(atoms) => match atoms.as_slice() {
            [sos_core::SeqAtom::Word {
                name,
                brackets: None,
                parens: Some(pargs),
            }] if pargs.len() == 1 => (name.clone(), &pargs[0]),
            _ => return None,
        },
        _ => return None,
    };
    if op.as_str() != "bbox" {
        return None;
    }
    attr_of_param_expr(barg, pname)
}

/// The attribute a bound region function projects: `fun (t) a(t)`.
fn lambda_attr(f: &TypedExpr) -> Option<Symbol> {
    let TypedNode::Lambda { params, body } = &f.node else {
        return None;
    };
    let (pname, _) = params.first()?;
    match &body.node {
        TypedNode::Apply { op, args, .. } if args.len() == 1 => match &args[0].node {
            TypedNode::Var(v) if v == pname => Some(op.clone()),
            _ => None,
        },
        _ => None,
    }
}

/// `a(t)` (abstract) or `t a` (one-operand sequence) for parameter `t`.
fn attr_of_param_expr(e: &sos_core::Expr, param: &Symbol) -> Option<Symbol> {
    match e {
        sos_core::Expr::Apply { op, args } => match args.as_slice() {
            [sos_core::Expr::Name(n)] if n == param => Some(op.clone()),
            _ => None,
        },
        sos_core::Expr::Seq(atoms) => match atoms.as_slice() {
            [sos_core::SeqAtom::Word {
                name: n,
                brackets: None,
                parens: None,
            }, sos_core::SeqAtom::Word {
                name: a,
                brackets: None,
                parens: None,
            }] if n == param => Some(a.clone()),
            _ => None,
        },
        _ => None,
    }
}

/// Plain structural type-pattern matching (no kinds, no widening):
/// binders bind type variables into `b.types`.
pub fn match_type_pattern(pat: &TypePattern, actual: &TypeArg, b: &mut RuleBindings) -> bool {
    if let Some(binder) = &pat.binder {
        if let Some(prev) = b.types.get(binder) {
            if prev != actual {
                return false;
            }
        } else {
            b.types.insert(binder.clone(), actual.clone());
        }
    }
    match &pat.node {
        PatternNode::Any => true,
        PatternNode::Cons(name, args) => {
            let TypeArg::Type(DataType::Cons(n2, actual_args)) = actual else {
                return false;
            };
            n2 == name
                && actual_args.len() == args.len()
                && args
                    .iter()
                    .zip(actual_args)
                    .all(|(p, a)| match_type_pattern(p, a, b))
        }
    }
}
