//! Plan validation: is a rewritten plan's result type still the one the
//! original plan had?
//!
//! Query-translation rules preserve types exactly (`consume` brings a
//! representation stream back to `rel(tuple)`), but the Section 6
//! *update* translations legitimately change the result constructor:
//! `insert(cities, c) : rel(city)` rewrites to
//! `insert(cities_rep, c) : btree(city, ...)`. The equivalence used
//! here is therefore *modulo representation*: two types are equivalent
//! when they are equal, or when both are relation-like (the model `rel`
//! constructor, or a representation declared a subtype of
//! `relrep(tuple)`) over the same tuple type. `stream(tuple)` is *not*
//! relation-like — a rule that drops the closing `consume` is flagged.

use sos_core::pattern::PatternNode;
use sos_core::{DataType, Signature, Symbol, TypeArg};

/// The per-rewrite validation mode the optimizer driver runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Validation {
    /// No type-preservation checking (the pre-validation behavior).
    Off,
    /// Count violations in [`crate::OptimizerStats`] and mark the
    /// offending step in the rewrite trace, but keep the plan.
    #[default]
    Count,
    /// Reject the plan: a violating rewrite aborts optimization with
    /// [`crate::OptError::PlanTypeChanged`].
    Strict,
}

/// Are two plan result types equivalent modulo representation?
pub fn types_equivalent(sig: &Signature, a: &DataType, b: &DataType) -> bool {
    if a == b {
        return true;
    }
    match (relational_content(sig, a), relational_content(sig, b)) {
        (Some(ta), Some(tb)) => ta == tb,
        _ => false,
    }
}

/// The tuple type a relation-like type is "about", or `None` when the
/// type is not relation-like. Relation-like means the model `rel`
/// constructor, `relrep` itself, or any constructor the signature
/// declares a subtype of something (the representation structures:
/// `srel`, `btree`, `lsdtree`, ... are all `< relrep(tuple)`).
pub fn relational_content<'t>(sig: &Signature, ty: &'t DataType) -> Option<&'t DataType> {
    let DataType::Cons(name, args) = ty else {
        return None;
    };
    let relation_like = name.as_str() == "rel"
        || name.as_str() == "relrep"
        || sig
            .subtypes()
            .iter()
            .any(|r| matches!(&r.sub.node, PatternNode::Cons(n, _) if n == name));
    if !relation_like {
        return None;
    }
    args.iter().find_map(|a| match a {
        TypeArg::Type(t @ DataType::Cons(c, _)) if c == &Symbol::new("tuple") => Some(t),
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sos_core::pattern::{SortPattern, TypePattern};
    use sos_core::spec::SubtypeRule;

    fn sig_with_btree_subtype() -> Signature {
        let mut sig = Signature::default();
        sig.add_subtype(SubtypeRule {
            sub: TypePattern::bound_cons(
                "b",
                "btree",
                vec![
                    TypePattern::var("tuple"),
                    TypePattern::var("a"),
                    TypePattern::var("d"),
                ],
            ),
            sup: SortPattern::cons("relrep", vec![SortPattern::var("tuple")]),
        });
        sig
    }

    fn tuple_ty(attr: &str) -> DataType {
        DataType::Cons(
            Symbol::new("tuple"),
            vec![TypeArg::List(vec![TypeArg::Pair(vec![
                TypeArg::Expr(sos_core::Expr::Const(sos_core::Const::Ident(Symbol::new(
                    attr,
                )))),
                TypeArg::Type(DataType::atom("int")),
            ])])],
        )
    }

    #[test]
    fn rel_is_equivalent_to_declared_representations_but_not_streams() {
        let sig = sig_with_btree_subtype();
        let t = tuple_ty("k");
        let rel = DataType::Cons(Symbol::new("rel"), vec![TypeArg::Type(t.clone())]);
        let btree = DataType::Cons(
            Symbol::new("btree"),
            vec![
                TypeArg::Type(t.clone()),
                TypeArg::Expr(sos_core::Expr::Const(sos_core::Const::Ident(Symbol::new(
                    "k",
                )))),
                TypeArg::Type(DataType::atom("int")),
            ],
        );
        let stream = DataType::Cons(Symbol::new("stream"), vec![TypeArg::Type(t.clone())]);
        assert!(types_equivalent(&sig, &rel, &rel));
        assert!(types_equivalent(&sig, &rel, &btree));
        assert!(!types_equivalent(&sig, &rel, &stream));
        assert!(!types_equivalent(&sig, &rel, &DataType::atom("int")));
        let rel2 = DataType::Cons(Symbol::new("rel"), vec![TypeArg::Type(tuple_ty("other"))]);
        assert!(!types_equivalent(&sig, &rel, &rel2));
    }
}
