use crate::PageId;

/// Errors raised by the storage engine.
#[derive(Debug)]
pub enum StorageError {
    /// An I/O error from a file-backed disk manager.
    Io(std::io::Error),
    /// A page id beyond the end of the underlying disk.
    PageOutOfBounds(PageId),
    /// A record too large to ever fit on a page.
    RecordTooLarge { size: usize, max: usize },
    /// A tuple id whose slot does not hold a live record.
    InvalidTupleId { page: PageId, slot: u16 },
    /// The buffer pool has no evictable frame (everything pinned).
    PoolExhausted,
    /// A page whose bytes do not deserialize as the expected node kind.
    Corrupt(String),
    /// A transaction protocol violation (nested begin, commit without
    /// begin, checkpoint inside a transaction, ...).
    Tx(String),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "i/o error: {e}"),
            StorageError::PageOutOfBounds(p) => write!(f, "page {p} out of bounds"),
            StorageError::RecordTooLarge { size, max } => {
                write!(f, "record of {size} bytes exceeds page capacity {max}")
            }
            StorageError::InvalidTupleId { page, slot } => {
                write!(f, "invalid tuple id ({page}, {slot})")
            }
            StorageError::PoolExhausted => write!(f, "buffer pool exhausted: all frames pinned"),
            StorageError::Corrupt(msg) => write!(f, "corrupt page: {msg}"),
            StorageError::Tx(msg) => write!(f, "transaction error: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

pub type StorageResult<T> = Result<T, StorageError>;
